#include "util/crc32.h"

#include <array>

namespace tta::util {

namespace {

constexpr std::uint32_t kPoly = 0x04C11DB7u;

// MSB-first (non-reflected) table: entry i is the register after clocking
// the byte i through the polynomial, exactly what wire::Crc computes
// bit-serially with spec crc32_bzip2().
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t r = i << 24;
    for (int bit = 0; bit < 8; ++bit) {
      r = (r & 0x80000000u) ? (r << 1) ^ kPoly : (r << 1);
    }
    table[i] = r;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

Crc32& Crc32::update(const void* data, std::size_t len) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t s = state_;
  for (std::size_t i = 0; i < len; ++i) {
    s = (s << 8) ^ kTable[((s >> 24) ^ p[i]) & 0xFFu];
  }
  state_ = s;
  return *this;
}

Crc32& Crc32::update_u32(std::uint32_t v) {
  std::uint8_t bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return update(bytes, sizeof bytes);
}

Crc32& Crc32::update_u64(std::uint64_t v) {
  std::uint8_t bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return update(bytes, sizeof bytes);
}

std::uint32_t crc32(const void* data, std::size_t len) {
  return Crc32().update(data, len).value();
}

}  // namespace tta::util
