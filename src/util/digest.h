// Stable 64-bit content digests (FNV-1a).
//
// Used by the verification job service to key its result cache: a JobSpec
// serializes itself into a canonical little-endian byte string and the
// FNV-1a digest of those bytes identifies the query across threads,
// processes, and runs. FNV-1a is chosen over the in-process hash_value()
// mix because its constants are fixed by specification — the digest of a
// given byte string never changes between builds, so digests can be
// persisted, logged, and compared across machines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tta::util {

/// Incremental FNV-1a over an arbitrary byte stream.
class Fnv1a64 {
 public:
  static constexpr std::uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Fnv1a64& update(const void* data, std::size_t len);

  Fnv1a64& update_u8(std::uint8_t v) { return update(&v, 1); }

  /// Little-endian, fixed width — byte order is part of the digest contract.
  Fnv1a64& update_u32(std::uint32_t v);
  Fnv1a64& update_u64(std::uint64_t v);

  std::uint64_t digest() const { return state_; }

 private:
  std::uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a byte buffer.
std::uint64_t fnv1a64(const void* data, std::size_t len);

inline std::uint64_t fnv1a64(const std::vector<std::uint8_t>& bytes) {
  return fnv1a64(bytes.data(), bytes.size());
}

/// 16-hex-digit rendering, for logs and JSON output.
std::string digest_hex(std::uint64_t digest);

}  // namespace tta::util
