// Lightweight invariant checking used throughout the library.
//
// TTA_CHECK is always on (it guards logic errors that would silently corrupt
// simulation or model-checking results); TTA_DCHECK compiles away in
// release-with-NDEBUG builds and is used on hot paths (state packing,
// successor enumeration).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace tta::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "TTA_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace tta::util

#define TTA_CHECK(expr)                                          \
  do {                                                           \
    if (!(expr)) ::tta::util::check_failed(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define TTA_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define TTA_DCHECK(expr) TTA_CHECK(expr)
#endif
