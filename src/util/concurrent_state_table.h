// Lock-free visited-state table for parallel reachability analysis.
//
// An open-addressed, linear-probed hash table keyed on PackedState with an
// inline value per entry, in the style of the shared state storage LTSmin
// uses for multi-core model checking: a fixed array of slots, each guarded
// by a one-byte atomic status (empty -> writing -> ready), claimed with a
// single compare-exchange. insert() is an atomic insert-if-absent — exactly
// one thread wins each key; every other thread observes the winner's slot.
//
// Memory: one slot is the 32-byte key plus the value plus one status byte
// (padded), laid out contiguously. At the checker's working load factor this
// is well under half of what a node-based std::unordered_map spends per
// state (node allocation, bucket array, malloc headers) — and
// util::CompactStateTable (compact_state_table.h) halves it again by
// storing quotiented keys. Both backends expose the same interface so the
// checkers can be templated over the storage policy.
//
// Capacity is fixed during concurrent use. Growth is the caller's job at a
// synchronization point: rebuild() single-threadedly rehashes into a larger
// slot array (optionally dropping entries) and returns the old-slot ->
// new-slot remapping so callers can rewrite stored slot references. The
// level-synchronized BFS in mc/parallel_checker.h grows the table only at
// level barriers, where exactly one thread is active.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/bitpack.h"
#include "util/check.h"
#include "util/state_table_base.h"

namespace tta::util {

template <class Value>
class ConcurrentStateTable {
 public:
  /// Sentinel slot index: insert() saturated, find() missed, or a rebuild()
  /// remapping entry was dropped.
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Insert {
    std::uint32_t slot = kNoSlot;
    bool inserted = false;  ///< true iff this call created the entry
  };

  /// Memoized hash token: hash(key) once at successor-generation time, then
  /// pass the token through insert()/find() so a state is hashed once per
  /// BFS touch. raw() feeds caller-side caches (the per-chunk dedup cache).
  struct Hashed {
    std::size_t h = 0;
    std::size_t raw() const { return h; }
  };

  /// `key_bits` is the number of significant low bits of every key. The
  /// flat backend stores full keys and ignores it; it is accepted so both
  /// backends construct uniformly from the model's packed width.
  explicit ConcurrentStateTable(std::size_t min_capacity = 1u << 16,
                                unsigned key_bits = kPackedWords * 64) {
    (void)key_bits;
    slots_ = std::vector<Slot>(round_up_pow2(min_capacity));
  }

  std::size_t capacity() const { return slots_.size(); }

  /// Number of entries. Exact only at synchronization points (no concurrent
  /// inserts in flight); during a parallel phase it is a lower bound.
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }

  /// Entries beyond this make insert() report saturation instead of letting
  /// linear probing degrade; callers should rebuild() larger well before.
  std::size_t max_load() const { return capacity() - capacity() / 4; }

  Hashed hash(const PackedState& key) const { return {hash_value(key)}; }

  /// Thread-safe insert-if-absent. Returns the key's slot and whether this
  /// call inserted it; {kNoSlot, false} means the table is saturated and
  /// the caller must rebuild() at the next synchronization point.
  Insert insert(const PackedState& key, const Value& value) {
    return insert(key, value, hash(key));
  }

  /// insert() with a memoized hash token (from hash()).
  Insert insert(const PackedState& key, const Value& value,
                const Hashed& hashed) {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hashed.h & mask;
    for (std::size_t probes = 0; probes <= mask;
         ++probes, idx = (idx + 1) & mask) {
      Slot& s = slots_[idx];
      std::uint8_t status = s.status.load(std::memory_order_acquire);
      if (status == kEmpty) {
        // Saturation is checked only when a new slot would be claimed, so
        // keys already present keep resolving even at the load ceiling.
        if (size_.load(std::memory_order_relaxed) >= max_load()) return {};
        std::uint8_t expected = kEmpty;
        if (s.status.compare_exchange_strong(expected, kWriting,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
          s.key = key;
          s.value = value;
          s.status.store(kReady, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return {static_cast<std::uint32_t>(idx), true};
        }
        status = expected;  // lost the claim race; fall through
      }
      // The claiming thread publishes in a handful of stores; pause, then
      // yield, and abort loudly if the writer is wedged (state_table_base.h).
      SpinWaiter waiter;
      while (status == kWriting) {
        waiter.wait();
        status = s.status.load(std::memory_order_acquire);
      }
      if (s.key == key) return {static_cast<std::uint32_t>(idx), false};
    }
    return {};
  }

  /// Thread-safe lookup; kNoSlot if absent.
  std::uint32_t find(const PackedState& key) const {
    return find(key, hash(key));
  }

  std::uint32_t find(const PackedState& key, const Hashed& hashed) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t idx = hashed.h & mask;
    for (std::size_t probes = 0; probes <= mask;
         ++probes, idx = (idx + 1) & mask) {
      const Slot& s = slots_[idx];
      std::uint8_t status = s.status.load(std::memory_order_acquire);
      SpinWaiter waiter;
      while (status == kWriting) {
        waiter.wait();
        status = s.status.load(std::memory_order_acquire);
      }
      if (status == kEmpty) return kNoSlot;
      if (s.key == key) return static_cast<std::uint32_t>(idx);
    }
    return kNoSlot;
  }

  bool occupied(std::uint32_t slot) const {
    return slots_[slot].status.load(std::memory_order_acquire) == kReady;
  }
  const PackedState& key_at(std::uint32_t slot) const {
    return slots_[slot].key;
  }
  const Value& value_at(std::uint32_t slot) const {
    return slots_[slot].value;
  }
  /// Mutation is only safe at synchronization points.
  Value& value_at(std::uint32_t slot) { return slots_[slot].value; }

  /// Single-threaded: rehashes into `new_capacity` slots (rounded up to a
  /// power of two), dropping entries for which `drop(value)` is true, and
  /// returns the old-slot -> new-slot remapping (kNoSlot for dropped
  /// entries). Callers holding slot indices — parent links, frontiers, edge
  /// lists — must rewrite them through the returned map. `Drop` is a plain
  /// template parameter (not std::function) so the predicate inlines and
  /// the no-predicate overload below has no per-entry branch at all.
  template <class Drop>
  std::vector<std::uint32_t> rebuild(std::size_t new_capacity, Drop&& drop) {
    std::vector<Slot> old = std::exchange(
        slots_, std::vector<Slot>(round_up_pow2(new_capacity)));
    size_.store(0, std::memory_order_relaxed);
    std::vector<std::uint32_t> remap(old.size(), kNoSlot);
    for (std::size_t i = 0; i < old.size(); ++i) {
      if (old[i].status.load(std::memory_order_relaxed) != kReady) continue;
      if (drop(old[i].value)) continue;
      // The flat layout stores no hash, so every kept key is hashed again
      // here — the recompute the compact backend's stored quotient avoids.
      ++rebuild_rehashes_;
      Insert ins = insert(old[i].key, old[i].value);
      TTA_CHECK(ins.inserted);  // new_capacity must exceed the kept load
      remap[i] = ins.slot;
    }
    return remap;
  }

  /// rebuild() keeping every entry.
  std::vector<std::uint32_t> rebuild(std::size_t new_capacity) {
    return rebuild(new_capacity, [](const Value&) { return false; });
  }

  /// Hashes recomputed by table internals (flat: one per entry kept across
  /// each rebuild). Feeds CheckStats::hash_recomputes.
  std::uint64_t hash_recomputes() const { return rebuild_rehashes_; }

  /// Bytes held by the slot array (the table's whole footprint).
  std::size_t memory_bytes() const { return slots_.size() * sizeof(Slot); }

  /// Probe-length distribution of the current contents; full scan, only
  /// meaningful at a synchronization point. Diagnostic — the rehash here is
  /// deliberately not counted in hash_recomputes().
  TableProbeStats probe_stats() const {
    TableProbeStats stats;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].status.load(std::memory_order_acquire) != kReady) {
        continue;
      }
      const std::size_t home = hash_value(slots_[i].key) & mask;
      stats.record((i - home) & mask);
    }
    stats.finalize();
    return stats;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kWriting = 1;
  static constexpr std::uint8_t kReady = 2;

  struct Slot {
    std::atomic<std::uint8_t> status{kEmpty};
    PackedState key;
    Value value{};
  };

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 64;  // floor; also keeps max_load() sane for tiny tables
    while (p < n) p <<= 1;
    return p;
  }

  std::vector<Slot> slots_;
  std::atomic<std::size_t> size_{0};
  std::uint64_t rebuild_rehashes_ = 0;
};

}  // namespace tta::util
