// Poll-style cooperative cancellation.
//
// A CancelToken is shared between a controller (the verification job
// service, a signal handler, a test) and a long-running worker (the
// model-checking engines). The worker polls cancelled() at convenient
// points — the engines poll once per expanded state — and winds down
// gracefully when it returns true, reporting partial statistics instead of
// a verdict. Cancellation is level-triggered and permanent: once a token
// reports cancelled it stays cancelled.
//
// Two triggers compose in one token:
//   * request_cancel() — an explicit external request (thread-safe);
//   * an optional soft deadline — the token trips itself once
//     steady_clock::now() passes it.
// Deadline checks call the clock only every kClockPollPeriod polls, so the
// per-state cost of polling is a relaxed atomic load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tta::util {

class CancelToken {
 public:
  CancelToken() = default;

  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  /// Token that trips after `timeout` from now. A non-positive timeout
  /// trips on the first clock poll.
  static CancelToken after(std::chrono::milliseconds timeout) {
    return CancelToken(std::chrono::steady_clock::now() + timeout);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Thread-safe; idempotent.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancellation was requested or the deadline passed. Cheap
  /// enough to call per expanded state: a relaxed load, plus one clock read
  /// every kClockPollPeriod calls when a deadline is set.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if ((polls_.fetch_add(1, std::memory_order_relaxed) &
         (kClockPollPeriod - 1)) != 0) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Forces a clock check on the next cancelled() poll (used at level
  /// barriers, where a stale deadline must not survive into another level).
  bool cancelled_now() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  static constexpr std::uint64_t kClockPollPeriod = 256;  // must be 2^k

  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> polls_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace tta::util
