// Poll-style cooperative cancellation.
//
// A CancelToken is shared between a controller (the verification job
// service, a signal handler, a test) and a long-running worker (the
// model-checking engines). The worker polls cancelled() at convenient
// points — the engines poll once per expanded state — and winds down
// gracefully when it returns true, reporting partial statistics instead of
// a verdict. Cancellation is level-triggered and permanent: once a token
// reports cancelled it stays cancelled.
//
// Two triggers compose in one token:
//   * request_cancel() — an explicit external request (thread-safe);
//   * an optional soft deadline — the token trips itself once
//     steady_clock::now() passes it.
// Deadline checks call the clock only every kClockPollPeriod polls, so the
// per-state cost of polling is a relaxed atomic load.
//
// Overshoot bound: because the clock is consulted only every
// kClockPollPeriod-th cancelled() call, a fired deadline is observed at
// most kClockPollPeriod polls after the clock actually passed it — i.e.
// the engines expand at most kClockPollPeriod - 1 further states beyond
// the first post-deadline poll, plus whatever one clock read costs. Level
// barriers use cancelled_now(), which forces the clock check, so a stale
// deadline never survives into another BFS level. The bound is pinned by
// CancelTokenDeadline.OvershootIsBoundedByTheClockPollPeriod in
// tests/mc_cancel_test.cpp.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tta::util {

class CancelToken {
 public:
  /// How many cancelled() polls may pass between deadline clock reads;
  /// public because it is the worst-case post-deadline overshoot in polls
  /// (see the header comment) and tests assert against it. Must be 2^k.
  static constexpr std::uint64_t kClockPollPeriod = 256;

  CancelToken() = default;

  explicit CancelToken(std::chrono::steady_clock::time_point deadline)
      : deadline_(deadline), has_deadline_(true) {}

  /// Token that trips after `timeout` from now. A non-positive timeout
  /// trips on the first clock poll.
  static CancelToken after(std::chrono::milliseconds timeout) {
    return CancelToken(std::chrono::steady_clock::now() + timeout);
  }

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Thread-safe; idempotent.
  void request_cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancellation was requested or the deadline passed. Cheap
  /// enough to call per expanded state: a relaxed load, plus one clock read
  /// every kClockPollPeriod calls when a deadline is set.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if ((polls_.fetch_add(1, std::memory_order_relaxed) &
         (kClockPollPeriod - 1)) != 0) {
      return false;
    }
    if (std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Forces a clock check on the next cancelled() poll (used at level
  /// barriers, where a stale deadline must not survive into another level).
  bool cancelled_now() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (std::chrono::steady_clock::now() >= deadline_) {
      cancelled_.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  bool has_deadline() const { return has_deadline_; }

 private:
  mutable std::atomic<bool> cancelled_{false};
  mutable std::atomic<std::uint64_t> polls_{0};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
};

}  // namespace tta::util
