// Rational is header-only; this translation unit exists so the library has a
// stable archive member for it and so its inline definitions get compiled
// (and warned about) at least once even if no other TU includes the header.
#include "util/rational.h"

namespace tta::util {

static_assert(Rational(1, 2) + Rational(1, 3) == Rational(5, 6));
static_assert(Rational(2, 4) == Rational(1, 2));
static_assert(Rational::ppm(100).to_double() == 0.0001);

}  // namespace tta::util
