// Deterministic pseudo-random number generation (xoshiro256**).
//
// Simulation runs and property-test sweeps must be exactly reproducible from
// a seed, across platforms and standard-library versions; std::mt19937's
// distributions are not portable, so we ship our own small generator and the
// few bounded-draw helpers the simulator needs.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace tta::util {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via splitmix64 so that any
/// 64-bit seed — including 0 — yields a well-mixed state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 stream to fill the 256-bit state.
    auto next_seed = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& w : s_) w = next_seed();
  }

  /// Uniform 64-bit draw.
  std::uint64_t next_u64() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform draw in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t next_below(std::uint64_t bound) {
    TTA_DCHECK(bound > 0);
    // 128-bit multiply keeps the draw unbiased.
    while (true) {
      std::uint64_t x = next_u64();
      __uint128_t m = static_cast<__uint128_t>(x) * bound;
      std::uint64_t lo = static_cast<std::uint64_t>(m);
      if (lo >= bound || lo >= static_cast<std::uint64_t>(-bound) % bound) {
        return static_cast<std::uint64_t>(m >> 64);
      }
    }
  }

  /// Uniform integer in the closed range [lo, hi].
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    TTA_DCHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1) with 53 bits of entropy.
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw.
  bool next_bool(double p_true) { return next_double() < p_true; }

 private:
  std::uint64_t s_[4];
};

}  // namespace tta::util
