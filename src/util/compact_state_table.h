// Compact-hash visited-state table: Cleary-style key quotienting.
//
// Same open-addressed, linear-probed, status-byte-guarded design as
// util::ConcurrentStateTable (the "flat" backend), but a slot does not
// store its 32-byte PackedState key. Instead the key is passed through an
// *invertible* mix over exactly its significant `key_bits` low bits; the
// low bits of the mixed value select the home bucket and only the
// remaining `key_bits - log2(capacity)` bits — the remainder, bit-packed
// into whole bytes per slot — are stored, next to an 8-bit linear-probe
// displacement that recovers the home bucket from the slot index. Because
// the mix is a bijection (not a lossy hash), (home bucket, remainder)
// reconstructs the key exactly: membership answers are exact and key_at()
// re-materializes the original PackedState on demand. The displacement
// bound is the only approximation, and it is fail-safe: a probe that would
// exceed 255 reports saturation (the caller rebuilds larger) rather than
// ever conflating two keys — see docs/CHECKER.md.
//
// Layout is struct-of-arrays: the one-byte atomic statuses live in their
// own contiguous array (so CAS traffic touches cache lines holding nothing
// else), and displacement / remainder / value arrays are plain bytes
// synchronized through the status protocol (empty -> writing -> ready,
// publish with a release store, observe with an acquire load — identical
// to the flat table). Remainders occupy whole bytes per slot so concurrent
// writers never share a byte.
//
// Memory per slot: 2 bytes (status + displacement) + ceil((key_bits -
// log2(capacity)) / 8) remainder bytes + sizeof(Value), versus the flat
// table's padded status + 32-byte key + value. For the 4-node model
// (key_bits = 119) at 2^18 buckets that is 27 vs 56 bytes — under 0.5x.
//
// Concurrency contract, growth-at-barrier rebuild(), and the insert/find
// surface mirror ConcurrentStateTable exactly; the checkers are templated
// over the backend and treat the two interchangeably. rebuild() re-places
// entries from their stored (home, remainder) quotients directly — the mix
// is never inverted and no full key is ever materialized during growth.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "util/bitpack.h"
#include "util/check.h"
#include "util/state_table_base.h"

namespace tta::util {

namespace compact_detail {

/// splitmix64 finalizer: full 64-bit avalanche, used as the per-word round
/// function of the multi-word mix (the xor-fold keeps the whole bijective).
inline std::uint64_t mix64(std::uint64_t z) {
  z ^= z >> 30;
  z *= 0xBF58476D1CE4E5B9ull;
  z ^= z >> 27;
  z *= 0x94D049BB133111EBull;
  z ^= z >> 31;
  return z;
}

/// Multiplicative inverse of an odd constant mod 2^64 (Newton iteration).
constexpr std::uint64_t mod_inverse(std::uint64_t a) {
  std::uint64_t x = 3 * a ^ 2;  // correct to 5 bits
  for (int i = 0; i < 5; ++i) x *= 2 - a * x;
  return x;
}

/// Inverse of y = z ^ (z >> s) on a <= 64-bit value; s >= 1.
inline std::uint64_t inv_xorshift(std::uint64_t y, unsigned s) {
  std::uint64_t x = y;
  for (unsigned done = 0; done < 64; done += s) x = y ^ (x >> s);
  return x;
}

inline constexpr std::uint64_t kOdd[2] = {0x9E3779B97F4A7C15ull,
                                          0xBF58476D1CE4E5B9ull};
inline constexpr std::uint64_t kOddInv[2] = {mod_inverse(kOdd[0]),
                                             mod_inverse(kOdd[1])};
inline constexpr std::uint64_t kSalt[2] = {0xD6E8FEB86659FD93ull,
                                           0xCA1392FBDB8C12F5ull};

}  // namespace compact_detail

template <class Value>
class CompactStateTable {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  struct Insert {
    std::uint32_t slot = kNoSlot;
    bool inserted = false;  ///< true iff this call created the entry
  };

  /// Memoized hash token: the fully mixed key words. Capacity-independent
  /// (the bucket split happens per call), so a token computed once at
  /// successor-generation time stays valid across rebuilds.
  struct Hashed {
    std::array<std::uint64_t, kPackedWords> mixed{};
    std::size_t raw() const { return static_cast<std::size_t>(mixed[0]); }
  };

  /// `key_bits` is the number of significant low bits of every key the
  /// table will see (the model's packed width); keys must be zero above it
  /// or distinct keys could quotient identically.
  explicit CompactStateTable(std::size_t min_capacity = 1u << 16,
                             unsigned key_bits = kPackedWords * 64)
      : key_bits_(key_bits == 0 ? 1 : key_bits) {
    TTA_CHECK(key_bits_ <= kPackedWords * 64);
    words_ = (key_bits_ + 63) / 64;
    last_word_bits_ = key_bits_ - 64 * (words_ - 1);
    last_word_mask_ = last_word_bits_ == 64
                          ? ~std::uint64_t{0}
                          : (std::uint64_t{1} << last_word_bits_) - 1;
    half_shift_ = last_word_bits_ / 2;
    allocate(round_up_pow2(min_capacity));
  }

  std::size_t capacity() const { return mask_ + 1; }
  std::size_t size() const { return size_.load(std::memory_order_relaxed); }
  std::size_t max_load() const { return capacity() - capacity() / 4; }
  unsigned key_bits() const { return key_bits_; }

  Hashed hash(const PackedState& key) const {
    Hashed h;
    for (unsigned i = 0; i < words_; ++i) h.mixed[i] = key.words[i];
    TTA_DCHECK((h.mixed[words_ - 1] & ~word_mask(words_ - 1)) == 0);
    for (unsigned i = words_; i < kPackedWords; ++i) {
      TTA_DCHECK(key.words[i] == 0);
    }
    forward_mix(h.mixed.data());
    return h;
  }

  Insert insert(const PackedState& key, const Value& value) {
    return insert(key, value, hash(key));
  }

  /// Thread-safe insert-if-absent; same contract as the flat table.
  /// {kNoSlot, false} on saturation — load ceiling reached, or the new
  /// entry's probe displacement would overflow its 8-bit field.
  Insert insert(const PackedState& /*key*/, const Value& value,
                const Hashed& hashed) {
    std::uint8_t rem[kMaxRemBytes];
    remainder_bytes(hashed, rem);
    std::size_t idx = hashed.mixed[0] & mask_;
    for (std::size_t probes = 0; probes <= mask_;
         ++probes, idx = (idx + 1) & mask_) {
      std::uint8_t status = status_[idx].load(std::memory_order_acquire);
      if (status == kEmpty) {
        if (probes > kMaxDisplacement ||
            size_.load(std::memory_order_relaxed) >= max_load()) {
          return {};
        }
        std::uint8_t expected = kEmpty;
        if (status_[idx].compare_exchange_strong(expected, kWriting,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
          disp_[idx] = static_cast<std::uint8_t>(probes);
          if (rem_bytes_ != 0) {
            std::memcpy(rem_.data() + idx * rem_bytes_, rem, rem_bytes_);
          }
          values_[idx] = value;
          status_[idx].store(kReady, std::memory_order_release);
          size_.fetch_add(1, std::memory_order_relaxed);
          return {static_cast<std::uint32_t>(idx), true};
        }
        status = expected;  // lost the claim race; fall through
      }
      SpinWaiter waiter;
      while (status == kWriting) {
        waiter.wait();
        status = status_[idx].load(std::memory_order_acquire);
      }
      if (matches(idx, probes, rem)) {
        return {static_cast<std::uint32_t>(idx), false};
      }
    }
    return {};
  }

  std::uint32_t find(const PackedState& key) const {
    return find(key, hash(key));
  }

  std::uint32_t find(const PackedState& /*key*/, const Hashed& hashed) const {
    std::uint8_t rem[kMaxRemBytes];
    remainder_bytes(hashed, rem);
    std::size_t idx = hashed.mixed[0] & mask_;
    for (std::size_t probes = 0; probes <= mask_;
         ++probes, idx = (idx + 1) & mask_) {
      std::uint8_t status = status_[idx].load(std::memory_order_acquire);
      SpinWaiter waiter;
      while (status == kWriting) {
        waiter.wait();
        status = status_[idx].load(std::memory_order_acquire);
      }
      if (status == kEmpty) return kNoSlot;
      if (matches(idx, probes, rem)) return static_cast<std::uint32_t>(idx);
    }
    return kNoSlot;
  }

  bool occupied(std::uint32_t slot) const {
    return status_[slot].load(std::memory_order_acquire) == kReady;
  }

  /// Re-materializes the slot's key by inverting the mix over the stored
  /// (home bucket, remainder) quotient. Exact — the mix is a bijection.
  PackedState key_at(std::uint32_t slot) const {
    const std::size_t home = (slot - disp_[slot]) & mask_;
    Hashed h =
        reassemble(home, rem_.data() + slot * rem_bytes_, bucket_bits_);
    inverse_mix(h.mixed.data());
    PackedState p;
    for (unsigned i = 0; i < words_; ++i) p.words[i] = h.mixed[i];
    for (unsigned i = words_; i < kPackedWords; ++i) p.words[i] = 0;
    return p;
  }

  const Value& value_at(std::uint32_t slot) const { return values_[slot]; }
  /// Mutation is only safe at synchronization points.
  Value& value_at(std::uint32_t slot) { return values_[slot]; }

  /// Single-threaded growth at a barrier; same remap contract as the flat
  /// table. Entries are re-placed directly from their stored quotients —
  /// the new home/remainder split is recomputed from the mixed words, the
  /// mix is never inverted, and no full key is materialized. If the new
  /// capacity trips the displacement bound mid-rebuild, the rebuild
  /// restarts internally at double the capacity (fail-safe, never lossy).
  template <class Drop>
  std::vector<std::uint32_t> rebuild(std::size_t new_capacity, Drop&& drop) {
    auto old_status = std::move(status_);
    auto old_disp = std::move(disp_);
    auto old_rem = std::move(rem_);
    auto old_values = std::move(values_);
    const std::size_t old_mask = mask_;
    const unsigned old_bucket_bits = bucket_bits_;
    const std::size_t old_rem_bytes = rem_bytes_;

    std::size_t cap = round_up_pow2(new_capacity);
    std::vector<std::uint32_t> remap;
    for (;;) {
      allocate(cap);
      remap.assign(old_status.size(), kNoSlot);
      bool ok = true;
      for (std::size_t i = 0; i < old_status.size(); ++i) {
        if (old_status[i].load(std::memory_order_relaxed) != kReady) {
          continue;
        }
        if (drop(old_values[i])) continue;
        const std::size_t home = (i - old_disp[i]) & old_mask;
        const Hashed h = reassemble(
            home, old_rem.data() + i * old_rem_bytes, old_bucket_bits);
        const std::uint32_t slot = place(h, old_values[i]);
        if (slot == kNoSlot) {
          ok = false;
          break;
        }
        remap[i] = slot;
      }
      if (ok) return remap;
      cap <<= 1;
    }
  }

  std::vector<std::uint32_t> rebuild(std::size_t new_capacity) {
    return rebuild(new_capacity, [](const Value&) { return false; });
  }

  /// The compact backend never rehashes: rebuild() works on stored mixed
  /// quotients. Kept for interface parity with the flat table.
  std::uint64_t hash_recomputes() const { return 0; }

  /// Bytes held by the slot arrays: status + displacement + remainder +
  /// value per slot, no padding between slots of one array.
  std::size_t memory_bytes() const {
    const std::size_t cap = capacity();
    return cap * (2 + rem_bytes_ + sizeof(Value));
  }

  /// Probe-length distribution; O(capacity), no hashing (displacements are
  /// stored). Only meaningful at a synchronization point.
  TableProbeStats probe_stats() const {
    TableProbeStats stats;
    for (std::size_t i = 0; i <= mask_; ++i) {
      if (status_[i].load(std::memory_order_acquire) != kReady) continue;
      stats.record(disp_[i]);
    }
    stats.finalize();
    return stats;
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kWriting = 1;
  static constexpr std::uint8_t kReady = 2;
  static constexpr std::size_t kMaxDisplacement = 255;
  static constexpr std::size_t kMaxRemBytes = sizeof(PackedState);

  static std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 64;  // same floor as the flat table
    while (p < n) p <<= 1;
    return p;
  }

  std::uint64_t word_mask(unsigned i) const {
    return i + 1 == words_ ? last_word_mask_ : ~std::uint64_t{0};
  }

  void allocate(std::size_t cap) {
    // Slot indices are uint32 with kNoSlot reserved.
    TTA_CHECK(cap <= (std::size_t{1} << 31));
    mask_ = cap - 1;
    bucket_bits_ = 0;
    while ((std::size_t{1} << bucket_bits_) < cap) ++bucket_bits_;
    const unsigned rem_bits =
        key_bits_ > bucket_bits_ ? key_bits_ - bucket_bits_ : 0;
    rem_bytes_ = (rem_bits + 7) / 8;
    status_ = std::vector<std::atomic<std::uint8_t>>(cap);
    disp_.assign(cap, 0);
    rem_.assign(cap * rem_bytes_, 0);
    values_.assign(cap, Value{});
    size_.store(0, std::memory_order_relaxed);
  }

  /// Entry identity test: same displacement for this probe's home bucket
  /// (so the entry's home equals ours) and identical remainder bytes. The
  /// mix being a bijection makes this exact, never probabilistic.
  bool matches(std::size_t idx, std::size_t probes,
               const std::uint8_t* rem) const {
    return probes <= kMaxDisplacement &&
           disp_[idx] == static_cast<std::uint8_t>(probes) &&
           (rem_bytes_ == 0 ||
            std::memcmp(rem_.data() + idx * rem_bytes_, rem, rem_bytes_) ==
                0);
  }

  /// The invertible mix. One word (key_bits <= 64): two rounds of odd
  /// multiply mod 2^key_bits then fold-down xorshift — both bijective on
  /// the key_bits-wide domain. Multiple words: two passes of an xor chain,
  /// w[i] ^= mix64(w[i-1 mod K] + salt + i); each step xors a word with a
  /// function of *other* words (bijective), and after two passes the low
  /// (bucket) bits of word 0 depend on every key bit through two full
  /// avalanche layers.
  void forward_mix(std::uint64_t* w) const {
    using namespace compact_detail;
    if (words_ == 1) {
      std::uint64_t z = w[0] & last_word_mask_;
      for (int round = 0; round < 2; ++round) {
        z = (z * kOdd[round]) & last_word_mask_;
        if (half_shift_ != 0) z ^= z >> half_shift_;
      }
      w[0] = z;
      return;
    }
    for (int pass = 0; pass < 2; ++pass) {
      for (unsigned i = 0; i < words_; ++i) {
        const std::uint64_t prev = w[(i + words_ - 1) % words_];
        w[i] = (w[i] ^ mix64(prev + kSalt[pass] + i)) & word_mask(i);
      }
    }
  }

  void inverse_mix(std::uint64_t* w) const {
    using namespace compact_detail;
    if (words_ == 1) {
      std::uint64_t z = w[0];
      for (int round = 1; round >= 0; --round) {
        if (half_shift_ != 0) z = inv_xorshift(z, half_shift_);
        z = (z * kOddInv[round]) & last_word_mask_;
      }
      w[0] = z;
      return;
    }
    // Undo the xor chain in exact reverse order; at each step the "prev"
    // word already holds the value it had when the forward step ran.
    for (int pass = 1; pass >= 0; --pass) {
      for (unsigned i = words_; i-- > 0;) {
        const std::uint64_t prev = w[(i + words_ - 1) % words_];
        w[i] = (w[i] ^ mix64(prev + kSalt[pass] + i)) & word_mask(i);
      }
    }
  }

  /// Serializes the mixed words minus the bucket bits into little-endian
  /// remainder bytes (exactly rem_bytes_ of them; spare high bits zero so
  /// slots compare with one memcmp).
  void remainder_bytes(const Hashed& h, std::uint8_t* out) const {
    if (rem_bytes_ == 0) return;
    std::memset(out, 0, rem_bytes_);
    std::uint64_t acc = 0;
    unsigned acc_bits = 0;
    std::size_t pos = 0;
    auto emit = [&](std::uint64_t v, unsigned bits) {
      while (bits > 0) {
        const unsigned take = bits < 56 ? bits : 56;
        acc |= (v & ((std::uint64_t{1} << take) - 1)) << acc_bits;
        acc_bits += take;
        v >>= take;
        bits -= take;
        while (acc_bits >= 8) {
          out[pos++] = static_cast<std::uint8_t>(acc);
          acc >>= 8;
          acc_bits -= 8;
        }
      }
    };
    if (words_ == 1) {
      emit(h.mixed[0] >> bucket_bits_, key_bits_ - bucket_bits_);
    } else {
      emit(h.mixed[0] >> bucket_bits_, 64 - bucket_bits_);
      for (unsigned i = 1; i + 1 < words_; ++i) emit(h.mixed[i], 64);
      emit(h.mixed[words_ - 1], last_word_bits_);
    }
    if (acc_bits > 0) out[pos] = static_cast<std::uint8_t>(acc);
  }

  /// Inverse of remainder_bytes + bucket split: rebuilds the mixed words
  /// from a home bucket index and the stored remainder, under the bucket
  /// geometry `bucket_bits` (rebuild() passes the *old* geometry).
  Hashed reassemble(std::size_t home, const std::uint8_t* rem,
                    unsigned bucket_bits) const {
    Hashed h;
    const unsigned rem_bits =
        key_bits_ > bucket_bits ? key_bits_ - bucket_bits : 0;
    const std::size_t total_bytes = (rem_bits + 7) / 8;
    std::uint64_t acc = 0;
    unsigned acc_bits = 0;
    std::size_t pos = 0;
    auto pull = [&](unsigned bits) {
      std::uint64_t v = 0;
      unsigned got = 0;
      while (got < bits) {
        if (acc_bits == 0) {
          acc = pos < total_bytes ? rem[pos++] : 0;
          acc_bits = 8;
        }
        const unsigned take = std::min(bits - got, acc_bits);
        v |= (acc & ((std::uint64_t{1} << take) - 1)) << got;
        acc >>= take;
        acc_bits -= take;
        got += take;
      }
      return v;
    };
    if (words_ == 1) {
      h.mixed[0] = home;
      if (rem_bits != 0) h.mixed[0] |= pull(rem_bits) << bucket_bits;
    } else {
      h.mixed[0] = home | (pull(64 - bucket_bits) << bucket_bits);
      for (unsigned i = 1; i + 1 < words_; ++i) h.mixed[i] = pull(64);
      h.mixed[words_ - 1] = pull(last_word_bits_);
    }
    return h;
  }

  /// Single-threaded placement from a mixed quotient (rebuild only; keys
  /// are known distinct, so no identity checks along the probe).
  std::uint32_t place(const Hashed& h, const Value& value) {
    std::uint8_t rem[kMaxRemBytes];
    remainder_bytes(h, rem);
    std::size_t idx = h.mixed[0] & mask_;
    for (std::size_t probes = 0; probes <= mask_;
         ++probes, idx = (idx + 1) & mask_) {
      if (status_[idx].load(std::memory_order_relaxed) == kReady) continue;
      if (probes > kMaxDisplacement ||
          size_.load(std::memory_order_relaxed) >= max_load()) {
        return kNoSlot;
      }
      status_[idx].store(kReady, std::memory_order_relaxed);
      disp_[idx] = static_cast<std::uint8_t>(probes);
      if (rem_bytes_ != 0) {
        std::memcpy(rem_.data() + idx * rem_bytes_, rem, rem_bytes_);
      }
      values_[idx] = value;
      size_.fetch_add(1, std::memory_order_relaxed);
      return static_cast<std::uint32_t>(idx);
    }
    return kNoSlot;
  }

  unsigned key_bits_;
  unsigned words_ = 1;
  unsigned last_word_bits_ = 64;
  std::uint64_t last_word_mask_ = ~std::uint64_t{0};
  unsigned half_shift_ = 32;

  std::size_t mask_ = 0;
  unsigned bucket_bits_ = 0;
  std::size_t rem_bytes_ = 0;

  std::vector<std::atomic<std::uint8_t>> status_;
  std::vector<std::uint8_t> disp_;
  std::vector<std::uint8_t> rem_;
  std::vector<Value> values_;
  std::atomic<std::size_t> size_{0};
};

}  // namespace tta::util
