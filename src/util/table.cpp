#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace tta::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  TTA_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  TTA_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& row, std::string& out) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      if (c + 1 < row.size()) {
        out.append(width[c] - row[c].size() + 2, ' ');
      }
    }
    out += '\n';
  };
  std::string out;
  emit_row(headers_, out);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    rule += width[c] + (c + 1 < width.size() ? 2 : 0);
  }
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row, out);
  return out;
}

std::string Table::num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace tta::util
