#include "util/file_journal.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <system_error>

#include "util/crc32.h"
#include "util/fail_point.h"

namespace tta::util {

namespace {

/// Sanity cap on one record: a length field beyond this is corruption, not
/// a record the cache could ever have written.
constexpr std::uint32_t kMaxRecordBytes = 1u << 30;

std::uint32_t read_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

void write_u32le(std::uint8_t* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

}  // namespace

JournalScan scan_journal(
    const std::string& path,
    const std::function<void(const std::uint8_t*, std::size_t)>& fn) {
  JournalScan scan;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    scan.file_missing = true;
    return scan;
  }

  std::vector<std::uint8_t> payload;
  std::uint64_t offset = 0;
  for (;;) {
    std::uint8_t header[8];
    const std::size_t got = std::fread(header, 1, sizeof header, f);
    if (got == 0) break;  // clean end of file
    if (got < sizeof header) {
      // Torn header: the process died mid-write of the frame itself.
      scan.truncated_records = 1;
      scan.quarantined_bytes += got;
      break;
    }
    const std::uint32_t len = read_u32le(header);
    const std::uint32_t crc = read_u32le(header + 4);
    if (len > kMaxRecordBytes) {
      // A length this absurd means the header bytes themselves are damaged.
      scan.corrupt_records = 1;
      scan.quarantined_bytes += sizeof header;
      break;
    }
    payload.resize(len);
    const std::size_t body = std::fread(payload.data(), 1, len, f);
    if (body < len) {
      scan.truncated_records = 1;
      scan.quarantined_bytes += sizeof header + body;
      break;
    }
    if (crc32(payload.data(), len) != crc) {
      scan.corrupt_records = 1;
      scan.quarantined_bytes += sizeof header + len;
      break;
    }
    offset += sizeof header + len;
    ++scan.records;
    if (fn) fn(payload.data(), payload.size());
  }
  scan.valid_bytes = offset;

  // Everything after the valid prefix is quarantined, including bytes the
  // loop never looked at (e.g. records behind a corrupt one).
  std::error_code ec;
  const std::uint64_t file_size = std::filesystem::file_size(path, ec);
  if (!ec && file_size > offset) {
    scan.quarantined_bytes = file_size - offset;
  }
  std::fclose(f);
  return scan;
}

bool JournalWriter::open(const std::string& path, std::uint64_t keep_bytes) {
  close();
  // Create the file if it does not exist, then physically drop any
  // quarantined tail so new appends land directly after the valid prefix.
  std::error_code ec;
  if (!std::filesystem::exists(path, ec)) {
    std::FILE* create = std::fopen(path.c_str(), "wb");
    if (!create) return false;
    std::fclose(create);
  }
  std::filesystem::resize_file(path, keep_bytes, ec);
  if (ec) return false;
  file_ = std::fopen(path.c_str(), "ab");
  if (!file_) return false;
  bytes_written_ = keep_bytes;
  return true;
}

bool JournalWriter::append(const void* payload, std::size_t len) {
  if (!file_ || len > SIZE_MAX - 8) return false;
  std::uint8_t header[8];
  write_u32le(header, static_cast<std::uint32_t>(len));
  write_u32le(header + 4, crc32(payload, len));

  const FailDecision torn = fail_point("journal.append.torn");
  if (torn.short_io()) {
    // Injected crash mid-write: `arg` bytes of the frame reach the file
    // and the writer never comes back, exactly like a SIGKILL between
    // fwrite and fflush. No healing — the torn tail must be there for the
    // next recovery scan to quarantine.
    const std::uint64_t n =
        std::min<std::uint64_t>(torn.arg, sizeof header + len);
    std::fwrite(header, 1, static_cast<std::size_t>(
                               std::min<std::uint64_t>(n, sizeof header)),
                file_);
    if (n > sizeof header) {
      std::fwrite(payload, 1, static_cast<std::size_t>(n - sizeof header),
                  file_);
    }
    std::fflush(file_);
    std::fclose(file_);
    file_ = nullptr;
    ++io_errors_;
    return false;
  }

  if (fail_point("journal.append.enospc").error() ||
      std::fwrite(header, 1, sizeof header, file_) != sizeof header ||
      (len > 0 && std::fwrite(payload, 1, len, file_) != len) ||
      // Push the record into the kernel so it survives SIGKILL;
      // stable-storage durability is sync()'s job. ENOSPC surfaces here.
      std::fflush(file_) != 0) {
    ++io_errors_;
    heal_tail();
    return false;
  }
  bytes_written_ += sizeof header + len;
  return true;
}

void JournalWriter::heal_tail() {
  if (!file_) return;
  std::fflush(file_);  // drop what we can; the truncate is the real healer
  // The stream is in append mode, so after the truncate the next fwrite
  // lands back at the record boundary — no seek needed. If even the
  // truncate fails, the partial frame stays and the next recovery scan
  // quarantines it like any torn write.
  const int rc = ::ftruncate(::fileno(file_), static_cast<off_t>(bytes_written_));
  (void)rc;
}

bool JournalWriter::sync() {
  if (!file_) return false;
  if (fail_point("journal.sync").error() || std::fflush(file_) != 0 ||
      ::fsync(::fileno(file_)) != 0) {
    ++io_errors_;
    return false;
  }
  return true;
}

void JournalWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

}  // namespace tta::util
