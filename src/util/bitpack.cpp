#include "util/bitpack.h"

#include <cstdio>

namespace tta::util {

std::string PackedState::to_hex() const {
  std::string out;
  char buf[20];
  for (std::size_t i = kPackedWords; i-- > 0;) {
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(words[i]));
    out += buf;
  }
  return out;
}

std::size_t hash_value(const PackedState& s) noexcept {
  // splitmix64 finalizer applied per word, combined with a rotation; this is
  // the classic avalanche used by state-space explorers to keep bucket
  // collisions low even when states differ in only a few low bits.
  std::uint64_t h = 0x9e3779b97f4a7c15ull;
  for (std::uint64_t w : s.words) {
    std::uint64_t z = w + 0x9e3779b97f4a7c15ull + h;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    h = (h << 7 | h >> 57) ^ z;
  }
  return static_cast<std::size_t>(h);
}

void BitWriter::write(std::uint64_t value, unsigned bits) {
  TTA_DCHECK(bits >= 1 && bits <= 64);
  TTA_DCHECK(bits == 64 || value < (1ull << bits));
  TTA_DCHECK(pos_ + bits <= kPackedWords * 64);
  unsigned word = pos_ / 64;
  unsigned off = pos_ % 64;
  out_->words[word] |= value << off;
  if (off + bits > 64) {
    out_->words[word + 1] |= value >> (64 - off);
  }
  pos_ += bits;
}

std::uint64_t BitReader::read(unsigned bits) {
  TTA_DCHECK(bits >= 1 && bits <= 64);
  TTA_DCHECK(pos_ + bits <= kPackedWords * 64);
  unsigned word = pos_ / 64;
  unsigned off = pos_ % 64;
  std::uint64_t v = in_->words[word] >> off;
  if (off + bits > 64) {
    v |= in_->words[word + 1] << (64 - off);
  }
  pos_ += bits;
  if (bits < 64) v &= (1ull << bits) - 1;
  return v;
}

}  // namespace tta::util
