#include "util/event_loop.h"

#include <cerrno>

#include <poll.h>

namespace tta::util {

void EventLoop::watch(int fd, bool read, bool write) {
  if (fd < 0) return;
  interest_[fd] = Interest{read, write};
}

void EventLoop::unwatch(int fd) { interest_.erase(fd); }

int EventLoop::poll_once(int timeout_ms, const Handler& handler) {
  scratch_.clear();
  scratch_.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    short events = 0;
    if (want.read) events |= POLLIN;
    if (want.write) events |= POLLOUT;
    // A zero-interest entry still rides along: POLLERR/POLLHUP are always
    // reported by poll(2), which is exactly what a muted listener or a
    // write-quiesced connection needs to learn its peer vanished.
    scratch_.push_back(pollfd{fd, events, 0});
  }
  if (scratch_.empty()) return 0;

  const int rc = ::poll(scratch_.data(), scratch_.size(), timeout_ms);
  if (rc < 0) return errno == EINTR ? 0 : -1;
  if (rc == 0) return 0;

  int dispatched = 0;
  for (const pollfd& pfd : scratch_) {
    if (pfd.revents == 0) continue;
    // A handler earlier this round may have unwatched (and closed) this
    // fd; its events are stale then and must not be delivered.
    if (interest_.count(pfd.fd) == 0) continue;
    Event ev;
    ev.fd = pfd.fd;
    ev.readable = (pfd.revents & POLLIN) != 0;
    ev.writable = (pfd.revents & POLLOUT) != 0;
    ev.broken = (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    if (ev.broken) ev.readable = true;  // drain the pending EOF/error
    handler(ev);
    ++dispatched;
  }
  return dispatched;
}

}  // namespace tta::util
