// Deterministic fail-point fault injection (docs/SERVICE.md, "Fault
// injection & chaos testing").
//
// A fail point is a named site in a failure path — `journal.sync`,
// `sock.send`, `ckpt.save.torn` — where a fault can be injected on demand:
//
//   const FailDecision fp = util::fail_point("journal.sync");
//   if (fp.error()) { ++io_errors_; return false; }
//
// Sites are dormant until *armed*, either through the runtime API
// (FailPoints::instance().arm(...)) or the TTA_FAILPOINTS environment
// variable read once at process start:
//
//   TTA_FAILPOINTS="<site>=<action>[:<modifier>...][;<site>=...]"
//   action    error | abort | delay(MS) | short-io(BYTES)
//   modifier  prob(PPM)         fire with probability PPM/1e6 per hit
//             hits(FROM[,TO])   fire only on hit indices in [FROM,TO]
//                               (1-based, inclusive; TO omitted = forever)
//   TTA_FAILPOINTS_SEED=N       seed for the firing PRNG (default 0)
//
// Determinism is the contract that makes chaos runs replayable: each site
// keeps a hit counter, and whether hit number H of site S fires is a pure
// function of (seed, S, H) — a counter-based PRNG, not shared mutable
// stream state — so the same seed and the same per-site hit sequence
// reproduce the same faults regardless of thread interleaving across
// *different* sites.
//
// Cost model: compiled out (cmake -DTTA_FAILPOINTS=OFF), fail_point() is a
// constexpr empty decision — no atomic load, no branch survives
// optimization. Compiled in but unarmed (the production default), it is
// one relaxed atomic load of a process-global arm counter. Only armed
// processes pay the registry mutex. bench_async_service prices all three.
//
// Action semantics are owned by the call site: `error` means "this
// operation failed" in whatever way the site fails (EMFILE for accept,
// a reset for send, false for a journal append); `short-io(N)` means "only
// N bytes made it"; `delay(MS)` sleeps inside the evaluation and then
// reports kDelay (call sites treat it as a non-event); `abort` calls
// std::abort() — the chaos harness never arms it, CI asserts no aborts.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tta::util {

enum class FailAction : std::uint8_t {
  kOff = 0,      ///< site not armed, or armed but this hit did not fire
  kError = 1,    ///< the operation fails the way this site fails
  kShortIo = 2,  ///< only `arg` bytes of the operation take effect
  kDelay = 3,    ///< already slept `arg` ms inside the evaluation
  kAbort = 4,    ///< never observed: evaluation calls std::abort()
};

/// What one fail_point() evaluation decided.
struct FailDecision {
  FailAction action = FailAction::kOff;
  std::uint64_t arg = 0;  ///< short-io byte count / delay ms

  bool fired() const { return action != FailAction::kOff; }
  bool error() const { return action == FailAction::kError; }
  bool short_io() const { return action == FailAction::kShortIo; }
};

/// How an armed site behaves, as parsed from the grammar above.
struct FailSpec {
  FailAction action = FailAction::kError;
  std::uint64_t arg = 0;
  std::uint32_t prob_ppm = 1'000'000;  ///< firing probability per hit
  std::uint64_t first_hit = 1;         ///< 1-based inclusive window
  std::uint64_t last_hit = UINT64_MAX;
};

struct FailSiteStats {
  std::string site;
  FailSpec spec;
  std::uint64_t hits = 0;   ///< evaluations while armed
  std::uint64_t fired = 0;  ///< evaluations that injected
};

/// Parses the TTA_FAILPOINTS grammar into (site, spec) pairs. On failure
/// returns false and names the offending fragment in *error.
bool parse_failpoints(std::string_view config,
                      std::vector<std::pair<std::string, FailSpec>>* out,
                      std::string* error);

namespace detail {
/// Number of armed sites; the fast path's only read. Relaxed everywhere —
/// arming mid-flight is inherently racy with in-progress operations and
/// the registry mutex orders everything that matters.
extern std::atomic<std::uint32_t> g_failpoints_armed;
FailDecision fail_point_slow(const char* site);
}  // namespace detail

/// Process-wide registry of armed sites. Thread-safe; a Meyers singleton
/// so tools, tests, and the env hook all see the same arming state.
class FailPoints {
 public:
  static FailPoints& instance();

  /// True when the build carries injection support (TTA_FAILPOINTS=ON,
  /// the default). When false, fail_point() is a compiled-out no-op and
  /// arming only updates the registry bookkeeping.
  static constexpr bool compiled_in() {
#if TTA_FAILPOINTS_ENABLED
    return true;
#else
    return false;
#endif
  }

  /// Arms every site in a grammar string (additive; later specs for the
  /// same site replace earlier ones). False + *error on a parse failure,
  /// in which case nothing was armed.
  bool arm(std::string_view config, std::string* error);
  void arm_site(const std::string& site, const FailSpec& spec);
  void disarm(const std::string& site);
  void disarm_all();

  /// Reads TTA_FAILPOINTS / TTA_FAILPOINTS_SEED. Called once automatically
  /// before main(); exposed for tests. Exits the process with a diagnostic
  /// on a malformed value — a chaos run with a typo must not silently
  /// become a clean run.
  void arm_from_env();

  void set_seed(std::uint64_t seed);
  std::uint64_t seed() const;

  std::uint64_t hits(const std::string& site) const;
  std::uint64_t fired(const std::string& site) const;
  std::vector<FailSiteStats> snapshot() const;
  /// "failpoint: site=<s> hits=<h> fired=<f>\n" per armed site, sorted;
  /// empty when nothing is armed. tta_verifyd appends it to the final
  /// metrics dump so chaos logs show what actually fired.
  std::string render() const;

  /// The counter-based PRNG: does hit number `hit_index` (1-based) of
  /// `site` fire under `seed` at probability `prob_ppm`? Pure — this is
  /// the whole determinism contract, pinned by util_fail_point_test.
  static bool deterministic_fire(std::uint64_t seed, std::string_view site,
                                 std::uint64_t hit_index,
                                 std::uint32_t prob_ppm);

  /// Slow path behind fail_point(); public so tests can drive evaluation
  /// directly in compiled-out builds.
  FailDecision evaluate(const char* site);

 private:
  FailPoints() = default;
  struct Impl;
  Impl& impl() const;
};

#if TTA_FAILPOINTS_ENABLED
/// Hot-path hook: one relaxed load when nothing is armed anywhere.
inline FailDecision fail_point(const char* site) {
  if (detail::g_failpoints_armed.load(std::memory_order_relaxed) == 0) {
    return FailDecision{};
  }
  return detail::fail_point_slow(site);
}
#else
/// Compiled out: the call folds to an empty decision and dead branches.
inline constexpr FailDecision fail_point(const char* /*site*/) {
  return FailDecision{};
}
#endif

}  // namespace tta::util
