// Byte-oriented CRC-32 for file formats (journals, snapshots, checkpoints).
//
// The wire layer already carries a bit-serial CRC engine (wire::Crc) for
// frame-level checksums; the persistence layer needs the same error
// detection over *byte* records at file-write speed. This is the identical
// polynomial family, computed MSB-first over whole bytes with a 256-entry
// table: CRC-32/BZIP2 (poly 0x04C11DB7, init/xorout 0xFFFFFFFF,
// non-reflected). Non-reflected is chosen deliberately so the value can be
// cross-validated bit-for-bit against wire::Crc running the same spec
// (wire::crc32_bzip2()) — util_file_journal_test.cpp pins that equivalence,
// which keeps the two CRC implementations from silently drifting apart.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tta::util {

/// Incremental CRC-32/BZIP2 over a byte stream.
class Crc32 {
 public:
  Crc32& update(const void* data, std::size_t len);
  Crc32& update_u32(std::uint32_t v);  ///< little-endian, like Fnv1a64
  Crc32& update_u64(std::uint64_t v);

  /// Final value (xorout applied; the running state is not disturbed).
  std::uint32_t value() const { return state_ ^ 0xFFFFFFFFu; }

 private:
  std::uint32_t state_ = 0xFFFFFFFFu;
};

/// One-shot CRC of a byte buffer.
std::uint32_t crc32(const void* data, std::size_t len);

inline std::uint32_t crc32(const std::vector<std::uint8_t>& bytes) {
  return crc32(bytes.data(), bytes.size());
}

}  // namespace tta::util
