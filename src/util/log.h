// Minimal leveled logger.
//
// The simulator and model checker narrate through this so examples can turn
// verbosity up while tests and benches keep it silent. Not thread-safe by
// design: all components in this library are single-threaded state machines.
#pragma once

#include <string>

namespace tta::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// test output stays clean.
void set_log_level(LogLevel level);
LogLevel log_level();

/// printf-style logging to stderr with a level tag.
void log(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

}  // namespace tta::util

#define TTA_LOG_DEBUG(...) ::tta::util::log(::tta::util::LogLevel::kDebug, __VA_ARGS__)
#define TTA_LOG_INFO(...) ::tta::util::log(::tta::util::LogLevel::kInfo, __VA_ARGS__)
#define TTA_LOG_WARN(...) ::tta::util::log(::tta::util::LogLevel::kWarn, __VA_ARGS__)
#define TTA_LOG_ERROR(...) ::tta::util::log(::tta::util::LogLevel::kError, __VA_ARGS__)
