// Fixed-width bit packing.
//
// The explicit-state model checker (src/mc) stores every reachable world
// state as a fixed-size little-endian bit string. PackedState is that
// string: a POD array of 64-bit words with equality and hashing, cheap to
// copy and to use as an unordered_map key. BitWriter/BitReader serialize
// bounded integer fields into/out of a PackedState in declaration order, so
// a model's encode() and decode() stay textually parallel and a mismatch is
// caught by the round-trip unit tests.
#pragma once

#include <array>
#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "util/check.h"

namespace tta::util {

/// Number of 64-bit words in a packed state. 256 bits comfortably holds the
/// paper's model (4–6 nodes, 2 couplers, fault budget) with room for
/// extensions; widening this is an ABI-only change.
inline constexpr std::size_t kPackedWords = 4;

/// A fixed-size bit string used as a hashable state key.
struct PackedState {
  std::array<std::uint64_t, kPackedWords> words{};

  friend bool operator==(const PackedState&, const PackedState&) = default;
  friend auto operator<=>(const PackedState&, const PackedState&) = default;

  /// Hex rendering (most-significant word first), for debugging and logs.
  std::string to_hex() const;
};

/// 64-bit mix of all words (splitmix-style avalanche per word).
std::size_t hash_value(const PackedState& s) noexcept;

/// Sequentially writes bounded unsigned fields into a PackedState.
class BitWriter {
 public:
  explicit BitWriter(PackedState& out) : out_(&out) {}

  /// Appends `bits` bits of `value`. Requires value < 2^bits and that the
  /// total stays within kPackedWords*64 bits.
  void write(std::uint64_t value, unsigned bits);

  /// Appends a boolean as one bit.
  void write_bool(bool b) { write(b ? 1u : 0u, 1); }

  unsigned bits_written() const { return pos_; }

 private:
  PackedState* out_;
  unsigned pos_ = 0;
};

/// Sequentially reads fields written by BitWriter, in the same order.
class BitReader {
 public:
  explicit BitReader(const PackedState& in) : in_(&in) {}

  std::uint64_t read(unsigned bits);
  bool read_bool() { return read(1) != 0; }

  unsigned bits_read() const { return pos_; }

 private:
  const PackedState* in_;
  unsigned pos_ = 0;
};

/// Smallest number of bits that can represent every value in [0, n].
/// bits_for(0) == 1 by convention (a field always occupies at least a bit).
constexpr unsigned bits_for(std::uint64_t n) {
  unsigned b = 1;
  while ((n >>= 1) != 0) ++b;
  return b;
}

}  // namespace tta::util

template <>
struct std::hash<tta::util::PackedState> {
  std::size_t operator()(const tta::util::PackedState& s) const noexcept {
    return tta::util::hash_value(s);
  }
};
