#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tta::util {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(std::int64_t lo, std::int64_t hi) : lo_(lo), hi_(hi) {
  TTA_CHECK(lo <= hi);
  buckets_.resize(static_cast<std::size_t>(hi - lo + 1), 0);
}

void Histogram::add(std::int64_t x) {
  if (x < lo_) {
    x = lo_;
    ++clamped_;
  } else if (x > hi_) {
    x = hi_;
    ++clamped_;
  }
  ++buckets_[static_cast<std::size_t>(x - lo_)];
  ++total_;
}

std::size_t Histogram::at(std::int64_t x) const {
  if (x < lo_ || x > hi_) return 0;
  return buckets_[static_cast<std::size_t>(x - lo_)];
}

std::int64_t Histogram::quantile(double q) const {
  TTA_CHECK(q > 0.0 && q <= 1.0);
  TTA_CHECK(total_ > 0);
  auto threshold =
      static_cast<std::size_t>(std::ceil(q * static_cast<double>(total_)));
  std::size_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= threshold) return lo_ + static_cast<std::int64_t>(i);
  }
  return hi_;
}

}  // namespace tta::util
