// Minimal POSIX TCP wrappers for the verification server (tta_verifyd)
// and its clients: loopback listen/accept/connect plus a line-oriented
// connection that matches the service's JSON-lines wire protocol
// (docs/SERVICE.md).
//
// Design constraints, in order:
//   - no third-party dependencies — raw sockets + poll(2) only;
//   - every blocking call takes an explicit timeout and retries EINTR, so
//     signal-driven shutdown (SIGTERM drain) can never wedge a thread;
//   - writes never raise SIGPIPE (MSG_NOSIGNAL); a dead peer surfaces as
//     Io::kError from write_line, which is the server's disconnect signal.
//
// Socket owns the fd (move-only, closes on destruction). LineConn layers a
// read buffer over a connected Socket and speaks newline-delimited frames:
// read_line strips the trailing '\n', write_line appends one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tta::util {

/// Move-only owner of one socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

  /// Binds and listens on 127.0.0.1:`port` (0 = kernel-assigned ephemeral
  /// port) with SO_REUSEADDR; the actually-bound port lands in
  /// *bound_port. Returns an invalid Socket and fills *error on failure.
  static Socket listen_on(std::uint16_t port, std::uint16_t* bound_port,
                          std::string* error);

  /// Accepts one connection, waiting at most `timeout_ms` (poll-based,
  /// EINTR-safe). Returns an invalid Socket on timeout or error. The two
  /// are distinguished through *accept_errno: 0 on timeout, the errno of
  /// the failed accept/poll otherwise — so a serving loop can treat
  /// EMFILE/ENFILE/ECONNABORTED as "log, back off, keep serving" instead
  /// of a reason to die. Callers that only retry may pass nullptr.
  ///
  /// Fail point `sock.accept` (action `error`) simulates descriptor
  /// exhaustion: the pending connection stays in the backlog and
  /// *accept_errno reads EMFILE.
  Socket accept_for(int timeout_ms, int* accept_errno = nullptr) const;

  /// Non-blocking accept for the event loop: called after the listener
  /// polled readable, never waits. Returns an invalid Socket with
  /// *accept_errno == 0 when nothing is pending (EAGAIN — a stale
  /// readiness edge), the failing errno otherwise. Evaluates the same
  /// `sock.accept` fail point as accept_for, with the same backlog
  /// semantics: an injected EMFILE leaves the connection queued.
  Socket try_accept(int* accept_errno) const;

  /// Switches O_NONBLOCK on or off. The event-driven server runs every
  /// accepted connection non-blocking; clients stay blocking.
  bool set_nonblocking(bool on);

  /// Connects to host:port with a bounded, EINTR-safe non-blocking
  /// connect (poll + SO_ERROR). Returns an invalid Socket and fills
  /// *error on refusal, timeout, or resolution failure.
  static Socket connect_to(const std::string& host, std::uint16_t port,
                           int timeout_ms, std::string* error);

 private:
  int fd_ = -1;
};

/// Newline-delimited framing over a connected Socket.
class LineConn {
 public:
  /// Outcome of one read_line / write_line call.
  enum class Io : std::uint8_t {
    kOk = 0,       ///< a full line moved
    kTimeout = 1,  ///< deadline expired; the connection is still usable
    kEof = 2,      ///< orderly peer close (half-close) on read
    kError = 3,    ///< connection broken / line too long / invalid socket
  };

  /// Takes ownership of `sock` and disables Nagle (TCP_NODELAY) so each
  /// response line leaves immediately.
  explicit LineConn(Socket sock);

  bool valid() const { return sock_.valid(); }

  /// The underlying fd for readiness registration (util::EventLoop); -1
  /// once the connection broke. Event-loop callers cache it at accept
  /// time, since an injected reset closes the socket out from under them.
  int fd() const { return sock_.fd(); }

  /// Reads one '\n'-terminated line (terminator stripped) into *line,
  /// waiting at most `timeout_ms` total across however many reads it
  /// takes. A partial line followed by peer close is reported as kEof and
  /// discarded — the wire protocol is strictly line-framed. Lines longer
  /// than kMaxLineBytes break the connection (kError).
  ///
  /// Fail points: `sock.recv` (`error` = injected reset, sticky;
  /// `short-io(n)` = at most n bytes per recv, clamped to >= 1 so a
  /// partial read can never masquerade as EOF) and `sock.recv.eintr`
  /// (one wasted poll/recv cycle, as if a signal landed).
  Io read_line(std::string* line, int timeout_ms);

  /// Writes `line` plus a trailing '\n', looping over partial writes,
  /// waiting at most `timeout_ms` total for the socket to drain. Never
  /// raises SIGPIPE; a closed peer is kError, as is a socket that reports
  /// writable but accepts zero bytes kMaxZeroByteWrites times in a row.
  ///
  /// Fail points: `sock.send` (`error` = injected peer reset, sticky;
  /// `short-io(n)` = at most n bytes per send, n=0 exercising the
  /// zero-byte bound) and `sock.send.eintr` (one wasted poll/send cycle).
  Io write_line(const std::string& line, int timeout_ms);

  /// Half-close: shuts down the write side so the peer reads EOF after
  /// the last line, while responses can still flow back. This is how the
  /// client says "no more requests" without abandoning pending results.
  void shutdown_write();

  // ---- Non-blocking surface (svc::Server's event loop) -----------------
  //
  // The socket must be in non-blocking mode (Socket::set_nonblocking);
  // the blocking read_line/write_line above remain for clients and share
  // the same buffers, fail points, and line-length bound.

  /// One recv() into the read buffer. kOk = bytes arrived (take_line may
  /// now yield lines); kTimeout = nothing available (EAGAIN, or an
  /// injected EINTR cycle) — poll again; kEof = orderly peer close, any
  /// partial tail is dropped; kError = connection broken or a buffered
  /// partial line exceeded kMaxLineBytes. Evaluates the `sock.recv` /
  /// `sock.recv.eintr` fail points exactly like read_line.
  Io fill();

  /// Pops one complete buffered line (terminator stripped) into *line.
  /// False when no full line is buffered — fill() more first.
  bool take_line(std::string* line);

  /// Appends `line` plus '\n' to the outbound buffer. Never blocks, never
  /// fails; flush_some() moves the bytes when the socket can take them.
  void queue_line(const std::string& line);

  /// Unsent outbound bytes (0 = nothing owed; stop watching POLLOUT).
  std::size_t outbound() const { return out_.size(); }

  /// Pushes buffered outbound bytes into the socket. kOk = buffer fully
  /// drained; kTimeout = the socket stopped taking bytes (EAGAIN or an
  /// injected EINTR cycle) — watch POLLOUT and retry; kError = broken
  /// (injected reset, dead peer, or the zero-byte-write bound, counted
  /// across calls and reset on progress). Evaluates the `sock.send` /
  /// `sock.send.eintr` fail points exactly like write_line.
  Io flush_some();

  /// Defensive bound on one wire line (requests are < 1 KiB in practice;
  /// response lines with long traces stay well under 1 MiB).
  static constexpr std::size_t kMaxLineBytes = 1u << 20;

  /// Consecutive zero-byte send() results tolerated before write_line
  /// gives up with kError. A writable socket that accepts nothing is not
  /// making progress; without this bound an adversarial (or injected)
  /// zero-length send would spin hot against the deadline.
  static constexpr int kMaxZeroByteWrites = 64;

 private:
  Socket sock_;
  std::string buffer_;  ///< bytes read past the last returned line
  std::string out_;     ///< outbound bytes queued by queue_line
  int zero_writes_ = 0;  ///< consecutive zero-byte sends across flush_some
};

}  // namespace tta::util
