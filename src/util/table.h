// Plain-text table rendering.
//
// Every bench binary reprints one of the paper's tables/figures as aligned
// text rows; Table centralizes the column sizing so all outputs look alike
// and EXPERIMENTS.md can paste them verbatim.
#pragma once

#include <string>
#include <vector>

namespace tta::util {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule, columns padded to the widest cell.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

  /// Formats a double with `digits` significant decimals, trimming trailing
  /// zeros ("1.500" -> "1.5", "2.000" -> "2").
  static std::string num(double v, int digits = 4);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tta::util
