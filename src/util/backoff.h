// Deterministic exponential backoff schedule.
//
// Used by the verification service's retry path: a job whose soft deadline
// fired is re-admitted only after a growing delay, so a batch that hit a
// transient stall (machine load, an over-tight deadline) does not hammer
// the engines in a tight loop. The schedule is a pure function of the
// attempt number — no RNG, no clock — so tests can pin it exactly and two
// runs of the same batch back off identically.
#pragma once

#include <algorithm>
#include <cstdint>

namespace tta::util {

struct BackoffPolicy {
  std::uint32_t initial_delay_ms = 10;
  double multiplier = 2.0;
  std::uint32_t max_delay_ms = 2'000;

  /// Delay before retry number `retry` (1-based: the delay between the
  /// first failure and the second attempt is delay_ms(1)). Grows
  /// geometrically from initial_delay_ms and saturates at max_delay_ms.
  ///
  /// Misconfigured policies are clamped rather than looped on:
  /// multiplier <= 1 degenerates to a constant schedule (answered in O(1),
  /// not after `retry` no-progress iterations), an initial delay above the
  /// saturation bound is capped at max_delay_ms, and a zero initial delay
  /// stays zero at every retry (zero never grows).
  std::uint32_t delay_ms(unsigned retry) const {
    if (retry == 0) return 0;
    const double cap = static_cast<double>(max_delay_ms);
    double d = std::min(static_cast<double>(initial_delay_ms), cap);
    if (d <= 0.0 || multiplier <= 1.0) {
      return static_cast<std::uint32_t>(d);
    }
    for (unsigned i = 1; i < retry; ++i) {
      d *= multiplier;
      if (d >= cap) break;  // saturated; further rounds change nothing
    }
    return static_cast<std::uint32_t>(std::min(d, cap));
  }
};

}  // namespace tta::util
