// Append-only journal of checksummed byte records, with crash-tolerant
// recovery.
//
// This is the storage primitive under svc::PersistentCache (and usable for
// any write-ahead log): a file holding a sequence of framed records
//
//   [u32 payload_length][u32 crc32(payload)][payload bytes]
//
// appended strictly at the tail. The writer flushes every record to the
// OS (fflush) so the data survives a SIGKILL of the process; fsync is
// explicit (sync()) and reserved for points where surviving an OS crash
// matters — snapshot publication, shutdown.
//
// Recovery (scan_journal) is the fault-tolerant half of the contract: the
// scan walks the file record by record and *stops* at the first frame that
// is truncated (fewer bytes than the header promises) or corrupt (CRC
// mismatch, absurd length). Everything before that point is delivered to
// the caller; everything from it onward is quarantined — counted, reported,
// and truncated away when a writer reopens the file — never a crash, never
// an abort. A torn final write, the expected failure mode of a killed
// process, therefore costs exactly the record that was in flight.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace tta::util {

/// Outcome of scanning a journal file for valid records.
struct JournalScan {
  std::uint64_t valid_bytes = 0;   ///< length of the intact record prefix
  std::uint64_t records = 0;       ///< records recovered from the prefix
  std::uint64_t corrupt_records = 0;   ///< 1 if the scan hit a CRC mismatch
  std::uint64_t truncated_records = 0; ///< 1 if the tail frame was torn
  std::uint64_t quarantined_bytes = 0; ///< bytes past the valid prefix
  bool file_missing = false;       ///< no file at all (fresh start, not damage)

  bool damaged() const { return corrupt_records + truncated_records > 0; }
};

/// Reads `path` record by record, invoking `fn(payload, length)` for every
/// intact record, and stops at the first truncated or corrupt frame. Never
/// throws and never aborts on damage — the damage is described in the
/// returned JournalScan instead.
JournalScan scan_journal(
    const std::string& path,
    const std::function<void(const std::uint8_t*, std::size_t)>& fn);

/// Appends framed records to a journal file. Not thread-safe; callers
/// (svc::PersistentCache) serialize access externally.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter() { close(); }

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Opens `path` for appending after truncating it to `keep_bytes` —
  /// normally JournalScan::valid_bytes, so a quarantined tail is physically
  /// removed before new records can land after it. Creates the file if
  /// missing. Returns false on I/O failure.
  bool open(const std::string& path, std::uint64_t keep_bytes);

  /// Opens `path` truncated to empty (snapshot writing, tests).
  bool open_fresh(const std::string& path) { return open(path, 0); }

  /// Frames, checksums, writes, and flushes one record. Returns false on
  /// I/O failure (short write, ENOSPC) — never aborts. A failed write
  /// quarantines its own tail immediately: the file is truncated back to
  /// the last record boundary, so the journal stays valid and further
  /// appends can land once the condition clears. Failures are counted in
  /// io_errors().
  ///
  /// Fail points: `journal.append.enospc` (action `error`) simulates the
  /// write failing with nothing durable; `journal.append.torn` (action
  /// `short-io(n)`) simulates a crash mid-write — n bytes of the frame
  /// land on disk and the writer closes, leaving the torn tail for the
  /// next recovery scan exactly as a real SIGKILL would.
  bool append(const void* payload, std::size_t len);
  bool append(const std::vector<std::uint8_t>& payload) {
    return append(payload.data(), payload.size());
  }

  /// fsync to stable storage. Use at publication points (snapshot rename,
  /// shutdown); per-record durability against process death needs only the
  /// fflush append() already does.
  bool sync();

  void close();

  bool is_open() const { return file_ != nullptr; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  /// Appends and syncs that failed over this writer's lifetime.
  std::uint64_t io_errors() const { return io_errors_; }

 private:
  /// Truncates the file back to the last record boundary after a failed
  /// write, so the failed frame's partial bytes cannot masquerade as a
  /// quarantinable tail later — the failure is fully handled now.
  void heal_tail();

  std::FILE* file_ = nullptr;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t io_errors_ = 0;
};

}  // namespace tta::util
