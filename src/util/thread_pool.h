// Persistent worker-thread pool with a fork-join task API.
//
// Shared by the parallel model checker (src/mc/parallel_checker.h), which
// dispatches one task per frontier chunk at every BFS level, and by the
// statistical campaign benches, which run independent seeded simulation
// cells concurrently. Determinism is preserved by construction: tasks are
// identified by index and write only to index-addressed output slots, so
// results are identical to a sequential loop regardless of scheduling.
//
// A pool of size N consists of N-1 background workers plus the calling
// thread, which participates in every run_tasks() call; a pool of size 1
// therefore executes tasks inline with zero thread traffic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tta::util {

class ThreadPool {
 public:
  /// `num_threads` == 0 picks hardware_threads().
  explicit ThreadPool(unsigned num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total executors (background workers + the calling thread).
  unsigned size() const { return static_cast<unsigned>(workers_.size()) + 1; }

  /// Runs fn(0), fn(1), ..., fn(num_tasks - 1), each exactly once, and
  /// blocks until all have finished. Tasks may execute on any executor,
  /// including the calling thread. The first exception thrown by a task is
  /// rethrown here after the join. Not reentrant: tasks must not call back
  /// into the pool.
  void run_tasks(std::size_t num_tasks,
                 const std::function<void(std::size_t)>& fn);

  /// Splits [0, n) into at most size() contiguous chunks and runs
  /// fn(chunk_index, begin, end) for each via run_tasks(). Chunk boundaries
  /// depend only on n and size(), never on scheduling.
  void parallel_for(
      std::size_t n,
      const std::function<void(unsigned chunk, std::size_t begin,
                               std::size_t end)>& fn);

  /// max(1, std::thread::hardware_concurrency()).
  static unsigned hardware_threads();

 private:
  void worker_loop();
  void run_one(std::size_t index);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signaled when a job is posted
  std::condition_variable done_cv_;  ///< signaled when the last task ends
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_tasks_ = 0;   ///< total tasks in the current job
  std::size_t next_task_ = 0;   ///< next unclaimed task index
  std::size_t in_flight_ = 0;   ///< claimed but unfinished tasks
  std::exception_ptr first_error_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tta::util
