#include "util/digest.h"

#include <cstdio>

namespace tta::util {

Fnv1a64& Fnv1a64::update(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  std::uint64_t h = state_;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  state_ = h;
  return *this;
}

Fnv1a64& Fnv1a64::update_u32(std::uint32_t v) {
  std::uint8_t le[4];
  for (int i = 0; i < 4; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return update(le, sizeof le);
}

Fnv1a64& Fnv1a64::update_u64(std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return update(le, sizeof le);
}

std::uint64_t fnv1a64(const void* data, std::size_t len) {
  return Fnv1a64().update(data, len).digest();
}

std::string digest_hex(std::uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(digest));
  return buf;
}

}  // namespace tta::util
