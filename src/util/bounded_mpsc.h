// Bounded multi-producer / single-consumer queue, the delivery primitive
// under svc::ResultStream.
//
// Deliberately a mutex + condvar queue, not a lock-free ring: items are
// whole JobResults (traces included), so the copy dominates any lock cost,
// and the consumer-side API needs deadline waits, which condvars give for
// free. The queue closes exactly once; after close() producers fail fast
// and the consumer drains whatever is buffered before seeing end-of-stream
// (pop returning nullopt on a closed, empty queue).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tta::util {

template <class T>
class BoundedMpscQueue {
 public:
  explicit BoundedMpscQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Blocks while the queue is full; false once the queue is closed (the
  /// item is dropped — there is no consumer left that could see it).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking pop; nullopt when nothing is buffered (closed or not).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    return take_locked();
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take_locked();
  }

  /// Blocks up to `timeout`; nullopt on timeout or end-of-stream (use
  /// exhausted() to tell the two apart).
  std::optional<T> pop_for(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    return take_locked();
  }

  /// Idempotent. Wakes every blocked producer (they fail) and the consumer
  /// (it drains the buffer, then sees end-of-stream).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Closed and fully drained: no item will ever be produced again.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tta::util
