// Bounded multi-producer / single-consumer queue, the delivery primitive
// under svc::ResultStream.
//
// Deliberately a mutex + condvar queue, not a lock-free ring: items are
// whole JobResults (traces included), so the copy dominates any lock cost,
// and the consumer-side API needs deadline waits, which condvars give for
// free. The queue closes exactly once; after close() producers fail fast
// and the consumer drains whatever is buffered before seeing end-of-stream
// (pop returning nullopt on a closed, empty queue).
//
// Two producer flavors exist because the callers have two kinds of items:
// try_push/push respect the capacity bound (flow control), while
// push_overflow enqueues past it — for items that must never be dropped
// (a concluded verdict) — and reports the overflow so the caller can
// account for it instead of losing the item silently.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "util/check.h"

namespace tta::util {

/// Outcome of a deadline-bounded pop, disambiguated atomically with the
/// pop itself (a separate exhausted() probe would race a concurrent push).
enum class PopStatus : std::uint8_t {
  kItem = 0,     ///< an item was dequeued into *out
  kTimeout = 1,  ///< deadline passed; the queue is open and may still fill
  kEnded = 2,    ///< closed and fully drained; nothing will ever arrive
};

/// Outcome of a push_overflow (capacity-ignoring) producer call.
enum class PushStatus : std::uint8_t {
  kOk = 0,        ///< enqueued within capacity
  kOverflow = 1,  ///< enqueued, but the queue was already at capacity
  kClosed = 2,    ///< dropped: the queue is closed, no consumer remains
};

template <class T>
class BoundedMpscQueue {
 public:
  /// Precondition: capacity > 0. A zero-capacity queue could never deliver
  /// anything, so silently rewriting it to 1 (as earlier revisions did)
  /// only hid a caller bug.
  explicit BoundedMpscQueue(std::size_t capacity) : capacity_(capacity) {
    TTA_CHECK(capacity > 0);
  }

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// Blocks while the queue is full; false once the queue is closed (the
  /// item is dropped — there is no consumer left that could see it).
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push; false when full or closed.
  bool try_push(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Never-lose producer: enqueues even when the queue is at capacity
  /// (reporting kOverflow so the caller can count the excursion) and fails
  /// only once the queue is closed. For items whose loss would be silent
  /// data loss — the capacity bound is flow control, not a license to
  /// drop.
  PushStatus push_overflow(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return PushStatus::kClosed;
    const bool over = items_.size() >= capacity_;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return over ? PushStatus::kOverflow : PushStatus::kOk;
  }

  /// Non-blocking pop; nullopt when nothing is buffered (closed or not).
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    return take_locked();
  }

  /// Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    return take_locked();
  }

  /// Blocks up to `timeout`. The returned status is decided under the same
  /// lock as the pop, so kTimeout vs kEnded is authoritative — no separate
  /// exhausted() check (which could race a concurrent push) is needed.
  PopStatus pop_for(std::chrono::milliseconds timeout, T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait_for(lock, timeout,
                        [&] { return closed_ || !items_.empty(); });
    if (!items_.empty()) {
      *out = std::move(items_.front());
      items_.pop_front();
      not_full_.notify_one();
      return PopStatus::kItem;
    }
    return closed_ ? PopStatus::kEnded : PopStatus::kTimeout;
  }

  /// Idempotent. Wakes every blocked producer (they fail) and the consumer
  /// (it drains the buffer, then sees end-of-stream).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  /// Closed and fully drained: no item will ever be produced again.
  bool exhausted() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_ && items_.empty();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  std::optional<T> take_locked() {
    if (items_.empty()) return std::nullopt;
    std::optional<T> item(std::move(items_.front()));
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace tta::util
