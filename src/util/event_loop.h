// Readiness multiplexer for the event-driven server: one poll(2) loop
// watching many fds from a single thread, replacing thread-per-connection
// serving (tools/tta_verifyd via svc::Server).
//
// Deliberately minimal — level-triggered poll(2) only, no epoll, no timer
// wheel, no callbacks stored inside the loop. The caller owns the fds and
// their lifecycles; the loop only answers "which of these are ready". That
// keeps it portable (poll is POSIX), allocation-free per round after the
// first, and trivially safe against the classic epoll lifetime bugs: an
// unwatch()ed fd can be closed immediately because the loop never retains
// it past the poll_once() that reported it.
//
// Interest updates during dispatch are legal: a handler may watch() new
// fds (an accept handler registering the accepted connection) or unwatch()
// any fd, including ones with undelivered events this round — the loop
// re-checks registration before every dispatch, so events for a dropped fd
// are discarded, never delivered stale.
#pragma once

#include <cstddef>
#include <functional>
#include <unordered_map>
#include <vector>

struct pollfd;

namespace tta::util {

class EventLoop {
 public:
  /// One ready fd, as reported by a poll_once() round.
  struct Event {
    int fd = -1;
    bool readable = false;  ///< POLLIN: read/accept will not block
    bool writable = false;  ///< POLLOUT: send will accept bytes
    /// POLLERR / POLLHUP / POLLNVAL: the fd needs attention regardless of
    /// the requested interest (a hung-up peer is reported even when only
    /// writes were watched). Readable is also set so a draining reader
    /// naturally observes the pending EOF/error via recv.
    bool broken = false;
  };

  using Handler = std::function<void(const Event&)>;

  /// Registers `fd` or updates its interest set. Watching with both flags
  /// false keeps the fd registered but dormant — the accept-backoff window
  /// uses this to mute the listener without forgetting it.
  void watch(int fd, bool read, bool write);

  /// Drops `fd` from the loop. Safe during dispatch (see header comment)
  /// and on fds that were never watched.
  void unwatch(int fd);

  bool watching(int fd) const { return interest_.count(fd) != 0; }
  std::size_t size() const { return interest_.size(); }

  /// One poll(2) round: waits at most `timeout_ms` for readiness, then
  /// invokes `handler` once per ready fd. Returns the number of events
  /// dispatched; 0 on timeout AND on EINTR (so a signal-driven stop flag
  /// is re-checked at the top of the caller's loop, never wedged); -1 on a
  /// poll failure other than EINTR.
  int poll_once(int timeout_ms, const Handler& handler);

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  std::unordered_map<int, Interest> interest_;
  std::vector<struct ::pollfd> scratch_;  ///< rebuilt each round, capacity kept
};

}  // namespace tta::util
