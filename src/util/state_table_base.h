// Pieces shared by the visited-state table backends (the flat
// ConcurrentStateTable and the quotienting CompactStateTable): the bounded
// spin-wait used while another thread is mid-publication on a slot, and the
// probe-length statistics surface both backends export so the bench memory
// panel can price compression against probe behavior.
#pragma once

#include <array>
#include <cstdint>
#include <thread>

#include "util/check.h"

namespace tta::util {

/// One CPU-relax hint: cheaper than a thread yield and exactly right while
/// waiting out another core's handful of publication stores.
inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::this_thread::yield();
#endif
}

/// Bounded waiter for a slot stuck in its "writing" window. A writer
/// publishes in a handful of stores, so the fast path is a few pause
/// instructions; a longer wait escalates to yield() so an oversubscribed
/// writer thread can be scheduled; a pathological wait means the writer is
/// wedged (or its thread died mid-publication) and aborting loudly beats
/// livelocking the whole search.
class SpinWaiter {
 public:
  void wait() {
    ++spins_;
    if (spins_ <= kPauseSpins) {
      cpu_relax();
      return;
    }
    TTA_CHECK(spins_ < kAbortSpins);  // wedged writer: surface, don't livelock
    std::this_thread::yield();
  }

 private:
  static constexpr std::uint64_t kPauseSpins = 64;
  static constexpr std::uint64_t kAbortSpins = std::uint64_t{1} << 26;
  std::uint64_t spins_ = 0;
};

/// Probe-length distribution of the occupied slots of an open-addressed
/// table, computed by a full scan at a synchronization point. hist[d]
/// counts entries at linear-probe distance d from their home bucket; the
/// last bin aggregates every distance >= hist.size() - 1.
struct TableProbeStats {
  std::array<std::uint64_t, 8> hist{};
  std::uint64_t entries = 0;
  std::uint64_t max_probe = 0;
  double avg_probe = 0.0;

  void record(std::uint64_t distance) {
    ++hist[distance < hist.size() - 1 ? distance : hist.size() - 1];
    ++entries;
    if (distance > max_probe) max_probe = distance;
    sum_ += distance;
  }
  void finalize() {
    avg_probe = entries ? static_cast<double>(sum_) /
                              static_cast<double>(entries)
                        : 0.0;
  }

 private:
  std::uint64_t sum_ = 0;
};

}  // namespace tta::util
