// Streaming descriptive statistics.
//
// Benches and the fault-injection harness aggregate per-run metrics
// (startup rounds, frozen-node counts, buffer occupancies). Accumulator is a
// Welford-style online aggregator; Histogram buckets integer samples for
// percentile-style reporting without storing every sample.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace tta::util {

/// Online mean/variance/min/max over double samples (Welford's algorithm:
/// numerically stable, O(1) memory).
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact integer histogram over a closed range [lo, hi]; samples outside the
/// range are clamped into the edge buckets and counted as clamped.
class Histogram {
 public:
  Histogram(std::int64_t lo, std::int64_t hi);

  void add(std::int64_t x);

  std::size_t count() const { return total_; }
  std::size_t clamped() const { return clamped_; }
  std::size_t at(std::int64_t x) const;

  /// Smallest value v such that at least `q` (0..1] of the samples are <= v.
  std::int64_t quantile(double q) const;

  std::int64_t lo() const { return lo_; }
  std::int64_t hi() const { return hi_; }

 private:
  std::int64_t lo_;
  std::int64_t hi_;
  std::vector<std::size_t> buckets_;
  std::size_t total_ = 0;
  std::size_t clamped_ = 0;
};

}  // namespace tta::util
