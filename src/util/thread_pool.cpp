#include "util/thread_pool.h"

#include <algorithm>

namespace tta::util {

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned num_threads) {
  unsigned n = num_threads == 0 ? hardware_threads() : num_threads;
  workers_.reserve(n - 1);
  for (unsigned i = 0; i + 1 < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_one(std::size_t index) {
  try {
    (*job_)(index);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] {
      return stop_ || (job_ != nullptr && next_task_ < job_tasks_);
    });
    if (stop_) return;
    std::size_t index = next_task_++;
    ++in_flight_;
    lock.unlock();
    run_one(index);
    lock.lock();
    --in_flight_;
    if (next_task_ >= job_tasks_ && in_flight_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::run_tasks(std::size_t num_tasks,
                           const std::function<void(std::size_t)>& fn) {
  if (num_tasks == 0) return;
  if (workers_.empty() || num_tasks == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(i);
    return;
  }

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_tasks_ = num_tasks;
  next_task_ = 0;
  first_error_ = nullptr;
  work_cv_.notify_all();

  // The calling thread claims tasks alongside the workers.
  while (next_task_ < job_tasks_) {
    std::size_t index = next_task_++;
    ++in_flight_;
    lock.unlock();
    run_one(index);
    lock.lock();
    --in_flight_;
  }
  done_cv_.wait(lock, [this] { return in_flight_ == 0; });
  job_ = nullptr;

  if (first_error_) {
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(err);
  }
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(unsigned chunk, std::size_t begin,
                                            std::size_t end)>& fn) {
  if (n == 0) return;
  std::size_t chunks = std::min<std::size_t>(size(), n);
  run_tasks(chunks, [&](std::size_t c) {
    std::size_t begin = n * c / chunks;
    std::size_t end = n * (c + 1) / chunks;
    fn(static_cast<unsigned>(c), begin, end);
  });
}

}  // namespace tta::util
