// Exact rational arithmetic.
//
// The paper's Section 6 analysis relates clock *ratios* (eq. 10) and relative
// rate differences rho (eq. 2) to integer bit budgets. The bit-clock
// forwarding substrate (guardian::BitstreamForwarder) advances node and
// guardian clocks whose rates are exact rationals, so that "guardian is
// 100 ppm fast" means exactly 1000100/1000000 — no floating-point drift can
// smear the measured minimum buffer occupancy that we compare against
// eq. (1).
#pragma once

#include <compare>
#include <cstdint>
#include <numeric>
#include <string>

#include "util/check.h"

namespace tta::util {

/// A normalized rational p/q with q > 0, gcd(p, q) == 1.
class Rational {
 public:
  constexpr Rational() = default;
  constexpr Rational(std::int64_t numerator, std::int64_t denominator = 1)
      : p_(numerator), q_(denominator) {
    normalize();
  }

  constexpr std::int64_t num() const { return p_; }
  constexpr std::int64_t den() const { return q_; }

  constexpr Rational operator+(const Rational& o) const {
    return make_checked(static_cast<__int128>(p_) * o.q_ +
                            static_cast<__int128>(o.p_) * q_,
                        static_cast<__int128>(q_) * o.q_);
  }
  constexpr Rational operator-(const Rational& o) const {
    return make_checked(static_cast<__int128>(p_) * o.q_ -
                            static_cast<__int128>(o.p_) * q_,
                        static_cast<__int128>(q_) * o.q_);
  }
  constexpr Rational operator*(const Rational& o) const {
    return make_checked(static_cast<__int128>(p_) * o.p_,
                        static_cast<__int128>(q_) * o.q_);
  }
  constexpr Rational operator/(const Rational& o) const {
    TTA_CHECK(o.p_ != 0);
    return make_checked(static_cast<__int128>(p_) * o.q_,
                        static_cast<__int128>(q_) * o.p_);
  }
  constexpr Rational operator-() const { return Rational(-p_, q_); }

  friend constexpr bool operator==(const Rational& a, const Rational& b) {
    return a.p_ == b.p_ && a.q_ == b.q_;
  }
  friend constexpr std::strong_ordering operator<=>(const Rational& a,
                                                    const Rational& b) {
    __int128 lhs = static_cast<__int128>(a.p_) * b.q_;
    __int128 rhs = static_cast<__int128>(b.p_) * a.q_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  constexpr double to_double() const {
    return static_cast<double>(p_) / static_cast<double>(q_);
  }

  /// Largest integer <= p/q.
  constexpr std::int64_t floor() const {
    std::int64_t d = p_ / q_;
    if (p_ % q_ != 0 && p_ < 0) --d;
    return d;
  }
  /// Smallest integer >= p/q.
  constexpr std::int64_t ceil() const {
    std::int64_t d = p_ / q_;
    if (p_ % q_ != 0 && p_ > 0) ++d;
    return d;
  }

  /// Parts-per-million constructor: ppm(100) == 100/1'000'000.
  static constexpr Rational ppm(std::int64_t parts) {
    return Rational(parts, 1'000'000);
  }

  std::string to_string() const {
    return std::to_string(p_) + "/" + std::to_string(q_);
  }

 private:
  static constexpr Rational make_checked(__int128 p, __int128 q) {
    // Reduce in 128 bits first so intermediate products that fit after
    // normalization do not falsely overflow.
    TTA_CHECK(q != 0);
    if (q < 0) {
      p = -p;
      q = -q;
    }
    __int128 a = p < 0 ? -p : p;
    __int128 b = q;
    while (b != 0) {
      __int128 t = a % b;
      a = b;
      b = t;
    }
    if (a > 1) {
      p /= a;
      q /= a;
    }
    TTA_CHECK(p <= INT64_MAX && p >= INT64_MIN && q <= INT64_MAX);
    Rational r;
    r.p_ = static_cast<std::int64_t>(p);
    r.q_ = static_cast<std::int64_t>(q);
    return r;
  }

  constexpr void normalize() {
    TTA_CHECK(q_ != 0);
    if (q_ < 0) {
      p_ = -p_;
      q_ = -q_;
    }
    std::int64_t g = std::gcd(p_ < 0 ? -p_ : p_, q_);
    if (g > 1) {
      p_ /= g;
      q_ /= g;
    }
  }

  std::int64_t p_ = 0;
  std::int64_t q_ = 1;
};

}  // namespace tta::util
