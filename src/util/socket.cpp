#include "util/socket.h"

#include <algorithm>

#include <arpa/inet.h>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fail_point.h"

namespace tta::util {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left until `deadline`, clamped to >= 0. A negative
/// `timeout_ms` at the call site means "wait forever", which callers here
/// never use — the protocol requires bounded waits.
int remaining_ms(Clock::time_point deadline) {
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 3'600'000) return 3'600'000;
  return static_cast<int>(left.count());
}

/// poll(2) for `events` on `fd`, retrying EINTR against the same deadline.
/// Returns >0 when ready, 0 on timeout, -1 on error.
int poll_until(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, remaining_ms(deadline));
    if (rc >= 0) return rc;
    if (errno != EINTR) return -1;
    if (Clock::now() >= deadline) return 0;
  }
}

void fill_error(std::string* error, const char* what) {
  if (error) *error = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    int rc;
    do {
      rc = ::close(fd_);
    } while (rc < 0 && errno == EINTR);
    fd_ = -1;
  }
}

Socket Socket::listen_on(std::uint16_t port, std::uint16_t* bound_port,
                         std::string* error) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) {
    fill_error(error, "socket");
    return Socket();
  }
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) < 0) {
    fill_error(error, "bind");
    return Socket();
  }
  if (::listen(sock.fd(), 64) < 0) {
    fill_error(error, "listen");
    return Socket();
  }
  if (bound_port) {
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound),
                      &len) < 0) {
      fill_error(error, "getsockname");
      return Socket();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return sock;
}

Socket Socket::accept_for(int timeout_ms, int* accept_errno) const {
  if (accept_errno) *accept_errno = 0;
  if (!valid()) {
    if (accept_errno) *accept_errno = EBADF;
    return Socket();
  }
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  const int ready = poll_until(fd_, POLLIN, deadline);
  if (ready == 0) return Socket();  // timeout: *accept_errno stays 0
  if (ready < 0) {
    if (accept_errno) *accept_errno = errno;
    return Socket();
  }
  int err = 0;
  Socket accepted = try_accept(&err);
  if (accept_errno) *accept_errno = err == EAGAIN ? 0 : err;
  return accepted;
}

Socket Socket::try_accept(int* accept_errno) const {
  if (accept_errno) *accept_errno = 0;
  if (!valid()) {
    if (accept_errno) *accept_errno = EBADF;
    return Socket();
  }
  if (fail_point("sock.accept").error()) {
    // Injected descriptor exhaustion: the connection stays queued in the
    // listen backlog, so a later accept (after the caller backs off)
    // still picks it up — exactly the real EMFILE shape.
    if (accept_errno) *accept_errno = EMFILE;
    return Socket();
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (accept_errno) {
      // EAGAIN / EWOULDBLOCK = backlog empty, the contract's "0": a stale
      // readiness edge, not an error to count or back off from.
      *accept_errno = errno == EAGAIN || errno == EWOULDBLOCK ? 0 : errno;
    }
    return Socket();
  }
}

bool Socket::set_nonblocking(bool on) {
  if (!valid()) return false;
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  const int wanted = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd_, F_SETFL, wanted) >= 0;
}

Socket Socket::connect_to(const std::string& host, std::uint16_t port,
                          int timeout_ms, std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error) *error = "unresolvable host \"" + host + "\" (dotted quad only)";
    return Socket();
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK, 0));
  if (!sock.valid()) {
    fill_error(error, "socket");
    return Socket();
  }

  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  int rc;
  do {
    rc = ::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      fill_error(error, "connect");
      return Socket();
    }
    if (poll_until(sock.fd(), POLLOUT, deadline) <= 0) {
      if (error) *error = "connect: timed out";
      return Socket();
    }
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &so_error, &len) < 0 ||
        so_error != 0) {
      if (error) {
        *error = std::string("connect: ") +
                 std::strerror(so_error != 0 ? so_error : errno);
      }
      return Socket();
    }
  }

  // Back to blocking mode; all further waits are poll-bounded anyway.
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags >= 0) ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
  return sock;
}

LineConn::LineConn(Socket sock) : sock_(std::move(sock)) {
  if (sock_.valid()) {
    const int one = 1;
    ::setsockopt(sock_.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  }
}

LineConn::Io LineConn::read_line(std::string* line, int timeout_ms) {
  if (!sock_.valid()) return Io::kError;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return Io::kOk;
    }
    if (buffer_.size() > kMaxLineBytes) {
      sock_.close();
      return Io::kError;
    }

    const int ready = poll_until(sock_.fd(), POLLIN, deadline);
    if (ready == 0) return Io::kTimeout;
    if (ready < 0) return Io::kError;

    if (fail_point("sock.recv.eintr").fired()) {
      // Injected signal between poll and recv: one wasted cycle. The
      // deadline still bounds the loop, so an always-armed site degrades
      // to kTimeout, never a hang.
      if (Clock::now() >= deadline) return Io::kTimeout;
      continue;
    }
    const FailDecision fp = fail_point("sock.recv");
    if (fp.error()) {
      sock_.close();  // injected reset is sticky, like the real thing
      return Io::kError;
    }
    char chunk[4096];
    std::size_t want = sizeof chunk;
    if (fp.short_io()) {
      // Clamp to >= 1: a zero-byte recv result means EOF on the wire, and
      // an injected partial read must never counterfeit a peer close.
      want = static_cast<std::size_t>(std::clamp<std::uint64_t>(
          fp.arg, 1, sizeof chunk));
    }
    ssize_t n;
    do {
      n = ::recv(sock_.fd(), chunk, want, 0);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return Io::kError;
    if (n == 0) return Io::kEof;  // any partial tail in buffer_ is dropped
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

LineConn::Io LineConn::write_line(const std::string& line, int timeout_ms) {
  if (!sock_.valid()) return Io::kError;
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  int zero_writes = 0;
  while (off < framed.size()) {
    const int ready = poll_until(sock_.fd(), POLLOUT, deadline);
    if (ready == 0) return Io::kTimeout;
    if (ready < 0) return Io::kError;

    if (fail_point("sock.send.eintr").fired()) {
      if (Clock::now() >= deadline) return Io::kTimeout;
      continue;
    }
    const FailDecision fp = fail_point("sock.send");
    if (fp.error()) {
      sock_.close();  // injected reset is sticky, like the real thing
      return Io::kError;
    }
    std::size_t want = framed.size() - off;
    if (fp.short_io()) {
      want = static_cast<std::size_t>(std::min<std::uint64_t>(want, fp.arg));
    }

    ssize_t n;
    do {
      n = ::send(sock_.fd(), framed.data() + off, want, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Io::kError;
    }
    if (n == 0) {
      // Zero bytes from a "writable" socket makes no progress; bound the
      // retries so this can never spin hot until the deadline.
      if (++zero_writes >= kMaxZeroByteWrites) return Io::kError;
      continue;
    }
    zero_writes = 0;
    off += static_cast<std::size_t>(n);
  }
  return Io::kOk;
}

void LineConn::shutdown_write() {
  if (sock_.valid()) ::shutdown(sock_.fd(), SHUT_WR);
}

LineConn::Io LineConn::fill() {
  if (!sock_.valid()) return Io::kError;
  if (buffer_.size() > kMaxLineBytes && buffer_.find('\n') == std::string::npos) {
    sock_.close();  // unbounded partial line: same defense as read_line
    return Io::kError;
  }
  if (fail_point("sock.recv.eintr").fired()) {
    // Injected signal between poll and recv: one wasted cycle. The event
    // loop's next readiness round retries, so an always-armed site
    // degrades to busy-polling, never a hang.
    return Io::kTimeout;
  }
  const FailDecision fp = fail_point("sock.recv");
  if (fp.error()) {
    sock_.close();  // injected reset is sticky, like the real thing
    return Io::kError;
  }
  char chunk[4096];
  std::size_t want = sizeof chunk;
  if (fp.short_io()) {
    // Clamp to >= 1: a zero-byte recv result means EOF on the wire, and
    // an injected partial read must never counterfeit a peer close.
    want = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(fp.arg, 1, sizeof chunk));
  }
  ssize_t n;
  do {
    n = ::recv(sock_.fd(), chunk, want, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Io::kTimeout;
    return Io::kError;
  }
  if (n == 0) return Io::kEof;  // any partial tail in buffer_ is dropped
  buffer_.append(chunk, static_cast<std::size_t>(n));
  return Io::kOk;
}

bool LineConn::take_line(std::string* line) {
  const std::size_t nl = buffer_.find('\n');
  if (nl == std::string::npos) return false;
  line->assign(buffer_, 0, nl);
  buffer_.erase(0, nl + 1);
  return true;
}

void LineConn::queue_line(const std::string& line) {
  out_.append(line);
  out_.push_back('\n');
}

LineConn::Io LineConn::flush_some() {
  if (!sock_.valid()) return Io::kError;
  std::size_t off = 0;
  Io status = Io::kOk;
  while (off < out_.size()) {
    if (fail_point("sock.send.eintr").fired()) {
      status = Io::kTimeout;  // wasted cycle; retry on the next POLLOUT
      break;
    }
    const FailDecision fp = fail_point("sock.send");
    if (fp.error()) {
      sock_.close();  // injected reset is sticky, like the real thing
      status = Io::kError;
      break;
    }
    std::size_t want = out_.size() - off;
    if (fp.short_io()) {
      want = static_cast<std::size_t>(std::min<std::uint64_t>(want, fp.arg));
    }
    ssize_t n;
    do {
      n = ::send(sock_.fd(), out_.data() + off, want, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n < 0) {
      status = errno == EAGAIN || errno == EWOULDBLOCK ? Io::kTimeout
                                                       : Io::kError;
      break;
    }
    if (n == 0) {
      // Same progress bound as write_line, persisted across flush_some
      // calls: a socket that stays "writable" while taking nothing would
      // otherwise spin the event loop forever.
      if (++zero_writes_ >= kMaxZeroByteWrites) {
        status = Io::kError;
        break;
      }
      continue;
    }
    zero_writes_ = 0;
    off += static_cast<std::size_t>(n);
  }
  out_.erase(0, off);
  return status == Io::kOk && !out_.empty() ? Io::kTimeout : status;
}

}  // namespace tta::util
