#include "util/fail_point.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>

#include "util/digest.h"

namespace tta::util {

namespace detail {
std::atomic<std::uint32_t> g_failpoints_armed{0};

FailDecision fail_point_slow(const char* site) {
  return FailPoints::instance().evaluate(site);
}
}  // namespace detail

namespace {

/// One grammar fragment with surrounding whitespace stripped.
std::string_view trimmed(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses "name(arg1[,arg2])" or bare "name"; false when the parentheses
/// are unbalanced or an argument is not a decimal number.
bool parse_call(std::string_view text, std::string_view* name,
                std::vector<std::uint64_t>* args) {
  const std::size_t open = text.find('(');
  if (open == std::string_view::npos) {
    *name = text;
    return true;
  }
  if (text.back() != ')') return false;
  *name = text.substr(0, open);
  std::string_view inner = text.substr(open + 1, text.size() - open - 2);
  while (!inner.empty()) {
    const std::size_t comma = inner.find(',');
    const std::string_view token =
        trimmed(comma == std::string_view::npos ? inner
                                                : inner.substr(0, comma));
    inner.remove_prefix(comma == std::string_view::npos ? inner.size()
                                                        : comma + 1);
    if (token.empty()) return false;
    std::uint64_t value = 0;
    for (char c : token) {
      if (c < '0' || c > '9') return false;
      value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    args->push_back(value);
  }
  return true;
}

bool parse_spec(std::string_view text, FailSpec* spec, std::string* error) {
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    const std::size_t colon = text.find(':', start);
    const std::string_view part = trimmed(
        colon == std::string_view::npos ? text.substr(start)
                                        : text.substr(start, colon - start));
    start = colon == std::string_view::npos ? text.size() + 1 : colon + 1;

    std::string_view name;
    std::vector<std::uint64_t> args;
    if (part.empty() || !parse_call(part, &name, &args)) {
      if (error) *error = "malformed fragment \"" + std::string(part) + "\"";
      return false;
    }
    if (first) {
      first = false;
      if (name == "error" && args.empty()) {
        spec->action = FailAction::kError;
      } else if (name == "abort" && args.empty()) {
        spec->action = FailAction::kAbort;
      } else if (name == "delay" && args.size() == 1) {
        spec->action = FailAction::kDelay;
        spec->arg = args[0];
      } else if (name == "short-io" && args.size() == 1) {
        spec->action = FailAction::kShortIo;
        spec->arg = args[0];
      } else {
        if (error) *error = "unknown action \"" + std::string(part) + "\"";
        return false;
      }
      continue;
    }
    if (name == "prob" && args.size() == 1 && args[0] <= 1'000'000) {
      spec->prob_ppm = static_cast<std::uint32_t>(args[0]);
    } else if (name == "hits" && args.size() == 1 && args[0] >= 1) {
      spec->first_hit = args[0];
      spec->last_hit = UINT64_MAX;
    } else if (name == "hits" && args.size() == 2 && args[0] >= 1 &&
               args[0] <= args[1]) {
      spec->first_hit = args[0];
      spec->last_hit = args[1];
    } else {
      if (error) *error = "unknown modifier \"" + std::string(part) + "\"";
      return false;
    }
  }
  return true;
}

struct Site {
  FailSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
};

/// Runs before main() in any binary that links a fail-point call site, so
/// TTA_FAILPOINTS in the environment arms a server/tool without any code
/// path having to remember to ask.
struct EnvArmHook {
  EnvArmHook() {
    if (FailPoints::compiled_in()) FailPoints::instance().arm_from_env();
  }
};
const EnvArmHook g_env_arm_hook;

}  // namespace

bool parse_failpoints(std::string_view config,
                      std::vector<std::pair<std::string, FailSpec>>* out,
                      std::string* error) {
  std::size_t start = 0;
  while (start <= config.size()) {
    const std::size_t semi = config.find(';', start);
    const std::string_view entry = trimmed(
        semi == std::string_view::npos ? config.substr(start)
                                       : config.substr(start, semi - start));
    start = semi == std::string_view::npos ? config.size() + 1 : semi + 1;
    if (entry.empty()) continue;  // tolerate trailing / doubled separators

    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      if (error) *error = "expected <site>=<action> in \"" +
                          std::string(entry) + "\"";
      return false;
    }
    const std::string site(trimmed(entry.substr(0, eq)));
    FailSpec spec;
    if (!parse_spec(entry.substr(eq + 1), &spec, error)) return false;
    out->emplace_back(site, spec);
  }
  return true;
}

struct FailPoints::Impl {
  mutable std::mutex mu;
  std::map<std::string, Site> sites;  // ordered so render() is stable
  std::uint64_t seed = 0;
};

FailPoints& FailPoints::instance() {
  static FailPoints points;
  return points;
}

FailPoints::Impl& FailPoints::impl() const {
  static Impl state;
  return state;
}

bool FailPoints::arm(std::string_view config, std::string* error) {
  std::vector<std::pair<std::string, FailSpec>> parsed;
  if (!parse_failpoints(config, &parsed, error)) return false;
  for (auto& [site, spec] : parsed) arm_site(site, spec);
  return true;
}

void FailPoints::arm_site(const std::string& site, const FailSpec& spec) {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  auto [it, inserted] = s.sites.try_emplace(site);
  it->second = Site{spec, 0, 0};  // re-arming restarts the hit sequence
  if (inserted) {
    detail::g_failpoints_armed.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailPoints::disarm(const std::string& site) {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sites.erase(site) > 0) {
    detail::g_failpoints_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailPoints::disarm_all() {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  detail::g_failpoints_armed.fetch_sub(
      static_cast<std::uint32_t>(s.sites.size()), std::memory_order_relaxed);
  s.sites.clear();
}

void FailPoints::arm_from_env() {
  if (const char* seed_env = std::getenv("TTA_FAILPOINTS_SEED")) {
    set_seed(std::strtoull(seed_env, nullptr, 10));
  }
  const char* config = std::getenv("TTA_FAILPOINTS");
  if (!config || *config == '\0') return;
  std::string error;
  if (!arm(config, &error)) {
    std::fprintf(stderr, "TTA_FAILPOINTS: %s\n", error.c_str());
    std::exit(2);
  }
}

void FailPoints::set_seed(std::uint64_t seed) {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  s.seed = seed;
}

std::uint64_t FailPoints::seed() const {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.seed;
}

std::uint64_t FailPoints::hits(const std::string& site) const {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.hits;
}

std::uint64_t FailPoints::fired(const std::string& site) const {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.sites.find(site);
  return it == s.sites.end() ? 0 : it->second.fired;
}

std::vector<FailSiteStats> FailPoints::snapshot() const {
  Impl& s = impl();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<FailSiteStats> out;
  out.reserve(s.sites.size());
  for (const auto& [site, state] : s.sites) {
    out.push_back(FailSiteStats{site, state.spec, state.hits, state.fired});
  }
  return out;
}

std::string FailPoints::render() const {
  std::string out;
  for (const FailSiteStats& site : snapshot()) {
    out += "failpoint: site=" + site.site +
           " hits=" + std::to_string(site.hits) +
           " fired=" + std::to_string(site.fired) + "\n";
  }
  return out;
}

bool FailPoints::deterministic_fire(std::uint64_t seed, std::string_view site,
                                    std::uint64_t hit_index,
                                    std::uint32_t prob_ppm) {
  if (prob_ppm >= 1'000'000) return true;
  if (prob_ppm == 0) return false;
  // splitmix64 finalizer over the (seed, site-hash, hit-index) triple: no
  // stream state, so concurrent hits at other sites cannot perturb this
  // site's firing sequence.
  std::uint64_t x = fnv1a64(site.data(), site.size());
  x += seed * 0x9e3779b97f4a7c15ull;
  x += hit_index * 0xd1b54a32d192ed03ull;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x % 1'000'000 < prob_ppm;
}

FailDecision FailPoints::evaluate(const char* site) {
  FailDecision out;
  {
    Impl& s = impl();
    std::lock_guard<std::mutex> lock(s.mu);
    const auto it = s.sites.find(site);
    if (it == s.sites.end()) return out;
    Site& state = it->second;
    const std::uint64_t hit = ++state.hits;
    if (hit < state.spec.first_hit || hit > state.spec.last_hit) return out;
    if (!deterministic_fire(s.seed, site, hit, state.spec.prob_ppm)) {
      return out;
    }
    ++state.fired;
    out.action = state.spec.action;
    out.arg = state.spec.arg;
  }
  if (out.action == FailAction::kAbort) {
    std::fprintf(stderr, "TTA_FAILPOINTS: abort injected at site %s\n", site);
    std::abort();
  }
  if (out.action == FailAction::kDelay) {
    std::this_thread::sleep_for(std::chrono::milliseconds(out.arg));
  }
  return out;
}

}  // namespace tta::util
