// Event trace of a simulation run.
//
// Stores one record per step: what both channels carried, every node's
// controller state, and any protocol events — enough to print a paper-style
// narration of a run and for tests to assert on specific steps.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guardian/central_guardian.h"
#include "ttpc/controller.h"
#include "ttpc/types.h"

namespace tta::sim {

struct NodeSnapshot {
  ttpc::NodeState state;
  ttpc::StepEvent event = ttpc::StepEvent::kNone;
  ttpc::ChannelFrame sent;  ///< what this node attempted to transmit
};

struct StepRecord {
  std::uint64_t step = 0;
  ttpc::ChannelFrame channel0;
  ttpc::ChannelFrame channel1;
  std::vector<NodeSnapshot> nodes;  ///< index 0 = node 1
  std::vector<guardian::GuardianAction> guardian_actions0;  ///< star only
  std::vector<guardian::GuardianAction> guardian_actions1;  ///< star only
};

class EventLog {
 public:
  void record(StepRecord rec) { records_.push_back(std::move(rec)); }

  const std::vector<StepRecord>& records() const { return records_; }
  bool empty() const { return records_.empty(); }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  /// Multi-line human-readable rendering of the last `max_steps` steps
  /// (everything if 0); the format mirrors the paper's trace narration.
  std::string render(std::size_t max_steps = 0) const;

 private:
  std::vector<StepRecord> records_;
};

}  // namespace tta::sim
