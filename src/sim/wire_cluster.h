// Wire-fidelity cluster: the full TTP/C protocol running over real encoded
// frames.
//
// Third fidelity level of the reproduction (abstract model -> frame-level
// simulator -> this): every slot, senders *encode* genuine I-frames /
// cold-start frames (wire::encode_frame via sim::FramePipeline), the
// channel carries bit streams, and every receiver *decodes* them against
// its own full C-state — global time, MEDL position, membership — with the
// CRC doing the comparison work. The decoded TTP/C frame status is then
// mapped back onto the abstract channel alphabet and fed to the *same*
// ttpc::Controller the other two levels use, which makes refinement
// testable: on fault-free runs the wire cluster's protocol-state evolution
// must match the frame-level simulator step for step.
//
// The out-of-slot replay fault exists here too, at bit fidelity: a
// full-shifting channel buffers the last frame image (the actual bits) and
// can retransmit it in a later slot — a perfectly valid, perfectly stale
// frame, which is exactly why receivers cannot reject it syntactically.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "guardian/authority.h"
#include "sim/fault_injector.h"
#include "sim/frame_pipeline.h"
#include "sim/trace.h"
#include "ttpc/controller.h"
#include "ttpc/cstate.h"
#include "ttpc/medl.h"

namespace tta::sim {

struct WireClusterConfig {
  ttpc::ProtocolConfig protocol;
  guardian::Authority authority = guardian::Authority::kSmallShifting;
  std::vector<std::uint64_t> power_on_steps;  ///< default staggered
  unsigned line_encoding_bits = 4;
  bool keep_log = true;
};

class WireNode {
 public:
  WireNode(ttpc::NodeId id, const ttpc::ProtocolConfig& cfg,
           const ttpc::Medl& medl, std::uint64_t power_on_step);

  ttpc::NodeId id() const { return id_; }
  const ttpc::NodeState& state() const { return state_; }
  const ttpc::CState& cstate() const { return cstate_; }
  bool ever_integrated() const { return ever_integrated_; }
  bool ever_clique_frozen() const { return ever_clique_frozen_; }

  /// Encodes this slot's transmission (empty stream = silence).
  wire::BitStream transmit(const FramePipeline& pipeline) const;

  /// Decodes both channels against this node's C-state and advances the
  /// shared controller.
  ttpc::StepEvent advance(const FramePipeline& pipe0,
                          const FramePipeline& pipe1,
                          const wire::BitStream& ch0,
                          const wire::BitStream& ch1, std::uint64_t step);

 private:
  /// Decoded reception -> the abstract channel alphabet.
  ttpc::ChannelFrame to_abstract(const FramePipeline::Reception& r) const;

  /// The C-state this node validates incoming frames against: its own,
  /// with the current slot's scheduled sender marked present (the
  /// membership point, as in the frame-level simulator).
  ttpc::CState expected_cstate() const;

  unsigned choice(std::uint64_t step) const;

  ttpc::NodeId id_;
  ttpc::Controller controller_;
  ttpc::Medl medl_;
  std::uint64_t power_on_step_;

  ttpc::NodeState state_;
  ttpc::CState cstate_;
  bool ever_integrated_ = false;
  bool ever_clique_frozen_ = false;
};

class WireCluster {
 public:
  WireCluster(const WireClusterConfig& config, FaultInjector injector);

  void step();
  void run(std::uint64_t n);
  bool run_until_all_active(std::uint64_t max_steps);

  const WireNode& node(ttpc::NodeId id) const;
  std::uint64_t now() const { return step_; }
  std::size_t count_in_state(ttpc::CtrlState s) const;
  std::size_t clique_frozen_count() const;
  const EventLog& log() const { return log_; }

  /// C-state agreement among integrated nodes (the invariant CRC-based
  /// validation is supposed to maintain).
  bool integrated_cstates_agree() const;

 private:
  wire::BitStream arbitrate(int channel,
                            const std::vector<wire::BitStream>& transmissions);

  WireClusterConfig config_;
  FaultInjector injector_;
  ttpc::Medl medl_;
  std::vector<WireNode> nodes_;
  std::vector<FramePipeline> pipelines_;        ///< per channel
  std::vector<wire::BitStream> buffered_;       ///< per channel (replay fault)
  std::uint64_t step_ = 0;
  EventLog log_;
};

}  // namespace tta::sim
