#include "sim/node.h"

namespace tta::sim {

namespace {

bool is_tracking_membership(ttpc::CtrlState s) {
  // Cold-starting and integrated nodes maintain a membership view; nodes in
  // listen have none yet (they are about to adopt one).
  return s == ttpc::CtrlState::kColdStart || ttpc::is_integrated(s);
}

}  // namespace

SimNode::SimNode(ttpc::NodeId id, const ttpc::ProtocolConfig& cfg,
                 const ttpc::Medl& medl, wire::ReceiverTolerance tolerance,
                 std::uint64_t power_on_step, TransmitterProfile profile,
                 bool restart_after_freeze)
    : id_(id),
      controller_(cfg),
      medl_(medl),
      tolerance_(tolerance),
      power_on_step_(power_on_step),
      profile_(profile),
      restart_after_freeze_(restart_after_freeze) {}

SimFrame SimNode::transmit(NodeFaultMode fault, std::uint64_t step) const {
  SimFrame out;
  ttpc::ChannelFrame f = controller_.frame_to_send(state_, id_);
  switch (fault) {
    case NodeFaultMode::kNone:
      break;
    case NodeFaultMode::kSilent:
      return out;  // transmitter dead
    case NodeFaultMode::kBabbling:
      // Drives the medium in *every* slot, regardless of schedule.
      f = ttpc::ChannelFrame{ttpc::FrameKind::kOther, medl_.slot_of(id_)};
      break;
    case NodeFaultMode::kMasqueradeColdStart: {
      // A persistent startup masquerader: while unsynchronized it emits a
      // cold-start frame once per round claiming the *next* node's slot
      // (a faulty node is not bound by the protocol's retreat rules — the
      // fault hypothesis allows arbitrary behaviour of one component).
      ttpc::SlotNumber victim =
          controller_.config().next_slot(medl_.slot_of(id_));
      if (f.kind == ttpc::FrameKind::kColdStart) {
        f.id = victim;
      } else if (f.kind == ttpc::FrameKind::kNone &&
                 (state_.state == ttpc::CtrlState::kListen ||
                  state_.state == ttpc::CtrlState::kColdStart) &&
                 step % controller_.config().num_slots == 0) {
        f = ttpc::ChannelFrame{ttpc::FrameKind::kColdStart, victim};
      }
      break;
    }
    case NodeFaultMode::kBadCState:
      if (f.kind == ttpc::FrameKind::kCState) {
        // Carry a C-state one slot ahead of reality.
        f.id = controller_.config().next_slot(f.id);
      }
      break;
    case NodeFaultMode::kSosValue:
    case NodeFaultMode::kSosTime:
    case NodeFaultMode::kClockDrift:
    case NodeFaultMode::kClockJump:
      break;  // frame content fine; attrs handled below
  }
  if (f.kind == ttpc::FrameKind::kNone) return out;

  // TTP/C membership point: a transmitting node asserts its own liveness —
  // the C-state it sends includes its own membership bit.
  f.membership = static_cast<std::uint16_t>(
      membership_ | static_cast<std::uint16_t>(1u << (id_ - 1)));
  out.frame = f;
  switch (fault) {
    case NodeFaultMode::kSosValue:
      out.attrs = profile_.sos_value;
      break;
    case NodeFaultMode::kSosTime:
      out.attrs = profile_.sos_time;
      break;
    case NodeFaultMode::kClockDrift:
      // A drifting local clock: frame timing sweeps a deterministic
      // sawtooth across the receivers' window spread (wire::
      // spread_tolerances tightens windows per node), so some slots are
      // accepted by everyone, some by nobody, and some split the cluster —
      // exactly the desynchronization scenarios of the WALDEN clock-sync
      // analysis, expressed in the time domain the guardian can reshape.
      out.attrs = profile_.nominal;
      out.attrs.timing_offset_ns = 920.0 + 10.0 * static_cast<double>(step % 11);
      break;
    case NodeFaultMode::kClockJump:
      // A clock step change: every frame lands far outside all acceptance
      // windows, so the whole cluster sees invalid traffic in this slot.
      out.attrs = profile_.nominal;
      out.attrs.timing_offset_ns = 1500.0;
      break;
    default:
      out.attrs = profile_.nominal;
      break;
  }
  return out;
}

ttpc::ChannelFrame SimNode::judge(const SimFrame& f) const {
  if (f.frame.kind == ttpc::FrameKind::kNone ||
      f.frame.kind == ttpc::FrameKind::kBad) {
    return f.frame;
  }
  // Value-domain judgment: a signal below this receiver's amplitude floor is
  // simply not detected — the slot looks silent.
  if (f.attrs.amplitude_mv < tolerance_.min_amplitude_mv) {
    return ttpc::ChannelFrame{};
  }
  // Time-domain judgment: activity outside this receiver's window is an
  // *invalid* frame (traffic that violates the slot rules) — it feeds
  // neither clique counter, like noise.
  if (f.attrs.timing_offset_ns > tolerance_.window_ns ||
      f.attrs.timing_offset_ns < -tolerance_.window_ns) {
    return ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
  }
  // Membership agreement — the C-state comparison the abstract model folds
  // into the id check. The receiver compares against its own mask with the
  // current slot's scheduled sender marked present (the sender asserts its
  // own liveness at its membership point; the receiver grants it that bit
  // and verifies everything else). A valid frame whose image still
  // disagrees is an *incorrect* frame: we keep its kind but zero the id so
  // the classifier counts it as failed. Only nodes that already have a
  // C-state can perform the check; an integrating listener cannot (the
  // paper's integration hazard).
  if (is_tracking_membership(state_.state) &&
      (f.frame.kind == ttpc::FrameKind::kCState ||
       f.frame.kind == ttpc::FrameKind::kOther)) {
    ttpc::NodeId expected_sender = medl_.sender_of(state_.slot);
    std::uint16_t expected_mask = static_cast<std::uint16_t>(
        membership_ | static_cast<std::uint16_t>(1u << (expected_sender - 1)));
    if (f.frame.membership != expected_mask) {
      return ttpc::ChannelFrame{f.frame.kind, 0, f.frame.membership};
    }
  }
  return f.frame;
}

unsigned SimNode::choice(std::uint64_t step) const {
  switch (state_.state) {
    case ttpc::CtrlState::kFreeze:
      // A clique-frozen node re-initializes only when the host awakens it.
      if (ever_clique_frozen_ && !restart_after_freeze_) return 0u;
      return step >= power_on_step_ ? 1u : 0u;
    case ttpc::CtrlState::kInit:
      return 1u;  // initialization completes in one slot
    default:
      return 0u;
  }
}

ttpc::StepEvent SimNode::advance(const SimFrame& ch0, const SimFrame& ch1,
                                 std::uint64_t step) {
  ttpc::ChannelView view{judge(ch0), judge(ch1)};
  const ttpc::NodeState before = state_;

  ttpc::StepOutcome outcome =
      controller_.step(before, id_, view, choice(step));

  // Membership bookkeeping (simulator refinement; see class comment).
  if (is_tracking_membership(before.state)) {
    ttpc::SlotVerdict verdict =
        ttpc::classify_view(view, before.slot, controller_.config());
    ttpc::NodeId sender = medl_.sender_of(before.slot);
    std::uint16_t bit = static_cast<std::uint16_t>(1u << (sender - 1));
    if (verdict == ttpc::SlotVerdict::kAgreed) {
      membership_ = static_cast<std::uint16_t>(membership_ | bit);
    } else {
      membership_ = static_cast<std::uint16_t>(membership_ & ~bit);
    }
  }
  switch (outcome.event) {
    case ttpc::StepEvent::kIntegratedOnCState:
    case ttpc::StepEvent::kIntegratedOnColdStart: {
      // Adopt the C-state (membership image) of the frame integrated on,
      // mirroring the controller's integration preference: explicit C-state
      // first, channel 0 first.
      ttpc::ChannelFrame j0 = judge(ch0);
      ttpc::FrameKind wanted =
          outcome.event == ttpc::StepEvent::kIntegratedOnCState
              ? ttpc::FrameKind::kCState
              : ttpc::FrameKind::kColdStart;
      last_integration_channel_ = j0.kind == wanted ? 0 : 1;
      membership_ = last_integration_channel_ == 0 ? ch0.frame.membership
                                                   : ch1.frame.membership;
      break;
    }
    case ttpc::StepEvent::kListenTimeout:
      // Entering cold start: the node's world is itself.
      membership_ = static_cast<std::uint16_t>(1u << (id_ - 1));
      break;
    case ttpc::StepEvent::kCliqueFreeze:
    case ttpc::StepEvent::kHostFreeze:
    case ttpc::StepEvent::kCliqueBackToListen:
      membership_ = 0;
      break;
    default:
      break;
  }

  state_ = outcome.next;
  if (ttpc::is_integrated(state_.state)) ever_integrated_ = true;
  if (outcome.event == ttpc::StepEvent::kCliqueFreeze && ever_integrated_) {
    ever_clique_frozen_ = true;
  }
  return outcome.event;
}

}  // namespace tta::sim
