#include "sim/frame_pipeline.h"

#include "util/check.h"

namespace tta::sim {

const char* to_string(FrameStatus status) {
  switch (status) {
    case FrameStatus::kNull:
      return "null";
    case FrameStatus::kInvalid:
      return "invalid";
    case FrameStatus::kIncorrect:
      return "incorrect";
    case FrameStatus::kCorrect:
      return "correct";
  }
  return "?";
}

FramePipeline::FramePipeline(int channel, wire::LineCoding line)
    : channel_(channel), line_(line) {
  TTA_CHECK(channel == 0 || channel == 1);
}

wire::BitStream FramePipeline::transmit(
    const ttpc::CState& sender_state, bool explicit_cstate,
    const std::vector<std::uint8_t>& payload) const {
  wire::WireFrame frame;
  frame.header.type =
      explicit_cstate ? wire::WireFrameType::kI : wire::WireFrameType::kN;
  frame.cstate = sender_state.to_image();
  if (!explicit_cstate) frame.payload = payload;
  return line_.encode(wire::encode_frame(frame, channel_));
}

wire::BitStream FramePipeline::transmit_cold_start(
    std::uint16_t global_time, ttpc::SlotNumber round_slot) const {
  wire::WireFrame frame;
  frame.header.type = wire::WireFrameType::kColdStart;
  frame.cstate.global_time = global_time;
  frame.round_slot = round_slot;
  return line_.encode(wire::encode_frame(frame, channel_));
}

void FramePipeline::corrupt(wire::BitStream& wire_image, util::Rng& rng,
                            unsigned flips) {
  TTA_CHECK(wire_image.size() >= flips);
  // Flip `flips` distinct positions.
  std::vector<std::size_t> chosen;
  while (chosen.size() < flips) {
    std::size_t pos = rng.next_below(wire_image.size());
    bool dup = false;
    for (std::size_t p : chosen) dup |= (p == pos);
    if (!dup) {
      chosen.push_back(pos);
      wire_image.flip_bit(pos);
    }
  }
}

FramePipeline::Reception FramePipeline::receive(
    const wire::BitStream& wire_image,
    const ttpc::CState& receiver_state) const {
  Reception r;
  if (wire_image.empty()) {
    r.status = FrameStatus::kNull;
    return r;
  }
  auto frame_bits = line_.decode(wire_image);
  if (!frame_bits.has_value()) {
    r.status = FrameStatus::kInvalid;  // sync pattern destroyed
    return r;
  }
  wire::DecodeResult decoded =
      wire::decode_frame(*frame_bits, channel_, receiver_state.to_image());
  if (decoded.status != wire::DecodeStatus::kOk) {
    // Corruption, truncation — or an implicit C-state mismatch, which the
    // receiver cannot tell apart from corruption.
    r.status = FrameStatus::kInvalid;
    return r;
  }
  r.frame = decoded.frame;
  switch (decoded.frame.header.type) {
    case wire::WireFrameType::kN:
      // Decoding succeeded means the CRC — seeded with the receiver's own
      // C-state — checked out: implicit agreement.
      r.status = FrameStatus::kCorrect;
      break;
    case wire::WireFrameType::kI:
    case wire::WireFrameType::kX:
      r.status = decoded.frame.cstate == receiver_state.to_image()
                     ? FrameStatus::kCorrect
                     : FrameStatus::kIncorrect;
      break;
    case wire::WireFrameType::kColdStart:
      // Carries no full C-state; schedule-position checks happen at the
      // protocol layer.
      r.status = FrameStatus::kCorrect;
      break;
  }
  return r;
}

}  // namespace tta::sim
