// Network topologies under comparison (Figures 1 and 2 of the paper).
#pragma once

#include <cstdint>

namespace tta::sim {

enum class Topology : std::uint8_t {
  kBus = 0,  ///< shared buses, one local bus guardian per node (Figure 1)
  kStar = 1  ///< two star couplers with central bus guardians (Figure 2)
};

inline const char* to_string(Topology t) {
  return t == Topology::kBus ? "bus" : "star";
}

}  // namespace tta::sim
