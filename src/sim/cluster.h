// The whole system under test: N nodes, two channels, bus or star topology,
// a fault-injection schedule, and metrics.
//
// One call to step() advances the cluster across one TDMA slot:
//   1. every node produces its attempted transmission (fault mode applied);
//   2. the topology arbitrates each channel — local guardians gate ports on
//      the bus, central guardians arbitrate/reshape/analyze on the star, and
//      the scheduled coupler/channel fault is applied;
//   3. every node judges the channel contents with its own tolerances and
//      advances its protocol state machine.
//
// The paper's correctness property is exposed directly:
// integrated_then_frozen() lists nodes that reached active/passive and were
// later forced into freeze.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "guardian/central_guardian.h"
#include "guardian/local_guardian.h"
#include "sim/fault_injector.h"
#include "sim/node.h"
#include "sim/slot_tracker.h"
#include "sim/topology.h"
#include "sim/trace.h"
#include "ttpc/medl.h"

namespace tta::sim {

struct ClusterConfig {
  ttpc::ProtocolConfig protocol;
  Topology topology = Topology::kStar;
  guardian::GuardianConfig guardian;  ///< used by every hub (star only)
  std::uint32_t medl_frame_bits = 76;

  /// Replicated channels (star couplers / buses). TTP/C specifies 2; a
  /// single-channel cluster is the degraded-redundancy point the campaign
  /// subsystem sweeps. Channel 1 carries permanent silence when absent.
  int num_channels = 2;

  /// Per-node power-on step (freeze -> init). Defaults to staggered power-on
  /// (node i at step i-1) when empty.
  std::vector<std::uint64_t> power_on_steps;

  /// Per-node receiver tolerances. Defaults to a deterministic spread
  /// (wire::spread_tolerances) when empty, so SOS faults are expressible.
  std::vector<wire::ReceiverTolerance> tolerances;

  /// Analog attributes a faulty transmitter produces. Defaults sit between
  /// the spread tolerances so that receivers genuinely disagree.
  wire::SignalAttrs sos_value_attrs{615.0, 0.0};
  wire::SignalAttrs sos_time_attrs{900.0, 960.0};

  /// Hosts awaken frozen controllers (TTP/C leaves this to the host). When
  /// false, a clique-frozen node stays frozen for the rest of the run.
  bool restart_after_freeze = true;

  /// Record a full event log (turn off for long statistical runs).
  bool keep_log = true;
};

/// Aggregated per-run metrics for the fault-propagation experiments (E9).
struct ClusterMetrics {
  std::uint64_t steps = 0;
  std::uint64_t guardian_blocks_window = 0;
  std::uint64_t guardian_blocks_signal = 0;
  std::uint64_t guardian_blocks_masquerade = 0;
  std::uint64_t guardian_blocks_bad_cstate = 0;
  std::uint64_t guardian_reshapes = 0;
  std::uint64_t sos_disagreements = 0;  ///< slots where receivers disagreed
  /// Integrations that adopted a frame whose claimed slot position differed
  /// from its physical sender's schedule — a successful masquerade.
  std::uint64_t masquerade_integrations = 0;
  /// Integrations that adopted a frame no node transmitted in that slot
  /// (i.e. a frame replayed by a buffering coupler).
  std::uint64_t replay_integrations = 0;
};

class Cluster {
 public:
  Cluster(const ClusterConfig& config, FaultInjector injector);

  /// Advances one TDMA slot.
  void step();

  /// Advances `n` slots.
  void run(std::uint64_t n);

  /// Runs until every healthy node is active, or `max_steps` elapse.
  /// Returns true on success.
  bool run_until_all_healthy_active(std::uint64_t max_steps);

  const SimNode& node(ttpc::NodeId id) const;
  std::uint64_t now() const { return step_; }
  const ttpc::Medl& medl() const { return medl_; }
  const ClusterConfig& config() const { return config_; }
  const EventLog& log() const { return log_; }
  const ClusterMetrics& metrics() const { return metrics_; }

  std::size_t count_in_state(ttpc::CtrlState s) const;
  bool node_is_healthy(ttpc::NodeId id) const {
    return !injector_.node_ever_faulty(id);
  }
  bool all_healthy_in_state(ttpc::CtrlState s) const;

  /// Nodes that integrated (active/passive) and are now frozen — the
  /// violation of the paper's correctness criterion.
  std::vector<ttpc::NodeId> integrated_then_frozen() const;

  /// Nodes ever forced out of the cluster by a clique-avoidance error after
  /// integrating (latched across host restarts).
  std::vector<ttpc::NodeId> ever_clique_frozen() const;

  /// Count of *healthy* nodes in ever_clique_frozen() — the headline metric
  /// of the fault-propagation experiments.
  std::size_t healthy_clique_frozen() const;

 private:
  struct ChannelOutput {
    SimFrame content;
    std::vector<guardian::GuardianAction> actions;
    /// Port whose transmission ended up on the channel; 0 when the channel
    /// carries silence, noise, a collision, or a coupler-replayed frame.
    ttpc::NodeId physical_sender = 0;
  };

  ChannelOutput arbitrate_star(int channel,
                               const std::vector<SimFrame>& transmissions);
  ChannelOutput arbitrate_bus(int channel,
                              const std::vector<SimFrame>& transmissions);

  ClusterConfig config_;
  FaultInjector injector_;
  ttpc::Medl medl_;

  std::vector<SimNode> nodes_;
  std::vector<guardian::CentralGuardian> hubs_;      ///< star: one per channel
  std::vector<guardian::LocalGuardian> local_bgs_;   ///< bus: one per node
  std::vector<SlotTracker> hub_trackers_;            ///< star: per channel
  std::vector<SlotTracker> local_trackers_;          ///< bus: per node

  std::uint64_t step_ = 0;
  EventLog log_;
  ClusterMetrics metrics_;
};

}  // namespace tta::sim
