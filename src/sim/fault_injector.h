// Deterministic fault-injection schedules.
//
// The SWIFI / heavy-ion campaigns of Ademaj et al. [7] are reproduced here
// as *scheduled* faults: each entry names a target component, a fault from
// that component's dictionary, and the step window during which it is
// active. Determinism matters — every experiment in EXPERIMENTS.md is a
// fixed schedule, not a random draw, so a failing case replays exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "guardian/authority.h"
#include "guardian/local_guardian.h"
#include "ttpc/types.h"

namespace tta::sim {

/// Node fault dictionary (the fault modes of [7] plus fail-silence).
enum class NodeFaultMode : std::uint8_t {
  kNone = 0,
  kSilent,               ///< fail-silent: never transmits
  kBabbling,             ///< transmits in every slot (babbling idiot)
  kMasqueradeColdStart,  ///< cold-start frames claiming another node's slot
  kBadCState,            ///< frames carrying an incorrect C-state position
  kSosValue,             ///< marginal signal amplitude (value-domain SOS)
  kSosTime,              ///< marginal frame timing (time-domain SOS)
  /// WALDEN-style clock desynchronization: the node's local clock drifts,
  /// so its frame timing sweeps deterministically across the receivers'
  /// acceptance windows — some slots are marginal (receivers disagree),
  /// some clearly late. The time-domain analogue of a wandering oscillator.
  kClockDrift,
  /// A clock step change: every frame lands at a fixed large offset well
  /// outside all acceptance windows (all receivers see invalid traffic).
  kClockJump
};

const char* to_string(NodeFaultMode mode);

struct CouplerFaultWindow {
  int channel = 0;  ///< 0 or 1
  guardian::CouplerFault fault = guardian::CouplerFault::kNone;
  std::uint64_t from_step = 0;
  std::uint64_t to_step = UINT64_MAX;  ///< inclusive
};

struct NodeFaultWindow {
  ttpc::NodeId node = 0;
  NodeFaultMode mode = NodeFaultMode::kNone;
  std::uint64_t from_step = 0;
  std::uint64_t to_step = UINT64_MAX;
};

struct LocalGuardianFaultWindow {
  ttpc::NodeId node = 0;
  guardian::LocalGuardianFault fault = guardian::LocalGuardianFault::kNone;
  std::uint64_t from_step = 0;
  std::uint64_t to_step = UINT64_MAX;
};

class FaultInjector {
 public:
  void add(const CouplerFaultWindow& w) { coupler_.push_back(w); }
  void add(const NodeFaultWindow& w) { node_.push_back(w); }
  void add(const LocalGuardianFaultWindow& w) { local_guardian_.push_back(w); }

  /// Active fault for channel `ch` at `step` (kNone if none scheduled).
  /// Later entries win when windows overlap.
  guardian::CouplerFault coupler_fault(int ch, std::uint64_t step) const;
  NodeFaultMode node_fault(ttpc::NodeId node, std::uint64_t step) const;
  guardian::LocalGuardianFault local_guardian_fault(ttpc::NodeId node,
                                                    std::uint64_t step) const;

  /// True if any schedule entry makes this node faulty at any time — used to
  /// separate "healthy" from "faulty" nodes in the metrics.
  bool node_ever_faulty(ttpc::NodeId node) const;

  bool empty() const {
    return coupler_.empty() && node_.empty() && local_guardian_.empty();
  }

 private:
  std::vector<CouplerFaultWindow> coupler_;
  std::vector<NodeFaultWindow> node_;
  std::vector<LocalGuardianFaultWindow> local_guardian_;
};

}  // namespace tta::sim
