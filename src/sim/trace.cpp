#include "sim/trace.h"

#include <cstdio>

namespace tta::sim {

namespace {

std::string frame_str(const ttpc::ChannelFrame& f) {
  if (f.kind == ttpc::FrameKind::kNone) return "-";
  if (f.kind == ttpc::FrameKind::kBad) return "noise";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s(id=%u)", ttpc::to_string(f.kind), f.id);
  return buf;
}

}  // namespace

std::string EventLog::render(std::size_t max_steps) const {
  std::string out;
  std::size_t begin = 0;
  if (max_steps != 0 && records_.size() > max_steps) {
    begin = records_.size() - max_steps;
  }
  char buf[160];
  for (std::size_t i = begin; i < records_.size(); ++i) {
    const StepRecord& r = records_[i];
    std::snprintf(buf, sizeof buf, "step %4llu  ch0=%-18s ch1=%-18s\n",
                  static_cast<unsigned long long>(r.step),
                  frame_str(r.channel0).c_str(), frame_str(r.channel1).c_str());
    out += buf;
    for (std::size_t n = 0; n < r.nodes.size(); ++n) {
      const NodeSnapshot& ns = r.nodes[n];
      std::snprintf(buf, sizeof buf,
                    "    node %zu: %-10s slot=%u agreed=%u failed=%u", n + 1,
                    ttpc::to_string(ns.state.state), ns.state.slot,
                    ns.state.agreed, ns.state.failed);
      out += buf;
      if (ns.sent.kind != ttpc::FrameKind::kNone) {
        out += "  [sent ";
        out += frame_str(ns.sent);
        out += "]";
      }
      if (ns.event != ttpc::StepEvent::kNone) {
        out += "  <- ";
        out += ttpc::to_string(ns.event);
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace tta::sim
