// Bit-exact frame pipeline: one TDMA slot's end-to-end path at wire
// fidelity.
//
//   sender C-state + payload --(encode: wire/frame)--> frame image
//     --(line coding)--> wire image --(channel bit faults)-->
//     --(line decode + frame decode per receiver)--> TTP/C frame status
//
// This refines the abstract slot model with the mechanics the paper's
// Section 2 describes: the CRC seeded with the implicit C-state, explicit
// C-state comparison, and the four-way TTP/C frame-status taxonomy. It
// exposes a nuance the abstract model folds away: an *implicit* C-state
// disagreement (N-frame) is physically indistinguishable from corruption —
// the receiver sees an INVALID frame — while an *explicit* disagreement
// (I/X-frame) yields a decodable-but-INCORRECT frame. Only the latter feeds
// the clique-avoidance failed counter, which is why the abstract model's
// id-comparison applies to explicit-C-state frames.
#pragma once

#include <cstdint>
#include <vector>

#include "ttpc/cstate.h"
#include "ttpc/medl.h"
#include "util/rng.h"
#include "wire/frame.h"
#include "wire/line_coding.h"

namespace tta::sim {

/// TTP/C frame status as computed from real bits (Section 2.1: valid /
/// correct / null, with invalid and incorrect as the failure flavors).
enum class FrameStatus : std::uint8_t {
  kNull = 0,      ///< no transmission observed
  kInvalid = 1,   ///< activity, but not a decodable frame (noise, CRC fail,
                  ///< damaged sync — or an implicit C-state disagreement!)
  kIncorrect = 2, ///< decodable frame whose explicit C-state disagrees
  kCorrect = 3    ///< decodable frame, C-state agrees
};

const char* to_string(FrameStatus status);

class FramePipeline {
 public:
  FramePipeline(int channel, wire::LineCoding line);

  /// Sender side: builds and encodes the frame scheduled for `slot`.
  /// explicit_cstate selects an I-frame (C-state on the wire) vs an N-frame
  /// (C-state folded into the CRC); `payload` applies to N-frames only.
  wire::BitStream transmit(const ttpc::CState& sender_state,
                           bool explicit_cstate,
                           const std::vector<std::uint8_t>& payload = {}) const;

  /// Cold-start frame (sent before time agreement exists).
  wire::BitStream transmit_cold_start(std::uint16_t global_time,
                                      ttpc::SlotNumber round_slot) const;

  /// Channel-side fault injection: flips `flips` distinct bits in place.
  static void corrupt(wire::BitStream& wire_image, util::Rng& rng,
                      unsigned flips);

  struct Reception {
    FrameStatus status = FrameStatus::kNull;
    wire::WireFrame frame;  ///< meaningful for kCorrect / kIncorrect
  };

  /// Receiver side: judges a wire image against the receiver's C-state.
  Reception receive(const wire::BitStream& wire_image,
                    const ttpc::CState& receiver_state) const;

  const wire::LineCoding& line() const { return line_; }
  int channel() const { return channel_; }

 private:
  int channel_;
  wire::LineCoding line_;
};

}  // namespace tta::sim
