// One simulated TTP/C node: the shared protocol controller plus the
// frame-level refinements the abstract model omits.
//
// Refinements over the formal model (all documented in DESIGN.md §3):
//  * receiver tolerances — each node judges incoming signal attributes with
//    its own hardware thresholds, which is what makes SOS faults possible;
//  * a membership mask — integrated nodes track who is alive and compare the
//    mask carried in received C-states against their own, reproducing the
//    membership divergence that lets SOS faults freeze healthy nodes;
//  * fault modes — a SimNode can be turned into a babbling idiot, a startup
//    masquerader, a bad-C-state sender, an SOS transmitter, or a silent box.
//
// Crucially, nodes in the listen state do NOT check memberships or ids: an
// integrating node has no C-state to compare against and must trust the
// first valid frame it sees — the vulnerability at the center of the paper.
#pragma once

#include <cstdint>

#include "sim/fault_injector.h"
#include "ttpc/controller.h"
#include "ttpc/medl.h"
#include "wire/signal.h"

namespace tta::sim {

/// What one channel carries during one slot, at simulator fidelity.
struct SimFrame {
  ttpc::ChannelFrame frame;  ///< kind, claimed slot id, membership image
  wire::SignalAttrs attrs = wire::nominal_signal();
};

/// Analog attribute values a node's transmitter produces per fault mode.
struct TransmitterProfile {
  wire::SignalAttrs nominal = wire::nominal_signal();
  wire::SignalAttrs sos_value;  ///< marginal amplitude
  wire::SignalAttrs sos_time;   ///< marginal timing
};

class SimNode {
 public:
  SimNode(ttpc::NodeId id, const ttpc::ProtocolConfig& cfg,
          const ttpc::Medl& medl, wire::ReceiverTolerance tolerance,
          std::uint64_t power_on_step, TransmitterProfile profile,
          bool restart_after_freeze);

  ttpc::NodeId id() const { return id_; }
  const ttpc::NodeState& state() const { return state_; }
  std::uint16_t membership() const { return membership_; }

  /// This step's attempted transmission, with `fault` applied. `step` lets
  /// rhythmic faults (the persistent startup masquerader) pace themselves.
  SimFrame transmit(NodeFaultMode fault, std::uint64_t step) const;

  /// Advances one TDMA slot given the raw channel contents. Performs the
  /// per-receiver signal judgment and membership comparison, then delegates
  /// the protocol transition to the shared Controller.
  ttpc::StepEvent advance(const SimFrame& ch0, const SimFrame& ch1,
                          std::uint64_t step);

  /// True once the node has ever reached active or passive.
  bool ever_integrated() const { return ever_integrated_; }

  /// True once the node, having integrated, was forced into freeze by a
  /// clique-avoidance error — the paper's property violation. Latched: a
  /// later host restart does not clear it.
  bool ever_clique_frozen() const { return ever_clique_frozen_; }

  /// Channel (0/1) the most recent integration used; meaningful only right
  /// after advance() returned an integration event.
  int last_integration_channel() const { return last_integration_channel_; }

 private:
  /// Raw channel frame -> this receiver's view of it.
  ttpc::ChannelFrame judge(const SimFrame& f) const;

  /// Startup choice policy: progress freeze->init->listen once powered on.
  unsigned choice(std::uint64_t step) const;

  ttpc::NodeId id_;
  ttpc::Controller controller_;
  ttpc::Medl medl_;
  wire::ReceiverTolerance tolerance_;
  std::uint64_t power_on_step_;
  TransmitterProfile profile_;

  bool restart_after_freeze_;

  ttpc::NodeState state_;
  std::uint16_t membership_ = 0;
  bool ever_integrated_ = false;
  bool ever_clique_frozen_ = false;
  int last_integration_channel_ = 0;
};

}  // namespace tta::sim
