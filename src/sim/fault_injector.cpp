#include "sim/fault_injector.h"

namespace tta::sim {

const char* to_string(NodeFaultMode mode) {
  switch (mode) {
    case NodeFaultMode::kNone:
      return "none";
    case NodeFaultMode::kSilent:
      return "silent";
    case NodeFaultMode::kBabbling:
      return "babbling_idiot";
    case NodeFaultMode::kMasqueradeColdStart:
      return "masquerade_cold_start";
    case NodeFaultMode::kBadCState:
      return "bad_c_state";
    case NodeFaultMode::kSosValue:
      return "sos_value";
    case NodeFaultMode::kSosTime:
      return "sos_time";
    case NodeFaultMode::kClockDrift:
      return "clock_drift";
    case NodeFaultMode::kClockJump:
      return "clock_jump";
  }
  return "?";
}

guardian::CouplerFault FaultInjector::coupler_fault(int ch,
                                                    std::uint64_t step) const {
  guardian::CouplerFault active = guardian::CouplerFault::kNone;
  for (const auto& w : coupler_) {
    if (w.channel == ch && step >= w.from_step && step <= w.to_step) {
      active = w.fault;
    }
  }
  return active;
}

NodeFaultMode FaultInjector::node_fault(ttpc::NodeId node,
                                        std::uint64_t step) const {
  NodeFaultMode active = NodeFaultMode::kNone;
  for (const auto& w : node_) {
    if (w.node == node && step >= w.from_step && step <= w.to_step) {
      active = w.mode;
    }
  }
  return active;
}

guardian::LocalGuardianFault FaultInjector::local_guardian_fault(
    ttpc::NodeId node, std::uint64_t step) const {
  guardian::LocalGuardianFault active = guardian::LocalGuardianFault::kNone;
  for (const auto& w : local_guardian_) {
    if (w.node == node && step >= w.from_step && step <= w.to_step) {
      active = w.fault;
    }
  }
  return active;
}

bool FaultInjector::node_ever_faulty(ttpc::NodeId node) const {
  for (const auto& w : node_) {
    if (w.node == node && w.mode != NodeFaultMode::kNone) return true;
  }
  for (const auto& w : local_guardian_) {
    // A faulty local guardian makes its *node* the faulty unit under the
    // TTP/C fault hypothesis (node + guardian form one FCR on the bus).
    if (w.node == node && w.fault != guardian::LocalGuardianFault::kNone) {
      return true;
    }
  }
  return false;
}

}  // namespace tta::sim
