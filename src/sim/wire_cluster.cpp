#include "sim/wire_cluster.h"

#include "util/check.h"

namespace tta::sim {

namespace {

bool is_tracking(ttpc::CtrlState s) {
  return s == ttpc::CtrlState::kColdStart || ttpc::is_integrated(s);
}

/// Deterministic collision/noise image: all-ones, which can never satisfy
/// the alternating line-coding preamble, so every receiver sees kInvalid.
wire::BitStream noise_stream() {
  wire::BitStream bs;
  bs.push_bits(~0ull, 64);
  return bs;
}

}  // namespace

WireNode::WireNode(ttpc::NodeId id, const ttpc::ProtocolConfig& cfg,
                   const ttpc::Medl& medl, std::uint64_t power_on_step)
    : id_(id), controller_(cfg), medl_(medl), power_on_step_(power_on_step) {}

wire::BitStream WireNode::transmit(const FramePipeline& pipeline) const {
  ttpc::ChannelFrame f = controller_.frame_to_send(state_, id_);
  switch (f.kind) {
    case ttpc::FrameKind::kCState: {
      // Membership point: the sender's image asserts its own liveness.
      ttpc::CState image = cstate_;
      image.set_member(id_, true);
      return pipeline.transmit(image, /*explicit_cstate=*/true);
    }
    case ttpc::FrameKind::kColdStart:
      return pipeline.transmit_cold_start(cstate_.global_time(), f.id);
    default:
      return wire::BitStream{};
  }
}

ttpc::CState WireNode::expected_cstate() const {
  ttpc::CState expected = cstate_;
  expected.set_member(medl_.sender_of(state_.slot), true);
  return expected;
}

ttpc::ChannelFrame WireNode::to_abstract(
    const FramePipeline::Reception& r) const {
  switch (r.status) {
    case FrameStatus::kNull:
      return ttpc::ChannelFrame{};
    case FrameStatus::kInvalid:
      return ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
    case FrameStatus::kCorrect:
    case FrameStatus::kIncorrect:
      break;
  }
  if (r.frame.header.type == wire::WireFrameType::kColdStart) {
    return ttpc::ChannelFrame{ttpc::FrameKind::kColdStart,
                              static_cast<ttpc::SlotNumber>(r.frame.round_slot),
                              0};
  }
  // Explicit-C-state frame. An integrated receiver that found the image
  // disagreeing holds an *incorrect* frame: zero the id so the abstract
  // classifier counts it as failed. A listening receiver has nothing to
  // compare against and takes the image at face value — the integration
  // hazard, preserved at wire fidelity.
  if (r.status == FrameStatus::kIncorrect && is_tracking(state_.state)) {
    return ttpc::ChannelFrame{ttpc::FrameKind::kCState, 0,
                              r.frame.cstate.membership};
  }
  return ttpc::ChannelFrame{
      ttpc::FrameKind::kCState,
      static_cast<ttpc::SlotNumber>(r.frame.cstate.medl_position),
      r.frame.cstate.membership};
}

unsigned WireNode::choice(std::uint64_t step) const {
  switch (state_.state) {
    case ttpc::CtrlState::kFreeze:
      return step >= power_on_step_ ? 1u : 0u;
    case ttpc::CtrlState::kInit:
      return 1u;
    default:
      return 0u;
  }
}

ttpc::StepEvent WireNode::advance(const FramePipeline& pipe0,
                                  const FramePipeline& pipe1,
                                  const wire::BitStream& ch0,
                                  const wire::BitStream& ch1,
                                  std::uint64_t step) {
  ttpc::CState expected = expected_cstate();
  FramePipeline::Reception r0 = pipe0.receive(ch0, expected);
  FramePipeline::Reception r1 = pipe1.receive(ch1, expected);
  ttpc::ChannelView view{to_abstract(r0), to_abstract(r1)};

  const ttpc::NodeState before = state_;
  ttpc::StepOutcome outcome =
      controller_.step(before, id_, view, choice(step));

  // Membership bookkeeping, as in the frame-level simulator.
  if (is_tracking(before.state)) {
    ttpc::SlotVerdict verdict =
        ttpc::classify_view(view, before.slot, controller_.config());
    cstate_.set_member(medl_.sender_of(before.slot),
                       verdict == ttpc::SlotVerdict::kAgreed);
    cstate_.advance(controller_.config());
  }

  switch (outcome.event) {
    case ttpc::StepEvent::kIntegratedOnCState:
    case ttpc::StepEvent::kIntegratedOnColdStart: {
      // Adopt the C-state of the frame integrated on (controller
      // preference: explicit C-state first, channel 0 first).
      ttpc::FrameKind wanted =
          outcome.event == ttpc::StepEvent::kIntegratedOnCState
              ? ttpc::FrameKind::kCState
              : ttpc::FrameKind::kColdStart;
      const FramePipeline::Reception& src =
          view.ch0.kind == wanted ? r0 : r1;
      if (wanted == ttpc::FrameKind::kCState) {
        cstate_ = ttpc::CState::from_image(src.frame.cstate);
      } else {
        ttpc::CState adopted(src.frame.cstate.global_time,
                             static_cast<ttpc::SlotNumber>(src.frame.round_slot),
                             0);
        adopted.set_member(
            medl_.sender_of(
                static_cast<ttpc::SlotNumber>(src.frame.round_slot)),
            true);
        cstate_ = adopted;
      }
      cstate_.advance(controller_.config());  // the frame's slot just ended
      break;
    }
    case ttpc::StepEvent::kListenTimeout: {
      // Entering cold start: a fresh time base, alone in the world.
      ttpc::CState fresh(1, id_, 0);
      fresh.set_member(id_, true);
      cstate_ = fresh;
      break;
    }
    case ttpc::StepEvent::kCliqueFreeze:
    case ttpc::StepEvent::kHostFreeze:
    case ttpc::StepEvent::kCliqueBackToListen:
      cstate_ = ttpc::CState{};
      break;
    default:
      break;
  }

  state_ = outcome.next;
  if (ttpc::is_integrated(state_.state)) ever_integrated_ = true;
  if (outcome.event == ttpc::StepEvent::kCliqueFreeze) {
    ever_clique_frozen_ = true;
  }
  TTA_DCHECK(!is_tracking(state_.state) ||
             cstate_.round_slot() == state_.slot);
  return outcome.event;
}

WireCluster::WireCluster(const WireClusterConfig& config,
                         FaultInjector injector)
    : config_(config),
      injector_(std::move(injector)),
      medl_(ttpc::Medl::uniform(config.protocol)),
      buffered_(2) {
  config_.protocol.validate();
  const std::size_t n = config_.protocol.num_nodes;
  if (config_.power_on_steps.empty()) {
    for (std::size_t i = 0; i < n; ++i) config_.power_on_steps.push_back(i);
  }
  TTA_CHECK(config_.power_on_steps.size() == n);
  for (std::size_t i = 0; i < n; ++i) {
    nodes_.emplace_back(static_cast<ttpc::NodeId>(i + 1), config_.protocol,
                        medl_, config_.power_on_steps[i]);
  }
  for (int ch = 0; ch < 2; ++ch) {
    pipelines_.emplace_back(ch, wire::LineCoding(config_.line_encoding_bits));
  }
}

const WireNode& WireCluster::node(ttpc::NodeId id) const {
  TTA_CHECK(id >= 1 && id <= nodes_.size());
  return nodes_[id - 1];
}

wire::BitStream WireCluster::arbitrate(
    int channel, const std::vector<wire::BitStream>& transmissions) {
  wire::BitStream merged;
  int senders = 0;
  for (const auto& tx : transmissions) {
    if (tx.empty()) continue;
    ++senders;
    merged = tx;
  }
  if (senders > 1) merged = noise_stream();

  guardian::CouplerFault fault = injector_.coupler_fault(channel, step_);
  if (!guardian::fault_possible(config_.authority, fault)) {
    fault = guardian::CouplerFault::kNone;
  }
  switch (fault) {
    case guardian::CouplerFault::kSilence:
      merged.clear();
      break;
    case guardian::CouplerFault::kBadFrame:
      merged = noise_stream();
      break;
    case guardian::CouplerFault::kOutOfSlot:
      // At bit fidelity the replay is literal: the buffered frame *image*
      // is driven onto the channel again — perfectly valid bits, stale
      // content.
      merged = buffered_[channel];
      break;
    case guardian::CouplerFault::kNone:
      break;
  }

  // A full-shifting coupler's frame store tracks the last clean single-
  // sender transmission it forwarded.
  if (guardian::can_buffer_frames(config_.authority) &&
      fault == guardian::CouplerFault::kNone && senders == 1) {
    buffered_[channel] = merged;
  }
  return merged;
}

void WireCluster::step() {
  const std::size_t n = nodes_.size();
  std::vector<wire::BitStream> tx0, tx1;
  tx0.reserve(n);
  tx1.reserve(n);
  for (const WireNode& node : nodes_) {
    tx0.push_back(node.transmit(pipelines_[0]));
    tx1.push_back(node.transmit(pipelines_[1]));
  }
  wire::BitStream ch0 = arbitrate(0, tx0);
  wire::BitStream ch1 = arbitrate(1, tx1);

  StepRecord rec;
  rec.step = step_;
  // Neutral rendering of the channel content for the log.
  auto render = [&](const wire::BitStream& ch) {
    FramePipeline::Reception r = pipelines_[0].receive(ch, ttpc::CState{});
    switch (r.status) {
      case FrameStatus::kNull:
        return ttpc::ChannelFrame{};
      case FrameStatus::kInvalid:
        return ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
      default:
        if (r.frame.header.type == wire::WireFrameType::kColdStart) {
          return ttpc::ChannelFrame{
              ttpc::FrameKind::kColdStart,
              static_cast<ttpc::SlotNumber>(r.frame.round_slot)};
        }
        return ttpc::ChannelFrame{
            ttpc::FrameKind::kCState,
            static_cast<ttpc::SlotNumber>(r.frame.cstate.medl_position)};
    }
  };
  rec.channel0 = render(ch0);
  rec.channel1 = render(ch1);

  for (std::size_t i = 0; i < n; ++i) {
    ttpc::StepEvent ev =
        nodes_[i].advance(pipelines_[0], pipelines_[1], ch0, ch1, step_);
    NodeSnapshot snap;
    snap.state = nodes_[i].state();
    snap.event = ev;
    rec.nodes.push_back(snap);
  }
  if (config_.keep_log) log_.record(std::move(rec));
  ++step_;
}

void WireCluster::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool WireCluster::run_until_all_active(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (count_in_state(ttpc::CtrlState::kActive) == nodes_.size()) {
      return true;
    }
    step();
  }
  return count_in_state(ttpc::CtrlState::kActive) == nodes_.size();
}

std::size_t WireCluster::count_in_state(ttpc::CtrlState s) const {
  std::size_t c = 0;
  for (const auto& node : nodes_) c += node.state().state == s;
  return c;
}

std::size_t WireCluster::clique_frozen_count() const {
  std::size_t c = 0;
  for (const auto& node : nodes_) c += node.ever_clique_frozen();
  return c;
}

bool WireCluster::integrated_cstates_agree() const {
  const ttpc::CState* reference = nullptr;
  for (const auto& node : nodes_) {
    if (!ttpc::is_integrated(node.state().state)) continue;
    if (reference == nullptr) {
      reference = &node.cstate();
    } else if (!(node.cstate().global_time() ==
                     reference->global_time() &&
                 node.cstate().round_slot() == reference->round_slot())) {
      return false;
    }
  }
  return true;
}

}  // namespace tta::sim
