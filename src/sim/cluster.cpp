#include "sim/cluster.h"

#include "util/check.h"

namespace tta::sim {

Cluster::Cluster(const ClusterConfig& config, FaultInjector injector)
    : config_(config),
      injector_(std::move(injector)),
      medl_(ttpc::Medl::uniform(config.protocol, config.medl_frame_bits)) {
  config_.protocol.validate();
  TTA_CHECK(config_.num_channels >= 1 && config_.num_channels <= 2);
  const std::size_t n = config_.protocol.num_nodes;

  if (config_.power_on_steps.empty()) {
    for (std::size_t i = 0; i < n; ++i) {
      config_.power_on_steps.push_back(i);  // staggered power-on
    }
  }
  TTA_CHECK(config_.power_on_steps.size() == n);

  if (config_.tolerances.empty()) {
    config_.tolerances = wire::spread_tolerances(n, 10.0, 15.0);
  }
  TTA_CHECK(config_.tolerances.size() == n);

  TransmitterProfile profile;
  profile.sos_value = config_.sos_value_attrs;
  profile.sos_time = config_.sos_time_attrs;

  for (std::size_t i = 0; i < n; ++i) {
    auto id = static_cast<ttpc::NodeId>(i + 1);
    nodes_.emplace_back(id, config_.protocol, medl_, config_.tolerances[i],
                        config_.power_on_steps[i], profile,
                        config_.restart_after_freeze);
  }

  if (config_.topology == Topology::kStar) {
    for (int ch = 0; ch < config_.num_channels; ++ch) {
      hubs_.emplace_back(config_.guardian, medl_);
      hub_trackers_.emplace_back(config_.protocol);
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      local_bgs_.emplace_back(static_cast<ttpc::NodeId>(i + 1), medl_);
      local_trackers_.emplace_back(config_.protocol);
    }
  }
}

const SimNode& Cluster::node(ttpc::NodeId id) const {
  TTA_CHECK(id >= 1 && id <= nodes_.size());
  return nodes_[id - 1];
}

Cluster::ChannelOutput Cluster::arbitrate_star(
    int channel, const std::vector<SimFrame>& transmissions) {
  std::vector<guardian::PortTransmission> attempts;
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    if (transmissions[i].frame.kind == ttpc::FrameKind::kNone) continue;
    guardian::PortTransmission tx;
    tx.port = static_cast<ttpc::NodeId>(i + 1);
    tx.frame = transmissions[i].frame;
    tx.attrs = transmissions[i].attrs;
    attempts.push_back(tx);
  }
  guardian::CouplerFault fault = injector_.coupler_fault(channel, step_);
  if (!guardian::fault_possible(config_.guardian.authority, fault)) {
    // A coupler without frame buffering physically cannot replay a frame —
    // the paper's central point. The schedule entry is inert.
    fault = guardian::CouplerFault::kNone;
  }
  guardian::CentralGuardian::SlotResult res = hubs_[channel].arbitrate(
      hub_trackers_[channel].current(), attempts, fault);

  for (guardian::GuardianAction a : res.actions) {
    switch (a) {
      case guardian::GuardianAction::kBlockedWindow:
        ++metrics_.guardian_blocks_window;
        break;
      case guardian::GuardianAction::kBlockedSignal:
        ++metrics_.guardian_blocks_signal;
        break;
      case guardian::GuardianAction::kBlockedMasquerade:
        ++metrics_.guardian_blocks_masquerade;
        break;
      case guardian::GuardianAction::kBlockedBadCState:
        ++metrics_.guardian_blocks_bad_cstate;
        break;
      case guardian::GuardianAction::kReshaped:
        ++metrics_.guardian_reshapes;
        break;
      case guardian::GuardianAction::kForwarded:
        break;
    }
  }

  ChannelOutput out;
  out.content = SimFrame{res.out, res.attrs};
  // Identify the physical sender: a clean slot with exactly one forwarded
  // attempt. Faulted slots (silence/noise/replay) carry no real sender.
  if (fault == guardian::CouplerFault::kNone) {
    int forwarded = 0;
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (res.actions[i] == guardian::GuardianAction::kForwarded ||
          res.actions[i] == guardian::GuardianAction::kReshaped) {
        ++forwarded;
        out.physical_sender = attempts[i].port;
      }
    }
    if (forwarded != 1) out.physical_sender = 0;
  }
  out.actions = std::move(res.actions);
  return out;
}

Cluster::ChannelOutput Cluster::arbitrate_bus(
    int channel, const std::vector<SimFrame>& transmissions) {
  std::vector<ttpc::ChannelFrame> passed;
  wire::SignalAttrs attrs = wire::nominal_signal();
  ttpc::NodeId single_sender = 0;
  for (std::size_t i = 0; i < transmissions.size(); ++i) {
    const SimFrame& tx = transmissions[i];
    if (tx.frame.kind == ttpc::FrameKind::kNone) continue;
    auto id = static_cast<ttpc::NodeId>(i + 1);
    local_bgs_[i].inject(injector_.local_guardian_fault(id, step_));
    if (!local_bgs_[i].allows(local_trackers_[i].current(), tx.frame)) {
      continue;
    }
    passed.push_back(tx.frame);
    attrs = tx.attrs;  // single-sender attrs; collisions become noise anyway
    single_sender = id;
  }
  if (passed.size() != 1) single_sender = 0;
  ttpc::ChannelFrame merged =
      guardian::AbstractCoupler::merge_transmissions(passed);

  // Passive channel faults (TTP/C fault hypothesis: corrupt or drop only).
  switch (injector_.coupler_fault(channel, step_)) {
    case guardian::CouplerFault::kSilence:
      merged = ttpc::ChannelFrame{};
      break;
    case guardian::CouplerFault::kBadFrame:
      merged = ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
      break;
    case guardian::CouplerFault::kOutOfSlot:
      // A passive bus stores nothing; replay is impossible by construction.
      break;
    case guardian::CouplerFault::kNone:
      break;
  }

  ChannelOutput out;
  out.content = SimFrame{merged, attrs};
  if (merged.kind != ttpc::FrameKind::kNone &&
      merged.kind != ttpc::FrameKind::kBad) {
    out.physical_sender = single_sender;
  }
  return out;
}

void Cluster::step() {
  const std::size_t n = nodes_.size();

  // 1. Transmissions (both channels carry the same attempt in TTP/C).
  std::vector<SimFrame> transmissions;
  transmissions.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    NodeFaultMode fault =
        injector_.node_fault(static_cast<ttpc::NodeId>(i + 1), step_);
    transmissions.push_back(nodes_[i].transmit(fault, step_));
  }

  // 2. Channel arbitration. A single-channel cluster leaves channel 1 at
  // permanent silence (the default ChannelOutput).
  const bool dual = config_.num_channels == 2;
  ChannelOutput ch0, ch1;
  if (config_.topology == Topology::kStar) {
    ch0 = arbitrate_star(0, transmissions);
    if (dual) ch1 = arbitrate_star(1, transmissions);
  } else {
    ch0 = arbitrate_bus(0, transmissions);
    if (dual) ch1 = arbitrate_bus(1, transmissions);
  }

  // 3. Guardians' slot trackers learn from this slot's traffic.
  if (config_.topology == Topology::kStar) {
    hub_trackers_[0].observe(ch0.content.frame, ch0.content.frame);
    if (dual) hub_trackers_[1].observe(ch1.content.frame, ch1.content.frame);
  } else {
    for (auto& tracker : local_trackers_) {
      tracker.observe(ch0.content.frame, ch1.content.frame);
    }
  }

  // 4. SOS accounting: did receivers disagree about detectable traffic?
  {
    bool any_accept = false, any_reject = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (const SimFrame* f : {&ch0.content, &ch1.content}) {
        if (f->frame.kind == ttpc::FrameKind::kNone ||
            f->frame.kind == ttpc::FrameKind::kBad) {
          continue;
        }
        bool ok = wire::accepts(config_.tolerances[i], f->attrs);
        (ok ? any_accept : any_reject) = true;
      }
    }
    if (any_accept && any_reject) ++metrics_.sos_disagreements;
  }

  // 5. Node transitions.
  StepRecord rec;
  rec.step = step_;
  rec.channel0 = ch0.content.frame;
  rec.channel1 = ch1.content.frame;
  rec.guardian_actions0 = ch0.actions;
  rec.guardian_actions1 = ch1.actions;
  for (std::size_t i = 0; i < n; ++i) {
    ttpc::StepEvent ev = nodes_[i].advance(ch0.content, ch1.content, step_);
    if (ev == ttpc::StepEvent::kIntegratedOnColdStart ||
        ev == ttpc::StepEvent::kIntegratedOnCState) {
      const ChannelOutput& src =
          nodes_[i].last_integration_channel() == 0 ? ch0 : ch1;
      if (src.physical_sender == 0) {
        ++metrics_.replay_integrations;
      } else if (medl_.slot_of(src.physical_sender) != src.content.frame.id) {
        ++metrics_.masquerade_integrations;
      }
    }
    NodeSnapshot snap;
    snap.state = nodes_[i].state();
    snap.event = ev;
    snap.sent = transmissions[i].frame;
    rec.nodes.push_back(snap);
  }
  if (config_.keep_log) log_.record(std::move(rec));

  ++step_;
  ++metrics_.steps;
}

void Cluster::run(std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) step();
}

bool Cluster::run_until_all_healthy_active(std::uint64_t max_steps) {
  for (std::uint64_t i = 0; i < max_steps; ++i) {
    if (all_healthy_in_state(ttpc::CtrlState::kActive)) return true;
    step();
  }
  return all_healthy_in_state(ttpc::CtrlState::kActive);
}

std::size_t Cluster::count_in_state(ttpc::CtrlState s) const {
  std::size_t c = 0;
  for (const auto& node : nodes_) {
    if (node.state().state == s) ++c;
  }
  return c;
}

bool Cluster::all_healthy_in_state(ttpc::CtrlState s) const {
  for (const auto& node : nodes_) {
    if (!node_is_healthy(node.id())) continue;
    if (node.state().state != s) return false;
  }
  return true;
}

std::vector<ttpc::NodeId> Cluster::integrated_then_frozen() const {
  std::vector<ttpc::NodeId> out;
  for (const auto& node : nodes_) {
    if (node.ever_integrated() &&
        node.state().state == ttpc::CtrlState::kFreeze) {
      out.push_back(node.id());
    }
  }
  return out;
}

std::vector<ttpc::NodeId> Cluster::ever_clique_frozen() const {
  std::vector<ttpc::NodeId> out;
  for (const auto& node : nodes_) {
    if (node.ever_clique_frozen()) out.push_back(node.id());
  }
  return out;
}

std::size_t Cluster::healthy_clique_frozen() const {
  std::size_t c = 0;
  for (const auto& node : nodes_) {
    if (node.ever_clique_frozen() && node_is_healthy(node.id())) ++c;
  }
  return c;
}

}  // namespace tta::sim
