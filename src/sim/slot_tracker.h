// Guardian-side slot synchronization.
//
// A guardian (central or local) can only police time windows after it has a
// slot base of its own. Like the nodes, it acquires one by listening: any
// identifiable frame pins the current slot, after which the tracker
// free-runs with the TDMA schedule. Before the first identifiable frame the
// tracker reports "unsynchronized" — the window in which neither topology
// can police timing, which is why startup faults need semantic analysis.
#pragma once

#include <optional>

#include "ttpc/config.h"
#include "ttpc/types.h"

namespace tta::sim {

class SlotTracker {
 public:
  explicit SlotTracker(const ttpc::ProtocolConfig& cfg) : cfg_(cfg) {}

  /// Slot believed current for the *upcoming* step; nullopt if unsynced.
  std::optional<ttpc::SlotNumber> current() const { return slot_; }

  /// Feeds the channel contents observed during one step; must be called
  /// exactly once per step, after the step's traffic is known.
  ///
  /// Policy: pin on the first identifiable frame, then free-run on the
  /// guardian's own (independent) clock. A synced tracker does NOT re-pin on
  /// every frame — otherwise a single frame carrying a wrong slot id would
  /// drag every guardian's window off the real schedule. It re-syncs only
  /// after kResyncThreshold *consecutive* identifiable frames disagree with
  /// its prediction, which lets it follow a genuine cluster restart while
  /// shrugging off isolated bad frames.
  void observe(const ttpc::ChannelFrame& ch0, const ttpc::ChannelFrame& ch1) {
    // Only frames that carry schedule position authoritatively (cold-start
    // round-slot field, explicit C-state) can pin or correct the tracker; a
    // babbling idiot's arbitrary traffic cannot drag the window clock.
    auto sync_id = [](const ttpc::ChannelFrame& f) -> ttpc::SlotNumber {
      if (f.kind == ttpc::FrameKind::kColdStart ||
          f.kind == ttpc::FrameKind::kCState) {
        return f.id;
      }
      return 0;
    };
    ttpc::SlotNumber id = sync_id(ch0);
    if (id == 0) id = sync_id(ch1);
    if (!slot_.has_value()) {
      if (id != 0) slot_ = cfg_.next_slot(id);
      return;
    }
    if (id != 0 && id != *slot_) {
      if (++mismatches_ >= kResyncThreshold) {
        slot_ = cfg_.next_slot(id);
        mismatches_ = 0;
        return;
      }
    } else if (id != 0) {
      mismatches_ = 0;
    }
    slot_ = cfg_.next_slot(*slot_);
  }

  void reset() {
    slot_.reset();
    mismatches_ = 0;
  }

  static constexpr unsigned kResyncThreshold = 2;

 private:
  ttpc::ProtocolConfig cfg_;
  std::optional<ttpc::SlotNumber> slot_;
  unsigned mismatches_ = 0;
};

}  // namespace tta::sim
