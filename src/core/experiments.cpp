#include "core/experiments.h"

#include <cstdio>
#include <optional>

#include "mc/trace_printer.h"
#include "util/table.h"

namespace tta::core {

namespace {

TraceExperiment run_trace(const mc::ModelConfig& cfg) {
  TraceExperiment exp;
  exp.config = cfg;
  mc::TtpcStarModel model(cfg);
  mc::Checker checker(model);
  exp.result = checker.check(mc::no_integrated_node_freezes());
  mc::TracePrinter printer(model);
  exp.narration = printer.narrate(exp.result.trace);
  exp.table = printer.table(exp.result.trace);
  return exp;
}

}  // namespace

std::vector<svc::JobSpec> feature_matrix_jobs(unsigned max_out_of_slot_errors) {
  std::vector<svc::JobSpec> jobs;
  for (guardian::Authority a : guardian::kAllAuthorities) {
    svc::JobSpec spec;
    spec.model.authority = a;
    spec.model.max_out_of_slot_errors = max_out_of_slot_errors;
    spec.property = svc::Property::kNoIntegratedNodeFreezes;
    jobs.push_back(spec);
  }
  return jobs;
}

std::vector<FeatureMatrixRow> run_feature_matrix(
    unsigned max_out_of_slot_errors, svc::VerificationService* service) {
  const std::vector<svc::JobSpec> jobs =
      feature_matrix_jobs(max_out_of_slot_errors);
  std::optional<svc::VerificationService> local;
  if (service == nullptr) service = &local.emplace(svc::ServiceConfig{});
  const std::vector<svc::JobResult> results = service->run_batch(jobs);

  std::vector<FeatureMatrixRow> rows;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const svc::JobResult& res = results[i];
    FeatureMatrixRow row;
    row.authority = jobs[i].model.authority;
    row.holds = res.verdict == mc::Verdict::kHolds;
    row.states = res.stats.states_explored;
    row.transitions = res.stats.transitions;
    row.depth = res.stats.max_depth;
    row.seconds = res.stats.seconds;
    row.trace_len = res.trace.size();
    row.from_cache = res.from_cache;
    rows.push_back(row);
  }
  return rows;
}

std::string render_feature_matrix(const std::vector<FeatureMatrixRow>& rows) {
  util::Table t({"coupler authority", "property", "states", "transitions",
                 "depth", "time [s]", "counterexample"});
  for (const FeatureMatrixRow& r : rows) {
    t.add_row({guardian::to_string(r.authority),
               r.holds ? "HOLDS" : "VIOLATED", std::to_string(r.states),
               std::to_string(r.transitions), std::to_string(r.depth),
               util::Table::num(r.seconds, 3),
               r.holds ? "-" : std::to_string(r.trace_len) + " steps"});
  }
  return t.render();
}

TraceExperiment run_trace_coldstart_duplication() {
  mc::ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = 1;
  return run_trace(cfg);
}

TraceExperiment run_trace_cstate_duplication() {
  mc::ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  cfg.max_out_of_slot_errors = 1;
  cfg.allow_coldstart_duplication = false;
  return run_trace(cfg);
}

TraceExperiment run_trace_unconstrained() {
  mc::ModelConfig cfg;
  cfg.authority = guardian::Authority::kFullShifting;
  return run_trace(cfg);
}

namespace {

struct Scenario {
  std::string name;
  sim::FaultInjector injector;
  std::vector<std::uint64_t> power_on;  ///< empty = default staggered
};

std::vector<Scenario> fault_scenarios() {
  std::vector<Scenario> out;
  {
    out.push_back({"no_fault", {}, {}});
  }
  {
    Scenario s{"babbling_from_power_on", {}, {}};
    s.injector.add(
        sim::NodeFaultWindow{1, sim::NodeFaultMode::kBabbling, 0, UINT64_MAX});
    out.push_back(std::move(s));
  }
  {
    // Babbling that begins once the cluster is up: the classic case local
    // bus guardians were invented for.
    Scenario s{"babbling_steady_state", {}, {}};
    s.injector.add(sim::NodeFaultWindow{1, sim::NodeFaultMode::kBabbling, 100,
                                        UINT64_MAX});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"masquerade_startup", {}, {}};
    s.injector.add(sim::NodeFaultWindow{
        1, sim::NodeFaultMode::kMasqueradeColdStart, 0, UINT64_MAX});
    out.push_back(std::move(s));
  }
  {
    // Late joiner (node 4) integrating while node 1 emits bad C-states; the
    // join offset is chosen so the first frame the joiner can integrate on
    // is the poisoned one (offset 121, see run_integration_vulnerability).
    Scenario s{"bad_cstate_late_join", {}, {0, 1, 2, 121}};
    s.injector.add(sim::NodeFaultWindow{1, sim::NodeFaultMode::kBadCState, 0,
                                        UINT64_MAX});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"sos_value", {}, {}};
    s.injector.add(
        sim::NodeFaultWindow{1, sim::NodeFaultMode::kSosValue, 0, UINT64_MAX});
    out.push_back(std::move(s));
  }
  {
    Scenario s{"sos_time", {}, {}};
    s.injector.add(
        sim::NodeFaultWindow{1, sim::NodeFaultMode::kSosTime, 0, UINT64_MAX});
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<std::pair<sim::Topology, guardian::Authority>>
topology_configs() {
  return {{sim::Topology::kBus, guardian::Authority::kPassive},
          {sim::Topology::kStar, guardian::Authority::kPassive},
          {sim::Topology::kStar, guardian::Authority::kTimeWindows},
          {sim::Topology::kStar, guardian::Authority::kSmallShifting}};
}

}  // namespace

std::vector<TopologyFaultRow> run_topology_fault_matrix(std::uint64_t steps) {
  std::vector<TopologyFaultRow> rows;
  for (const auto& [topo, authority] : topology_configs()) {
    for (const Scenario& scenario : fault_scenarios()) {
      sim::ClusterConfig cfg;
      cfg.topology = topo;
      cfg.guardian.authority = authority;
      cfg.keep_log = false;
      if (!scenario.power_on.empty()) cfg.power_on_steps = scenario.power_on;
      sim::Cluster cluster(cfg, scenario.injector);
      cluster.run(steps);

      TopologyFaultRow row;
      row.scenario = scenario.name;
      row.topology = topo;
      row.authority = authority;
      row.healthy_frozen = cluster.healthy_clique_frozen();
      for (ttpc::NodeId id = 1; id <= cfg.protocol.num_nodes; ++id) {
        if (cluster.node_is_healthy(id) &&
            cluster.node(id).state().state == ttpc::CtrlState::kActive) {
          ++row.healthy_active_at_end;
        }
      }
      row.startup_ok =
          cluster.all_healthy_in_state(ttpc::CtrlState::kActive);
      const sim::ClusterMetrics& m = cluster.metrics();
      row.masquerade_integrations = m.masquerade_integrations;
      row.guardian_blocks = m.guardian_blocks_window +
                            m.guardian_blocks_signal +
                            m.guardian_blocks_masquerade +
                            m.guardian_blocks_bad_cstate;
      row.sos_disagreements = m.sos_disagreements;
      rows.push_back(row);
    }
  }
  return rows;
}

std::string render_topology_fault_matrix(
    const std::vector<TopologyFaultRow>& rows) {
  util::Table t({"scenario", "topology", "authority", "healthy frozen",
                 "healthy active", "masq. integrations", "guardian blocks",
                 "SOS disagreements"});
  for (const TopologyFaultRow& r : rows) {
    t.add_row({r.scenario, sim::to_string(r.topology),
               guardian::to_string(r.authority),
               std::to_string(r.healthy_frozen),
               std::to_string(r.healthy_active_at_end),
               std::to_string(r.masquerade_integrations),
               std::to_string(r.guardian_blocks),
               std::to_string(r.sos_disagreements)});
  }
  return t.render();
}

std::vector<IntegrationVulnerabilityRow> run_integration_vulnerability() {
  std::vector<IntegrationVulnerabilityRow> rows;
  for (const auto& [topo, authority] : topology_configs()) {
    IntegrationVulnerabilityRow row;
    row.topology = topo;
    row.authority = authority;
    for (std::uint64_t off = 120; off < 128; ++off) {
      sim::ClusterConfig cfg;
      cfg.topology = topo;
      cfg.guardian.authority = authority;
      cfg.keep_log = false;
      cfg.power_on_steps = {0, 1, 2, off};
      sim::FaultInjector inj;
      inj.add(sim::NodeFaultWindow{1, sim::NodeFaultMode::kBadCState, 0,
                                   UINT64_MAX});
      sim::Cluster cluster(cfg, std::move(inj));
      cluster.run(400);
      ++row.total;
      bool joined =
          cluster.node(4).state().state == ttpc::CtrlState::kActive &&
          !cluster.node(4).ever_clique_frozen();
      if (!joined) ++row.damaged;
    }
    rows.push_back(row);
  }
  return rows;
}

std::vector<AblationRow> run_authority_ablation() {
  std::vector<FeatureMatrixRow> matrix = run_feature_matrix();
  std::vector<AblationRow> rows;
  for (const FeatureMatrixRow& m : matrix) {
    AblationRow r;
    r.authority = m.authority;
    r.frame_buffering = guardian::can_buffer_frames(m.authority);
    r.sos_protection = guardian::can_reshape_signal(m.authority);
    r.startup_masquerade_protection =
        guardian::can_analyze_semantics(m.authority);
    r.replay_fault_possible =
        guardian::fault_possible(m.authority, guardian::CouplerFault::kOutOfSlot);
    r.property_holds = m.holds;
    rows.push_back(r);
  }
  return rows;
}

std::string render_authority_ablation(const std::vector<AblationRow>& rows) {
  util::Table t({"authority", "mailbox/CAN features", "SOS protection",
                 "startup masquerade protection", "replay fault possible",
                 "single-fault property"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  for (const AblationRow& r : rows) {
    t.add_row({guardian::to_string(r.authority), yn(r.frame_buffering),
               yn(r.sos_protection), yn(r.startup_masquerade_protection),
               yn(r.replay_fault_possible),
               r.property_holds ? "HOLDS" : "VIOLATED"});
  }
  return t.render();
}

}  // namespace tta::core
