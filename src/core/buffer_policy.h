// The buffer-size -> authority mapping that glues the paper's two halves
// together.
//
// Section 5 speaks in authority levels (passive / windows / small shifting /
// full shifting); Section 6 speaks in buffer bits (B_min, B_max). The bridge
// is that capabilities are *bit thresholds*:
//   - active reshaping + gapless forwarding needs  B >= le + rho*f_max (eq 1)
//   - semantic analysis needs the frame's id/C-state fields buffered
//     (SemanticAnalyzer::kInspectionBits)
//   - holding a whole minimum-size frame (B >= f_min) is what makes the
//     coupler a frame store — full-shifting authority, with the replay
//     fault that comes with it. Hence B_max = f_min - 1 (eq 3).
// classify_buffer() turns a concrete bit budget into the induced authority
// level, and buffer_policy_table() sweeps the continuum.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guardian/authority.h"

namespace tta::core {

struct BufferClass {
  std::int64_t buffer_bits = 0;
  bool can_forward_gaplessly = false;  ///< B >= B_min (eq 1)
  bool can_analyze_semantics = false;  ///< B >= inspection threshold
  bool holds_whole_frame = false;      ///< B >= f_min: a frame store
  bool respects_bmax = false;          ///< B <= f_min - 1 (eq 3)
  /// The highest authority level this budget can faithfully implement
  /// without becoming a frame store (kFullShifting once it is one).
  guardian::Authority induced_authority = guardian::Authority::kPassive;
};

struct BufferPolicyParams {
  std::int64_t f_min_bits = 28;
  std::int64_t f_max_bits = 2076;
  unsigned le_bits = 4;
  double rho = 0.0002;
};

/// Classifies one buffer budget against the design parameters.
BufferClass classify_buffer(std::int64_t buffer_bits,
                            const BufferPolicyParams& params);

/// The continuum at the interesting thresholds: 0, the eq-(1) minimum, the
/// semantic-analysis threshold, B_max, f_min, and beyond.
std::vector<BufferClass> buffer_policy_table(const BufferPolicyParams& params);

std::string render_buffer_policy(const std::vector<BufferClass>& rows);

}  // namespace tta::core
