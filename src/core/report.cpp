#include "core/report.h"

#include <cstdio>

#include "analysis/equations.h"
#include "analysis/frame_catalog.h"
#include "analysis/sweep.h"
#include "core/buffer_policy.h"
#include "core/experiments.h"
#include "core/tradeoff.h"
#include "guardian/forwarder.h"
#include "guardian/leaky_bucket.h"
#include "mc/checker.h"
#include "util/table.h"

namespace tta::core {

namespace {

void heading(std::string& out, const char* title) {
  out += "\n## ";
  out += title;
  out += "\n\n";
}

void code_block(std::string& out, const std::string& body) {
  out += "```\n";
  out += body;
  out += "```\n";
}

std::string leaky_bucket_table() {
  util::Table t({"skew [ppm]", "f_max [bits]", "eq(1) B_min", "measured"});
  for (std::int64_t ppm : {100ll, 5'000ll, 50'000ll}) {
    for (std::int64_t f : {76ll, 2076ll, 115'000ll}) {
      util::Rational node(1'000'000 - ppm, 1'000'000);
      util::Rational hub(1'000'000 + ppm, 1'000'000);
      double rho = guardian::relative_rate_difference(node, hub).to_double();
      guardian::BitstreamForwarder fwd(node, hub, wire::LineCoding(4));
      t.add_row({std::to_string(2 * ppm), std::to_string(f),
                 util::Table::num(analysis::min_buffer_bits(4, rho,
                                                            double(f)),
                                  1),
                 std::to_string(fwd.min_buffer_bits(f))});
    }
  }
  return t.render();
}

std::string recoverability_table() {
  util::Table t({"authority", "host awakens", "recoverable", "dead states"});
  for (guardian::Authority a : {guardian::Authority::kSmallShifting,
                                guardian::Authority::kFullShifting}) {
    for (bool reinit : {true, false}) {
      mc::ModelConfig cfg;
      cfg.authority = a;
      cfg.max_out_of_slot_errors = 1;
      cfg.protocol.allow_reinit = reinit;
      mc::TtpcStarModel model(cfg);
      std::size_t n = model.num_nodes();
      auto goal = [n](const mc::WorldState& w) {
        for (std::size_t i = 0; i < n; ++i) {
          if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
        }
        return true;
      };
      auto res =
          mc::Checker(model).check_recoverability(goal, 30'000'000);
      t.add_row({guardian::to_string(a), reinit ? "yes" : "no",
                 res.recoverable_everywhere ? "everywhere" : "NO",
                 std::to_string(res.dead_states)});
    }
  }
  return t.render();
}

}  // namespace

std::string figure3_csv() {
  std::string out = "f_min,f_max,max_clock_ratio\n";
  char buf[64];
  for (const auto& series : analysis::figure3(analysis::Figure3Config{})) {
    for (const auto& p : series.points) {
      std::snprintf(buf, sizeof buf, "%lld,%lld,%.6f\n",
                    static_cast<long long>(series.f_min),
                    static_cast<long long>(p.f_max), p.clock_ratio_limit);
      out += buf;
    }
  }
  return out;
}

std::string generate_report(const ReportOptions& options) {
  std::string out =
      "# Reproduction report — Fault Tolerance Tradeoffs in Moving from "
      "Decentralized to Centralized Embedded Systems (DSN 2004)\n";

  heading(out, "E1 — star-coupler authority vs single-fault property");
  code_block(out, render_feature_matrix(run_feature_matrix()));

  heading(out, "E2 — duplicated cold-start counterexample");
  {
    TraceExperiment exp = run_trace_coldstart_duplication();
    char line[160];
    std::snprintf(line, sizeof line,
                  "%zu steps, %llu states explored, %.3f s\n\n",
                  exp.result.trace.size(),
                  static_cast<unsigned long long>(
                      exp.result.stats.states_explored),
                  exp.result.stats.seconds);
    out += line;
    code_block(out, exp.narration);
  }

  heading(out, "E3 — duplicated C-state counterexample");
  {
    TraceExperiment exp = run_trace_cstate_duplication();
    code_block(out, exp.narration);
  }

  heading(out, "E5 — Figure 3 data (CSV)");
  code_block(out, figure3_csv());

  heading(out, "E6/E7 — Section 6 worked examples");
  code_block(out, analysis::section6_worked_examples());
  code_block(out,
             render_buffer_policy(buffer_policy_table(BufferPolicyParams{})));

  if (options.include_leaky_bucket) {
    heading(out, "E8 — eq. (1) vs bit-clock measurement");
    code_block(out, leaky_bucket_table());
  }

  heading(out, "E9 — bus vs star fault propagation");
  code_block(out,
             render_topology_fault_matrix(
                 run_topology_fault_matrix(options.sim_steps)));

  heading(out, "E10 — authority ablation");
  code_block(out, render_authority_ablation(run_authority_ablation()));

  if (options.include_recoverability) {
    heading(out, "E11 — recoverability (AG EF full operation)");
    code_block(out, recoverability_table());
  }

  return out;
}

}  // namespace tta::core
