// Public API: the engineering-tradeoff calculator of Section 6.
//
// This is the entry point a system architect would use: describe a design
// point (frame-size range, line coding, clock tolerance) and get back the
// guardian buffer bounds, whether the design is feasible at all, and how
// much headroom each parameter has — i.e. the paper's conclusions as a
// queryable object.
#pragma once

#include <cstdint>
#include <string>

#include "guardian/authority.h"

namespace tta::core {

struct DesignPoint {
  std::int64_t f_min_bits = 28;   ///< shortest frame on the network
  std::int64_t f_max_bits = 2076; ///< longest frame on the network
  unsigned le_bits = 4;           ///< line-encoding bits
  double rho = 0.0002;            ///< relative clock-rate difference (eq. 2)
};

struct DesignReport {
  double b_min_bits = 0.0;        ///< eq. (1): buffer the guardian needs
  std::int64_t b_max_bits = 0;    ///< eq. (3): buffer it may have
  bool feasible = false;          ///< B_min <= B_max
  double slack_bits = 0.0;        ///< B_max - B_min (negative if infeasible)
  double max_rho = 0.0;           ///< eq. (7): rho headroom at this f_max
  double max_f_max_bits = 0.0;    ///< eq. (4): frame headroom at this rho
  double max_clock_ratio = 0.0;   ///< eq. (10)
};

class TradeoffAnalyzer {
 public:
  /// Evaluates one design point against the Section 6 constraints.
  static DesignReport analyze(const DesignPoint& point);

  /// The TTP/C design point the paper works through: f_min = 28,
  /// f_max = 2076, le = 4, +-100 ppm crystals.
  static DesignPoint ttpc_default();

  /// Human-readable report block for examples and docs.
  static std::string render(const DesignPoint& point,
                            const DesignReport& report);
};

}  // namespace tta::core
