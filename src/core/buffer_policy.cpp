#include "core/buffer_policy.h"

#include <algorithm>
#include <cmath>

#include "analysis/equations.h"
#include "guardian/semantic.h"
#include "util/table.h"

namespace tta::core {

BufferClass classify_buffer(std::int64_t buffer_bits,
                            const BufferPolicyParams& params) {
  BufferClass c;
  c.buffer_bits = buffer_bits;
  double b_min = analysis::min_buffer_bits(params.le_bits, params.rho,
                                           static_cast<double>(params.f_max_bits));
  c.can_forward_gaplessly = static_cast<double>(buffer_bits) >= b_min;
  c.can_analyze_semantics =
      buffer_bits >= guardian::SemanticAnalyzer::kInspectionBits;
  c.holds_whole_frame = buffer_bits >= params.f_min_bits;
  c.respects_bmax = buffer_bits <= analysis::max_buffer_bits(params.f_min_bits);

  if (c.holds_whole_frame) {
    c.induced_authority = guardian::Authority::kFullShifting;
  } else if (c.can_forward_gaplessly && c.can_analyze_semantics) {
    c.induced_authority = guardian::Authority::kSmallShifting;
  } else if (buffer_bits > 0) {
    c.induced_authority = guardian::Authority::kTimeWindows;
  } else {
    c.induced_authority = guardian::Authority::kPassive;
  }
  return c;
}

std::vector<BufferClass> buffer_policy_table(
    const BufferPolicyParams& params) {
  double b_min = analysis::min_buffer_bits(params.le_bits, params.rho,
                                           static_cast<double>(params.f_max_bits));
  std::vector<std::int64_t> budgets{
      0,
      static_cast<std::int64_t>(std::floor(b_min)),  // just under eq (1)
      static_cast<std::int64_t>(std::ceil(b_min)),
      guardian::SemanticAnalyzer::kInspectionBits,
      analysis::max_buffer_bits(params.f_min_bits),  // B_max
      params.f_min_bits,                             // a frame store
      params.f_max_bits};
  std::sort(budgets.begin(), budgets.end());
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());

  std::vector<BufferClass> rows;
  rows.reserve(budgets.size());
  for (std::int64_t b : budgets) rows.push_back(classify_buffer(b, params));
  return rows;
}

std::string render_buffer_policy(const std::vector<BufferClass>& rows) {
  util::Table t({"buffer [bits]", "gapless forwarding", "semantic analysis",
                 "whole-frame store", "respects B_max", "induced authority"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  for (const BufferClass& c : rows) {
    t.add_row({std::to_string(c.buffer_bits), yn(c.can_forward_gaplessly),
               yn(c.can_analyze_semantics), yn(c.holds_whole_frame),
               yn(c.respects_bmax),
               guardian::to_string(c.induced_authority)});
  }
  return t.render();
}

}  // namespace tta::core
