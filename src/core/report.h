// One-call report generation: runs every experiment and renders a single
// self-contained markdown document (plus CSV blocks for the figure data),
// so downstream users can regenerate the paper's artifact set without
// touching the individual benches.
#pragma once

#include <string>

namespace tta::core {

struct ReportOptions {
  /// Steps per simulated scenario in the fault matrix (larger = slower,
  /// more settled end states).
  std::uint64_t sim_steps = 600;
  /// Include the (slower) recoverability analysis.
  bool include_recoverability = true;
  /// Include the statistical leaky-bucket validation sweep.
  bool include_leaky_bucket = true;
};

/// Runs E1..E11 and renders the full markdown report. Deterministic: same
/// build, same report.
std::string generate_report(const ReportOptions& options = {});

/// CSV for the Figure 3 data (one row per (f_min, f_max) pair), for
/// external plotting.
std::string figure3_csv();

}  // namespace tta::core
