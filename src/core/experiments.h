// One runner per reproduced paper artifact (the E1..E10 index of DESIGN.md).
//
// Benches, examples, and the integration tests all call these, so the exact
// configurations that constitute "the experiment" are defined in one place
// and EXPERIMENTS.md can cite them.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guardian/authority.h"
#include "mc/checker.h"
#include "sim/cluster.h"
#include "svc/service.h"

namespace tta::core {

// ---------------------------------------------------------------- E1 ------

struct FeatureMatrixRow {
  guardian::Authority authority;
  bool holds = false;
  std::uint64_t states = 0;
  std::uint64_t transitions = 0;
  std::uint64_t depth = 0;
  double seconds = 0.0;
  std::size_t trace_len = 0;
  bool from_cache = false;  ///< served by the verification service's cache
};

/// Builds the E1 job batch: the paper's property for all four coupler
/// feature sets (Section 5.2's verification matrix).
std::vector<svc::JobSpec> feature_matrix_jobs(
    unsigned max_out_of_slot_errors = 7);

/// Verifies the paper's property for all four coupler feature sets by
/// running `feature_matrix_jobs` through a verification service. Pass a
/// service to share its result cache across calls; with nullptr a private
/// single-use service is used.
std::vector<FeatureMatrixRow> run_feature_matrix(
    unsigned max_out_of_slot_errors = 7,
    svc::VerificationService* service = nullptr);

std::string render_feature_matrix(const std::vector<FeatureMatrixRow>& rows);

// ------------------------------------------------------------- E2/E3 ------

struct TraceExperiment {
  mc::ModelConfig config;
  mc::CheckResult result;
  std::string narration;
  std::string table;
};

/// E2: full-shifting coupler, at most one out-of-slot error — the
/// duplicated-cold-start counterexample (paper trace 1 setup).
TraceExperiment run_trace_coldstart_duplication();

/// E3: additionally prohibits cold-start duplication — the duplicated
/// C-state counterexample (paper trace 2 setup).
TraceExperiment run_trace_cstate_duplication();

/// Unconstrained full-shifting shortest counterexample (the paper notes the
/// unconstrained shortest trace uses several out-of-slot errors).
TraceExperiment run_trace_unconstrained();

// ---------------------------------------------------------------- E9 ------

struct TopologyFaultRow {
  std::string scenario;
  sim::Topology topology;
  guardian::Authority authority;
  std::size_t healthy_frozen = 0;       ///< healthy nodes ever clique-frozen
  std::size_t healthy_active_at_end = 0;
  bool startup_ok = false;              ///< all healthy nodes reached active
  std::uint64_t masquerade_integrations = 0;
  std::uint64_t guardian_blocks = 0;    ///< all block reasons summed
  std::uint64_t sos_disagreements = 0;
};

/// The bus-vs-star fault-propagation matrix (reproducing the qualitative
/// findings of Ademaj et al. [7] that motivate the paper): babbling idiot,
/// startup masquerade, bad C-state vs a late joiner, SOS value/time — each
/// against bus+local guardians and star at three authority levels.
std::vector<TopologyFaultRow> run_topology_fault_matrix(
    std::uint64_t steps = 600);

std::string render_topology_fault_matrix(
    const std::vector<TopologyFaultRow>& rows);

/// Integration-vulnerability sweep: fraction of late-join offsets (over one
/// TDMA round times two) at which a healthy late joiner is captured/frozen
/// by a bad-C-state sender. Returns {damaged, total} per configuration.
struct IntegrationVulnerabilityRow {
  sim::Topology topology;
  guardian::Authority authority;
  unsigned damaged = 0;
  unsigned total = 0;
};
std::vector<IntegrationVulnerabilityRow> run_integration_vulnerability();

// --------------------------------------------------------------- E10 ------

struct AblationRow {
  guardian::Authority authority;
  bool frame_buffering = false;   ///< mailbox/CAN-emulation features possible
  bool sos_protection = false;
  bool startup_masquerade_protection = false;
  bool replay_fault_possible = false;
  bool property_holds = false;    ///< E1 verdict
};

/// Authority-vs-capability ablation: what each authority level buys and
/// what it costs (Section 6's discussion of why one might buffer frames).
std::vector<AblationRow> run_authority_ablation();

std::string render_authority_ablation(const std::vector<AblationRow>& rows);

}  // namespace tta::core
