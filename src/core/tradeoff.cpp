#include "core/tradeoff.h"

#include <cstdio>

#include "analysis/equations.h"
#include "analysis/frame_catalog.h"

namespace tta::core {

DesignReport TradeoffAnalyzer::analyze(const DesignPoint& point) {
  DesignReport r;
  r.b_min_bits = analysis::min_buffer_bits(
      point.le_bits, point.rho, static_cast<double>(point.f_max_bits));
  r.b_max_bits = analysis::max_buffer_bits(point.f_min_bits);
  r.feasible = r.b_min_bits <= static_cast<double>(r.b_max_bits);
  r.slack_bits = static_cast<double>(r.b_max_bits) - r.b_min_bits;
  r.max_rho =
      analysis::max_rho(point.f_min_bits, point.le_bits, point.f_max_bits);
  if (point.rho > 0.0) {
    r.max_f_max_bits =
        analysis::max_frame_bits(point.f_min_bits, point.le_bits, point.rho);
  }
  r.max_clock_ratio = analysis::max_clock_ratio(
      point.f_max_bits, point.f_min_bits, point.le_bits);
  return r;
}

DesignPoint TradeoffAnalyzer::ttpc_default() {
  DesignPoint p;
  p.f_min_bits = analysis::shortest_frame_bits();
  p.f_max_bits = analysis::longest_frame_bits();
  p.le_bits = analysis::default_line_encoding_bits();
  p.rho = analysis::rho_from_ppm(100.0);
  return p;
}

std::string TradeoffAnalyzer::render(const DesignPoint& point,
                                     const DesignReport& report) {
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "design point: f_min=%lld f_max=%lld le=%u rho=%.6g\n",
                static_cast<long long>(point.f_min_bits),
                static_cast<long long>(point.f_max_bits), point.le_bits,
                point.rho);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  B_min (eq 1) = %.2f bits   B_max (eq 3) = %lld bits   "
                "=> %s (slack %.2f bits)\n",
                report.b_min_bits, static_cast<long long>(report.b_max_bits),
                report.feasible ? "FEASIBLE" : "INFEASIBLE",
                report.slack_bits);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "  headroom: rho <= %.4g (eq 7)   f_max <= %.0f bits (eq 4)  "
                " w_max/w_min <= %.4g (eq 10)\n",
                report.max_rho, report.max_f_max_bits,
                report.max_clock_ratio);
  out += buf;
  return out;
}

}  // namespace tta::core
