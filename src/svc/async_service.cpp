#include "svc/async_service.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <utility>

#include "mc/checkpoint.h"
#include "svc/engine_factory.h"
#include "util/fail_point.h"

namespace tta::svc {

namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool conclusive(mc::Verdict verdict) {
  return verdict == mc::Verdict::kHolds || verdict == mc::Verdict::kViolated;
}

/// A cancelled-before-execution conclusion (cancel() on a queued job, or a
/// cancellation that landed between retry attempts).
JobResult cancelled_result(std::uint64_t digest, Property property) {
  JobResult result;
  result.digest = digest;
  result.property = property;
  result.verdict = mc::Verdict::kInconclusive;
  result.stats.exhausted = false;
  result.stats.cancelled = true;
  return result;
}

JobResult rejected_result(std::uint64_t digest, Property property) {
  JobResult result;
  result.digest = digest;
  result.property = property;
  result.outcome.rejected = true;  // verdict stays kInconclusive
  return result;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kCancelled:
      return "cancelled";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------- Session

Session::Session(AsyncService* service, std::uint64_t id,
                 std::size_t max_open)
    : service_(service),
      id_(id),
      max_open_(max_open),
      // Twice the admission bound: up to max_open_ admitted jobs plus up
      // to max_open_ buffered rejection notices can be in flight at once,
      // so a worker's push can never block or fail.
      stream_(2 * max_open_, &open_) {}

Session::~Session() { stream_.close(); }

void Session::stream_locked(JobHandle handle, JobResult&& result) {
  Metrics& metrics = service_->metrics_;
  switch (stream_.push({handle, std::move(result)})) {
    case util::PushStatus::kOk:
      break;
    case util::PushStatus::kOverflow:
      // Delivered anyway — the stream never drops a concluded verdict for
      // buffer space — but the capacity excursion is worth counting: it
      // means the open-job accounting and the 2x sizing disagreed.
      metrics.stream_overflows.fetch_add(1, std::memory_order_relaxed);
      break;
    case util::PushStatus::kClosed:
      // The only true loss path (a conclusion racing the stream's close);
      // never silent: counted here and reported by drain().
      lost_.fetch_add(1, std::memory_order_relaxed);
      metrics.stream_lost.fetch_add(1, std::memory_order_relaxed);
      return;
  }
  metrics.results_streamed.fetch_add(1, std::memory_order_relaxed);
}

JobHandle Session::submit(const JobSpec& spec, const SubmitOptions& options) {
  const std::uint64_t digest = spec.digest();
  Metrics& metrics = service_->metrics_;

  std::unique_lock<std::mutex> lock(mu_);
  const std::uint64_t seq = next_sequence_++;
  JobHandle handle{digest, seq};

  const std::uint64_t open = open_.load(std::memory_order_relaxed);
  bool admitted = false;
  if (!draining_ && open < max_open_) {
    const JobQueue::Ticket ticket = service_->queue_.admit(
        spec, id_, seq, options.priority, options.tenant, options.weight);
    admitted = ticket.admitted;
  }

  if (admitted) {
    JobRecord record;
    record.spec = spec;
    record.digest = digest;
    record.state = JobState::kQueued;
    if (spec.kind == JobKind::kCampaign) {
      record.board = std::make_shared<CampaignProgressBoard>();
    }
    jobs_.emplace(seq, std::move(record));
    open_.fetch_add(1, std::memory_order_relaxed);
    metrics.jobs_admitted.fetch_add(1, std::memory_order_relaxed);
    lock.unlock();
    // Empty critical section before notify: the queue push above is under
    // the queue's own mutex, so pairing the notify with the workers' wait
    // mutex closes the lost-wakeup window.
    { std::lock_guard<std::mutex> wake(service_->mu_); }
    service_->work_cv_.notify_one();
    return handle;
  }

  // Explicit rejection: stream it (so the caller sees it in order, digest
  // included) while there is room; past 2x max_pending open items even the
  // rejection notice cannot be buffered, so the handle alone reports it.
  // A draining session's stream is (or is about to be) closed, so it can
  // only hard-reject.
  metrics.jobs_rejected.fetch_add(1, std::memory_order_relaxed);
  if (!draining_ && open < 2 * max_open_) {
    JobRecord record;
    record.spec = spec;
    record.digest = digest;
    record.state = JobState::kRejected;
    jobs_.emplace(seq, std::move(record));
    open_.fetch_add(1, std::memory_order_relaxed);
    stream_locked(handle, rejected_result(digest, spec.property));
  } else {
    handle.sequence = 0;
  }
  return handle;
}

bool Session::cancel(const JobHandle& handle) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(handle.sequence);
  if (it == jobs_.end()) return false;
  Session::JobRecord& record = it->second;
  switch (record.state) {
    case JobState::kQueued: {
      // Conclude immediately; the worker that eventually pops the queue
      // entry sees the state change and skips it.
      record.state = JobState::kCancelled;
      record.cancel_requested = true;
      stream_locked(JobHandle{record.digest, it->first},
                    cancelled_result(record.digest, record.spec.property));
      service_->metrics_.jobs_cancelled.fetch_add(1,
                                                  std::memory_order_relaxed);
      return true;
    }
    case JobState::kRunning:
      record.cancel_requested = true;
      if (record.active_token) record.active_token->request_cancel();
      return true;
    case JobState::kDone:
    case JobState::kCancelled:
    case JobState::kRejected:
      return false;
  }
  return false;
}

std::optional<JobProgress> Session::progress(const JobHandle& handle) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(handle.sequence);
  if (it == jobs_.end()) return std::nullopt;
  const JobRecord& record = it->second;
  JobProgress progress;
  progress.state = record.state;
  progress.attempt = record.attempt;
  if (record.board) {
    const CampaignProgressBoard& board = *record.board;
    progress.has_campaign = true;
    progress.campaign_trials =
        board.trials.load(std::memory_order_relaxed);
    progress.campaign_failures =
        board.failures.load(std::memory_order_relaxed);
    progress.campaign_batches =
        board.batches.load(std::memory_order_relaxed);
    progress.campaign_p_hat =
        static_cast<double>(board.p_ppm.load(std::memory_order_relaxed)) /
        1e6;
    progress.campaign_ci_low =
        static_cast<double>(board.low_ppm.load(std::memory_order_relaxed)) /
        1e6;
    progress.campaign_ci_high =
        static_cast<double>(
            board.high_ppm.load(std::memory_order_relaxed)) /
        1e6;
  }
  if (record.state == JobState::kRunning) {
    if (const std::string path = service_->checkpoint_path(record.spec);
        !path.empty()) {
      mc::CheckpointConfig config;
      config.path = path;
      config.binding = record.digest;
      mc::CheckpointPeek peek;
      if (mc::peek_checkpoint(config, &peek)) {
        progress.has_bfs_level = true;
        progress.bfs_level = peek.next_depth;
        progress.checkpoint_states = peek.visited;
      }
    }
  }
  return progress;
}

std::uint64_t Session::drain() {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  Metrics& metrics = service_->metrics_;
  for (auto& [seq, record] : jobs_) {
    if (record.state != JobState::kQueued) continue;
    record.state = JobState::kRejected;
    stream_locked(JobHandle{record.digest, seq},
                  rejected_result(record.digest, record.spec.property));
    metrics.drain_rejected.fetch_add(1, std::memory_order_relaxed);
  }
  idle_cv_.wait(lock, [&] { return running_ == 0; });
  stream_.close();
  return lost_.load(std::memory_order_relaxed);
}

// ----------------------------------------------------------- AsyncService

AsyncService::AsyncService(ServiceConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_capacity),
      queue_(config_.max_pending) {
  if (!config_.cache_dir.empty()) {
    persistent_ = std::make_unique<PersistentCache>(
        PersistentCacheConfig{config_.cache_dir,
                              config_.persistent_compact_after},
        &metrics_);
  }
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
  }
  unsigned workers = config_.workers;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AsyncService::~AsyncService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  // End every live session's stream so blocked consumers wake up.
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, weak] : sessions_) {
    if (std::shared_ptr<Session> session = weak.lock()) {
      session->stream_.close();
    }
  }
}

std::shared_ptr<Session> AsyncService::open_session() {
  std::lock_guard<std::mutex> lock(mu_);
  // Prune sessions dropped by their callers.
  for (auto it = sessions_.begin(); it != sessions_.end();) {
    it = it->second.expired() ? sessions_.erase(it) : std::next(it);
  }
  const std::uint64_t id = next_session_++;
  std::shared_ptr<Session> session(
      new Session(this, id, config_.max_pending));
  sessions_.emplace(id, session);
  metrics_.sessions_opened.fetch_add(1, std::memory_order_relaxed);
  return session;
}

std::shared_ptr<Session> AsyncService::find_session(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.lock();
}

void AsyncService::worker_loop() {
  for (;;) {
    std::optional<JobQueue::Entry> entry;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock,
                    [&] { return stopping_ || queue_.pending() > 0; });
      if (stopping_) return;
      entry = queue_.pop_next();
    }
    if (!entry) continue;  // another worker won the race
    if (std::shared_ptr<Session> session = find_session(entry->session)) {
      run_entry(*entry, session);
    }
    // else: the session was dropped without drain(); its jobs are
    // abandoned by contract.
  }
}

void AsyncService::run_entry(const JobQueue::Entry& entry,
                             const std::shared_ptr<Session>& session) {
  JobSpec attempt_spec;
  std::shared_ptr<CampaignProgressBoard> board;
  {
    std::lock_guard<std::mutex> lock(session->mu_);
    auto it = session->jobs_.find(entry.sequence);
    if (it == session->jobs_.end()) return;
    Session::JobRecord& record = it->second;
    // Cancelled or drain-rejected while queued: its conclusion already
    // streamed.
    if (record.state != JobState::kQueued) return;
    record.state = JobState::kRunning;
    ++session->running_;
    attempt_spec = record.spec;
    board = record.board;
  }

  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
  std::vector<JobOutcome::Attempt> attempts;
  JobResult result;
  bool externally_cancelled = false;
  for (unsigned attempt = 1;; ++attempt) {
    util::CancelToken token =
        attempt_spec.deadline_ms > 0
            ? util::CancelToken::after(
                  std::chrono::milliseconds(attempt_spec.deadline_ms))
            : util::CancelToken();
    {
      std::lock_guard<std::mutex> lock(session->mu_);
      Session::JobRecord& record = session->jobs_.at(entry.sequence);
      record.attempt = attempt;
      if (record.cancel_requested) {
        // cancel() landed before this attempt started.
        result = cancelled_result(entry.digest, attempt_spec.property);
        externally_cancelled = true;
        metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      }
      record.active_token = &token;
    }

    result = process(attempt_spec, entry.admitted_at, &token, board.get());

    bool cancel_requested = false;
    {
      std::lock_guard<std::mutex> lock(session->mu_);
      Session::JobRecord& record = session->jobs_.at(entry.sequence);
      record.active_token = nullptr;
      cancel_requested = record.cancel_requested;
    }
    if (result.from_cache) break;  // cache hits attempt nothing
    attempts.push_back(JobOutcome::Attempt{result.verdict,
                                           result.stats.cancelled,
                                           result.stats.seconds,
                                           attempt_spec.deadline_ms});
    if (result.verdict != mc::Verdict::kInconclusive) break;
    // An externally cancelled job must not retry — the caller asked for it
    // to stop, not for a longer leash. Checked before the attempt bound so
    // a cancelled final attempt still concludes kCancelled, not kDone.
    if (cancel_requested) {
      externally_cancelled = true;
      metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (attempt >= max_attempts) break;

    metrics_.jobs_retried.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.retry.backoff.delay_ms(attempt)));
    if (attempt_spec.deadline_ms > 0) {
      const double escalated = static_cast<double>(attempt_spec.deadline_ms) *
                               config_.retry.deadline_escalation;
      attempt_spec.deadline_ms =
          escalated >= static_cast<double>(UINT32_MAX)
              ? UINT32_MAX
              : static_cast<std::uint32_t>(escalated);
    }
  }
  result.outcome.attempts = std::move(attempts);

  {
    std::lock_guard<std::mutex> lock(session->mu_);
    Session::JobRecord& record = session->jobs_.at(entry.sequence);
    record.state = externally_cancelled ? JobState::kCancelled
                                        : JobState::kDone;
    record.active_token = nullptr;
    --session->running_;
    session->stream_locked(JobHandle{entry.digest, entry.sequence},
                           std::move(result));
  }
  session->idle_cv_.notify_all();
}

JobResult AsyncService::process(
    const JobSpec& spec, std::chrono::steady_clock::time_point admitted_at,
    const util::CancelToken* cancel, CampaignProgressBoard* board) {
  const auto dispatched_at = std::chrono::steady_clock::now();
  const double queue_seconds = seconds_between(admitted_at, dispatched_at);
  metrics_.queue_latency.record_seconds(queue_seconds);

  auto finish_hit = [&](JobResult& result) {
    result.queue_seconds = queue_seconds;
    metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.job_latency.record_seconds(
        seconds_between(dispatched_at, std::chrono::steady_clock::now()));
  };

  const std::uint64_t key = spec.digest();
  JobResult result;
  if (cache_.lookup(key, &result)) {
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    result.from_cache = true;
    finish_hit(result);
    return result;
  }
  metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);

  // LRU missed; the on-disk store may still know the answer (an earlier
  // process computed it, or this one before a crash / restart). The
  // persistent record format carries verification results only, so
  // campaign jobs skip it (their conclusive estimates live in the LRU).
  if (spec.kind == JobKind::kVerify && persistent_ &&
      persistent_->lookup(spec, &result)) {
    metrics_.persistent_hits.fetch_add(1, std::memory_order_relaxed);
    cache_.insert(key, result);  // promote for the rest of the batch
    // A crash can leave the job's wavefront behind even though its verdict
    // reached the journal (insert and remove are not atomic together);
    // since the answer is durable, the checkpoint is garbage.
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      mc::remove_checkpoint(path);
    }
    finish_hit(result);
    return result;
  }

  result = execute(spec, cancel, board);
  result.digest = key;
  result.queue_seconds = queue_seconds;

  // Fail point `svc.attempt`: `error` turns this attempt's conclusive
  // verdict into a spurious kInconclusive — never cached (only conclusive
  // verdicts are), so the retry loop in run_entry re-admits the job like
  // any deadline-bailed attempt; `delay(ms)` has already slept inside the
  // evaluation, modelling a straggler completion.
  if (spec.kind == JobKind::kVerify && conclusive(result.verdict) &&
      util::fail_point("svc.attempt").error()) {
    result.verdict = mc::Verdict::kInconclusive;
    result.trace.clear();
    result.dead_states = 0;
  }

  if (result.has_campaign) {
    metrics_.campaigns_run.fetch_add(1, std::memory_order_relaxed);
    metrics_.campaign_trials.fetch_add(result.campaign.trials,
                                       std::memory_order_relaxed);
    metrics_.campaign_batches.fetch_add(result.campaign.batches,
                                        std::memory_order_relaxed);
    if (result.campaign.conclusive) {
      metrics_.campaigns_conclusive.fetch_add(1, std::memory_order_relaxed);
    }
  }
  metrics_.states_explored.fetch_add(result.stats.states_explored,
                                     std::memory_order_relaxed);
  metrics_.transitions.fetch_add(result.stats.transitions,
                                 std::memory_order_relaxed);
  metrics_.engine_micros.fetch_add(
      static_cast<std::uint64_t>(result.stats.seconds * 1e6),
      std::memory_order_relaxed);
  if (result.stats.cancelled) {
    metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.stats.resumed) {
    metrics_.checkpoint_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.outcome.redundant) {
    metrics_.redundant_runs.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.stats.swarm_workers != 0) {
    metrics_.swarm_races_won.fetch_add(result.stats.swarm_race_won,
                                       std::memory_order_relaxed);
    metrics_.swarm_loser_states.fetch_add(result.stats.swarm_loser_states,
                                          std::memory_order_relaxed);
    metrics_.swarm_cancel_micros.fetch_add(
        static_cast<std::uint64_t>(result.stats.swarm_cancel_seconds * 1e6),
        std::memory_order_relaxed);
  }
  if (result.verdict == mc::Verdict::kEngineDivergence) {
    metrics_.engine_divergence.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
  metrics_.job_latency.record_seconds(
      seconds_between(dispatched_at, std::chrono::steady_clock::now()));

  // Only conclusive verdicts are cacheable: an inconclusive result is a
  // property of this run's deadline/budget, not of the query, and a
  // divergence is a defect report, not an answer.
  if (conclusive(result.verdict)) {
    cache_.insert(key, result);
    if (spec.kind == JobKind::kVerify && persistent_) {
      persistent_->insert(spec, result);
    }
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      mc::remove_checkpoint(path);  // the wavefront served its purpose
    }
  }
  return result;
}

JobResult AsyncService::execute(const JobSpec& spec,
                                const util::CancelToken* cancel,
                                CampaignProgressBoard* board) const {
  if (spec.kind == JobKind::kCampaign) {
    campaign::ProgressFn progress;
    if (board) {
      progress = [board](const campaign::BatchUpdate& update) {
        const campaign::Estimate& est = update.estimate;
        board->trials.store(est.trials, std::memory_order_relaxed);
        board->failures.store(est.failures, std::memory_order_relaxed);
        board->p_ppm.store(static_cast<std::uint64_t>(est.p_hat * 1e6),
                           std::memory_order_relaxed);
        board->low_ppm.store(static_cast<std::uint64_t>(est.ci_low * 1e6),
                             std::memory_order_relaxed);
        board->high_ppm.store(static_cast<std::uint64_t>(est.ci_high * 1e6),
                              std::memory_order_relaxed);
        // Advisory snapshot: a racing reader may mix two adjacent
        // batches' values, which is fine for a progress row. The final
        // estimate travels in the JobResult, not here.
        board->batches.store(update.batches, std::memory_order_relaxed);
      };
    }
    return run_campaign_job(spec, config_, cancel, progress);
  }

  JobResult result;
  result.property = spec.property;

  EngineSelection selection = make_engine(spec, config_);
  result.engine_used = selection.resolved;

  mc::TtpcStarModel model(spec.model);
  const mc::EngineQuery query = make_engine_query(spec, model);

  mc::CheckpointConfig ckpt_config;
  const mc::CheckpointConfig* ckpt = nullptr;
  if (selection.engine->supports_checkpoint()) {
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      ckpt_config.path = path;
      ckpt_config.binding = spec.digest();
      ckpt = &ckpt_config;
    }
  }

  mc::EngineResult engine_result =
      selection.engine->run(model, query, cancel, ckpt);
  result.verdict = engine_result.verdict;
  result.stats = engine_result.stats;
  result.dead_states = engine_result.dead_states;
  result.trace = std::move(engine_result.trace);
  result.outcome.redundant = engine_result.redundant;
  result.outcome.secondary_stats = engine_result.secondary_stats;
  return result;
}

std::string AsyncService::checkpoint_path(const JobSpec& spec) const {
  if (config_.checkpoint_dir.empty()) return {};
  // Campaigns restart from their seed, not a BFS wavefront.
  if (spec.kind == JobKind::kCampaign) return {};
  // Recoverability carries the full edge list, which the checkpoint format
  // deliberately does not (see mc/checkpoint.h) — it re-executes instead.
  // Redundant compositions refuse checkpoints via supports_checkpoint().
  if (spec.property == Property::kRecoverability) return {};
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.ckpt",
                static_cast<unsigned long long>(spec.digest()));
  return config_.checkpoint_dir + "/" + name;
}

}  // namespace tta::svc
