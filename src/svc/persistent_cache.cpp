#include "svc/persistent_cache.h"

#include <cstring>
#include <filesystem>
#include <system_error>
#include <utility>

#include "mc/model.h"
#include "svc/metrics.h"
#include "util/bitpack.h"
#include "util/fail_point.h"

namespace tta::svc {

namespace {

constexpr std::uint8_t kRecordVersion = 1;

/// Little-endian byte serialization, same idiom as mc/checkpoint.cpp.
struct ByteWriter {
  std::vector<std::uint8_t>& out;

  void u8(std::uint8_t v) { out.push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void f64(double v) {
    static_assert(sizeof(double) == sizeof(std::uint64_t));
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void packed(const util::PackedState& p) {
    for (std::size_t i = 0; i < util::kPackedWords; ++i) u64(p.words[i]);
  }
};

struct ByteReader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  bool need(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) ok = false;
    return ok;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p++;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    return v;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  util::PackedState packed() {
    util::PackedState s{};
    for (std::size_t i = 0; i < util::kPackedWords; ++i) s.words[i] = u64();
    return s;
  }
};

}  // namespace

std::vector<std::uint8_t> encode_result(const JobSpec& spec,
                                        const JobResult& result) {
  std::vector<std::uint8_t> out;
  out.reserve(80 + result.trace.size() * util::kPackedWords * 8);
  ByteWriter w{out};
  w.u8(kRecordVersion);
  w.u64(spec.digest());
  w.u8(static_cast<std::uint8_t>(result.property));
  w.u8(static_cast<std::uint8_t>(result.verdict));
  w.u8(static_cast<std::uint8_t>(result.engine_used));
  w.u8(result.stats.exhausted ? 1 : 0);
  w.u64(result.dead_states);
  w.u64(result.stats.states_explored);
  w.u64(result.stats.transitions);
  w.u64(result.stats.max_depth);
  w.u64(result.stats.dedup_skips);
  w.f64(result.stats.seconds);
  // Traces persist as the packed state sequence only: each step's `before`
  // plus the final `after`. Labels are re-derived at decode by replaying
  // through the model, so the record stays model-version-agnostic in
  // layout (a semantic model change simply fails the replay and drops the
  // entry instead of resurrecting a stale counterexample).
  w.u32(static_cast<std::uint32_t>(result.trace.size()));
  if (!result.trace.empty()) {
    mc::TtpcStarModel model(spec.model);
    for (const mc::TraceStep& step : result.trace) {
      w.packed(model.pack(step.before));
    }
    w.packed(model.pack(result.trace.back().after));
  }
  return out;
}

bool decode_result(const JobSpec& spec, const std::uint8_t* data,
                   std::size_t len, JobResult* out) {
  ByteReader r{data, data + len};
  if (r.u8() != kRecordVersion) return false;
  JobResult result;
  result.digest = r.u64();
  result.property = static_cast<Property>(r.u8());
  result.verdict = static_cast<mc::Verdict>(r.u8());
  result.engine_used = static_cast<EngineChoice>(r.u8());
  result.stats.exhausted = r.u8() != 0;
  result.dead_states = r.u64();
  result.stats.states_explored = r.u64();
  result.stats.transitions = r.u64();
  result.stats.max_depth = r.u64();
  result.stats.dedup_skips = r.u64();
  result.stats.seconds = r.f64();
  const std::uint32_t trace_len = r.u32();
  if (!r.ok) return false;

  // Bind the record to the query before trusting it: a digest collision or
  // a misfiled record must miss, not answer.
  if (result.digest != spec.digest()) return false;
  if (result.property != spec.property) return false;
  if (result.verdict != mc::Verdict::kHolds &&
      result.verdict != mc::Verdict::kViolated) {
    return false;
  }

  if (trace_len > 0) {
    std::vector<util::PackedState> states;
    states.reserve(trace_len + 1);
    for (std::uint32_t i = 0; i <= trace_len; ++i) states.push_back(r.packed());
    if (!r.ok) return false;

    mc::TtpcStarModel model(spec.model);
    result.trace.reserve(trace_len);
    for (std::uint32_t i = 0; i < trace_len; ++i) {
      mc::TraceStep step;
      step.before = model.unpack(states[i]);
      bool found = false;
      for (const mc::Successor& succ : model.successors(step.before)) {
        if (model.pack(succ.next) == states[i + 1]) {
          auto [next, label] = model.apply(step.before, succ.choice_code);
          step.label = label;
          step.after = next;
          found = true;
          break;
        }
      }
      if (!found) return false;  // state pair no longer a model transition
      result.trace.push_back(std::move(step));
    }
  }
  if (r.p != r.end) return false;  // trailing bytes: not our record
  *out = std::move(result);
  return true;
}

PersistentCache::PersistentCache(const PersistentCacheConfig& config,
                                 Metrics* metrics)
    : config_(config), metrics_(metrics) {
  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);

  auto load = [this](const std::uint8_t* payload, std::size_t len) {
    // Only the digest (at a fixed offset after the version byte) is needed
    // to index the record; full decode waits until somebody looks it up.
    if (len < 9 || payload[0] != kRecordVersion) {
      ++recovery_.corrupt_records;
      return;
    }
    std::uint64_t digest = 0;
    for (int i = 0; i < 8; ++i) {
      digest |= static_cast<std::uint64_t>(payload[1 + i]) << (8 * i);
    }
    entries_[digest].assign(payload, payload + len);
    ++recovery_.records;
  };

  // Snapshot first, then the journal: later journal records overwrite
  // snapshot entries for the same digest. Damage in either file ends that
  // file's scan but never recovery as a whole.
  accumulate(util::scan_journal(snapshot_path(), load));
  const util::JournalScan jour = util::scan_journal(journal_path(), load);
  accumulate(jour);
  recovery_.entries = entries_.size();

  // Reopening at the valid prefix physically truncates any quarantined
  // journal tail before new records can land after it.
  journal_.open(journal_path(), jour.valid_bytes);

  if (metrics_) {
    metrics_->persistent_recovered.fetch_add(recovery_.entries,
                                             std::memory_order_relaxed);
    metrics_->persistent_corrupt_records.fetch_add(
        recovery_.corrupt_records, std::memory_order_relaxed);
    metrics_->persistent_truncated_records.fetch_add(
        recovery_.truncated_records, std::memory_order_relaxed);
    metrics_->persistent_quarantined_bytes.fetch_add(
        recovery_.quarantined_bytes, std::memory_order_relaxed);
  }
}

PersistentCache::~PersistentCache() {
  std::lock_guard<std::mutex> lock(mu_);
  if (journal_.is_open()) journal_.sync();
}

void PersistentCache::accumulate(const util::JournalScan& scan) {
  recovery_.corrupt_records += scan.corrupt_records;
  recovery_.truncated_records += scan.truncated_records;
  recovery_.quarantined_bytes += scan.quarantined_bytes;
}

std::string PersistentCache::snapshot_path() const {
  return config_.dir + "/cache.snapshot";
}

std::string PersistentCache::journal_path() const {
  return config_.dir + "/cache.journal";
}

std::size_t PersistentCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

bool PersistentCache::lookup(const JobSpec& spec, JobResult* out) {
  const std::uint64_t key = spec.digest();
  std::vector<std::uint8_t> payload;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    payload = it->second;  // decode outside the lock
  }
  JobResult decoded;
  if (!decode_result(spec, payload.data(), payload.size(), &decoded)) {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(key);
    if (metrics_) {
      metrics_->persistent_corrupt_records.fetch_add(
          1, std::memory_order_relaxed);
    }
    return false;
  }
  decoded.from_cache = true;
  decoded.from_persistent = true;
  *out = std::move(decoded);
  return true;
}

void PersistentCache::insert(const JobSpec& spec, const JobResult& result) {
  if (result.verdict != mc::Verdict::kHolds &&
      result.verdict != mc::Verdict::kViolated) {
    return;  // same contract as the LRU: never persist a non-answer
  }
  std::vector<std::uint8_t> payload = encode_result(spec, result);
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(spec.digest());
  if (!inserted && it->second == payload) return;  // re-run of a cached cell
  it->second = std::move(payload);
  // The entry serves from memory either way; what a failed append (ENOSPC,
  // short write, torn-write injection) costs is durability. Count it and
  // immediately try to restore durability by rewriting the snapshot —
  // which also reopens a fresh journal if the writer poisoned itself.
  if (!journal_.is_open() || !journal_.append(it->second)) {
    if (metrics_) {
      metrics_->persistent_io_errors.fetch_add(1, std::memory_order_relaxed);
    }
    compact_locked();
    return;
  }
  if (++appends_since_compact_ >= config_.compact_after_appends) {
    compact_locked();
  }
}

void PersistentCache::compact() {
  std::lock_guard<std::mutex> lock(mu_);
  compact_locked();
}

void PersistentCache::compact_locked() {
  // Any failure below leaves the old snapshot + journal authoritative (the
  // tmp file is discarded, never renamed) and is counted as an io_error;
  // the cache keeps serving from memory and a later insert retries.
  const auto io_error = [this] {
    if (metrics_) {
      metrics_->persistent_io_errors.fetch_add(1, std::memory_order_relaxed);
    }
  };
  const std::string tmp = snapshot_path() + ".tmp";
  {
    util::JournalWriter writer;
    if (!writer.open_fresh(tmp)) return io_error();
    for (const auto& [digest, payload] : entries_) {
      (void)digest;
      if (!writer.append(payload)) return io_error();
    }
    // Publication point: must reach stable storage before the rename.
    if (!writer.sync()) return io_error();
  }
  // Fail point `cache.compact.rename`: a crash between fsync and rename —
  // the fully written tmp snapshot never becomes visible.
  if (util::fail_point("cache.compact.rename").error()) {
    io_error();
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, snapshot_path(), ec);
  if (ec) return io_error();
  // The snapshot now carries every live entry; restart the journal empty.
  journal_.open(journal_path(), 0);
  appends_since_compact_ = 0;
  if (metrics_) {
    metrics_->persistent_compactions.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tta::svc
