// Crash-safe on-disk result store, layered under the in-memory LRU.
//
// The LRU in result_cache.h makes the second pass of a grid O(1) — until
// the process restarts and every cell recomputes. This cache makes
// conclusive verdicts survive the restart: each result is encoded to a
// self-describing record (keyed on JobSpec::digest(), the same stable key
// the LRU uses) and appended to a checksummed journal
// (util::JournalWriter), with periodic compaction into a snapshot file
// published atomically via tmp + rename.
//
// Layout under the cache directory:
//   cache.snapshot   compacted records, rewritten wholesale at compaction
//   cache.journal    records appended since the last compaction
//
// Startup recovery replays snapshot then journal through
// util::scan_journal, which *tolerates and quarantines* damage: a torn or
// CRC-corrupt tail ends the scan, is counted into svc::Metrics, and is
// truncated when the journal reopens — never a crash, never an abort. The
// worst a SIGKILL can cost is the single record that was in flight.
//
// Counterexample traces are persisted as packed state sequences; decode
// re-derives the transition labels by replaying each step through the
// model (which is why lookup/insert take the full JobSpec, not just the
// digest). Only conclusive verdicts (kHolds / kViolated) are stored —
// same contract as the LRU.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "svc/job_spec.h"
#include "svc/result_cache.h"
#include "util/file_journal.h"

namespace tta::svc {

class Metrics;

struct PersistentCacheConfig {
  std::string dir;  ///< created if missing
  /// Journal appends between automatic compactions. Compaction rewrites
  /// every live record, so amortize it over many appends.
  std::size_t compact_after_appends = 1024;
};

class PersistentCache {
 public:
  /// What startup recovery found on disk (also mirrored into Metrics).
  struct RecoveryStats {
    std::uint64_t entries = 0;           ///< distinct results recovered
    std::uint64_t records = 0;           ///< snapshot + journal records read
    std::uint64_t corrupt_records = 0;   ///< CRC-mismatch frames hit
    std::uint64_t truncated_records = 0; ///< torn tail frames hit
    std::uint64_t quarantined_bytes = 0; ///< bytes dropped past valid prefixes
  };

  /// Opens (creating the directory if needed) and recovers. Never throws
  /// on damaged files — damage is quarantined and counted.
  explicit PersistentCache(const PersistentCacheConfig& config,
                           Metrics* metrics = nullptr);
  ~PersistentCache();

  PersistentCache(const PersistentCache&) = delete;
  PersistentCache& operator=(const PersistentCache&) = delete;

  /// On hit, decodes the stored record into *out (from_persistent set) and
  /// returns true. A record that fails to decode (e.g. bit rot that the
  /// frame CRC cannot see because it happened before the append) is
  /// dropped and counted — lookup then misses.
  bool lookup(const JobSpec& spec, JobResult* out);

  /// Stores a conclusive result (kHolds / kViolated; anything else is
  /// ignored). Identical re-inserts are deduplicated and do not grow the
  /// journal. Thread-safe.
  void insert(const JobSpec& spec, const JobResult& result);

  /// Rewrites the snapshot from the live entries and truncates the
  /// journal. Publication is atomic (tmp + rename + fsync); on any write
  /// or fsync failure the old snapshot + journal stay authoritative, the
  /// failure lands in Metrics::persistent_io_errors, and a later insert
  /// retries. insert() also compacts eagerly after a failed journal
  /// append, to win durability back for the record that missed the log.
  void compact();

  std::size_t size() const;
  const RecoveryStats& recovery() const { return recovery_; }
  std::string snapshot_path() const;
  std::string journal_path() const;

 private:
  void accumulate(const util::JournalScan& scan);
  void compact_locked();

  PersistentCacheConfig config_;
  Metrics* metrics_;
  RecoveryStats recovery_;

  mutable std::mutex mu_;
  /// digest -> encoded record payload (decoded lazily on lookup, so a
  /// recovery scan never pays trace-replay cost for entries nobody asks
  /// about).
  std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> entries_;
  util::JournalWriter journal_;
  std::size_t appends_since_compact_ = 0;
};

/// Record codec, exposed for the fault-injection tests. encode produces a
/// version-1 payload; decode validates digest + property binding against
/// `spec` and replays the packed trace through the model to rebuild the
/// labeled steps. Returns false on any mismatch instead of trusting the
/// bytes.
std::vector<std::uint8_t> encode_result(const JobSpec& spec,
                                        const JobResult& result);
bool decode_result(const JobSpec& spec, const std::uint8_t* data,
                   std::size_t len, JobResult* out);

}  // namespace tta::svc
