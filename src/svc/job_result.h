// What the service reports back for one job, and the single definition of
// its JSON wire format.
//
// JobResult carries the answer (verdict, stats, trace); JobOutcome groups
// the how-it-got-there summary — admission rejection, the retry attempt
// history, and the redundant run's second stat block — behind one stable
// to_json(), so both tta_verify_batch output modes (--json and --stream)
// serialize the same bytes for the same job.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mc/checker.h"
#include "svc/job_spec.h"

namespace tta::svc {

/// How a job concluded, beyond the verdict itself.
struct JobOutcome {
  /// One engine invocation in the job's retry history (recorded only for
  /// runs that actually executed — cache hits and rejections attempt
  /// nothing).
  struct Attempt {
    mc::Verdict verdict = mc::Verdict::kInconclusive;
    bool cancelled = false;       ///< the deadline fired / cancel() landed
    double seconds = 0.0;         ///< engine wall time for this attempt
    std::uint32_t deadline_ms = 0;  ///< (escalated) deadline it ran under
  };

  /// Admission refused (session bound or queue bound) or the session
  /// drained before the job ran; the job never executed.
  bool rejected = false;
  /// Produced by the redundant dual-engine composition.
  bool redundant = false;
  /// Attempt history across retries; size > 1 means the job was retried
  /// after an inconclusive attempt.
  std::vector<Attempt> attempts;
  /// Redundant execution only: the cross-checked second engine's stats
  /// (JobResult::stats holds the engine whose answer was adopted).
  mc::CheckStats secondary_stats;

  /// Stable one-line JSON object, e.g.
  ///   {"rejected":0,"redundant":0,"attempts":[{"verdict":"INCONCLUSIVE",
  ///    "cancelled":1,"seconds":0.12,"deadline_ms":120}]}
  /// with a "secondary" stats object appended when redundant.
  std::string to_json() const;
};

/// A campaign job's answer: the Monte Carlo failure-probability estimate
/// with its Wilson interval. Kept as plain counts + doubles (no dependency
/// on campaign/estimate.h) so job_result stays a leaf of the svc layer.
struct CampaignEstimate {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  std::uint64_t batches = 0;
  double p_hat = 0.0;
  double ci_low = 0.0;
  double ci_high = 1.0;
  /// The stopping rule was satisfied (interval narrower than epsilon or
  /// clear of the fail bound); mirrored into the verdict.
  bool conclusive = false;
};

/// Everything the service reports back for one job. For counterexample /
/// witness queries the full trace is retained so callers can narrate it
/// with mc::TracePrinter.
struct JobResult {
  std::uint64_t digest = 0;
  Property property = Property::kNoIntegratedNodeFreezes;
  mc::Verdict verdict = mc::Verdict::kInconclusive;
  bool from_cache = false;
  bool from_persistent = false;  ///< hit served by the on-disk cache
  EngineChoice engine_used = EngineChoice::kSerial;
  mc::CheckStats stats;
  std::uint64_t dead_states = 0;  ///< recoverability only
  std::vector<mc::TraceStep> trace;  ///< counterexample / witness
  double queue_seconds = 0.0;  ///< admission -> dispatch latency
  JobOutcome outcome;
  /// Campaign jobs only: the probability estimate behind the verdict.
  bool has_campaign = false;
  CampaignEstimate campaign;
};

/// The "authority/nN/oosK" config cell used in tables and JSON records;
/// campaign jobs render as "campaign/authority/nN/mM".
std::string config_label(const JobSpec& spec);

// The per-job JSON response row (result_json) and string escaping
// (json_escape) live in svc/wire.h with the rest of the wire grammar.

}  // namespace tta::svc
