// Service-side observability: atomic counters and log-scale latency
// histograms, cheap enough to update from every worker on every job.
//
// Counter updates are relaxed atomics — metrics never synchronize
// anything; dump() is a point-in-time text snapshot in the style of a
// /varz or Prometheus text endpoint, and is what tta_verify_batch prints
// after a batch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace tta::svc {

/// Power-of-two-bucketed histogram over microseconds: bucket i counts
/// samples in [2^i, 2^(i+1)) us, so 30 buckets span 1 us .. ~18 min.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 30;

  void record_seconds(double seconds) {
    const double us = seconds * 1e6;
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && us >= static_cast<double>(2ull << bucket)) {
      ++bucket;
    }
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    // Accumulate in integer microseconds so the mean needs no atomic<double>.
    total_us_.fetch_add(static_cast<std::uint64_t>(us),
                        std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double mean_seconds() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_us_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n) / 1e6;
  }

  /// Smallest bucket upper bound below which at least `quantile` of the
  /// samples fall, in seconds (0 when empty).
  double quantile_seconds(double quantile) const;

  /// One "histogram: 1us:3 2us:10 ..." line; empty buckets omitted.
  std::string render() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_us_{0};
};

class Metrics {
 public:
  // Admission.
  std::atomic<std::uint64_t> jobs_admitted{0};
  std::atomic<std::uint64_t> jobs_rejected{0};
  // Completion.
  std::atomic<std::uint64_t> jobs_completed{0};
  std::atomic<std::uint64_t> jobs_cancelled{0};  ///< deadline / cancel bails
  std::atomic<std::uint64_t> cache_hits{0};
  std::atomic<std::uint64_t> cache_misses{0};
  // Work done by the engines (cache hits contribute nothing here).
  std::atomic<std::uint64_t> states_explored{0};
  std::atomic<std::uint64_t> transitions{0};
  std::atomic<std::uint64_t> engine_micros{0};
  // Persistent (on-disk) cache: hits served, entries recovered at startup,
  // and damage tolerated — corrupt frames, torn tails, quarantined bytes.
  std::atomic<std::uint64_t> persistent_hits{0};
  std::atomic<std::uint64_t> persistent_recovered{0};
  std::atomic<std::uint64_t> persistent_corrupt_records{0};
  std::atomic<std::uint64_t> persistent_truncated_records{0};
  std::atomic<std::uint64_t> persistent_quarantined_bytes{0};
  std::atomic<std::uint64_t> persistent_compactions{0};
  /// Journal appends, fsyncs, or snapshot publications that failed
  /// (ENOSPC, short write, injected faults). Every one was handled — the
  /// result stayed served from memory and durability was re-attempted —
  /// but a nonzero value means the disk is losing writes.
  std::atomic<std::uint64_t> persistent_io_errors{0};
  // Monte Carlo campaign jobs: campaigns executed (cache hits excluded),
  // trials simulated, batch boundaries crossed, and campaigns that reached
  // a conclusive stop (epsilon or a cleared fail bound).
  std::atomic<std::uint64_t> campaigns_run{0};
  std::atomic<std::uint64_t> campaign_trials{0};
  std::atomic<std::uint64_t> campaign_batches{0};
  std::atomic<std::uint64_t> campaigns_conclusive{0};
  // Fault-tolerance machinery: retry re-admissions, redundant dual-engine
  // runs, cross-check disagreements, checkpoint resumes.
  std::atomic<std::uint64_t> jobs_retried{0};
  std::atomic<std::uint64_t> redundant_runs{0};
  std::atomic<std::uint64_t> engine_divergence{0};
  std::atomic<std::uint64_t> checkpoint_resumes{0};
  // Swarm counterexample racing: races where a randomized racer beat the
  // exhaustive sweep to a (replay-validated) violation, states explored by
  // the losing racers across all races, and microseconds spent standing
  // the field down after the shared cancel token tripped.
  std::atomic<std::uint64_t> swarm_races_won{0};
  std::atomic<std::uint64_t> swarm_loser_states{0};
  std::atomic<std::uint64_t> swarm_cancel_micros{0};
  // Async serving: sessions opened, results delivered onto session streams
  // (completions, cancellations, and buffered rejections alike), and jobs
  // rejected by drain() while still queued. stream_overflows counts pushes
  // that exceeded the stream's capacity bound (delivered anyway — a
  // verdict is never dropped for buffer space); stream_lost counts results
  // that could not be delivered because the stream was already closed —
  // the only way a concluded verdict can fail to reach its consumer, and
  // never a silent one (Session::drain() reports the session's share).
  std::atomic<std::uint64_t> sessions_opened{0};
  std::atomic<std::uint64_t> results_streamed{0};
  std::atomic<std::uint64_t> drain_rejected{0};
  std::atomic<std::uint64_t> stream_overflows{0};
  std::atomic<std::uint64_t> stream_lost{0};
  // Network serving (tools/tta_verifyd): connections accepted, protocol
  // lines read and written, malformed request lines answered with an
  // error line, and connections whose session was drained with jobs still
  // unanswered (client disconnect mid-stream or server shutdown).
  std::atomic<std::uint64_t> net_connections{0};
  std::atomic<std::uint64_t> net_lines_in{0};
  std::atomic<std::uint64_t> net_lines_out{0};
  std::atomic<std::uint64_t> net_malformed{0};
  std::atomic<std::uint64_t> net_drains{0};
  /// accept() failures survived (EMFILE/ENFILE/ECONNABORTED, injected
  /// faults): the server logged, backed off, and kept serving.
  std::atomic<std::uint64_t> net_accept_errors{0};
  /// Requests refused at the server's tenant-quota gate — max in-flight
  /// jobs or the aggregate state-budget ceiling (svc::TenantQuota). Every
  /// one was answered with an explicit rejection row; peers' admissions
  /// were unaffected.
  std::atomic<std::uint64_t> net_quota_rejected{0};

  LatencyHistogram queue_latency;  ///< admission -> dispatch
  LatencyHistogram job_latency;    ///< dispatch -> result (incl. cache hits)

  double cache_hit_rate() const {
    const std::uint64_t h = cache_hits.load(std::memory_order_relaxed);
    const std::uint64_t m = cache_misses.load(std::memory_order_relaxed);
    return h + m == 0 ? 0.0
                      : static_cast<double>(h) / static_cast<double>(h + m);
  }

  /// Aggregate engine throughput in states/second across all jobs.
  double states_per_second() const {
    const std::uint64_t us = engine_micros.load(std::memory_order_relaxed);
    return us == 0 ? 0.0
                   : static_cast<double>(
                         states_explored.load(std::memory_order_relaxed)) *
                         1e6 / static_cast<double>(us);
  }

  /// Multi-line text snapshot of every counter and both histograms.
  std::string dump() const;
};

}  // namespace tta::svc
