// The verification job service: the serving layer between callers with
// *families* of parameterized model-checking queries (grids, sweeps,
// batches) and the two reachability engines.
//
// Pipeline per job:
//   admit -> JobQueue (cheapest-estimated-config first) -> ResultCache
//   probe -> engine dispatch on a shared util::ThreadPool -> cache fill ->
//   Metrics.
// Per-job soft deadlines ride a util::CancelToken polled by the engines,
// so an over-deadline job returns an explicit kInconclusive verdict with
// partial statistics — the service never hangs and never fabricates a
// verdict. The design follows the job-oriented frontends of multi-query
// model-checking toolsets (LTSmin's pins frontends): declarative query
// descriptions, pluggable engines, shared result storage.
//
// Fault-tolerance layers (docs/SERVICE.md):
//   * cache_dir enables the crash-safe PersistentCache under the LRU, so
//     conclusive verdicts survive restarts and SIGKILL;
//   * checkpoint_dir enables BFS checkpoint/resume in the engines, so a
//     killed long run resumes at its last level barrier bit-identically;
//   * RetryPolicy re-admits kInconclusive jobs (deadline / budget bails)
//     with exponential backoff and an escalating deadline;
//   * EngineChoice::kRedundant cross-checks both engines' answers and
//     surfaces disagreement as mc::Verdict::kEngineDivergence.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <vector>

#include "svc/job_spec.h"
#include "svc/metrics.h"
#include "svc/persistent_cache.h"
#include "svc/result_cache.h"
#include "util/backoff.h"
#include "util/thread_pool.h"

namespace tta::svc {

/// Re-admission of jobs whose attempt ended kInconclusive — the soft
/// deadline fired or the state budget bailed. Those are properties of the
/// *attempt*, not the query, so a later attempt with a longer leash can
/// still conclude. Retries never change max_states (that is part of the
/// query digest — a different budget is a different query).
struct RetryPolicy {
  /// Total attempts per job including the first; 1 disables retries.
  unsigned max_attempts = 1;
  /// Each retry multiplies the job's soft deadline by this (jobs with no
  /// deadline just rerun and rely on the backoff for changed conditions).
  double deadline_escalation = 2.0;
  /// Deterministic exponential backoff slept between retry rounds.
  util::BackoffPolicy backoff;
};

struct ServiceConfig {
  std::size_t cache_capacity = 256;
  /// Admission bound: jobs beyond this many pending are rejected outright
  /// (an explicit JobResult::rejected, not an error or a hang).
  std::size_t max_pending = 4096;
  /// Concurrent jobs; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Threads given to the parallel engine when a spec leaves it 0. Kept
  /// small by default: job-level parallelism is the primary axis, so the
  /// two multiplied together should stay near the core count.
  unsigned parallel_engine_threads = 2;
  /// EngineChoice::kAuto picks the parallel engine when the estimated
  /// state count exceeds this (small spaces aren't worth the coordination).
  double auto_parallel_threshold = 500'000.0;
  /// Directory for the crash-safe persistent result cache; empty disables
  /// it (in-memory LRU only).
  std::string cache_dir;
  /// Directory for engine BFS checkpoints (one file per job digest); empty
  /// disables checkpoint/resume. Redundant jobs and recoverability queries
  /// never checkpoint — see docs/SERVICE.md.
  std::string checkpoint_dir;
  RetryPolicy retry;
  /// Journal appends between persistent-cache compactions.
  std::size_t persistent_compact_after = 1024;
};

/// Priority queue of admitted jobs, cheapest estimated cost first (the E4
/// state-count model). Running the cheap cells of a grid first maximizes
/// early feedback and keeps the expensive stragglers from head-blocking
/// everything else on the pool.
class JobQueue {
 public:
  struct Entry {
    JobSpec spec;
    std::size_t index = 0;  ///< caller's position in the submitted batch
    std::chrono::steady_clock::time_point admitted_at{};
    double cost = 0.0;
  };

  explicit JobQueue(std::size_t max_pending) : max_pending_(max_pending) {}

  /// False when the queue is at max_pending (admission refused).
  bool admit(const JobSpec& spec, std::size_t index);

  /// Pops the cheapest pending job; nullopt when drained.
  std::optional<Entry> pop_cheapest();

  std::size_t pending() const;

 private:
  struct CostOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      // priority_queue keeps the *largest* on top; invert for cheapest-
      // first, tie-breaking on submission order for determinism.
      return a.cost != b.cost ? a.cost > b.cost : a.index > b.index;
    }
  };

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, CostOrder> queue_;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceConfig config = {});

  /// Runs one job through the caches + engines (+ retries), synchronously.
  /// Equivalent to run_batch({spec})[0].
  JobResult run(const JobSpec& spec);

  /// Runs a batch: admission, cheapest-first dispatch across the worker
  /// pool, retry rounds for inconclusive attempts, results in the caller's
  /// submission order. Every job completes or returns an explicit
  /// rejected / kInconclusive result.
  std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs);

  const ServiceConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  /// Null unless ServiceConfig::cache_dir is set.
  PersistentCache* persistent() { return persistent_.get(); }

 private:
  /// Cache probes + engine dispatch + cache fills + metrics, for one job.
  JobResult process(const JobSpec& spec,
                    std::chrono::steady_clock::time_point admitted_at);

  /// Raw engine dispatch (no cache, no metrics). Fans out to both engines
  /// for EngineChoice::kRedundant.
  JobResult execute(const JobSpec& spec) const;

  /// One engine invocation; `allow_checkpoint` is false inside redundant
  /// fan-out (two engines must not share one checkpoint file).
  JobResult execute_single(const JobSpec& spec, bool allow_checkpoint) const;

  /// Path of the engine checkpoint for `spec`, or "" when disabled.
  std::string checkpoint_path(const JobSpec& spec) const;

  ServiceConfig config_;
  ResultCache cache_;
  Metrics metrics_;
  std::unique_ptr<PersistentCache> persistent_;
  util::ThreadPool pool_;
};

/// Merges the results of a redundant dual-engine run (exposed for tests).
/// Rules: both conclusive and agreeing (verdict + state counts + depth +
/// trace length) -> the serial reference result with the parallel stats
/// attached; both conclusive but disagreeing -> kEngineDivergence with
/// both stat blocks and no trace; exactly one conclusive -> that answer
/// (the redundancy payoff: one stalled engine no longer blocks the job);
/// neither conclusive -> a merged kInconclusive.
JobResult cross_check_results(const JobResult& serial,
                              const JobResult& parallel);

}  // namespace tta::svc
