// Synchronous compatibility shim over the async verification service.
//
// The serving layer proper lives in svc/async_service.h: session-based
// submission, completion-order streaming, per-job cancellation and
// progress, graceful drain. VerificationService wraps exactly one Session
// per batch so existing callers — and the paper's §5.2 grid — keep their
// blocking call-and-return shape with bit-identical results:
//
//   run_batch(jobs): open a session, submit every spec, consume the stream
//   until each submission has answered, drain, and hand the results back in
//   the caller's submission order.
//
// Everything the shim does is expressible in the public async API; nothing
// here touches engines, caches, or the queue directly. New code should use
// AsyncService — this header stays for the one-shot batch idiom.
//
// Fault-tolerance layers (docs/SERVICE.md) are unchanged: the crash-safe
// PersistentCache under the LRU, BFS checkpoint/resume, RetryPolicy
// re-attempts for kInconclusive bails, and EngineChoice::kRedundant
// cross-checking through mc::RedundantEngine.
#pragma once

#include <memory>
#include <vector>

#include "svc/async_service.h"
#include "svc/job_result.h"
#include "svc/job_spec.h"
#include "svc/metrics.h"
#include "svc/persistent_cache.h"
#include "svc/result_cache.h"
#include "svc/service_config.h"

namespace tta::svc {

class VerificationService {
 public:
  explicit VerificationService(ServiceConfig config = {});

  /// Runs one job through the caches + engines (+ retries), synchronously.
  /// Equivalent to run_batch({spec})[0].
  JobResult run(const JobSpec& spec);

  /// Runs a batch: admission, cheapest-first dispatch across the workers,
  /// retry rounds for inconclusive attempts, results in the caller's
  /// submission order. Every job completes or returns an explicit
  /// rejected / kInconclusive result.
  std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs);

  const ServiceConfig& config() const { return async_.config(); }
  Metrics& metrics() { return async_.metrics(); }
  const Metrics& metrics() const { return async_.metrics(); }
  ResultCache& cache() { return async_.cache(); }
  const ResultCache& cache() const { return async_.cache(); }
  /// Null unless ServiceConfig::cache_dir is set.
  PersistentCache* persistent() { return async_.persistent(); }

 private:
  AsyncService async_;
};

}  // namespace tta::svc
