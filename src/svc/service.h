// The verification job service: the serving layer between callers with
// *families* of parameterized model-checking queries (grids, sweeps,
// batches) and the two reachability engines.
//
// Pipeline per job:
//   admit -> JobQueue (cheapest-estimated-config first) -> ResultCache
//   probe -> engine dispatch on a shared util::ThreadPool -> cache fill ->
//   Metrics.
// Per-job soft deadlines ride a util::CancelToken polled by the engines,
// so an over-deadline job returns an explicit kInconclusive verdict with
// partial statistics — the service never hangs and never fabricates a
// verdict. The design follows the job-oriented frontends of multi-query
// model-checking toolsets (LTSmin's pins frontends): declarative query
// descriptions, pluggable engines, shared result storage.
#pragma once

#include <chrono>
#include <cstddef>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "svc/job_spec.h"
#include "svc/metrics.h"
#include "svc/result_cache.h"
#include "util/thread_pool.h"

namespace tta::svc {

struct ServiceConfig {
  std::size_t cache_capacity = 256;
  /// Admission bound: jobs beyond this many pending are rejected outright
  /// (an explicit JobResult::rejected, not an error or a hang).
  std::size_t max_pending = 4096;
  /// Concurrent jobs; 0 = hardware concurrency.
  unsigned workers = 0;
  /// Threads given to the parallel engine when a spec leaves it 0. Kept
  /// small by default: job-level parallelism is the primary axis, so the
  /// two multiplied together should stay near the core count.
  unsigned parallel_engine_threads = 2;
  /// EngineChoice::kAuto picks the parallel engine when the estimated
  /// state count exceeds this (small spaces aren't worth the coordination).
  double auto_parallel_threshold = 500'000.0;
};

/// Priority queue of admitted jobs, cheapest estimated cost first (the E4
/// state-count model). Running the cheap cells of a grid first maximizes
/// early feedback and keeps the expensive stragglers from head-blocking
/// everything else on the pool.
class JobQueue {
 public:
  struct Entry {
    JobSpec spec;
    std::size_t index = 0;  ///< caller's position in the submitted batch
    std::chrono::steady_clock::time_point admitted_at{};
    double cost = 0.0;
  };

  explicit JobQueue(std::size_t max_pending) : max_pending_(max_pending) {}

  /// False when the queue is at max_pending (admission refused).
  bool admit(const JobSpec& spec, std::size_t index);

  /// Pops the cheapest pending job; nullopt when drained.
  std::optional<Entry> pop_cheapest();

  std::size_t pending() const;

 private:
  struct CostOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      // priority_queue keeps the *largest* on top; invert for cheapest-
      // first, tie-breaking on submission order for determinism.
      return a.cost != b.cost ? a.cost > b.cost : a.index > b.index;
    }
  };

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::priority_queue<Entry, std::vector<Entry>, CostOrder> queue_;
};

class VerificationService {
 public:
  explicit VerificationService(ServiceConfig config = {});

  /// Runs one job through the cache + engines, synchronously.
  JobResult run(const JobSpec& spec);

  /// Runs a batch: admission, cheapest-first dispatch across the worker
  /// pool, results in the caller's submission order. Every job completes
  /// or returns an explicit rejected / kInconclusive result.
  std::vector<JobResult> run_batch(const std::vector<JobSpec>& jobs);

  const ServiceConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }

 private:
  /// Cache probe + engine dispatch + cache fill + metrics, for one job.
  JobResult process(const JobSpec& spec,
                    std::chrono::steady_clock::time_point admitted_at);

  /// Raw engine dispatch (no cache, no metrics).
  JobResult execute(const JobSpec& spec) const;

  ServiceConfig config_;
  ResultCache cache_;
  Metrics metrics_;
  util::ThreadPool pool_;
};

}  // namespace tta::svc
