#include "svc/result_stream.h"

namespace tta::svc {

std::optional<StreamedResult> ResultStream::consumed(
    std::optional<StreamedResult> item) {
  if (item && open_) open_->fetch_sub(1, std::memory_order_relaxed);
  return item;
}

std::optional<StreamedResult> ResultStream::try_next() {
  return consumed(queue_.try_pop());
}

std::optional<StreamedResult> ResultStream::next() {
  return consumed(queue_.pop());
}

std::optional<StreamedResult> ResultStream::next(
    std::chrono::milliseconds timeout) {
  return consumed(queue_.pop_for(timeout));
}

}  // namespace tta::svc
