#include "svc/result_stream.h"

namespace tta::svc {

std::optional<StreamedResult> ResultStream::consumed(
    std::optional<StreamedResult> item) {
  if (item && open_) open_->fetch_sub(1, std::memory_order_relaxed);
  return item;
}

std::optional<StreamedResult> ResultStream::try_next() {
  return consumed(queue_.try_pop());
}

std::optional<StreamedResult> ResultStream::next() {
  return consumed(queue_.pop());
}

util::PopStatus ResultStream::next_for(std::chrono::milliseconds timeout,
                                       StreamedResult* out) {
  const util::PopStatus status = queue_.pop_for(timeout, out);
  if (status == util::PopStatus::kItem && open_) {
    open_->fetch_sub(1, std::memory_order_relaxed);
  }
  return status;
}

}  // namespace tta::svc
