// The verification server as a first-class library object: one poll(2)
// event loop (util::EventLoop) serving every connection from a single
// thread, multiplexing all clients onto one svc::AsyncService — its
// fixed-size worker pool, shared job queue, result caches, and metrics.
// tools/tta_verifyd.cpp is a thin main() over this class; the smokes and
// the chaos harness build their server argv through the same
// ServerConfig, so test configs cannot drift from the binary's flags.
//
// Concurrency model (the api_redesign away from thread-per-connection):
// accepting, request parsing, quota admission, and response writing all
// happen on the run() thread; only checker/campaign work happens on the
// AsyncService workers. A slow or idle client costs one fd and its
// buffers — not a thread — so the server comfortably holds 1024+
// concurrent connections (the CI soak step drives 10k through it).
//
// Multi-tenant QoS on top of the event loop:
//   - identity: the wire-level "tenant" request key (svc/wire.h),
//     digest-excluded like "priority" — the same query from any tenant
//     shares one cached result;
//   - quotas: per-tenant max in-flight jobs and an aggregate state-budget
//     ceiling (sum over the tenant's in-flight jobs of max_states for
//     verify jobs, max_trials for campaigns), enforced at admission with
//     explicit rejection rows (Metrics::net_quota_rejected);
//   - fairness: within a priority band, tenant lanes dispatch by deficit
//     round robin proportional to TenantQuota::weight (svc::JobQueue).
//
// Every pre-existing wire contract is preserved: SIGTERM drain-then-
// exit-0 with a final metrics dump, drain-on-disconnect (net_drains),
// malformed-line error rows, campaign progress streaming, and the
// sock.* fail-point sites (docs/SERVICE.md).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/async_service.h"
#include "svc/service_config.h"
#include "util/backoff.h"
#include "util/event_loop.h"
#include "util/socket.h"

namespace tta::svc {

/// One tenant's admission limits and scheduling weight. A zero limit
/// means unlimited; the zero-value quota is the open-door default every
/// pre-tenant client implicitly runs under.
struct TenantQuota {
  std::string name;
  /// Relative share of a priority band under deficit-round-robin dispatch
  /// (>= 1; meaningful only against other tenants in the same band).
  std::uint32_t weight = 1;
  /// Max jobs in flight (submitted, not yet answered); 0 = unlimited.
  std::uint64_t max_in_flight = 0;
  /// Ceiling on the summed requested budget of in-flight jobs —
  /// max_states for verify jobs, max_trials for campaigns; 0 = unlimited.
  std::uint64_t max_state_budget = 0;
};

/// Everything tta_verifyd configures, parseable from its argv and
/// re-emittable as argv (to_args) so harnesses spawn byte-identical
/// configurations.
struct ServerConfig {
  /// TCP port on 127.0.0.1; 0 binds a kernel-assigned ephemeral port.
  std::uint16_t port = 0;
  /// When non-empty, the actually-bound port is written here atomically
  /// (tmp + rename) so scripts can wait for the file.
  std::string port_file;
  /// The wrapped AsyncService's configuration (workers, caches, retries).
  ServiceConfig service;
  /// Per-tenant quota table, keyed by TenantQuota::name.
  std::vector<TenantQuota> tenants;
  /// Template for tenants absent from the table (and for requests with no
  /// "tenant" key, under the name ""). Default: weight 1, no limits.
  TenantQuota default_quota;
  /// Bound on flushing one connection's remaining rows at shutdown.
  std::uint32_t drain_timeout_ms = 30'000;
  /// Backoff schedule for accept-path exhaustion (EMFILE/ENFILE...): the
  /// listener is muted for delay_ms(streak) plus deterministic jitter,
  /// then retried — the pending connection waits in the listen backlog.
  util::BackoffPolicy accept_backoff{5, 2.0, 500};

  /// Parses tta_verifyd argv (argv[0] skipped): --port=N --port-file=F
  /// --workers=N --cache=N --cache-dir=D --checkpoint-dir=D --retries=N
  /// --drain-timeout-ms=N --tenant=NAME:WEIGHT[:MAX_JOBS[:MAX_BUDGET]]
  /// (repeatable) --tenant-default=WEIGHT[:MAX_JOBS[:MAX_BUDGET]].
  /// Returns false and fills *error on an unknown flag or bad value.
  bool from_args(int argc, const char* const* argv, std::string* error);

  /// The inverse: flags for every field that differs from the defaults,
  /// in a stable order, such that from_args(to_args()) round-trips.
  std::vector<std::string> to_args() const;

  /// The usage text tta_verifyd prints (one definition, next to the
  /// grammar it documents).
  static const char* usage();
};

/// The event-driven server. Lifecycle: construct, start() (bind + listen
/// + port file + banner), run() on the serving thread until
/// request_stop() — typically from a SIGTERM handler — then run()
/// returns after draining every connection.
class Server {
 public:
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and listens; writes the port file and prints the listening
  /// banner on success. False + *error on failure.
  bool start(std::string* error);

  /// The actually-bound port (valid after start()).
  std::uint16_t port() const { return bound_port_; }

  /// Serves until request_stop(), then drains: the listener closes, every
  /// connection's session drains (queued jobs become explicit rejection
  /// rows), buffered answers flush to their clients (bounded by
  /// drain_timeout_ms each), and run() returns. Also returns when
  /// start() was never called successfully.
  void run();

  /// Requests the drain-then-return path. Async-signal-safe (one relaxed
  /// atomic store) — call it from a SIGTERM/SIGINT handler.
  void request_stop() { stop_.store(true, std::memory_order_relaxed); }

  AsyncService& service() { return *service_; }
  Metrics& metrics() { return service_->metrics(); }

  /// One "net:tenant:<name>: admitted=N rejected=N in_flight_peak=N" line
  /// per tenant that saw any traffic (the default tenant "" renders as
  /// "default"), appended after Metrics::dump() in the SIGTERM dump.
  /// Tenant gauges are loop-thread state — call only after run() returned
  /// (or before it starts).
  std::string tenant_metrics_dump() const;

  /// Connections served over the server's lifetime — every one was
  /// settled by a drain, on close or at shutdown (the exit banner's
  /// count, matching the historical thread-per-connection tally).
  std::size_t drained_connections() const { return drained_connections_; }

 private:
  /// One job awaiting its result row on some connection.
  struct PendingJob {
    JobSpec spec;
    std::string id;
    JobHandle handle;
    /// Batches already reported in a progress row (campaign jobs only);
    /// a row goes out only when the worker crossed a new boundary.
    std::uint64_t last_batches = 0;
    std::uint32_t tenant = 0;
    std::uint64_t budget = 0;  ///< this job's state-budget contribution
  };

  /// Per-connection state, owned by the loop thread.
  struct Connection {
    explicit Connection(util::LineConn c) : conn(std::move(c)) {}
    util::LineConn conn;
    int fd = -1;  ///< cached: an injected reset closes conn's socket
    std::shared_ptr<Session> session;
    std::chrono::steady_clock::time_point start{};
    std::unordered_map<std::uint64_t, PendingJob> pending;  ///< by sequence
    bool reading = true;   ///< false after half-close / shutdown
    bool broken = false;   ///< read or write side failed
    bool want_write = false;  ///< POLLOUT currently registered
    int lineno = 0;
  };

  /// Live per-tenant admission gauges against one quota, plus lifetime
  /// counters for the per-tenant metrics rows (tenant_metrics_dump).
  struct TenantState {
    TenantQuota quota;
    std::uint64_t in_flight = 0;
    std::uint64_t budget_in_flight = 0;
    std::uint64_t admitted = 0;        ///< requests past the quota gate
    std::uint64_t rejected = 0;        ///< quota rejections (this tenant)
    std::uint64_t in_flight_peak = 0;  ///< high-water mark of in_flight
  };

  double ts_ms(const Connection& c) const;
  std::uint32_t intern_tenant(const std::string& name);
  void accept_ready();
  void enter_accept_backoff(int accept_errno);
  void read_ready(Connection* c);
  void handle_line(Connection* c, const std::string& line);
  void emit(Connection* c, const std::string& row);
  /// Streams progress + concluded-result rows into c's outbound buffer
  /// and flushes what the socket will take; updates POLLOUT interest.
  void pump(Connection* c);
  /// Emits one concluded result (with its final campaign progress row when
  /// owed) and releases the job's quota charge.
  void consume_result(Connection* c, const StreamedResult& item);
  void update_write_interest(Connection* c);
  /// True while some connection still owes answers (poll must tick to
  /// notice worker completions — the stream has no fd).
  bool answers_owed() const;
  /// Closes and forgets a finished/broken connection; broken connections
  /// with unanswered jobs hand their session to the drain reaper.
  void finish(Connection* c);
  void release_quota(const PendingJob& job);
  void shutdown_drain();
  /// Bounded blocking flush of c's outbound bytes (shutdown path only).
  void flush_for(Connection* c, std::uint32_t timeout_ms);
  void reaper_loop();

  ServerConfig config_;
  std::unique_ptr<AsyncService> service_;
  util::Socket listener_;
  std::uint16_t bound_port_ = 0;
  util::EventLoop loop_;
  std::atomic<bool> stop_{false};
  bool started_ = false;

  std::unordered_map<int, std::unique_ptr<Connection>> connections_;
  std::vector<int> finished_;  ///< fds to close after dispatch

  // Tenant interning + gauges; loop-thread only.
  std::unordered_map<std::string, std::uint32_t> tenant_ids_;
  std::vector<TenantState> tenants_;

  // Accept backoff (the 50ms-fixed-sleep bugfix): consecutive accept
  // errors mute the listener until a jittered, exponentially growing
  // deadline. ECONNABORTED never backs off — the next client is healthy.
  unsigned accept_error_streak_ = 0;
  bool accept_muted_ = false;
  std::chrono::steady_clock::time_point accept_resume_{};

  // Zombie-session drain reaper: a broken connection with jobs still
  // running cannot drain() on the loop thread (drain blocks until the
  // running job concludes), so its session is drained here instead.
  std::thread reaper_;
  std::mutex reap_mu_;
  std::condition_variable reap_cv_;
  std::deque<std::shared_ptr<Session>> reap_queue_;
  bool reap_stop_ = false;

  std::size_t drained_connections_ = 0;
};

}  // namespace tta::svc
