// Declarative model-checking query descriptions for the verification job
// service.
//
// A JobSpec is everything needed to reproduce one checker invocation: the
// model configuration, the property to check, an engine choice, a state
// budget, and an optional soft deadline. Two specs that describe the same
// *semantic* query — same model, same property, same budget — have the
// same canonical byte encoding and therefore the same 64-bit digest, which
// is what the result cache is keyed on. Execution hints (engine, thread
// count, deadline) are deliberately excluded from the digest: the serial
// and parallel engines return identical verdicts for identical queries
// (docs/CHECKER.md), so a result computed by either engine satisfies both.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.h"
#include "mc/checker.h"
#include "mc/model.h"

namespace tta::svc {

/// What kind of work a JobSpec describes. Verification jobs run a model
/// checker to an exact verdict; campaign jobs run a Monte Carlo fault
/// campaign (src/campaign) to a probability estimate with a confidence
/// interval. Both kinds flow through the same queue, sessions, caches, and
/// wire protocol.
enum class JobKind : std::uint8_t {
  kVerify = 0,
  kCampaign = 1,
};

const char* to_string(JobKind kind);

/// The queries the service can answer, all in terms of the paper's model.
enum class Property : std::uint8_t {
  /// Section 5.1 safety property: no single coupler fault may force an
  /// integrated node into the freeze state (exhaustive check).
  kNoIntegratedNodeFreezes = 0,
  /// Reachability: can the whole cluster reach the all-active state?
  /// (kViolated means the goal IS reachable, with a shortest witness.)
  kAllActiveReachable = 1,
  /// AG EF all-active: from every reachable state, full operation must
  /// still be reachable (the E11 recoverability analysis).
  kRecoverability = 2,
};

enum class EngineChoice : std::uint8_t {
  kSerial = 0,    ///< single-threaded reference Checker
  kParallel = 1,  ///< level-synchronized ParallelChecker
  kAuto = 2,      ///< service picks by estimated cost
  /// Mirrors the paper's dual star couplers: the same query runs on BOTH
  /// engines concurrently and the verdicts + statistics are cross-checked.
  /// Disagreement surfaces as mc::Verdict::kEngineDivergence — a standing
  /// correctness tripwire for the lock-free table — while one engine
  /// stalling (deadline, budget) is masked by the other's conclusive
  /// answer. Costs roughly the sum of both engines.
  kRedundant = 3,
  /// Counterexample racing: seeded randomized workers (randomized DFS +
  /// shuffled-frontier BFS) race an exhaustive parallel sweep to the first
  /// violation; the winner trips a shared cancel token and the raw trace is
  /// canonicalized through the serial checker, so verdicts, statistics, and
  /// trace lengths match every other engine (docs/CHECKER.md). Fast
  /// time-to-counterexample on VIOLATED configs; HOLDS costs one sweep.
  kSwarm = 4,
};

const char* to_string(Property property);
const char* to_string(EngineChoice engine);

struct JobSpec {
  JobKind kind = JobKind::kVerify;

  // ---- Verification kind (ignored for campaigns).
  mc::ModelConfig model;
  Property property = Property::kNoIntegratedNodeFreezes;
  EngineChoice engine = EngineChoice::kAuto;
  std::uint64_t max_states = 50'000'000;

  // ---- Campaign kind (ignored for verification).
  campaign::CampaignSpec campaign;

  /// Soft deadline in milliseconds; 0 = none. Exceeding it cancels the
  /// engine cooperatively and yields an explicit kInconclusive verdict
  /// with partial statistics — never a hang.
  std::uint32_t deadline_ms = 0;

  /// Threads for the parallel engine; 0 = the service default.
  unsigned threads = 0;

  /// Visited-table backend for the BFS engines ("table" in the JSON
  /// grammar). An execution hint like engine/threads/deadline: both
  /// backends are contractually bit-identical (docs/CHECKER.md), so it is
  /// excluded from canonical_bytes()/digest() and a cached result computed
  /// under either backend satisfies both.
  mc::TableBackend table_backend = mc::TableBackend::kFlat;

  /// Spec-level seed for the swarm engine's per-worker seed derivation
  /// (mc::swarm_worker_seed). An execution hint like engine/threads: the
  /// swarm engine canonicalizes its answer through the serial checker, so
  /// the seed can only move diagnostics, never the verdict or trace —
  /// excluded from canonical_bytes()/digest(). Ignored by other engines.
  std::uint64_t seed = 0;

  /// Canonical little-endian byte encoding of the semantic fields, stable
  /// across processes and builds; starts with a format-version byte so
  /// field additions re-key cleanly. Three formats share the version-byte
  /// space: v1 is the original dual-coupler verification layout (every
  /// digest pinned before couplers became a parameter still holds), v2 is
  /// v1 plus the coupler-count byte (emitted only when num_couplers != 2),
  /// and 0x81 is the campaign encoding (campaign::append_canonical_bytes).
  std::vector<std::uint8_t> canonical_bytes() const;

  /// FNV-1a digest of canonical_bytes() — the result-cache key.
  std::uint64_t digest() const;

  /// Estimated reachable-state count, from the E4 scaling measurements
  /// (bench_mc_perf): ~26x per added node, a buffering-authority factor,
  /// and the fault-alphabet toggles. Used for cheapest-config-first
  /// ordering in the job queue; only the relative order matters.
  double estimated_cost() const;
};

// The JSON-lines grammar that produces JobSpecs (parse_job_line, the wire
// request extensions, and response formatting) lives in svc/wire.h — one
// parser and one formatter for the batch tool, the client, and the server.

}  // namespace tta::svc
