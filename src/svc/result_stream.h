// Completion-order result delivery for async verification sessions.
//
// Each svc::Session owns one ResultStream. Workers push a StreamedResult
// the moment a job concludes (in completion order, not submission order);
// the session's consumer polls try_next() or blocks on next(), optionally
// with a deadline via next_for(). The stream is bounded, but its
// backpressure is exerted at *submission*: a job counts as open from
// submit() until its result is consumed here, and the session rejects
// submissions beyond ServiceConfig::max_pending open jobs — so pushes
// never block a worker, and a slow consumer throttles its own submitters
// instead of the service.
//
// A concluded verdict is never dropped for lack of buffer space: push()
// enqueues past the capacity bound if it must (util::PushStatus::kOverflow,
// counted in Metrics::stream_overflows) and can fail only once the stream
// is closed (kClosed — the session counts the loss and drain() reports it).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "svc/job_result.h"
#include "util/bounded_mpsc.h"

namespace tta::svc {

/// Ticket for one submission: the query's canonical digest plus the
/// session-scoped submission sequence number (1-based; 0 = invalid, from
/// a submission the session could not even buffer a rejection for).
struct JobHandle {
  std::uint64_t digest = 0;
  std::uint64_t sequence = 0;
  bool valid() const { return sequence != 0; }
};

struct StreamedResult {
  JobHandle handle;
  JobResult result;
};

class ResultStream {
 public:
  ResultStream(const ResultStream&) = delete;
  ResultStream& operator=(const ResultStream&) = delete;

  /// Non-blocking poll; nullopt when nothing has concluded yet (or the
  /// stream is exhausted — use next_for() when the distinction matters).
  std::optional<StreamedResult> try_next();

  /// Blocks until a result concludes or the stream ends (drain/close).
  std::optional<StreamedResult> next();

  /// Blocks up to `timeout`. Three-way status, decided atomically with the
  /// pop itself: kItem fills *out, kTimeout means nothing concluded within
  /// the deadline (the stream is still open), kEnded means the stream is
  /// over — closed and fully consumed. No racing exhausted() probe needed.
  util::PopStatus next_for(std::chrono::milliseconds timeout,
                           StreamedResult* out);

  /// Closed (session drained) and fully consumed: no result will ever
  /// arrive again.
  bool exhausted() const { return queue_.exhausted(); }

  /// Results concluded but not yet consumed.
  std::size_t buffered() const { return queue_.size(); }

 private:
  friend class AsyncService;
  friend class Session;

  /// `open` is the owning session's open-job gauge, decremented as results
  /// are consumed (consumption is what frees an admission slot).
  ResultStream(std::size_t capacity, std::atomic<std::uint64_t>* open)
      : queue_(capacity), open_(open) {}

  /// Delivers one concluded result. Never drops for capacity (see the
  /// header comment); kClosed is the only loss and the caller must count
  /// it.
  util::PushStatus push(StreamedResult item) {
    return queue_.push_overflow(std::move(item));
  }
  void close() { queue_.close(); }

  std::optional<StreamedResult> consumed(std::optional<StreamedResult> item);

  util::BoundedMpscQueue<StreamedResult> queue_;
  std::atomic<std::uint64_t>* open_;
};

}  // namespace tta::svc
