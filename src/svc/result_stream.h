// Completion-order result delivery for async verification sessions.
//
// Each svc::Session owns one ResultStream. Workers push a StreamedResult
// the moment a job concludes (in completion order, not submission order);
// the session's consumer polls try_next() or blocks on next(), optionally
// with a deadline. The stream is bounded, but its backpressure is exerted
// at *submission*: a job counts as open from submit() until its result is
// consumed here, and the session rejects submissions beyond
// ServiceConfig::max_pending open jobs — so pushes never block a worker,
// and a slow consumer throttles its own submitters instead of the service.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>

#include "svc/job_result.h"
#include "util/bounded_mpsc.h"

namespace tta::svc {

/// Ticket for one submission: the query's canonical digest plus the
/// session-scoped submission sequence number (1-based; 0 = invalid, from
/// a submission the session could not even buffer a rejection for).
struct JobHandle {
  std::uint64_t digest = 0;
  std::uint64_t sequence = 0;
  bool valid() const { return sequence != 0; }
};

struct StreamedResult {
  JobHandle handle;
  JobResult result;
};

class ResultStream {
 public:
  ResultStream(const ResultStream&) = delete;
  ResultStream& operator=(const ResultStream&) = delete;

  /// Non-blocking poll; nullopt when nothing has concluded yet (or the
  /// stream is exhausted — use exhausted() to tell the two apart).
  std::optional<StreamedResult> try_next();

  /// Blocks until a result concludes or the stream ends (drain/close).
  std::optional<StreamedResult> next();

  /// Blocks up to `timeout`; nullopt on timeout or end-of-stream.
  std::optional<StreamedResult> next(std::chrono::milliseconds timeout);

  /// Closed (session drained) and fully consumed: no result will ever
  /// arrive again.
  bool exhausted() const { return queue_.exhausted(); }

  /// Results concluded but not yet consumed.
  std::size_t buffered() const { return queue_.size(); }

 private:
  friend class AsyncService;
  friend class Session;

  /// `open` is the owning session's open-job gauge, decremented as results
  /// are consumed (consumption is what frees an admission slot).
  ResultStream(std::size_t capacity, std::atomic<std::uint64_t>* open)
      : queue_(capacity), open_(open) {}

  bool push(StreamedResult item) { return queue_.try_push(std::move(item)); }
  void close() { queue_.close(); }

  std::optional<StreamedResult> consumed(std::optional<StreamedResult> item);

  util::BoundedMpscQueue<StreamedResult> queue_;
  std::atomic<std::uint64_t>* open_;
};

}  // namespace tta::svc
