#include "svc/service.h"

#include "mc/parallel_checker.h"
#include "util/cancel_token.h"

namespace tta::svc {

namespace {

mc::Checker<mc::TtpcStarModel>::Goal all_active_goal(
    const mc::TtpcStarModel& model) {
  const std::size_t n = model.num_nodes();
  return [n](const mc::WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

bool JobQueue::admit(const JobSpec& spec, std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= max_pending_) return false;
  queue_.push(Entry{spec, index, std::chrono::steady_clock::now(),
                    spec.estimated_cost()});
  return true;
}

std::optional<JobQueue::Entry> JobQueue::pop_cheapest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Entry top = queue_.top();
  queue_.pop();
  return top;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

VerificationService::VerificationService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.workers) {}

JobResult VerificationService::run(const JobSpec& spec) {
  metrics_.jobs_admitted.fetch_add(1, std::memory_order_relaxed);
  return process(spec, std::chrono::steady_clock::now());
}

std::vector<JobResult> VerificationService::run_batch(
    const std::vector<JobSpec>& jobs) {
  std::vector<JobResult> results(jobs.size());
  JobQueue queue(config_.max_pending);
  std::size_t admitted = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (queue.admit(jobs[i], i)) {
      metrics_.jobs_admitted.fetch_add(1, std::memory_order_relaxed);
      ++admitted;
    } else {
      metrics_.jobs_rejected.fetch_add(1, std::memory_order_relaxed);
      results[i].digest = jobs[i].digest();
      results[i].property = jobs[i].property;
      results[i].rejected = true;  // verdict stays kInconclusive
    }
  }

  // One pool task per admitted job; each task claims the cheapest job
  // still pending at the moment it starts, so dispatch order is cheapest-
  // first while expensive jobs still overlap across workers.
  pool_.run_tasks(admitted, [&](std::size_t) {
    std::optional<JobQueue::Entry> entry = queue.pop_cheapest();
    if (!entry) return;  // can't happen: one task per admitted job
    results[entry->index] = process(entry->spec, entry->admitted_at);
  });
  return results;
}

JobResult VerificationService::process(
    const JobSpec& spec, std::chrono::steady_clock::time_point admitted_at) {
  const auto dispatched_at = std::chrono::steady_clock::now();
  const double queue_seconds = seconds_between(admitted_at, dispatched_at);
  metrics_.queue_latency.record_seconds(queue_seconds);

  const std::uint64_t key = spec.digest();
  JobResult result;
  if (cache_.lookup(key, &result)) {
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    result.from_cache = true;
    result.queue_seconds = queue_seconds;
    metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.job_latency.record_seconds(
        seconds_between(dispatched_at, std::chrono::steady_clock::now()));
    return result;
  }
  metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);

  result = execute(spec);
  result.digest = key;
  result.queue_seconds = queue_seconds;

  metrics_.states_explored.fetch_add(result.stats.states_explored,
                                     std::memory_order_relaxed);
  metrics_.transitions.fetch_add(result.stats.transitions,
                                 std::memory_order_relaxed);
  metrics_.engine_micros.fetch_add(
      static_cast<std::uint64_t>(result.stats.seconds * 1e6),
      std::memory_order_relaxed);
  if (result.stats.cancelled) {
    metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
  metrics_.job_latency.record_seconds(
      seconds_between(dispatched_at, std::chrono::steady_clock::now()));

  // Only conclusive verdicts are cacheable: an inconclusive result is a
  // property of this run's deadline/budget, not of the query.
  if (result.verdict != mc::Verdict::kInconclusive) {
    cache_.insert(key, result);
  }
  return result;
}

JobResult VerificationService::execute(const JobSpec& spec) const {
  JobResult result;
  result.property = spec.property;

  EngineChoice engine = spec.engine;
  if (engine == EngineChoice::kAuto) {
    engine = spec.estimated_cost() >= config_.auto_parallel_threshold
                 ? EngineChoice::kParallel
                 : EngineChoice::kSerial;
  }
  result.engine_used = engine;

  const util::CancelToken token =
      spec.deadline_ms > 0
          ? util::CancelToken::after(
                std::chrono::milliseconds(spec.deadline_ms))
          : util::CancelToken();
  const util::CancelToken* cancel = spec.deadline_ms > 0 ? &token : nullptr;

  mc::TtpcStarModel model(spec.model);
  const unsigned threads =
      spec.threads != 0 ? spec.threads : config_.parallel_engine_threads;

  auto take_check = [&result](mc::CheckResult&& res) {
    result.verdict = res.verdict;
    result.stats = res.stats;
    result.trace = std::move(res.trace);
  };

  switch (spec.property) {
    case Property::kNoIntegratedNodeFreezes: {
      auto violation = mc::no_integrated_node_freezes();
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        take_check(checker.check(violation, spec.max_states, cancel));
      } else {
        take_check(mc::Checker(model).check(violation, spec.max_states,
                                            cancel));
      }
      break;
    }
    case Property::kAllActiveReachable: {
      auto goal = all_active_goal(model);
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        take_check(checker.find_state(goal, spec.max_states, cancel));
      } else {
        take_check(
            mc::Checker(model).find_state(goal, spec.max_states, cancel));
      }
      break;
    }
    case Property::kRecoverability: {
      auto goal = all_active_goal(model);
      mc::RecoverabilityResult res;
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        res = checker.check_recoverability(goal, spec.max_states, cancel);
      } else {
        res = mc::Checker(model).check_recoverability(goal, spec.max_states,
                                                      cancel);
      }
      result.verdict = res.verdict;
      result.stats = res.stats;
      result.dead_states = res.dead_states;
      result.trace = std::move(res.witness);
      break;
    }
  }
  return result;
}

}  // namespace tta::svc
