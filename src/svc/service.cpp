#include "svc/service.h"

#include <unordered_map>
#include <utility>

namespace tta::svc {

VerificationService::VerificationService(ServiceConfig config)
    : async_(std::move(config)) {}

JobResult VerificationService::run(const JobSpec& spec) {
  return run_batch({spec})[0];
}

std::vector<JobResult> VerificationService::run_batch(
    const std::vector<JobSpec>& jobs) {
  std::vector<JobResult> results(jobs.size());

  std::shared_ptr<Session> session = async_.open_session();
  std::unordered_map<std::uint64_t, std::size_t> by_sequence;
  by_sequence.reserve(jobs.size());
  std::size_t expected = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const JobHandle handle = session->submit(jobs[i]);
    if (handle.valid()) {
      by_sequence.emplace(handle.sequence, i);
      ++expected;
    } else {
      // Past the rejection buffer too: synthesize the explicit rejection
      // the stream could not carry.
      results[i].digest = handle.digest;
      results[i].property = jobs[i].property;
      results[i].outcome.rejected = true;  // verdict stays kInconclusive
    }
  }

  while (expected > 0) {
    std::optional<StreamedResult> item = session->results().next();
    if (!item) break;  // stream ended early (service shutdown)
    auto it = by_sequence.find(item->handle.sequence);
    if (it == by_sequence.end()) continue;
    results[it->second] = std::move(item->result);
    --expected;
  }
  session->drain();
  return results;
}

}  // namespace tta::svc
