#include "svc/service.h"

#include <cstdio>
#include <filesystem>
#include <system_error>
#include <thread>

#include "mc/checkpoint.h"
#include "mc/parallel_checker.h"
#include "util/cancel_token.h"

namespace tta::svc {

namespace {

mc::Checker<mc::TtpcStarModel>::Goal all_active_goal(
    const mc::TtpcStarModel& model) {
  const std::size_t n = model.num_nodes();
  return [n](const mc::WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

bool conclusive(mc::Verdict verdict) {
  return verdict == mc::Verdict::kHolds || verdict == mc::Verdict::kViolated;
}

}  // namespace

bool JobQueue::admit(const JobSpec& spec, std::size_t index) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= max_pending_) return false;
  queue_.push(Entry{spec, index, std::chrono::steady_clock::now(),
                    spec.estimated_cost()});
  return true;
}

std::optional<JobQueue::Entry> JobQueue::pop_cheapest() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Entry top = queue_.top();
  queue_.pop();
  return top;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

VerificationService::VerificationService(ServiceConfig config)
    : config_(config),
      cache_(config.cache_capacity),
      pool_(config.workers) {
  if (!config_.cache_dir.empty()) {
    persistent_ = std::make_unique<PersistentCache>(
        PersistentCacheConfig{config_.cache_dir,
                              config_.persistent_compact_after},
        &metrics_);
  }
  if (!config_.checkpoint_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.checkpoint_dir, ec);
  }
}

JobResult VerificationService::run(const JobSpec& spec) {
  return run_batch({spec})[0];
}

std::vector<JobResult> VerificationService::run_batch(
    const std::vector<JobSpec>& jobs) {
  std::vector<JobResult> results(jobs.size());
  // Deadlines escalate across retry rounds; everything else about a spec is
  // immutable (max_states is part of the digest — the query's identity).
  std::vector<JobSpec> attempt_specs = jobs;
  std::vector<std::vector<JobResult::Attempt>> history(jobs.size());

  JobQueue queue(config_.max_pending);
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    if (queue.admit(jobs[i], i)) {
      metrics_.jobs_admitted.fetch_add(1, std::memory_order_relaxed);
      pending.push_back(i);
    } else {
      metrics_.jobs_rejected.fetch_add(1, std::memory_order_relaxed);
      results[i].digest = jobs[i].digest();
      results[i].property = jobs[i].property;
      results[i].rejected = true;  // verdict stays kInconclusive
    }
  }

  const unsigned max_attempts = std::max(1u, config_.retry.max_attempts);
  for (unsigned attempt = 1;; ++attempt) {
    // One pool task per pending job; each task claims the cheapest job
    // still queued at the moment it starts, so dispatch order is cheapest-
    // first while expensive jobs still overlap across workers.
    pool_.run_tasks(pending.size(), [&](std::size_t) {
      std::optional<JobQueue::Entry> entry = queue.pop_cheapest();
      if (!entry) return;  // can't happen: one task per queued job
      results[entry->index] = process(entry->spec, entry->admitted_at);
    });

    std::vector<std::size_t> retry;
    for (std::size_t i : pending) {
      const JobResult& r = results[i];
      if (r.from_cache || r.rejected) continue;
      history[i].push_back(JobResult::Attempt{
          r.verdict, r.stats.cancelled, r.stats.seconds,
          attempt_specs[i].deadline_ms});
      if (r.verdict == mc::Verdict::kInconclusive) retry.push_back(i);
    }
    if (retry.empty() || attempt >= max_attempts) break;

    // Back off before the next round (deterministic — no RNG, no clock
    // reads beyond the sleep itself), then re-admit with a longer leash.
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.retry.backoff.delay_ms(attempt)));
    pending.clear();
    for (std::size_t i : retry) {
      JobSpec& spec = attempt_specs[i];
      if (spec.deadline_ms > 0) {
        const double escalated = static_cast<double>(spec.deadline_ms) *
                                 config_.retry.deadline_escalation;
        spec.deadline_ms = escalated >= static_cast<double>(UINT32_MAX)
                               ? UINT32_MAX
                               : static_cast<std::uint32_t>(escalated);
      }
      if (queue.admit(spec, i)) {
        metrics_.jobs_retried.fetch_add(1, std::memory_order_relaxed);
        pending.push_back(i);
      }
    }
    if (pending.empty()) break;
  }

  for (std::size_t i = 0; i < jobs.size(); ++i) {
    results[i].attempts = std::move(history[i]);
  }
  return results;
}

JobResult VerificationService::process(
    const JobSpec& spec, std::chrono::steady_clock::time_point admitted_at) {
  const auto dispatched_at = std::chrono::steady_clock::now();
  const double queue_seconds = seconds_between(admitted_at, dispatched_at);
  metrics_.queue_latency.record_seconds(queue_seconds);

  auto finish_hit = [&](JobResult& result) {
    result.queue_seconds = queue_seconds;
    metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
    metrics_.job_latency.record_seconds(
        seconds_between(dispatched_at, std::chrono::steady_clock::now()));
  };

  const std::uint64_t key = spec.digest();
  JobResult result;
  if (cache_.lookup(key, &result)) {
    metrics_.cache_hits.fetch_add(1, std::memory_order_relaxed);
    result.from_cache = true;
    finish_hit(result);
    return result;
  }
  metrics_.cache_misses.fetch_add(1, std::memory_order_relaxed);

  // LRU missed; the on-disk store may still know the answer (an earlier
  // process computed it, or this one before a crash / restart).
  if (persistent_ && persistent_->lookup(spec, &result)) {
    metrics_.persistent_hits.fetch_add(1, std::memory_order_relaxed);
    cache_.insert(key, result);  // promote for the rest of the batch
    // A crash can leave the job's wavefront behind even though its verdict
    // reached the journal (insert and remove are not atomic together);
    // since the answer is durable, the checkpoint is garbage.
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      mc::remove_checkpoint(path);
    }
    finish_hit(result);
    return result;
  }

  result = execute(spec);
  result.digest = key;
  result.queue_seconds = queue_seconds;

  metrics_.states_explored.fetch_add(result.stats.states_explored,
                                     std::memory_order_relaxed);
  metrics_.transitions.fetch_add(result.stats.transitions,
                                 std::memory_order_relaxed);
  metrics_.engine_micros.fetch_add(
      static_cast<std::uint64_t>(result.stats.seconds * 1e6),
      std::memory_order_relaxed);
  if (result.stats.cancelled) {
    metrics_.jobs_cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.stats.resumed) {
    metrics_.checkpoint_resumes.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.redundant) {
    metrics_.redundant_runs.fetch_add(1, std::memory_order_relaxed);
  }
  if (result.verdict == mc::Verdict::kEngineDivergence) {
    metrics_.engine_divergence.fetch_add(1, std::memory_order_relaxed);
  }
  metrics_.jobs_completed.fetch_add(1, std::memory_order_relaxed);
  metrics_.job_latency.record_seconds(
      seconds_between(dispatched_at, std::chrono::steady_clock::now()));

  // Only conclusive verdicts are cacheable: an inconclusive result is a
  // property of this run's deadline/budget, not of the query, and a
  // divergence is a defect report, not an answer.
  if (conclusive(result.verdict)) {
    cache_.insert(key, result);
    if (persistent_) persistent_->insert(spec, result);
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      mc::remove_checkpoint(path);  // the wavefront served its purpose
    }
  }
  return result;
}

JobResult VerificationService::execute(const JobSpec& spec) const {
  if (spec.engine != EngineChoice::kRedundant) {
    return execute_single(spec, /*allow_checkpoint=*/true);
  }
  // Redundant fan-out: the same query on both engines, concurrently, each
  // under its own deadline token. Checkpointing is disabled for both —
  // two engines racing on one wavefront file would corrupt it, and
  // per-engine files would let a resumed half diverge for free.
  JobSpec serial_spec = spec;
  serial_spec.engine = EngineChoice::kSerial;
  JobSpec parallel_spec = spec;
  parallel_spec.engine = EngineChoice::kParallel;

  JobResult serial_result;
  std::thread serial_thread([&] {
    serial_result = execute_single(serial_spec, /*allow_checkpoint=*/false);
  });
  JobResult parallel_result =
      execute_single(parallel_spec, /*allow_checkpoint=*/false);
  serial_thread.join();
  return cross_check_results(serial_result, parallel_result);
}

JobResult VerificationService::execute_single(const JobSpec& spec,
                                              bool allow_checkpoint) const {
  JobResult result;
  result.property = spec.property;

  EngineChoice engine = spec.engine;
  if (engine == EngineChoice::kAuto) {
    engine = spec.estimated_cost() >= config_.auto_parallel_threshold
                 ? EngineChoice::kParallel
                 : EngineChoice::kSerial;
  }
  result.engine_used = engine;

  const util::CancelToken token =
      spec.deadline_ms > 0
          ? util::CancelToken::after(
                std::chrono::milliseconds(spec.deadline_ms))
          : util::CancelToken();
  const util::CancelToken* cancel = spec.deadline_ms > 0 ? &token : nullptr;

  mc::CheckpointConfig ckpt_config;
  const mc::CheckpointConfig* ckpt = nullptr;
  if (allow_checkpoint) {
    if (const std::string path = checkpoint_path(spec); !path.empty()) {
      ckpt_config.path = path;
      ckpt_config.binding = spec.digest();
      ckpt = &ckpt_config;
    }
  }

  mc::TtpcStarModel model(spec.model);
  const unsigned threads =
      spec.threads != 0 ? spec.threads : config_.parallel_engine_threads;

  auto take_check = [&result](mc::CheckResult&& res) {
    result.verdict = res.verdict;
    result.stats = res.stats;
    result.trace = std::move(res.trace);
  };

  switch (spec.property) {
    case Property::kNoIntegratedNodeFreezes: {
      auto violation = mc::no_integrated_node_freezes();
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        take_check(checker.check(violation, spec.max_states, cancel, ckpt));
      } else {
        take_check(mc::Checker(model).check(violation, spec.max_states,
                                            cancel, ckpt));
      }
      break;
    }
    case Property::kAllActiveReachable: {
      auto goal = all_active_goal(model);
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        take_check(checker.find_state(goal, spec.max_states, cancel, ckpt));
      } else {
        take_check(mc::Checker(model).find_state(goal, spec.max_states,
                                                 cancel, ckpt));
      }
      break;
    }
    case Property::kRecoverability: {
      auto goal = all_active_goal(model);
      mc::RecoverabilityResult res;
      if (engine == EngineChoice::kParallel) {
        mc::ParallelChecker checker(model, threads);
        res = checker.check_recoverability(goal, spec.max_states, cancel);
      } else {
        res = mc::Checker(model).check_recoverability(goal, spec.max_states,
                                                      cancel);
      }
      result.verdict = res.verdict;
      result.stats = res.stats;
      result.dead_states = res.dead_states;
      result.trace = std::move(res.witness);
      break;
    }
  }
  return result;
}

std::string VerificationService::checkpoint_path(const JobSpec& spec) const {
  if (config_.checkpoint_dir.empty()) return {};
  // Recoverability carries the full edge list, which the checkpoint format
  // deliberately does not (see mc/checkpoint.h) — it re-executes instead.
  if (spec.property == Property::kRecoverability) return {};
  if (spec.engine == EngineChoice::kRedundant) return {};
  char name[32];
  std::snprintf(name, sizeof name, "%016llx.ckpt",
                static_cast<unsigned long long>(spec.digest()));
  return config_.checkpoint_dir + "/" + name;
}

JobResult cross_check_results(const JobResult& serial,
                              const JobResult& parallel) {
  const bool s_ok = conclusive(serial.verdict);
  const bool p_ok = conclusive(parallel.verdict);

  JobResult merged;
  bool serial_primary = true;
  if (s_ok && p_ok) {
    // Both answered: they must agree not just on the verdict but on the
    // whole exploration fingerprint — the engines are contractually
    // bit-identical (docs/CHECKER.md), so any delta means one of them is
    // wrong and the result cannot be trusted.
    const bool agree =
        serial.verdict == parallel.verdict &&
        serial.stats.states_explored == parallel.stats.states_explored &&
        serial.stats.transitions == parallel.stats.transitions &&
        serial.stats.max_depth == parallel.stats.max_depth &&
        serial.dead_states == parallel.dead_states &&
        serial.trace.size() == parallel.trace.size();
    merged = serial;  // the single-threaded reference is the primary
    if (!agree) {
      merged.verdict = mc::Verdict::kEngineDivergence;
      merged.trace.clear();  // neither trace deserves trust
    }
  } else if (s_ok != p_ok) {
    // Exactly one engine concluded (the other hit its deadline or budget):
    // the conclusive answer stands — this is the availability half of the
    // redundancy tradeoff.
    serial_primary = s_ok;
    merged = s_ok ? serial : parallel;
  } else {
    // Neither concluded; report the attempt that got further.
    serial_primary =
        serial.stats.states_explored > parallel.stats.states_explored;
    merged = serial_primary ? serial : parallel;
  }
  merged.redundant = true;
  merged.engine_used = EngineChoice::kRedundant;
  merged.secondary_stats = serial_primary ? parallel.stats : serial.stats;
  return merged;
}

}  // namespace tta::svc
