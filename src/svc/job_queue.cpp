#include "svc/job_queue.h"

namespace tta::svc {

JobQueue::Ticket JobQueue::admit(const JobSpec& spec, std::uint64_t session,
                                 std::uint64_t sequence,
                                 std::int32_t priority) {
  // Canonicalize before the bound check: a rejected job must still report
  // its digest (admission refusal is an explicit result, and callers
  // correlate it with the submitted spec by identity).
  Ticket ticket;
  ticket.digest = spec.digest();
  ticket.cost = spec.estimated_cost();

  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= max_pending_) return ticket;
  queue_.push(Entry{spec, session, sequence, ticket.digest, next_order_++,
                    std::chrono::steady_clock::now(), ticket.cost,
                    priority});
  ticket.admitted = true;
  return ticket;
}

std::optional<JobQueue::Entry> JobQueue::pop_next() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Entry top = queue_.top();
  queue_.pop();
  return top;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

}  // namespace tta::svc
