#include "svc/job_queue.h"

#include <algorithm>

namespace tta::svc {

JobQueue::Ticket JobQueue::admit(const JobSpec& spec, std::uint64_t session,
                                 std::uint64_t sequence,
                                 std::int32_t priority, std::uint32_t tenant,
                                 std::uint32_t weight) {
  // Canonicalize before the bound check: a rejected job must still report
  // its digest (admission refusal is an explicit result, and callers
  // correlate it with the submitted spec by identity).
  Ticket ticket;
  ticket.digest = spec.digest();
  ticket.cost = spec.estimated_cost();

  std::lock_guard<std::mutex> lock(mu_);
  if (pending_ >= max_pending_) return ticket;

  Band& band = bands_[priority];
  auto [it, inserted] = band.lanes.try_emplace(tenant);
  Lane& lane = it->second;
  if (inserted) band.ring.push_back(tenant);
  // Last admission wins: tenant weights come from one configuration table
  // (svc::ServerConfig), so in practice this only updates a re-created
  // lane after the tenant's previous jobs drained.
  lane.weight = std::max<std::uint32_t>(weight, 1);
  lane.jobs.push(Entry{spec, session, sequence, ticket.digest, next_order_++,
                       std::chrono::steady_clock::now(), ticket.cost,
                       priority, tenant});
  ++band.jobs;
  ++pending_;
  ticket.admitted = true;
  return ticket;
}

JobQueue::Entry JobQueue::pop_from_band(Band* band) {
  auto pop_lane = [&](std::size_t ring_index) {
    const std::uint32_t tenant = band->ring[ring_index];
    Lane& lane = band->lanes.at(tenant);
    Entry top = lane.jobs.top();
    lane.jobs.pop();
    lane.deficit -= top.cost;
    --band->jobs;
    if (lane.jobs.empty()) {
      // A drained lane leaves the rotation and forfeits leftover credit —
      // classic DRR active-list semantics: an idle tenant cannot bank
      // bandwidth for later bursts.
      band->lanes.erase(tenant);
      band->ring.erase(band->ring.begin() +
                       static_cast<std::ptrdiff_t>(ring_index));
      if (ring_index < band->cursor) --band->cursor;
      if (band->cursor >= band->ring.size()) band->cursor = 0;
    } else {
      // Stay on this lane: an unspent deficit keeps feeding the same
      // tenant until its credit no longer covers its cheapest job.
      band->cursor = ring_index;
    }
    return top;
  };

  // Single-occupant band: plain cheapest-first, exactly the pre-tenant
  // dispatch order, with no deficit bookkeeping to drift.
  if (band->ring.size() == 1) {
    band->lanes.at(band->ring[0]).deficit = 0.0;
    return pop_lane(0);
  }

  // DRR scan from the cursor: the first lane whose credit covers its
  // cheapest job pops. Admitted costs span ~1e2..5e7, so the quantum is
  // adaptive rather than fixed: when no lane is eligible, every lane gets
  // weight * need, where `need` is the smallest per-weight credit that
  // makes some lane eligible — one refill always suffices, and relative
  // shares stay proportional to the weights.
  for (std::size_t i = 0; i < band->ring.size(); ++i) {
    const std::size_t at = (band->cursor + i) % band->ring.size();
    const Lane& lane = band->lanes.at(band->ring[at]);
    if (lane.deficit >= lane.jobs.top().cost) return pop_lane(at);
  }
  double need = 0.0;
  std::size_t argmin = band->cursor;
  for (std::size_t i = 0; i < band->ring.size(); ++i) {
    const std::size_t at = (band->cursor + i) % band->ring.size();
    const Lane& lane = band->lanes.at(band->ring[at]);
    const double lane_need = (lane.jobs.top().cost - lane.deficit) /
                             static_cast<double>(lane.weight);
    if (i == 0 || lane_need < need) {
      need = lane_need;
      argmin = at;
    }
  }
  for (std::uint32_t tenant : band->ring) {
    Lane& lane = band->lanes.at(tenant);
    lane.deficit += static_cast<double>(lane.weight) * need;
  }
  // Pop the argmin lane directly instead of re-scanning, and clamp its
  // credit up to its cheapest job's cost first: `need` was computed as
  // (cost - deficit) / weight and refilled as weight * need, and that
  // divide-then-multiply can round to a hair under cost - deficit (the
  // documented double-rounding hazard). The clamp adds at most one ulp of
  // credit, makes the lane eligible by construction after exactly one
  // refill, and keeps the deficit from going negative in pop_lane below.
  Lane& winner = band->lanes.at(band->ring[argmin]);
  winner.deficit = std::max(winner.deficit, winner.jobs.top().cost);
  return pop_lane(argmin);
}

std::optional<JobQueue::Entry> JobQueue::pop_next() {
  std::lock_guard<std::mutex> lock(mu_);
  while (!bands_.empty()) {
    const auto band_it = bands_.begin();  // highest priority first
    Band& band = band_it->second;
    if (band.jobs == 0) {
      bands_.erase(band_it);
      continue;
    }
    Entry top = pop_from_band(&band);
    if (band.jobs == 0) bands_.erase(band_it);
    --pending_;
    return top;
  }
  return std::nullopt;
}

std::size_t JobQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_;
}

}  // namespace tta::svc
