// Shared configuration for the verification service front ends — the
// session-based svc::AsyncService and the synchronous shim
// svc::VerificationService layered on top of it (svc/service.h).
#pragma once

#include <cstddef>
#include <string>

#include "util/backoff.h"

namespace tta::svc {

/// Re-admission of jobs whose attempt ended kInconclusive — the soft
/// deadline fired or the state budget bailed. Those are properties of the
/// *attempt*, not the query, so a later attempt with a longer leash can
/// still conclude. Retries never change max_states (that is part of the
/// query digest — a different budget is a different query).
struct RetryPolicy {
  /// Total attempts per job including the first; 1 disables retries.
  unsigned max_attempts = 1;
  /// Each retry multiplies the job's soft deadline by this (jobs with no
  /// deadline just rerun and rely on the backoff for changed conditions).
  double deadline_escalation = 2.0;
  /// Deterministic exponential backoff slept between retry attempts.
  util::BackoffPolicy backoff;
};

struct ServiceConfig {
  std::size_t cache_capacity = 256;
  /// Per-session admission bound: a submission while this many jobs are
  /// *open* (submitted but not yet consumed from the session's result
  /// stream) is rejected outright — an explicit JobOutcome::rejected, not
  /// an error or a hang. Because consumption is what frees a slot, a slow
  /// stream consumer exerts backpressure on its own submitters.
  std::size_t max_pending = 4096;
  /// Dedicated worker threads draining the job queue; 0 = hardware
  /// concurrency. Submitters never run jobs inline.
  unsigned workers = 0;
  /// Threads given to the parallel engine when a spec leaves it 0. Kept
  /// small by default: job-level parallelism is the primary axis, so the
  /// two multiplied together should stay near the core count.
  unsigned parallel_engine_threads = 2;
  /// EngineChoice::kAuto picks the parallel engine when the estimated
  /// state count exceeds this (small spaces aren't worth the coordination).
  double auto_parallel_threshold = 500'000.0;
  /// Directory for the crash-safe persistent result cache; empty disables
  /// it (in-memory LRU only).
  std::string cache_dir;
  /// Directory for engine BFS checkpoints (one file per job digest); empty
  /// disables checkpoint/resume. Redundant jobs and recoverability queries
  /// never checkpoint — see docs/SERVICE.md.
  std::string checkpoint_dir;
  RetryPolicy retry;
  /// Journal appends between persistent-cache compactions.
  std::size_t persistent_compact_after = 1024;
};

}  // namespace tta::svc
