#include "svc/job_result.h"

#include <algorithm>
#include <cstdio>

namespace tta::svc {

namespace {

std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

std::string stats_json(const mc::CheckStats& stats) {
  std::string out = "{";
  out += "\"states\":" + number(stats.states_explored);
  out += ",\"transitions\":" + number(stats.transitions);
  out += ",\"depth\":" + number(stats.max_depth);
  out += ",\"seconds\":" + number(stats.seconds);
  out += ",\"exhausted\":" + number(std::uint64_t{stats.exhausted});
  out += ",\"cancelled\":" + number(std::uint64_t{stats.cancelled});
  out += "}";
  return out;
}

}  // namespace

std::string JobOutcome::to_json() const {
  std::string out = "{";
  out += "\"rejected\":" + number(std::uint64_t{rejected});
  out += ",\"redundant\":" + number(std::uint64_t{redundant});
  out += ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    if (i) out += ",";
    out += "{\"verdict\":\"";
    out += mc::to_string(a.verdict);
    out += "\",\"cancelled\":" + number(std::uint64_t{a.cancelled});
    out += ",\"seconds\":" + number(a.seconds);
    out += ",\"deadline_ms\":" + number(std::uint64_t{a.deadline_ms});
    out += "}";
  }
  out += "]";
  if (redundant) out += ",\"secondary\":" + stats_json(secondary_stats);
  out += "}";
  return out;
}

std::string config_label(const JobSpec& spec) {
  char buf[64];
  if (spec.kind == JobKind::kCampaign) {
    std::snprintf(buf, sizeof buf, "campaign/%s/n%u/m%u",
                  guardian::to_string(spec.campaign.authority),
                  spec.campaign.num_nodes, spec.campaign.num_channels);
  } else {
    std::snprintf(buf, sizeof buf, "%s/n%u/oos%u",
                  guardian::to_string(spec.model.authority),
                  spec.model.protocol.num_nodes,
                  std::min(spec.model.max_out_of_slot_errors, 7u));
  }
  return buf;
}

}  // namespace tta::svc
