#include "svc/job_result.h"

#include <algorithm>
#include <cstdio>

#include "util/digest.h"

namespace tta::svc {

namespace {

std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

std::string stats_json(const mc::CheckStats& stats) {
  std::string out = "{";
  out += "\"states\":" + number(stats.states_explored);
  out += ",\"transitions\":" + number(stats.transitions);
  out += ",\"depth\":" + number(stats.max_depth);
  out += ",\"seconds\":" + number(stats.seconds);
  out += ",\"exhausted\":" + number(std::uint64_t{stats.exhausted});
  out += ",\"cancelled\":" + number(std::uint64_t{stats.cancelled});
  out += "}";
  return out;
}

}  // namespace

std::string JobOutcome::to_json() const {
  std::string out = "{";
  out += "\"rejected\":" + number(std::uint64_t{rejected});
  out += ",\"redundant\":" + number(std::uint64_t{redundant});
  out += ",\"attempts\":[";
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const Attempt& a = attempts[i];
    if (i) out += ",";
    out += "{\"verdict\":\"";
    out += mc::to_string(a.verdict);
    out += "\",\"cancelled\":" + number(std::uint64_t{a.cancelled});
    out += ",\"seconds\":" + number(a.seconds);
    out += ",\"deadline_ms\":" + number(std::uint64_t{a.deadline_ms});
    out += "}";
  }
  out += "]";
  if (redundant) out += ",\"secondary\":" + stats_json(secondary_stats);
  out += "}";
  return out;
}

std::string config_label(const JobSpec& spec) {
  char buf[64];
  if (spec.kind == JobKind::kCampaign) {
    std::snprintf(buf, sizeof buf, "campaign/%s/n%u/m%u",
                  guardian::to_string(spec.campaign.authority),
                  spec.campaign.num_nodes, spec.campaign.num_channels);
  } else {
    std::snprintf(buf, sizeof buf, "%s/n%u/oos%u",
                  guardian::to_string(spec.model.authority),
                  spec.model.protocol.num_nodes,
                  std::min(spec.model.max_out_of_slot_errors, 7u));
  }
  return buf;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_json(const JobSpec& spec, const JobResult& result,
                        unsigned pass, std::uint64_t seq, double ts_ms,
                        const std::string& id) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":\"" + json_escape(id) + "\",";
  out += "\"pass\":" + number(std::uint64_t{pass});
  out += ",\"seq\":" + number(seq);
  out += ",\"ts_ms\":" + number(ts_ms);
  out += ",\"digest\":\"" + util::digest_hex(result.digest) + "\"";
  out += ",\"config\":\"" + config_label(spec) + "\"";
  out += ",\"property\":\"";
  out += to_string(spec.property);
  out += "\",\"engine\":\"";
  out += to_string(result.engine_used);
  out += "\",\"verdict\":\"";
  out += mc::to_string(result.verdict);
  out += "\",\"states\":" + number(result.stats.states_explored);
  out += ",\"transitions\":" + number(result.stats.transitions);
  out += ",\"depth\":" + number(result.stats.max_depth);
  out += ",\"trace_len\":" + number(std::uint64_t{result.trace.size()});
  out += ",\"dead_states\":" + number(result.dead_states);
  out += ",\"engine_seconds\":" + number(result.stats.seconds);
  out += ",\"queue_seconds\":" + number(result.queue_seconds);
  out += ",\"deadline_hit\":" + number(std::uint64_t{result.stats.cancelled});
  out += ",\"from_cache\":" + number(std::uint64_t{result.from_cache});
  out += ",\"from_persistent\":" +
         number(std::uint64_t{result.from_persistent});
  out += ",\"resumed\":" + number(std::uint64_t{result.stats.resumed});
  if (result.has_campaign) {
    const CampaignEstimate& c = result.campaign;
    out += ",\"campaign\":{";
    out += "\"criterion\":\"";
    out += campaign::to_string(spec.campaign.criterion);
    out += "\",\"trials\":" + number(c.trials);
    out += ",\"failures\":" + number(c.failures);
    out += ",\"batches\":" + number(c.batches);
    out += ",\"p_hat\":" + number(c.p_hat);
    out += ",\"ci_low\":" + number(c.ci_low);
    out += ",\"ci_high\":" + number(c.ci_high);
    out += ",\"conclusive\":" + number(std::uint64_t{c.conclusive});
    out += "}";
  }
  out += ",\"outcome\":" + result.outcome.to_json();
  out += "}";
  return out;
}

}  // namespace tta::svc
