// The single point where a JobSpec's EngineChoice becomes an mc::Engine
// object, and where a service Property becomes an mc::EngineQuery.
//
// Everything above this file schedules engines through the uniform
// mc::Engine interface; per-engine branching lives here and nowhere else
// in src/svc. Adding an engine (a TMR tiebreaker, a disk-backed table)
// means one new case in make_engine, not a new arm in every dispatch site.
#pragma once

#include <memory>

#include "campaign/runner.h"
#include "mc/engine.h"
#include "svc/job_result.h"
#include "svc/job_spec.h"
#include "svc/service_config.h"
#include "util/cancel_token.h"

namespace tta::svc {

struct EngineSelection {
  /// The concrete choice after kAuto resolution (never kAuto).
  EngineChoice resolved = EngineChoice::kSerial;
  std::unique_ptr<mc::Engine> engine;
};

/// Builds the engine for `spec`: kAuto resolves by estimated cost against
/// ServiceConfig::auto_parallel_threshold; kRedundant composes the serial
/// reference with a parallel shadow via mc::RedundantEngine.
EngineSelection make_engine(const JobSpec& spec, const ServiceConfig& config);

/// Maps the spec's Property onto the declarative engine query (predicate +
/// kind + budget). `model` is only consulted for its node count; the query
/// does not retain a reference to it.
mc::EngineQuery make_engine_query(const JobSpec& spec,
                                  const mc::TtpcStarModel& model);

/// Runs a campaign-kind JobSpec to a JobResult: resolves the thread count
/// (spec.threads, else ServiceConfig::parallel_engine_threads; <= 1 runs
/// sequentially — results are bit-identical either way), drives
/// campaign::run_campaign, and maps the estimate onto a verdict: a
/// conclusive campaign concludes kHolds iff the estimated failure
/// probability is <= fail_bound_ppm, kViolated otherwise; an exhausted or
/// cancelled campaign stays kInconclusive. `progress` (optional) receives
/// every per-batch update on the calling thread.
JobResult run_campaign_job(const JobSpec& spec, const ServiceConfig& config,
                           const util::CancelToken* cancel,
                           const campaign::ProgressFn& progress = nullptr);

}  // namespace tta::svc
