// Bounded, thread-safe LRU cache of completed verification results.
//
// Keyed on JobSpec::digest(). Parameter grids and sweeps re-hit the same
// (authority, cluster size, fault budget) cells constantly — the three
// non-buffering authorities even share one reachable state space per E1 —
// so a small cache turns the second pass of any grid into O(1) lookups.
// Only *conclusive* results are stored (the service refuses to cache
// kInconclusive: a deadline that fired once should not poison every later
// retry with a cached non-answer).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "svc/job_result.h"

namespace tta::svc {

class ResultCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
  };

  /// `capacity` == 0 disables caching (every lookup misses, inserts drop).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// On hit, copies the entry into *out, promotes it to most-recent, and
  /// counts a hit; on miss counts a miss.
  bool lookup(std::uint64_t key, JobResult* out) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++stats_.misses;
      return false;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++stats_.hits;
    *out = it->second->second;
    return true;
  }

  /// Inserts (or refreshes) a result, evicting the least-recently-used
  /// entry beyond capacity.
  void insert(std::uint64_t key, const JobResult& result) {
    if (capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = result;
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.emplace_front(key, result);
    index_.emplace(key, lru_.begin());
    ++stats_.insertions;
    while (lru_.size() > capacity_) {
      index_.erase(lru_.back().first);
      lru_.pop_back();
      ++stats_.evictions;
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
  }
  std::size_t capacity() const { return capacity_; }

  Stats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  double hit_rate() const {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t total = stats_.hits + stats_.misses;
    return total == 0 ? 0.0
                      : static_cast<double>(stats_.hits) /
                            static_cast<double>(total);
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    lru_.clear();
    index_.clear();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  /// front = most recently used.
  std::list<std::pair<std::uint64_t, JobResult>> lru_;
  std::unordered_map<std::uint64_t,
                     std::list<std::pair<std::uint64_t, JobResult>>::iterator>
      index_;
  Stats stats_;
};

}  // namespace tta::svc
