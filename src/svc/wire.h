// The ONE definition of the service's JSON-lines wire grammar: request
// parsing and response-row formatting for the batch tool, the network
// client, and svc::Server alike. Everything that reads or writes protocol
// bytes goes through this header — the server, tta_verify_batch,
// tta_verify_client, and the smokes share one parser and one formatter
// instead of hand-rolled copies (docs/SERVICE.md, "Wire protocol").
//
// Request lines are single JSON objects in the tta_verify_batch job
// grammar (parse_job_line), optionally extended with the wire-only keys
// described by WireGrammar. Response lines are, in completion order:
//   result    result_json() — one self-contained row per concluded job;
//   progress  progress_row() — campaign estimate snapshots ({"progress":1}
//             rows; result rows never carry the key);
//   error     error_row() — malformed request lines, one row per offense,
//             connection stays up.
#pragma once

#include <cstdint>
#include <string>

#include "svc/job_result.h"
#include "svc/job_spec.h"

namespace tta::svc {

/// The request/response grammar contract in one place: the wire-only
/// request keys and their bounds. Wire-only keys are execution/transport
/// metadata — none of them enters JobSpec::canonical_bytes() or the
/// digest, so the same query under any priority, id, or tenant is the
/// same query and shares one cached result.
struct WireGrammar {
  /// "priority": integer dispatch QoS across every connection of a
  /// server; higher dispatches sooner. |priority| is capped.
  static constexpr const char* kPriorityKey = "priority";
  static constexpr std::int32_t kMaxPriorityMagnitude = 1'000'000;

  /// "id": opaque client tag, echoed verbatim (JSON-escaped) as the
  /// leading field of the job's response rows. "" = absent.
  static constexpr const char* kIdKey = "id";

  /// "tenant": the connection-level identity the server's quota table and
  /// weighted-fair scheduler key on (docs/SERVICE.md, "Multi-tenant
  /// QoS"). "" = the default tenant.
  static constexpr const char* kTenantKey = "tenant";
  static constexpr std::size_t kMaxTenantBytes = 64;
};

/// Parses one JSON-lines job description as read by tta_verify_batch, e.g.
///   {"authority": "full_shifting", "property": "safety", "max_oos": 1,
///    "engine": "parallel", "deadline_ms": 5000}
/// Unknown keys are errors (they are almost always typos) — including the
/// wire-only keys, exactly as the job-file grammar has always treated
/// them. Returns false and fills *error on malformed input.
bool parse_job_line(const std::string& line, JobSpec* spec,
                    std::string* error);

/// One request of the tta_verifyd wire protocol: the tta_verify_batch job
/// grammar plus the WireGrammar keys, none of which is part of the job's
/// identity or digest.
struct WireRequest {
  JobSpec spec;
  /// QoS hint: higher-priority jobs dispatch ahead of lower ones across
  /// every connection of the server (|priority| <= kMaxPriorityMagnitude;
  /// default 0).
  std::int32_t priority = 0;
  /// Opaque client tag, echoed verbatim on the response line ("" = none).
  std::string id;
  /// Tenant identity for quota enforcement and weighted-fair dispatch
  /// ("" = the default tenant). At most kMaxTenantBytes bytes.
  std::string tenant;
};

/// Parses one request line: the parse_job_line grammar extended with the
/// wire-only keys. Same error contract: unknown keys and malformed values
/// fail with *error set.
bool parse_request_line(const std::string& line, WireRequest* request,
                        std::string* error);

/// Client-side inverse of parse_request_line: splices the wire-only keys
/// into an already-validated job line, '{...}' becoming
/// '{..., "priority":N,"id":"...","tenant":"..."}'. Empty id/tenant are
/// omitted. The line must be a parsed-valid job object — the closing
/// brace is real structure, not string content.
std::string decorate_request_line(const std::string& job_line,
                                  std::int32_t priority,
                                  const std::string& id,
                                  const std::string& tenant = std::string());

/// The full per-job JSON-lines record emitted by tta_verify_batch --stream
/// and, line for line, as the tta_verifyd wire response: one self-contained
/// object per concluded job, timestamped (`ts_ms` is milliseconds since the
/// pass / connection started) and ordered by conclusion, e.g.
///   {"pass":1,"seq":3,"ts_ms":41.8,"digest":"...","config":"passive/n4/
///    oos2","property":"safety","engine":"serial","verdict":"HOLDS",...,
///    "outcome":{...}}
/// A non-empty `id` (the wire request's client tag) is echoed as a leading
/// "id" field, JSON-escaped.
std::string result_json(const JobSpec& spec, const JobResult& result,
                        unsigned pass, std::uint64_t seq, double ts_ms,
                        const std::string& id = std::string());

/// The malformed-request response: {"error":"<reason>","line":N}. One bad
/// line costs one answer; the connection stays up.
std::string error_row(const std::string& reason, int lineno);

/// One campaign progress snapshot, streamed between responses: a
/// {"progress":1,...} row per newly completed trial batch carrying the
/// running Wilson interval. `state` is the job's svc::JobState label
/// ("running", "done", ...). Result rows never carry "progress", so
/// clients filter on the key.
struct ProgressRow {
  std::string id;  ///< echoed client tag ("" = omitted)
  std::uint64_t seq = 0;
  double ts_ms = 0.0;
  std::uint64_t digest = 0;
  const char* state = "";
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  std::uint64_t batches = 0;
  double p_hat = 0.0;
  double ci_low = 0.0;
  double ci_high = 1.0;
};

std::string progress_row(const ProgressRow& row);

/// Minimal JSON string escaping (backslash, quote, control characters) for
/// client-supplied tags embedded in response lines.
std::string json_escape(const std::string& raw);

}  // namespace tta::svc
