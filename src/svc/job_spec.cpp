#include "svc/job_spec.h"

#include <algorithm>
#include <cmath>

#include "util/digest.h"

namespace tta::svc {

const char* to_string(JobKind kind) {
  switch (kind) {
    case JobKind::kVerify: return "verify";
    case JobKind::kCampaign: return "campaign";
  }
  return "?";
}

const char* to_string(Property property) {
  switch (property) {
    case Property::kNoIntegratedNodeFreezes: return "safety";
    case Property::kAllActiveReachable: return "reach_all_active";
    case Property::kRecoverability: return "recoverability";
  }
  return "?";
}

const char* to_string(EngineChoice engine) {
  switch (engine) {
    case EngineChoice::kSerial: return "serial";
    case EngineChoice::kParallel: return "parallel";
    case EngineChoice::kAuto: return "auto";
    case EngineChoice::kRedundant: return "redundant";
    case EngineChoice::kSwarm: return "swarm";
  }
  return "?";
}

std::vector<std::uint8_t> JobSpec::canonical_bytes() const {
  // Every semantic field, fixed order, fixed width; bools as one byte
  // each. Execution hints (engine, threads, deadline) are intentionally
  // absent — see the header comment.
  std::vector<std::uint8_t> out;
  out.reserve(32);
  auto u8 = [&out](std::uint8_t v) { out.push_back(v); };
  auto u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  if (kind == JobKind::kCampaign) {
    u8(0x81);  // campaign format version
    campaign.append_canonical_bytes(&out);
    return out;
  }
  // Verification: v1 is the original dual-coupler layout — kept bit-exact
  // so every previously pinned digest (and every persisted cache entry)
  // still resolves. The coupler count joins the encoding only when it
  // deviates, under version byte 2.
  u8(model.num_couplers == 2 ? 1 : 2);  // format version
  u8(model.protocol.num_nodes);
  u8(model.protocol.num_slots);
  u8(model.protocol.big_bang_enabled);
  u8(model.protocol.allow_host_freeze);
  u8(model.protocol.model_await_test);
  u8(model.protocol.allow_reinit);
  u8(model.protocol.bad_dominates_fusion);
  u8(static_cast<std::uint8_t>(model.authority));
  u8(static_cast<std::uint8_t>(
      std::min(model.max_out_of_slot_errors, 7u)));  // model saturates at 7
  u8(model.allow_coldstart_duplication);
  u8(model.allow_cstate_duplication);
  u8(model.allow_silence_fault);
  u8(model.allow_bad_frame_fault);
  u8(static_cast<std::uint8_t>(property));
  u64(max_states);
  if (model.num_couplers != 2) {
    u8(static_cast<std::uint8_t>(model.num_couplers));
  }
  return out;
}

std::uint64_t JobSpec::digest() const {
  return util::fnv1a64(canonical_bytes());
}

double JobSpec::estimated_cost() const {
  if (kind == JobKind::kCampaign) {
    // Campaign cost is simulation work: trials x slots x nodes. The worst
    // case (max_trials) keeps ordering conservative; only the relative
    // order against other jobs matters.
    return static_cast<double>(campaign.max_trials) *
           static_cast<double>(campaign.steps) *
           static_cast<double>(campaign.num_nodes);
  }
  // E4 measured the passive reachable space at 4.2k / 111k / 3.4M / >50M
  // states for 3..6 nodes — call it 26x per node. Buffering couplers
  // multiply the space by the replay interleavings their out-of-slot
  // budget admits; dropping a transient fault mode roughly halves the
  // branching; the recoverability analysis additionally stores and
  // reverses every edge.
  double states =
      111'000.0 *
      std::pow(26.0, static_cast<double>(model.protocol.num_nodes) - 4.0);
  if (guardian::can_buffer_frames(model.authority)) {
    states *= 1.0 + 0.5 * std::min(model.max_out_of_slot_errors, 7u);
  }
  if (!model.allow_silence_fault) states *= 0.5;
  if (!model.allow_bad_frame_fault) states *= 0.5;
  double cost = std::min(states, static_cast<double>(max_states));
  if (property == Property::kRecoverability) cost *= 3.0;
  return cost;
}

// parse_job_line / parse_request_line live in svc/wire.cpp with the rest
// of the wire grammar.

}  // namespace tta::svc
