#include "svc/job_spec.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstring>

#include "util/digest.h"

namespace tta::svc {

const char* to_string(Property property) {
  switch (property) {
    case Property::kNoIntegratedNodeFreezes: return "safety";
    case Property::kAllActiveReachable: return "reach_all_active";
    case Property::kRecoverability: return "recoverability";
  }
  return "?";
}

const char* to_string(EngineChoice engine) {
  switch (engine) {
    case EngineChoice::kSerial: return "serial";
    case EngineChoice::kParallel: return "parallel";
    case EngineChoice::kAuto: return "auto";
    case EngineChoice::kRedundant: return "redundant";
  }
  return "?";
}

std::vector<std::uint8_t> JobSpec::canonical_bytes() const {
  // Format version 1. Every semantic field, fixed order, fixed width;
  // bools as one byte each. Execution hints (engine, threads, deadline)
  // are intentionally absent — see the header comment.
  std::vector<std::uint8_t> out;
  out.reserve(32);
  auto u8 = [&out](std::uint8_t v) { out.push_back(v); };
  auto u64 = [&out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  u8(1);  // format version
  u8(model.protocol.num_nodes);
  u8(model.protocol.num_slots);
  u8(model.protocol.big_bang_enabled);
  u8(model.protocol.allow_host_freeze);
  u8(model.protocol.model_await_test);
  u8(model.protocol.allow_reinit);
  u8(model.protocol.bad_dominates_fusion);
  u8(static_cast<std::uint8_t>(model.authority));
  u8(static_cast<std::uint8_t>(
      std::min(model.max_out_of_slot_errors, 7u)));  // model saturates at 7
  u8(model.allow_coldstart_duplication);
  u8(model.allow_cstate_duplication);
  u8(model.allow_silence_fault);
  u8(model.allow_bad_frame_fault);
  u8(static_cast<std::uint8_t>(property));
  u64(max_states);
  return out;
}

std::uint64_t JobSpec::digest() const {
  return util::fnv1a64(canonical_bytes());
}

double JobSpec::estimated_cost() const {
  // E4 measured the passive reachable space at 4.2k / 111k / 3.4M / >50M
  // states for 3..6 nodes — call it 26x per node. Buffering couplers
  // multiply the space by the replay interleavings their out-of-slot
  // budget admits; dropping a transient fault mode roughly halves the
  // branching; the recoverability analysis additionally stores and
  // reverses every edge.
  double states =
      111'000.0 *
      std::pow(26.0, static_cast<double>(model.protocol.num_nodes) - 4.0);
  if (guardian::can_buffer_frames(model.authority)) {
    states *= 1.0 + 0.5 * std::min(model.max_out_of_slot_errors, 7u);
  }
  if (!model.allow_silence_fault) states *= 0.5;
  if (!model.allow_bad_frame_fault) states *= 0.5;
  double cost = std::min(states, static_cast<double>(max_states));
  if (property == Property::kRecoverability) cost *= 3.0;
  return cost;
}

namespace {

// Minimal JSON-lines object scanner: accepts {"key": value, ...} with
// string / integer / boolean values, which is all the job format uses.
struct Scanner {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool string(std::string* out) {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') out->push_back(*p++);
    if (p >= end) return false;
    ++p;
    return true;
  }
  /// Bare token up to , } or whitespace (numbers, true/false).
  bool token(std::string* out) {
    skip_ws();
    out->clear();
    while (p < end && *p != ',' && *p != '}' &&
           !std::isspace(static_cast<unsigned char>(*p))) {
      out->push_back(*p++);
    }
    return !out->empty();
  }
};

bool parse_bool(const std::string& v, bool* out) {
  if (v == "true" || v == "1") { *out = true; return true; }
  if (v == "false" || v == "0") { *out = false; return true; }
  return false;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  std::uint64_t acc = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = acc;
  return true;
}

bool parse_authority(const std::string& v, guardian::Authority* out) {
  for (guardian::Authority a : guardian::kAllAuthorities) {
    if (v == guardian::to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool parse_property(const std::string& v, Property* out) {
  for (Property prop : {Property::kNoIntegratedNodeFreezes,
                        Property::kAllActiveReachable,
                        Property::kRecoverability}) {
    if (v == to_string(prop)) {
      *out = prop;
      return true;
    }
  }
  return false;
}

bool parse_engine(const std::string& v, EngineChoice* out) {
  for (EngineChoice e : {EngineChoice::kSerial, EngineChoice::kParallel,
                         EngineChoice::kAuto, EngineChoice::kRedundant}) {
    if (v == to_string(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

bool parse_priority(const std::string& v, std::int32_t* out) {
  std::string digits = v;
  bool negative = false;
  if (!digits.empty() && digits[0] == '-') {
    negative = true;
    digits.erase(0, 1);
  }
  std::uint64_t magnitude = 0;
  if (!parse_u64(digits, &magnitude) || magnitude > 1'000'000) return false;
  *out = negative ? -static_cast<std::int32_t>(magnitude)
                  : static_cast<std::int32_t>(magnitude);
  return true;
}

/// Shared body of parse_job_line / parse_request_line. When `request` is
/// null the wire-only keys ("priority", "id") are unknown keys, exactly as
/// the job-file grammar has always treated them.
bool parse_line_impl(const std::string& line, JobSpec* spec,
                     WireRequest* request, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };

  JobSpec out;
  Scanner s{line.data(), line.data() + line.size()};
  if (!s.consume('{')) return fail("expected '{'");
  if (!s.consume('}')) {
    for (;;) {
      std::string key;
      if (!s.string(&key)) return fail("expected a \"key\" string");
      if (!s.consume(':')) return fail("expected ':' after \"" + key + "\"");

      std::string value;
      bool is_string = false;
      s.skip_ws();
      if (s.p < s.end && *s.p == '"') {
        if (!s.string(&value)) return fail("unterminated string value");
        is_string = true;
      } else if (!s.token(&value)) {
        return fail("missing value for \"" + key + "\"");
      }

      bool ok = true;
      std::uint64_t n = 0;
      if (key == "authority") {
        ok = is_string && parse_authority(value, &out.model.authority);
      } else if (key == "property") {
        ok = is_string && parse_property(value, &out.property);
      } else if (key == "engine") {
        ok = is_string && parse_engine(value, &out.engine);
      } else if (key == "nodes") {
        ok = parse_u64(value, &n) && n >= 2 && n <= mc::kMaxNodes;
        if (ok) {
          out.model.protocol.num_nodes = static_cast<std::uint8_t>(n);
          out.model.protocol.num_slots = std::max(
              out.model.protocol.num_slots, static_cast<std::uint8_t>(n));
        }
      } else if (key == "slots") {
        ok = parse_u64(value, &n) && n >= 2 && n <= 16;
        if (ok) out.model.protocol.num_slots = static_cast<std::uint8_t>(n);
      } else if (key == "max_oos") {
        ok = parse_u64(value, &n) && n <= 7;
        if (ok) out.model.max_out_of_slot_errors = static_cast<unsigned>(n);
      } else if (key == "big_bang") {
        ok = parse_bool(value, &out.model.protocol.big_bang_enabled);
      } else if (key == "bad_dominates_fusion") {
        ok = parse_bool(value, &out.model.protocol.bad_dominates_fusion);
      } else if (key == "allow_host_freeze") {
        ok = parse_bool(value, &out.model.protocol.allow_host_freeze);
      } else if (key == "model_await_test") {
        ok = parse_bool(value, &out.model.protocol.model_await_test);
      } else if (key == "allow_reinit") {
        ok = parse_bool(value, &out.model.protocol.allow_reinit);
      } else if (key == "allow_coldstart_duplication") {
        ok = parse_bool(value, &out.model.allow_coldstart_duplication);
      } else if (key == "allow_cstate_duplication") {
        ok = parse_bool(value, &out.model.allow_cstate_duplication);
      } else if (key == "allow_silence_fault") {
        ok = parse_bool(value, &out.model.allow_silence_fault);
      } else if (key == "allow_bad_frame_fault") {
        ok = parse_bool(value, &out.model.allow_bad_frame_fault);
      } else if (key == "max_states") {
        ok = parse_u64(value, &out.max_states) && out.max_states > 0;
      } else if (key == "deadline_ms") {
        ok = parse_u64(value, &n) && n <= UINT32_MAX;
        if (ok) out.deadline_ms = static_cast<std::uint32_t>(n);
      } else if (key == "threads") {
        ok = parse_u64(value, &n) && n <= 256;
        if (ok) out.threads = static_cast<unsigned>(n);
      } else if (key == "table") {
        ok = is_string;
        if (value == "flat") {
          out.table_backend = mc::TableBackend::kFlat;
        } else if (value == "compact") {
          out.table_backend = mc::TableBackend::kCompact;
        } else {
          ok = false;
        }
      } else if (request && key == "priority") {
        ok = !is_string && parse_priority(value, &request->priority);
      } else if (request && key == "id") {
        ok = is_string;
        if (ok) request->id = value;
      } else {
        return fail("unknown key \"" + key + "\"");
      }
      if (!ok) return fail("bad value for \"" + key + "\": " + value);

      if (s.consume('}')) break;
      if (!s.consume(',')) return fail("expected ',' or '}'");
    }
  }
  s.skip_ws();
  if (s.p != s.end) return fail("trailing characters after '}'");

  if (out.model.protocol.num_slots < out.model.protocol.num_nodes) {
    return fail("slots must be >= nodes");
  }
  *spec = out;
  return true;
}

}  // namespace

bool parse_job_line(const std::string& line, JobSpec* spec,
                    std::string* error) {
  return parse_line_impl(line, spec, nullptr, error);
}

bool parse_request_line(const std::string& line, WireRequest* request,
                        std::string* error) {
  WireRequest out;
  if (!parse_line_impl(line, &out.spec, &out, error)) return false;
  *request = std::move(out);
  return true;
}

}  // namespace tta::svc
