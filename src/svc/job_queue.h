// Priority queue of admitted jobs, ordered by two keys: caller priority
// first (higher runs sooner — the QoS lever a networked client pulls via
// the wire protocol's "priority" field), then cheapest estimated cost (the
// E4 state-count model) within a priority band. Running the cheap cells of
// a grid first maximizes early feedback and keeps the expensive stragglers
// from head-blocking everything else on the workers; the priority key on
// top lets an interactive session's jobs overtake a bulk grid sweep that
// another session queued first. Shared by every session of an
// AsyncService, so one queue orders work across concurrent sessions.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "svc/job_spec.h"

namespace tta::svc {

class JobQueue {
 public:
  /// Admission outcome. The spec is canonicalized (digest + cost) *before*
  /// the bound check, so a rejected job still reports its identity and
  /// callers can correlate rejections with specs in streamed output.
  struct Ticket {
    bool admitted = false;
    std::uint64_t digest = 0;
    double cost = 0.0;
  };

  struct Entry {
    JobSpec spec;
    std::uint64_t session = 0;   ///< owning session id (0 for direct use)
    std::uint64_t sequence = 0;  ///< session-scoped submission sequence
    std::uint64_t digest = 0;    ///< canonical digest, computed at admit
    std::uint64_t order = 0;     ///< global admission order (tie-break)
    std::chrono::steady_clock::time_point admitted_at{};
    double cost = 0.0;
    std::int32_t priority = 0;  ///< higher dispatches sooner (default 0)
  };

  explicit JobQueue(std::size_t max_pending) : max_pending_(max_pending) {}

  /// Ticket::admitted is false when the queue is at max_pending; the
  /// ticket's digest and cost are valid either way. `priority` is an
  /// execution hint, not part of the job's identity (it never enters the
  /// digest — the same query at any priority is the same query).
  Ticket admit(const JobSpec& spec, std::uint64_t session,
               std::uint64_t sequence, std::int32_t priority = 0);

  /// Pops the next job under the (priority desc, cost asc) order; nullopt
  /// when drained.
  std::optional<Entry> pop_next();

  std::size_t pending() const;

 private:
  struct DispatchOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      // priority_queue keeps the *largest* on top: highest priority first,
      // then cheapest cost within a band, tie-breaking on admission order
      // for determinism.
      if (a.priority != b.priority) return a.priority < b.priority;
      if (a.cost != b.cost) return a.cost > b.cost;
      return a.order > b.order;
    }
  };

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::uint64_t next_order_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, DispatchOrder> queue_;
};

}  // namespace tta::svc
