// Priority queue of admitted jobs, cheapest estimated cost first (the E4
// state-count model). Running the cheap cells of a grid first maximizes
// early feedback and keeps the expensive stragglers from head-blocking
// everything else on the workers. Shared by every session of an
// AsyncService, so one queue orders work across concurrent sessions.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "svc/job_spec.h"

namespace tta::svc {

class JobQueue {
 public:
  /// Admission outcome. The spec is canonicalized (digest + cost) *before*
  /// the bound check, so a rejected job still reports its identity and
  /// callers can correlate rejections with specs in streamed output.
  struct Ticket {
    bool admitted = false;
    std::uint64_t digest = 0;
    double cost = 0.0;
  };

  struct Entry {
    JobSpec spec;
    std::uint64_t session = 0;   ///< owning session id (0 for direct use)
    std::uint64_t sequence = 0;  ///< session-scoped submission sequence
    std::uint64_t digest = 0;    ///< canonical digest, computed at admit
    std::uint64_t order = 0;     ///< global admission order (tie-break)
    std::chrono::steady_clock::time_point admitted_at{};
    double cost = 0.0;
  };

  explicit JobQueue(std::size_t max_pending) : max_pending_(max_pending) {}

  /// Ticket::admitted is false when the queue is at max_pending; the
  /// ticket's digest and cost are valid either way.
  Ticket admit(const JobSpec& spec, std::uint64_t session,
               std::uint64_t sequence);

  /// Pops the cheapest pending job; nullopt when drained.
  std::optional<Entry> pop_cheapest();

  std::size_t pending() const;

 private:
  struct CostOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      // priority_queue keeps the *largest* on top; invert for cheapest-
      // first, tie-breaking on admission order for determinism.
      return a.cost != b.cost ? a.cost > b.cost : a.order > b.order;
    }
  };

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::uint64_t next_order_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, CostOrder> queue_;
};

}  // namespace tta::svc
