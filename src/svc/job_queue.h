// Priority queue of admitted jobs, ordered by three keys: caller priority
// first (higher runs sooner — the QoS lever a networked client pulls via
// the wire protocol's "priority" field), then a deficit-round-robin
// rotation over tenants within the priority band (equal-priority tenants
// share workers in proportion to their configured weights), then cheapest
// estimated cost (the E4 state-count model) within a tenant's lane.
// Running the cheap cells of a grid first maximizes early feedback and
// keeps the expensive stragglers from head-blocking everything else on
// the workers; the priority key on top lets an interactive session's jobs
// overtake a bulk grid sweep; the DRR key in the middle stops one noisy
// tenant from monopolizing a band it shares. With a single tenant (every
// pre-tenant caller) the rotation is a no-op and the order reduces
// exactly to the historical (priority desc, cost asc, admission order).
// Shared by every session of an AsyncService, so one queue orders work
// across concurrent sessions.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <queue>
#include <vector>

#include "svc/job_spec.h"

namespace tta::svc {

class JobQueue {
 public:
  /// Admission outcome. The spec is canonicalized (digest + cost) *before*
  /// the bound check, so a rejected job still reports its identity and
  /// callers can correlate rejections with specs in streamed output.
  struct Ticket {
    bool admitted = false;
    std::uint64_t digest = 0;
    double cost = 0.0;
  };

  struct Entry {
    JobSpec spec;
    std::uint64_t session = 0;   ///< owning session id (0 for direct use)
    std::uint64_t sequence = 0;  ///< session-scoped submission sequence
    std::uint64_t digest = 0;    ///< canonical digest, computed at admit
    std::uint64_t order = 0;     ///< global admission order (tie-break)
    std::chrono::steady_clock::time_point admitted_at{};
    double cost = 0.0;
    std::int32_t priority = 0;   ///< higher dispatches sooner (default 0)
    std::uint32_t tenant = 0;    ///< DRR lane within the band (0 = default)
  };

  explicit JobQueue(std::size_t max_pending) : max_pending_(max_pending) {}

  /// Ticket::admitted is false when the queue is at max_pending; the
  /// ticket's digest and cost are valid either way. `priority`, `tenant`,
  /// and `weight` are execution hints, not part of the job's identity
  /// (none enters the digest — the same query from any tenant at any
  /// priority is the same query). `weight` (>= 1) sets the tenant lane's
  /// DRR share and may be updated by later admissions from the same
  /// tenant; it matters only while two or more tenants occupy one band.
  Ticket admit(const JobSpec& spec, std::uint64_t session,
               std::uint64_t sequence, std::int32_t priority = 0,
               std::uint32_t tenant = 0, std::uint32_t weight = 1);

  /// Pops the next job under the (priority desc, DRR tenant rotation,
  /// cost asc) order; nullopt when drained.
  std::optional<Entry> pop_next();

  std::size_t pending() const;

 private:
  /// Min-heap comparator: cheapest cost on top, admission order as the
  /// deterministic tie-break.
  struct CostOrder {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.cost != b.cost) return a.cost > b.cost;
      return a.order > b.order;
    }
  };

  /// One tenant's cost-ordered jobs within a band, plus its DRR credit.
  struct Lane {
    std::priority_queue<Entry, std::vector<Entry>, CostOrder> jobs;
    double deficit = 0.0;  ///< spendable cost credit (quantum refills)
    std::uint32_t weight = 1;
  };

  /// One priority band: tenant lanes visited round-robin in
  /// first-admission order. The cursor stays on the lane that last popped
  /// so an unspent deficit keeps feeding the same tenant.
  struct Band {
    std::map<std::uint32_t, Lane> lanes;
    std::vector<std::uint32_t> ring;  ///< DRR visit order
    std::size_t cursor = 0;
    std::size_t jobs = 0;
  };

  /// Pops the DRR-selected entry from `band` (which must be non-empty)
  /// and erases drained lanes. Call with mu_ held.
  Entry pop_from_band(Band* band);

  const std::size_t max_pending_;
  mutable std::mutex mu_;
  std::uint64_t next_order_ = 0;
  std::size_t pending_ = 0;
  /// Bands keyed by priority, highest first.
  std::map<std::int32_t, Band, std::greater<std::int32_t>> bands_;
};

}  // namespace tta::svc
