// The session-based, non-blocking front end of the verification service.
//
// An AsyncService owns the shared machinery — dedicated worker threads, a
// (priority, cheapest-cost) JobQueue spanning all sessions, the LRU
// ResultCache, the crash-safe PersistentCache, Metrics — and hands out
// Sessions:
//
//   auto service = svc::AsyncService(config);
//   auto session = service.open_session();
//   JobHandle h = session->submit(spec);      // returns immediately
//   while (auto item = session->results().next()) { ... }  // completion order
//   session->drain();                         // conclude running, reject rest
//
// submit() never runs a job inline and never blocks on workers: it either
// admits (handle + exactly one StreamedResult later) or rejects explicitly
// (JobOutcome::rejected streamed with the job's digest). A job is *open*
// from submit() until its result is consumed from the stream; submissions
// beyond ServiceConfig::max_pending open jobs are rejected, which is the
// service's backpressure rule — a slow consumer throttles its own
// submitters. cancel() concludes a queued job immediately and interrupts a
// running one via its CancelToken; progress() reports queue state, attempt
// number, and — when checkpointing is on — the BFS level from the job's
// checkpoint header. The synchronous VerificationService (svc/service.h)
// is a thin shim over one Session per batch.
//
// Execution semantics (caches, retries, redundancy, checkpoints) are
// identical to the pre-session service: engines are scheduled through the
// uniform mc::Engine interface (svc/engine_factory.h), conclusive results
// fill both caches, kInconclusive attempts retry per RetryPolicy with
// deadline escalation, and attempt history lands in JobOutcome.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "svc/job_queue.h"
#include "svc/job_result.h"
#include "svc/job_spec.h"
#include "svc/metrics.h"
#include "svc/persistent_cache.h"
#include "svc/result_cache.h"
#include "svc/result_stream.h"
#include "svc/service_config.h"
#include "util/cancel_token.h"

namespace tta::svc {

class AsyncService;

/// Where a submitted job currently is in its lifecycle.
enum class JobState : std::uint8_t {
  kQueued = 0,     ///< admitted, waiting for a worker
  kRunning = 1,    ///< a worker is executing it (or between retry attempts)
  kDone = 2,       ///< concluded; its result is (or was) on the stream
  kCancelled = 3,  ///< cancel() landed; a cancelled result is streamed
  kRejected = 4,   ///< admission refused or drained while queued
};

const char* to_string(JobState state);

struct JobProgress {
  JobState state = JobState::kQueued;
  /// Attempts started so far (0 while queued; 1 during the first run).
  unsigned attempt = 0;
  /// Advisory BFS progress from the job's checkpoint header, present only
  /// while running with checkpointing enabled and a barrier already
  /// written (mc::peek_checkpoint).
  bool has_bfs_level = false;
  std::uint32_t bfs_level = 0;        ///< next BFS depth to expand
  std::uint64_t checkpoint_states = 0;  ///< visited set size at the barrier
  /// Campaign jobs: the running estimate as of the last completed batch
  /// (all zero / [0,1] before the first batch lands). Reading progress
  /// never blocks the worker — the snapshot is lock-free.
  bool has_campaign = false;
  std::uint64_t campaign_trials = 0;
  std::uint64_t campaign_failures = 0;
  std::uint64_t campaign_batches = 0;
  double campaign_p_hat = 0.0;
  double campaign_ci_low = 0.0;
  double campaign_ci_high = 1.0;
};

/// Per-job campaign progress shared between the worker (writer, after each
/// batch) and Session::progress() (reader). Probabilities are stored as
/// integer ppm so every field is a relaxed 64-bit atomic; readers may see
/// a snapshot that straddles a batch boundary, which is harmless for an
/// advisory progress row.
struct CampaignProgressBoard {
  std::atomic<std::uint64_t> trials{0};
  std::atomic<std::uint64_t> failures{0};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> p_ppm{0};
  std::atomic<std::uint64_t> low_ppm{0};
  std::atomic<std::uint64_t> high_ppm{1'000'000};
};

/// Per-submission execution hints. None of these affect the job's
/// identity, digest, or cached result — they only steer dispatch order
/// within the shared JobQueue.
struct SubmitOptions {
  /// Higher dispatches sooner across all of the service's sessions
  /// (cheapest-first within a priority band).
  std::int32_t priority = 0;
  /// Tenant lane for deficit-round-robin weighted-fair dispatch within a
  /// priority band (0 = the default lane; see JobQueue).
  std::uint32_t tenant = 0;
  /// The tenant lane's DRR weight (>= 1); matters only when several
  /// tenants share a band.
  std::uint32_t weight = 1;
};

/// One caller's window onto the service: a private sequence space, result
/// stream, and job registry. Sessions are cheap; open one per logical
/// batch. A Session must not outlive its AsyncService, and dropping one
/// without drain() abandons its queued jobs (workers skip them).
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Non-blocking. The returned handle is valid unless the session is
  /// draining or the rejection itself could not be buffered (stream
  /// saturated at 2x max_pending open jobs); an invalid handle still
  /// carries the spec's digest. Every valid handle is answered by exactly
  /// one StreamedResult, rejections included. `priority` is a QoS hint:
  /// higher-priority jobs dispatch ahead of lower ones across all of the
  /// service's sessions (cheapest-first within a priority band). It never
  /// affects the job's identity or its cached result.
  JobHandle submit(const JobSpec& spec, std::int32_t priority = 0) {
    return submit(spec, SubmitOptions{priority, 0, 1});
  }

  /// Full-options overload: priority plus the tenant lane + DRR weight
  /// the server's multi-tenant scheduler dispatches under.
  JobHandle submit(const JobSpec& spec, const SubmitOptions& options);

  /// Completion-order result delivery for this session's jobs.
  ResultStream& results() { return stream_; }

  /// True if the cancellation landed: a queued job concludes immediately
  /// with a cancelled kInconclusive result; a running job has its
  /// CancelToken tripped and concludes with honest partial stats. False
  /// for unknown handles and jobs that already concluded.
  bool cancel(const JobHandle& handle);

  /// Point-in-time progress for a submitted job; nullopt for unknown
  /// handles. Never blocks on workers (the checkpoint peek reads one
  /// fixed-size file header).
  std::optional<JobProgress> progress(const JobHandle& handle) const;

  /// Jobs submitted but not yet consumed from the stream (the admission
  /// gauge: submissions are rejected while this reaches max_pending).
  std::uint64_t open_jobs() const {
    return open_.load(std::memory_order_relaxed);
  }

  /// Graceful shutdown: stops admissions, rejects still-queued jobs
  /// explicitly (each streams a rejected result), waits for running jobs
  /// to conclude, then ends the stream. Buffered results remain
  /// consumable. Idempotent. Returns the number of this session's
  /// concluded results that could NOT be delivered (stream closed under a
  /// racing drain — also counted in Metrics::stream_lost); 0 means every
  /// verdict reached, or still sits buffered on, the stream.
  std::uint64_t drain();

  /// Running total of this session's undeliverable results (see drain()).
  std::uint64_t lost_results() const {
    return lost_.load(std::memory_order_relaxed);
  }

 private:
  friend class AsyncService;

  struct JobRecord {
    JobSpec spec;
    std::uint64_t digest = 0;
    JobState state = JobState::kQueued;
    unsigned attempt = 0;
    bool cancel_requested = false;
    /// The running attempt's token; valid only while non-null, guarded by
    /// the session mutex.
    util::CancelToken* active_token = nullptr;
    /// Campaign jobs only: created at submit, written by the worker after
    /// every batch, read by progress(). Shared so a racing progress() can
    /// never outlive the record's board.
    std::shared_ptr<CampaignProgressBoard> board;
  };

  Session(AsyncService* service, std::uint64_t id, std::size_t max_open);

  /// Delivers one concluded result onto the stream, accounting for it in
  /// Metrics (streamed / overflowed / lost). Call with mu_ held.
  void stream_locked(JobHandle handle, JobResult&& result);

  AsyncService* service_;
  const std::uint64_t id_;
  const std::size_t max_open_;
  mutable std::mutex mu_;
  std::condition_variable idle_cv_;  ///< drain waits for running_ == 0
  std::unordered_map<std::uint64_t, JobRecord> jobs_;  ///< by sequence
  std::uint64_t next_sequence_ = 1;
  std::uint64_t running_ = 0;
  bool draining_ = false;
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> lost_{0};  ///< results the stream couldn't take
  ResultStream stream_;
};

class AsyncService {
 public:
  explicit AsyncService(ServiceConfig config = {});
  /// Stops the workers (current jobs conclude; queued jobs are abandoned —
  /// drain sessions first) and ends every live session's stream.
  ~AsyncService();

  AsyncService(const AsyncService&) = delete;
  AsyncService& operator=(const AsyncService&) = delete;

  std::shared_ptr<Session> open_session();

  const ServiceConfig& config() const { return config_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  ResultCache& cache() { return cache_; }
  const ResultCache& cache() const { return cache_; }
  /// Null unless ServiceConfig::cache_dir is set.
  PersistentCache* persistent() { return persistent_.get(); }

 private:
  friend class Session;

  void worker_loop();
  /// Runs one queue entry to conclusion (retry loop included) and streams
  /// the result into its session.
  void run_entry(const JobQueue::Entry& entry,
                 const std::shared_ptr<Session>& session);
  /// Cache probes + engine dispatch + cache fills + metrics, for one
  /// attempt (unchanged from the pre-session service). `board` (may be
  /// null) receives per-batch campaign progress.
  JobResult process(const JobSpec& spec,
                    std::chrono::steady_clock::time_point admitted_at,
                    const util::CancelToken* cancel,
                    CampaignProgressBoard* board);
  /// Engine dispatch through the factory (no cache, no metrics).
  JobResult execute(const JobSpec& spec, const util::CancelToken* cancel,
                    CampaignProgressBoard* board) const;
  /// Path of the engine checkpoint for `spec`, or "" when disabled (no
  /// checkpoint_dir, or a recoverability query).
  std::string checkpoint_path(const JobSpec& spec) const;

  std::shared_ptr<Session> find_session(std::uint64_t id);
  void notify_work() { work_cv_.notify_one(); }

  ServiceConfig config_;
  ResultCache cache_;
  Metrics metrics_;
  std::unique_ptr<PersistentCache> persistent_;
  JobQueue queue_;
  std::mutex mu_;  ///< sessions registry + worker wakeup
  std::condition_variable work_cv_;
  std::unordered_map<std::uint64_t, std::weak_ptr<Session>> sessions_;
  std::uint64_t next_session_ = 1;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace tta::svc
