#include "svc/engine_factory.h"

#include <utility>

namespace tta::svc {

namespace {

mc::Checker<mc::TtpcStarModel>::Goal all_active_goal(
    const mc::TtpcStarModel& model) {
  const std::size_t n = model.num_nodes();
  return [n](const mc::WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

}  // namespace

EngineSelection make_engine(const JobSpec& spec,
                            const ServiceConfig& config) {
  EngineChoice choice = spec.engine;
  if (choice == EngineChoice::kAuto) {
    choice = spec.estimated_cost() >= config.auto_parallel_threshold
                 ? EngineChoice::kParallel
                 : EngineChoice::kSerial;
  }
  const unsigned threads =
      spec.threads != 0 ? spec.threads : config.parallel_engine_threads;
  const mc::CheckOptions options{spec.table_backend};

  EngineSelection selection;
  selection.resolved = choice;
  switch (choice) {
    case EngineChoice::kSerial:
      selection.engine = std::make_unique<mc::SerialEngine>(options);
      break;
    case EngineChoice::kParallel:
      selection.engine = std::make_unique<mc::ParallelEngine>(threads,
                                                              options);
      break;
    case EngineChoice::kRedundant:
      // The reference half always runs the serial engine on the flat
      // (reference) table; the shadow gets the requested backend. With
      // "table": "compact" this composition is therefore a literal
      // flat-vs-compact cross-check on top of the serial-vs-parallel one.
      selection.engine = std::make_unique<mc::RedundantEngine>(
          std::make_unique<mc::SerialEngine>(),
          std::make_unique<mc::ParallelEngine>(threads, options));
      break;
    case EngineChoice::kAuto:
      break;  // unreachable: resolved above
  }
  return selection;
}

mc::EngineQuery make_engine_query(const JobSpec& spec,
                                  const mc::TtpcStarModel& model) {
  mc::EngineQuery query;
  query.max_states = spec.max_states;
  switch (spec.property) {
    case Property::kNoIntegratedNodeFreezes:
      query.kind = mc::EngineQuery::Kind::kSafetyCheck;
      query.violation = mc::no_integrated_node_freezes();
      break;
    case Property::kAllActiveReachable:
      query.kind = mc::EngineQuery::Kind::kFindState;
      query.goal = all_active_goal(model);
      break;
    case Property::kRecoverability:
      query.kind = mc::EngineQuery::Kind::kRecoverability;
      query.goal = all_active_goal(model);
      break;
  }
  return query;
}

}  // namespace tta::svc
