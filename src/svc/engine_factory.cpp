#include "svc/engine_factory.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "mc/swarm_engine.h"
#include "util/thread_pool.h"

namespace tta::svc {

namespace {

mc::Checker<mc::TtpcStarModel>::Goal all_active_goal(
    const mc::TtpcStarModel& model) {
  const std::size_t n = model.num_nodes();
  return [n](const mc::WorldState& w) {
    for (std::size_t i = 0; i < n; ++i) {
      if (w.nodes[i].state != ttpc::CtrlState::kActive) return false;
    }
    return true;
  };
}

}  // namespace

EngineSelection make_engine(const JobSpec& spec,
                            const ServiceConfig& config) {
  EngineChoice choice = spec.engine;
  if (choice == EngineChoice::kAuto) {
    choice = spec.estimated_cost() >= config.auto_parallel_threshold
                 ? EngineChoice::kParallel
                 : EngineChoice::kSerial;
  }
  const unsigned threads =
      spec.threads != 0 ? spec.threads : config.parallel_engine_threads;
  const mc::CheckOptions options{spec.table_backend};

  EngineSelection selection;
  selection.resolved = choice;
  switch (choice) {
    case EngineChoice::kSerial:
      selection.engine = std::make_unique<mc::SerialEngine>(options);
      break;
    case EngineChoice::kParallel:
      selection.engine = std::make_unique<mc::ParallelEngine>(threads,
                                                              options);
      break;
    case EngineChoice::kRedundant:
      // The reference half always runs the serial engine on the flat
      // (reference) table; the shadow gets the requested backend. With
      // "table": "compact" this composition is therefore a literal
      // flat-vs-compact cross-check on top of the serial-vs-parallel one.
      selection.engine = std::make_unique<mc::RedundantEngine>(
          std::make_unique<mc::SerialEngine>(),
          std::make_unique<mc::ParallelEngine>(threads, options));
      break;
    case EngineChoice::kSwarm:
      // At least two racers so both randomized orderings (DFS and
      // shuffled-frontier BFS) are in the field; the exhaustive sweep
      // reuses the parallel-engine thread budget.
      selection.engine = std::make_unique<mc::SwarmEngine>(
          std::max(2u, threads), spec.seed, threads, options);
      break;
    case EngineChoice::kAuto:
      break;  // unreachable: resolved above
  }
  return selection;
}

mc::EngineQuery make_engine_query(const JobSpec& spec,
                                  const mc::TtpcStarModel& model) {
  mc::EngineQuery query;
  query.max_states = spec.max_states;
  switch (spec.property) {
    case Property::kNoIntegratedNodeFreezes:
      query.kind = mc::EngineQuery::Kind::kSafetyCheck;
      query.violation = mc::no_integrated_node_freezes();
      break;
    case Property::kAllActiveReachable:
      query.kind = mc::EngineQuery::Kind::kFindState;
      query.goal = all_active_goal(model);
      break;
    case Property::kRecoverability:
      query.kind = mc::EngineQuery::Kind::kRecoverability;
      query.goal = all_active_goal(model);
      break;
  }
  return query;
}

JobResult run_campaign_job(const JobSpec& spec, const ServiceConfig& config,
                           const util::CancelToken* cancel,
                           const campaign::ProgressFn& progress) {
  JobResult result;
  result.property = spec.property;

  const unsigned threads =
      spec.threads != 0 ? spec.threads : config.parallel_engine_threads;
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<util::ThreadPool>(threads);
  result.engine_used =
      pool ? EngineChoice::kParallel : EngineChoice::kSerial;

  const campaign::CampaignResult run =
      campaign::run_campaign(spec.campaign, pool.get(), cancel, progress);

  result.has_campaign = true;
  result.campaign.trials = run.estimate.trials;
  result.campaign.failures = run.estimate.failures;
  result.campaign.batches = run.batches;
  result.campaign.p_hat = run.estimate.p_hat;
  result.campaign.ci_low = run.estimate.ci_low;
  result.campaign.ci_high = run.estimate.ci_high;
  result.campaign.conclusive = run.conclusive;

  // Stats are repurposed minimally: wall time, cancellation, and whether
  // the sampling plan ran to a conclusive stop. states/transitions stay 0 —
  // campaign work is counted by the campaign metrics, not the engine ones.
  result.stats.seconds = run.seconds;
  result.stats.cancelled = run.cancelled;
  result.stats.exhausted = run.conclusive;

  if (run.conclusive) {
    const double bound =
        static_cast<double>(spec.campaign.fail_bound_ppm) /
        static_cast<double>(campaign::kPpmScale);
    result.verdict = run.estimate.p_hat <= bound ? mc::Verdict::kHolds
                                                 : mc::Verdict::kViolated;
  } else {
    result.verdict = mc::Verdict::kInconclusive;
  }
  return result;
}

}  // namespace tta::svc
