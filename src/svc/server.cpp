#include "svc/server.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "svc/wire.h"

namespace tta::svc {

namespace {

/// Matches "--name=value", pointing *out at value.
bool flag_value(const char* arg, const char* name, const char** out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Parses the WEIGHT[:MAX_JOBS[:MAX_BUDGET]] tail of a --tenant spec into
/// an already-named quota. Empty segments and trailing garbage are errors.
bool parse_quota_tail(const std::string& tail, TenantQuota* quota,
                      std::string* error) {
  std::uint64_t fields[3] = {1, 0, 0};
  std::size_t begin = 0;
  for (int i = 0; i < 3; ++i) {
    const std::size_t end = tail.find(':', begin);
    const std::string part = tail.substr(
        begin, end == std::string::npos ? std::string::npos : end - begin);
    char* rest = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(part.c_str(), &rest, 10);
    if (part.empty() || errno != 0 || rest == nullptr || *rest != '\0') {
      *error = "bad tenant quota field '" + part + "' in '" + tail + "'";
      return false;
    }
    fields[i] = parsed;
    if (end == std::string::npos) break;
    begin = end + 1;
    if (i == 2) {
      *error = "too many ':' fields in tenant quota '" + tail + "'";
      return false;
    }
  }
  if (fields[0] == 0 || fields[0] > 1'000'000) {
    *error = "tenant weight must be in [1, 1000000], got '" + tail + "'";
    return false;
  }
  quota->weight = static_cast<std::uint32_t>(fields[0]);
  quota->max_in_flight = fields[1];
  quota->max_state_budget = fields[2];
  return true;
}

std::string quota_tail(const TenantQuota& q) {
  return std::to_string(q.weight) + ":" + std::to_string(q.max_in_flight) +
         ":" + std::to_string(q.max_state_budget);
}

/// The budget a request charges against its tenant's state-budget ceiling:
/// the work the job *may* do, known at admission time.
std::uint64_t request_budget(const JobSpec& spec) {
  return spec.kind == JobKind::kCampaign ? spec.campaign.max_trials
                                         : spec.max_states;
}

/// Deterministic jitter over a backoff delay: splitmix64-style mix of the
/// error streak, spreading retries across [delay/2, delay] without an RNG
/// (two identical chaos runs back off identically).
std::uint32_t jittered_delay(std::uint32_t delay_ms, unsigned streak) {
  if (delay_ms == 0) return 0;
  std::uint64_t z = static_cast<std::uint64_t>(streak) + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  const std::uint32_t half = delay_ms / 2;
  return half + static_cast<std::uint32_t>(
                    z % (static_cast<std::uint64_t>(delay_ms - half) + 1));
}

}  // namespace

// ---- ServerConfig ----------------------------------------------------------

bool ServerConfig::from_args(int argc, const char* const* argv,
                             std::string* error) {
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--port", &v)) {
      const unsigned long parsed = std::strtoul(v, nullptr, 10);
      if (parsed > 65535) {
        *error = "port out of range: " + std::string(v);
        return false;
      }
      port = static_cast<std::uint16_t>(parsed);
    } else if (flag_value(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (flag_value(argv[i], "--workers", &v)) {
      service.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--cache", &v)) {
      service.cache_capacity = std::strtoul(v, nullptr, 10);
    } else if (flag_value(argv[i], "--cache-dir", &v)) {
      service.cache_dir = v;
    } else if (flag_value(argv[i], "--checkpoint-dir", &v)) {
      service.checkpoint_dir = v;
    } else if (flag_value(argv[i], "--retries", &v)) {
      service.retry.max_attempts =
          1 + static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--drain-timeout-ms", &v)) {
      drain_timeout_ms =
          static_cast<std::uint32_t>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--tenant", &v)) {
      const std::string spec = v;
      const std::size_t colon = spec.find(':');
      TenantQuota quota;
      quota.name = spec.substr(0, colon);
      if (quota.name.empty() ||
          quota.name.size() > WireGrammar::kMaxTenantBytes) {
        *error = "bad tenant name in --tenant=" + spec;
        return false;
      }
      if (colon != std::string::npos &&
          !parse_quota_tail(spec.substr(colon + 1), &quota, error)) {
        return false;
      }
      tenants.push_back(std::move(quota));
    } else if (flag_value(argv[i], "--tenant-default", &v)) {
      if (!parse_quota_tail(v, &default_quota, error)) return false;
    } else {
      *error = "unknown flag: " + std::string(argv[i]);
      return false;
    }
  }
  return true;
}

std::vector<std::string> ServerConfig::to_args() const {
  const ServerConfig d;
  std::vector<std::string> out;
  if (port != d.port) out.push_back("--port=" + std::to_string(port));
  if (!port_file.empty()) out.push_back("--port-file=" + port_file);
  if (service.workers != d.service.workers) {
    out.push_back("--workers=" + std::to_string(service.workers));
  }
  if (service.cache_capacity != d.service.cache_capacity) {
    out.push_back("--cache=" + std::to_string(service.cache_capacity));
  }
  if (!service.cache_dir.empty()) {
    out.push_back("--cache-dir=" + service.cache_dir);
  }
  if (!service.checkpoint_dir.empty()) {
    out.push_back("--checkpoint-dir=" + service.checkpoint_dir);
  }
  if (service.retry.max_attempts != d.service.retry.max_attempts) {
    out.push_back("--retries=" +
                  std::to_string(service.retry.max_attempts - 1));
  }
  if (drain_timeout_ms != d.drain_timeout_ms) {
    out.push_back("--drain-timeout-ms=" + std::to_string(drain_timeout_ms));
  }
  if (default_quota.weight != d.default_quota.weight ||
      default_quota.max_in_flight != d.default_quota.max_in_flight ||
      default_quota.max_state_budget != d.default_quota.max_state_budget) {
    out.push_back("--tenant-default=" + quota_tail(default_quota));
  }
  for (const TenantQuota& t : tenants) {
    out.push_back("--tenant=" + t.name + ":" + quota_tail(t));
  }
  return out;
}

const char* ServerConfig::usage() {
  return
      "usage: tta_verifyd [--port=N] [--port-file=FILE] [--workers=N] "
      "[--cache=N]\n"
      "          [--cache-dir=DIR] [--checkpoint-dir=DIR] [--retries=N]\n"
      "          [--drain-timeout-ms=N] "
      "[--tenant=NAME:WEIGHT[:MAX_JOBS[:MAX_BUDGET]]]...\n"
      "          [--tenant-default=WEIGHT[:MAX_JOBS[:MAX_BUDGET]]]\n"
      "Serves the tta_verify_batch --stream protocol on 127.0.0.1 "
      "(docs/SERVICE.md).\n"
      "Tenants: requests carry an optional \"tenant\" tag; --tenant pins a\n"
      "tag's fair-share weight, max in-flight jobs, and aggregate\n"
      "state-budget ceiling (0 = unlimited). Untabled tenants get the\n"
      "--tenant-default quota.\n";
}

// ---- Server ----------------------------------------------------------------

Server::Server(ServerConfig config) : config_(std::move(config)) {
  service_ = std::make_unique<AsyncService>(config_.service);
  // Tenant id 0 is the default tenant (requests with no "tenant" tag).
  TenantState def;
  def.quota = config_.default_quota;
  def.quota.name.clear();
  if (def.quota.weight == 0) def.quota.weight = 1;
  tenant_ids_.emplace(std::string(), 0);
  tenants_.push_back(std::move(def));
  for (const TenantQuota& q : config_.tenants) {
    const std::uint32_t id = intern_tenant(q.name);
    tenants_[id].quota = q;
    if (tenants_[id].quota.weight == 0) tenants_[id].quota.weight = 1;
  }
}

Server::~Server() {
  {
    std::lock_guard<std::mutex> lock(reap_mu_);
    reap_stop_ = true;
  }
  reap_cv_.notify_all();
  if (reaper_.joinable()) reaper_.join();
}

bool Server::start(std::string* error) {
  listener_ = util::Socket::listen_on(config_.port, &bound_port_, error);
  if (!listener_.valid()) return false;
  listener_.set_nonblocking(true);
  if (!config_.port_file.empty() &&
      !write_port_file(config_.port_file, bound_port_)) {
    *error = "cannot write " + config_.port_file;
    return false;
  }
  std::printf("tta_verifyd listening on 127.0.0.1:%u\n", bound_port_);
  std::fflush(stdout);
  loop_.watch(listener_.fd(), /*read=*/true, /*write=*/false);
  reaper_ = std::thread([this] { reaper_loop(); });
  started_ = true;
  return true;
}

double Server::ts_ms(const Connection& c) const {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - c.start)
      .count();
}

std::uint32_t Server::intern_tenant(const std::string& name) {
  const auto it = tenant_ids_.find(name);
  if (it != tenant_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(tenants_.size());
  tenant_ids_.emplace(name, id);
  TenantState state;
  state.quota = config_.default_quota;
  state.quota.name = name;
  if (state.quota.weight == 0) state.quota.weight = 1;
  tenants_.push_back(std::move(state));
  return id;
}

std::string Server::tenant_metrics_dump() const {
  std::string out;
  char buf[256];
  for (const TenantState& state : tenants_) {
    // Interning alone (a request naming the tenant) counts as traffic;
    // quiet configured tenants stay out of the dump so the line set only
    // grows when behavior did.
    if (state.admitted == 0 && state.rejected == 0) continue;
    const char* name =
        state.quota.name.empty() ? "default" : state.quota.name.c_str();
    std::snprintf(buf, sizeof buf,
                  "net:tenant:%s: admitted=%llu rejected=%llu "
                  "in_flight_peak=%llu\n",
                  name, static_cast<unsigned long long>(state.admitted),
                  static_cast<unsigned long long>(state.rejected),
                  static_cast<unsigned long long>(state.in_flight_peak));
    out += buf;
  }
  return out;
}

void Server::accept_ready() {
  // Bounded accept burst: level-triggered poll re-reports a still-nonempty
  // backlog, so the loop never starves connected clients to accept more.
  for (int i = 0; i < 64; ++i) {
    int accept_errno = 0;
    util::Socket accepted = listener_.try_accept(&accept_errno);
    if (accepted.valid()) {
      accept_error_streak_ = 0;
      metrics().net_connections.fetch_add(1, std::memory_order_relaxed);
      ++drained_connections_;
      accepted.set_nonblocking(true);
      auto c = std::make_unique<Connection>(util::LineConn(std::move(accepted)));
      c->fd = c->conn.fd();
      if (c->fd < 0) continue;
      c->session = service_->open_session();
      c->start = std::chrono::steady_clock::now();
      const int fd = c->fd;
      connections_.emplace(fd, std::move(c));
      loop_.watch(fd, /*read=*/true, /*write=*/false);
      continue;
    }
    if (accept_errno == 0) return;  // backlog empty (EAGAIN)
    // Descriptor exhaustion (EMFILE/ENFILE), a client that gave up before
    // we got to it (ECONNABORTED), or an injected fault: none of these are
    // reasons to stop serving everyone else. Log, count, and for
    // exhaustion mute the listener under a jittered exponential backoff —
    // the pending connection waits in the listen backlog.
    metrics().net_accept_errors.fetch_add(1, std::memory_order_relaxed);
    std::fprintf(stderr, "tta_verifyd: accept: %s — backing off\n",
                 std::strerror(accept_errno));
    if (accept_errno == ECONNABORTED) continue;
    enter_accept_backoff(accept_errno);
    return;
  }
}

void Server::enter_accept_backoff(int accept_errno) {
  (void)accept_errno;
  ++accept_error_streak_;
  const std::uint32_t delay = jittered_delay(
      config_.accept_backoff.delay_ms(accept_error_streak_),
      accept_error_streak_);
  accept_muted_ = true;
  accept_resume_ = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(delay);
  // Registered-but-dormant: the fd stays known to the loop, but readiness
  // is ignored until the backoff window expires.
  loop_.watch(listener_.fd(), /*read=*/false, /*write=*/false);
}

void Server::emit(Connection* c, const std::string& row) {
  if (c->broken) return;
  c->conn.queue_line(row);
  metrics().net_lines_out.fetch_add(1, std::memory_order_relaxed);
}

void Server::read_ready(Connection* c) {
  using Io = util::LineConn::Io;
  // Bounded fill burst (level-triggered poll re-reports leftover kernel
  // bytes); buffered complete lines are always fully drained, since they
  // live in userspace where poll cannot see them.
  for (int i = 0; i < 64 && !c->broken; ++i) {
    switch (c->conn.fill()) {
      case Io::kOk: {
        std::string line;
        while (c->conn.take_line(&line)) handle_line(c, line);
        continue;
      }
      case Io::kTimeout:
        return;  // EAGAIN or an injected EINTR cycle; poll again
      case Io::kEof: {
        // Half-close: no more requests. Finish answering, then close.
        c->reading = false;
        std::string line;
        while (c->conn.take_line(&line)) handle_line(c, line);
        if (loop_.watching(c->fd)) {
          loop_.watch(c->fd, /*read=*/false, c->want_write);
        }
        return;
      }
      case Io::kError:
        c->broken = true;
        return;
    }
  }
}

void Server::handle_line(Connection* c, const std::string& line) {
  metrics().net_lines_in.fetch_add(1, std::memory_order_relaxed);
  ++c->lineno;
  WireRequest request;
  std::string error;
  if (!parse_request_line(line, &request, &error)) {
    metrics().net_malformed.fetch_add(1, std::memory_order_relaxed);
    emit(c, error_row(error, c->lineno));
    return;
  }

  const std::uint32_t tenant = intern_tenant(request.tenant);
  TenantState& state = tenants_[tenant];
  const std::uint64_t budget = request_budget(request.spec);
  const bool over_jobs = state.quota.max_in_flight != 0 &&
                         state.in_flight >= state.quota.max_in_flight;
  const bool over_budget =
      state.quota.max_state_budget != 0 &&
      state.budget_in_flight + budget > state.quota.max_state_budget;
  if (over_jobs || over_budget) {
    // Quota gate: answered with an explicit rejection row (same shape as
    // an admission rejection, seq 0 — the job never reached the session).
    metrics().net_quota_rejected.fetch_add(1, std::memory_order_relaxed);
    state.rejected += 1;
    JobResult rejected;
    rejected.digest = request.spec.digest();
    rejected.property = request.spec.property;
    rejected.outcome.rejected = true;
    emit(c, result_json(request.spec, rejected, /*pass=*/1, /*seq=*/0,
                        ts_ms(*c), request.id));
    return;
  }

  const JobHandle handle = c->session->submit(
      request.spec,
      SubmitOptions{request.priority, tenant, state.quota.weight});
  if (handle.valid()) {
    state.in_flight += 1;
    state.budget_in_flight += budget;
    state.admitted += 1;
    state.in_flight_peak = std::max(state.in_flight_peak, state.in_flight);
    PendingJob job;
    job.spec = request.spec;
    job.id = std::move(request.id);
    job.handle = handle;
    job.tenant = tenant;
    job.budget = budget;
    c->pending.emplace(handle.sequence, std::move(job));
  } else {
    // Hard rejection (stream saturated): the session could not even buffer
    // a rejection row, so synthesize it here.
    JobResult rejected;
    rejected.digest = handle.digest;
    rejected.property = request.spec.property;
    rejected.outcome.rejected = true;
    emit(c, result_json(request.spec, rejected, /*pass=*/1, /*seq=*/0,
                        ts_ms(*c), request.id));
  }
}

void Server::release_quota(const PendingJob& job) {
  TenantState& state = tenants_[job.tenant];
  if (state.in_flight > 0) state.in_flight -= 1;
  state.budget_in_flight -=
      state.budget_in_flight < job.budget ? state.budget_in_flight
                                          : job.budget;
}

void Server::pump(Connection* c) {
  if (c->broken) return;
  // Campaign jobs stream advisory progress rows between responses: one
  // {"progress":1,...} row per newly completed batch, carrying the running
  // Wilson interval (docs/SERVICE.md). Clients that only want final rows
  // filter on the "progress" key — result rows never carry it.
  for (auto& [seq, job] : c->pending) {
    if (job.spec.kind != JobKind::kCampaign) continue;
    const std::optional<JobProgress> p = c->session->progress(job.handle);
    if (!p || !p->has_campaign || p->campaign_batches <= job.last_batches) {
      continue;
    }
    job.last_batches = p->campaign_batches;
    ProgressRow row;
    row.id = job.id;
    row.seq = seq;
    row.ts_ms = ts_ms(*c);
    row.digest = job.handle.digest;
    row.state = to_string(p->state);
    row.trials = p->campaign_trials;
    row.failures = p->campaign_failures;
    row.batches = p->campaign_batches;
    row.p_hat = p->campaign_p_hat;
    row.ci_low = p->campaign_ci_low;
    row.ci_high = p->campaign_ci_high;
    emit(c, progress_row(row));
  }

  while (std::optional<StreamedResult> item = c->session->results().try_next()) {
    consume_result(c, *item);
  }

  if (c->conn.outbound() > 0) {
    switch (c->conn.flush_some()) {
      case util::LineConn::Io::kOk:
      case util::LineConn::Io::kTimeout:
        break;
      case util::LineConn::Io::kEof:  // not produced by flush_some
      case util::LineConn::Io::kError:
        c->broken = true;
        return;
    }
  }
  update_write_interest(c);
}

void Server::consume_result(Connection* c, const StreamedResult& item) {
  const auto it = c->pending.find(item.handle.sequence);
  if (it == c->pending.end()) return;
  PendingJob& job = it->second;
  // A campaign that outran the progress poll still reports its last batch:
  // every campaign answer is preceded by at least one progress row,
  // however fast the job was.
  if (item.result.has_campaign &&
      item.result.campaign.batches > job.last_batches) {
    const CampaignEstimate& est = item.result.campaign;
    ProgressRow row;
    row.id = job.id;
    row.seq = item.handle.sequence;
    row.ts_ms = ts_ms(*c);
    row.digest = job.handle.digest;
    row.state = "done";
    row.trials = est.trials;
    row.failures = est.failures;
    row.batches = est.batches;
    row.p_hat = est.p_hat;
    row.ci_low = est.ci_low;
    row.ci_high = est.ci_high;
    emit(c, progress_row(row));
  }
  emit(c, result_json(job.spec, item.result, /*pass=*/1, item.handle.sequence,
                      ts_ms(*c), job.id));
  release_quota(job);
  c->pending.erase(it);
}

void Server::update_write_interest(Connection* c) {
  const bool want = c->conn.outbound() > 0;
  if (want == c->want_write) return;
  c->want_write = want;
  if (loop_.watching(c->fd)) loop_.watch(c->fd, c->reading, want);
}

bool Server::answers_owed() const {
  for (const auto& [fd, c] : connections_) {
    if (!c->pending.empty() || c->session->results().buffered() > 0 ||
        c->conn.outbound() > 0) {
      return true;
    }
  }
  return false;
}

void Server::finish(Connection* c) {
  if (loop_.watching(c->fd)) loop_.unwatch(c->fd);
  if (c->broken && !c->pending.empty()) {
    // Abrupt disconnect with answers still owed: drain and discard.
    // Conclusive verdicts were already cached, so a reconnecting client
    // gets them instantly.
    metrics().net_drains.fetch_add(1, std::memory_order_relaxed);
  }
  const bool instant = c->pending.empty();
  for (auto& [seq, job] : c->pending) release_quota(job);
  c->pending.clear();
  if (c->session) {
    if (instant) {
      // Nothing queued or running: drain() cannot block the loop.
      c->session->drain();
    } else {
      // drain() waits for running jobs to conclude — hand the session to
      // the reaper thread so the loop keeps serving everyone else.
      std::lock_guard<std::mutex> lock(reap_mu_);
      reap_queue_.push_back(std::move(c->session));
      reap_cv_.notify_one();
    }
  }
}

void Server::reaper_loop() {
  for (;;) {
    std::shared_ptr<Session> session;
    {
      std::unique_lock<std::mutex> lock(reap_mu_);
      reap_cv_.wait(lock,
                    [this] { return reap_stop_ || !reap_queue_.empty(); });
      if (reap_queue_.empty()) {
        if (reap_stop_) return;
        continue;
      }
      session = std::move(reap_queue_.front());
      reap_queue_.pop_front();
    }
    session->drain();
  }
}

void Server::run() {
  if (!started_) return;
  const util::EventLoop::Handler handler =
      [this](const util::EventLoop::Event& ev) {
        if (ev.fd == listener_.fd()) {
          if (ev.readable && !accept_muted_) accept_ready();
          return;
        }
        const auto it = connections_.find(ev.fd);
        if (it == connections_.end()) return;
        Connection* c = it->second.get();
        // ev.broken arrives with readable set, so a hung-up peer surfaces
        // through fill() as kEof/kError even when reads were paused.
        if ((ev.readable && c->reading) || ev.broken) read_ready(c);
        if (ev.writable && !c->broken && c->conn.outbound() > 0) {
          if (c->conn.flush_some() == util::LineConn::Io::kError) {
            c->broken = true;
          }
        }
      };

  while (!stop_.load(std::memory_order_relaxed)) {
    const auto now = std::chrono::steady_clock::now();
    if (accept_muted_ && now >= accept_resume_) {
      accept_muted_ = false;
      loop_.watch(listener_.fd(), /*read=*/true, /*write=*/false);
    }
    // Result streams have no fd, so the loop ticks fast while answers are
    // owed (to consume worker completions promptly) and slow when idle.
    int timeout_ms = answers_owed() ? 2 : 100;
    if (accept_muted_) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            accept_resume_ - now)
                            .count();
      if (left >= 0 && left < timeout_ms) {
        timeout_ms = static_cast<int>(left) + 1;
      }
    }
    loop_.poll_once(timeout_ms, handler);

    finished_.clear();
    for (auto& [fd, c] : connections_) {
      pump(c.get());
      if (c->broken ||
          (!c->reading && c->pending.empty() &&
           c->session->results().buffered() == 0 && c->conn.outbound() == 0)) {
        finished_.push_back(fd);
      }
    }
    for (const int fd : finished_) {
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;
      finish(it->second.get());
      connections_.erase(it);
    }
  }

  shutdown_drain();
}

void Server::shutdown_drain() {
  // Refuse new clients while existing ones drain.
  if (listener_.valid()) {
    if (loop_.watching(listener_.fd())) loop_.unwatch(listener_.fd());
    listener_.close();
  }
  for (auto& [fd, cptr] : connections_) {
    Connection* c = cptr.get();
    c->reading = false;
    // Queued jobs conclude as explicit rejection rows, running jobs finish
    // honestly; the buffered answers below still go out to the client.
    c->session->drain();
    while (std::optional<StreamedResult> item =
               c->session->results().try_next()) {
      consume_result(c, *item);
    }
    flush_for(c, config_.drain_timeout_ms);
    for (auto& [seq, job] : c->pending) release_quota(job);
    c->pending.clear();
    if (loop_.watching(c->fd)) loop_.unwatch(c->fd);
  }
  connections_.clear();
}

void Server::flush_for(Connection* c, std::uint32_t timeout_ms) {
  using Io = util::LineConn::Io;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (!c->broken && c->conn.outbound() > 0) {
    switch (c->conn.flush_some()) {
      case Io::kOk:
        return;
      case Io::kEof:
      case Io::kError:
        c->broken = true;
        return;
      case Io::kTimeout: {
        const auto now = std::chrono::steady_clock::now();
        if (now >= deadline) return;
        const auto left =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now)
                .count();
        struct ::pollfd pfd = {};
        pfd.fd = c->fd;
        pfd.events = POLLOUT;
        ::poll(&pfd, 1,
               static_cast<int>(left < 100 ? (left > 0 ? left : 1) : 100));
        break;
      }
    }
  }
}

}  // namespace tta::svc
