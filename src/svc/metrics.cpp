#include "svc/metrics.h"

#include <cstdio>

namespace tta::svc {

namespace {

/// Human unit for a bucket's lower bound of 2^i microseconds.
std::string bucket_label(std::size_t i) {
  const std::uint64_t us = 1ull << i;
  char buf[32];
  if (us >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%llus",
                  static_cast<unsigned long long>(us / 1'000'000));
  } else if (us >= 1'000) {
    std::snprintf(buf, sizeof buf, "%llums",
                  static_cast<unsigned long long>(us / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%lluus",
                  static_cast<unsigned long long>(us));
  }
  return buf;
}

}  // namespace

double LatencyHistogram::quantile_seconds(double quantile) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(
      quantile * static_cast<double>(n) + 0.5);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= target) {
      return static_cast<double>(2ull << i) / 1e6;  // bucket upper bound
    }
  }
  return static_cast<double>(2ull << (kBuckets - 1)) / 1e6;
}

std::string LatencyHistogram::render() const {
  std::string out;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
    if (c == 0) continue;
    if (!out.empty()) out += " ";
    out += bucket_label(i) + ":" + std::to_string(c);
  }
  return out.empty() ? "(empty)" : out;
}

std::string Metrics::dump() const {
  auto v = [](const std::atomic<std::uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "jobs: admitted=%llu rejected=%llu completed=%llu "
                "cancelled=%llu\n",
                static_cast<unsigned long long>(v(jobs_admitted)),
                static_cast<unsigned long long>(v(jobs_rejected)),
                static_cast<unsigned long long>(v(jobs_completed)),
                static_cast<unsigned long long>(v(jobs_cancelled)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "cache: hits=%llu misses=%llu hit_rate=%.3f\n",
                static_cast<unsigned long long>(v(cache_hits)),
                static_cast<unsigned long long>(v(cache_misses)),
                cache_hit_rate());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "engine: states=%llu transitions=%llu seconds=%.3f "
                "states_per_sec=%.0f\n",
                static_cast<unsigned long long>(v(states_explored)),
                static_cast<unsigned long long>(v(transitions)),
                static_cast<double>(v(engine_micros)) / 1e6,
                states_per_second());
  out += buf;
  // New fields append at the end of each line: the CI recovery steps and
  // verifyd_smoke grep for prefixes of these lines verbatim.
  std::snprintf(buf, sizeof buf,
                "persistent: hits=%llu recovered=%llu corrupt=%llu "
                "truncated=%llu quarantined_bytes=%llu compactions=%llu "
                "io_errors=%llu\n",
                static_cast<unsigned long long>(v(persistent_hits)),
                static_cast<unsigned long long>(v(persistent_recovered)),
                static_cast<unsigned long long>(v(persistent_corrupt_records)),
                static_cast<unsigned long long>(
                    v(persistent_truncated_records)),
                static_cast<unsigned long long>(
                    v(persistent_quarantined_bytes)),
                static_cast<unsigned long long>(v(persistent_compactions)),
                static_cast<unsigned long long>(v(persistent_io_errors)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "campaign: run=%llu trials=%llu batches=%llu "
                "conclusive=%llu\n",
                static_cast<unsigned long long>(v(campaigns_run)),
                static_cast<unsigned long long>(v(campaign_trials)),
                static_cast<unsigned long long>(v(campaign_batches)),
                static_cast<unsigned long long>(v(campaigns_conclusive)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "resilience: retried=%llu redundant=%llu divergence=%llu "
                "resumes=%llu\n",
                static_cast<unsigned long long>(v(jobs_retried)),
                static_cast<unsigned long long>(v(redundant_runs)),
                static_cast<unsigned long long>(v(engine_divergence)),
                static_cast<unsigned long long>(v(checkpoint_resumes)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "swarm: races_won=%llu loser_states=%llu cancel_micros=%llu\n",
                static_cast<unsigned long long>(v(swarm_races_won)),
                static_cast<unsigned long long>(v(swarm_loser_states)),
                static_cast<unsigned long long>(v(swarm_cancel_micros)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "async: sessions=%llu streamed=%llu drain_rejected=%llu "
                "overflow=%llu lost=%llu\n",
                static_cast<unsigned long long>(v(sessions_opened)),
                static_cast<unsigned long long>(v(results_streamed)),
                static_cast<unsigned long long>(v(drain_rejected)),
                static_cast<unsigned long long>(v(stream_overflows)),
                static_cast<unsigned long long>(v(stream_lost)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "net: connections=%llu lines_in=%llu lines_out=%llu "
                "malformed=%llu drains=%llu accept_errors=%llu "
                "quota_rejected=%llu\n",
                static_cast<unsigned long long>(v(net_connections)),
                static_cast<unsigned long long>(v(net_lines_in)),
                static_cast<unsigned long long>(v(net_lines_out)),
                static_cast<unsigned long long>(v(net_malformed)),
                static_cast<unsigned long long>(v(net_drains)),
                static_cast<unsigned long long>(v(net_accept_errors)),
                static_cast<unsigned long long>(v(net_quota_rejected)));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "queue latency: mean=%.6fs p50<=%.6fs p99<=%.6fs  %s\n",
                queue_latency.mean_seconds(),
                queue_latency.quantile_seconds(0.5),
                queue_latency.quantile_seconds(0.99),
                queue_latency.render().c_str());
  out += buf;
  std::snprintf(buf, sizeof buf,
                "job latency:   mean=%.6fs p50<=%.6fs p99<=%.6fs  %s\n",
                job_latency.mean_seconds(),
                job_latency.quantile_seconds(0.5),
                job_latency.quantile_seconds(0.99),
                job_latency.render().c_str());
  out += buf;
  return out;
}

}  // namespace tta::svc
