#include "svc/wire.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <vector>

#include "util/digest.h"

namespace tta::svc {

namespace {

// Minimal JSON-lines object scanner: accepts {"key": value, ...} with
// string / integer / boolean values, which is all the job format uses.
struct Scanner {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool string(std::string* out) {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    out->clear();
    while (p < end && *p != '"') out->push_back(*p++);
    if (p >= end) return false;
    ++p;
    return true;
  }
  /// Bare token up to , } or whitespace (numbers, true/false).
  bool token(std::string* out) {
    skip_ws();
    out->clear();
    while (p < end && *p != ',' && *p != '}' &&
           !std::isspace(static_cast<unsigned char>(*p))) {
      out->push_back(*p++);
    }
    return !out->empty();
  }
};

bool parse_bool(const std::string& v, bool* out) {
  if (v == "true" || v == "1") { *out = true; return true; }
  if (v == "false" || v == "0") { *out = false; return true; }
  return false;
}

bool parse_u64(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  std::uint64_t acc = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = acc;
  return true;
}

bool parse_authority(const std::string& v, guardian::Authority* out) {
  for (guardian::Authority a : guardian::kAllAuthorities) {
    if (v == guardian::to_string(a)) {
      *out = a;
      return true;
    }
  }
  return false;
}

bool parse_property(const std::string& v, Property* out) {
  for (Property prop : {Property::kNoIntegratedNodeFreezes,
                        Property::kAllActiveReachable,
                        Property::kRecoverability}) {
    if (v == to_string(prop)) {
      *out = prop;
      return true;
    }
  }
  return false;
}

bool parse_engine(const std::string& v, EngineChoice* out) {
  for (EngineChoice e : {EngineChoice::kSerial, EngineChoice::kParallel,
                         EngineChoice::kAuto, EngineChoice::kRedundant,
                         EngineChoice::kSwarm}) {
    if (v == to_string(e)) {
      *out = e;
      return true;
    }
  }
  return false;
}

bool parse_priority(const std::string& v, std::int32_t* out) {
  std::string digits = v;
  bool negative = false;
  if (!digits.empty() && digits[0] == '-') {
    negative = true;
    digits.erase(0, 1);
  }
  std::uint64_t magnitude = 0;
  if (!parse_u64(digits, &magnitude) ||
      magnitude >
          static_cast<std::uint64_t>(WireGrammar::kMaxPriorityMagnitude)) {
    return false;
  }
  *out = negative ? -static_cast<std::int32_t>(magnitude)
                  : static_cast<std::int32_t>(magnitude);
  return true;
}

bool parse_kind(const std::string& v, JobKind* out) {
  for (JobKind k : {JobKind::kVerify, JobKind::kCampaign}) {
    if (v == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool parse_criterion(const std::string& v, campaign::Criterion* out) {
  for (campaign::Criterion c : {campaign::Criterion::kAllActiveReached,
                                campaign::Criterion::kNoHealthyCliqueFreeze}) {
    if (v == campaign::to_string(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

bool parse_topology(const std::string& v, sim::Topology* out) {
  for (sim::Topology t : {sim::Topology::kStar, sim::Topology::kBus}) {
    if (v == sim::to_string(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

/// One scanned key/value pair; `offset` is the byte position of the key's
/// opening quote on the line, so parse errors can point at the field.
struct RawField {
  std::string key;
  std::string value;
  bool is_string = false;
  std::size_t offset = 0;
};

/// Shared body of parse_job_line / parse_request_line. When `request` is
/// null the wire-only keys (WireGrammar) are unknown keys, exactly as the
/// job-file grammar has always treated them. Two passes: scan every field
/// first (recording key offsets), then resolve the job kind — which may
/// be declared anywhere on the line — and interpret each field under its
/// kind's key set.
bool parse_line_impl(const std::string& line, JobSpec* spec,
                     WireRequest* request, std::string* error) {
  auto fail = [error](const std::string& msg) {
    if (error) *error = msg;
    return false;
  };

  std::vector<RawField> fields;
  Scanner s{line.data(), line.data() + line.size()};
  if (!s.consume('{')) return fail("expected '{'");
  if (!s.consume('}')) {
    for (;;) {
      RawField f;
      s.skip_ws();
      f.offset = static_cast<std::size_t>(s.p - line.data());
      if (!s.string(&f.key)) return fail("expected a \"key\" string");
      if (!s.consume(':')) {
        return fail("expected ':' after \"" + f.key + "\"");
      }
      s.skip_ws();
      if (s.p < s.end && *s.p == '"') {
        if (!s.string(&f.value)) return fail("unterminated string value");
        f.is_string = true;
      } else if (!s.token(&f.value)) {
        return fail("missing value for \"" + f.key + "\"");
      }
      fields.push_back(std::move(f));
      if (s.consume('}')) break;
      if (!s.consume(',')) return fail("expected ',' or '}'");
    }
  }
  s.skip_ws();
  if (s.p != s.end) return fail("trailing characters after '}'");

  JobSpec out;
  for (const RawField& f : fields) {
    if (f.key != "kind") continue;
    if (!f.is_string || !parse_kind(f.value, &out.kind)) {
      return fail("bad value for \"kind\" at offset " +
                  std::to_string(f.offset) + ": " + f.value);
    }
  }
  const bool is_campaign = out.kind == JobKind::kCampaign;

  auto at = [](const RawField& f) {
    return " at offset " + std::to_string(f.offset);
  };

  for (const RawField& f : fields) {
    const std::string& key = f.key;
    const std::string& value = f.value;
    const bool is_string = f.is_string;
    bool ok = true;
    std::uint64_t n = 0;
    if (key == "kind") {
      continue;  // resolved above
    } else if (key == "authority") {
      guardian::Authority a = out.model.authority;
      ok = is_string && parse_authority(value, &a);
      if (ok) {
        out.model.authority = a;
        out.campaign.authority = a;
      }
    } else if (key == "engine") {
      ok = is_string && parse_engine(value, &out.engine);
    } else if (key == "nodes") {
      const std::uint64_t cap = is_campaign ? 16 : mc::kMaxNodes;
      ok = parse_u64(value, &n) && n >= 2 && n <= cap;
      if (ok && is_campaign) {
        out.campaign.num_nodes = static_cast<std::uint32_t>(n);
      } else if (ok) {
        out.model.protocol.num_nodes = static_cast<std::uint8_t>(n);
        out.model.protocol.num_slots = std::max(
            out.model.protocol.num_slots, static_cast<std::uint8_t>(n));
      }
    } else if (key == "channels") {
      ok = parse_u64(value, &n) && n >= 1 && n <= 2;
      if (ok) {
        out.model.num_couplers = static_cast<unsigned>(n);
        out.campaign.num_channels = static_cast<std::uint32_t>(n);
      }
    } else if (key == "deadline_ms") {
      ok = parse_u64(value, &n) && n <= UINT32_MAX;
      if (ok) out.deadline_ms = static_cast<std::uint32_t>(n);
    } else if (key == "threads") {
      ok = parse_u64(value, &n) && n <= 256;
      if (ok) out.threads = static_cast<unsigned>(n);
    } else if (request && key == WireGrammar::kPriorityKey) {
      ok = !is_string && parse_priority(value, &request->priority);
    } else if (request && key == WireGrammar::kIdKey) {
      ok = is_string;
      if (ok) request->id = value;
    } else if (request && key == WireGrammar::kTenantKey) {
      ok = is_string && value.size() <= WireGrammar::kMaxTenantBytes;
      if (ok) request->tenant = value;
    } else if (!is_campaign && key == "property") {
      ok = is_string && parse_property(value, &out.property);
    } else if (!is_campaign && key == "slots") {
      ok = parse_u64(value, &n) && n >= 2 && n <= 16;
      if (ok) out.model.protocol.num_slots = static_cast<std::uint8_t>(n);
    } else if (!is_campaign && key == "max_oos") {
      ok = parse_u64(value, &n) && n <= 7;
      if (ok) out.model.max_out_of_slot_errors = static_cast<unsigned>(n);
    } else if (!is_campaign && key == "big_bang") {
      ok = parse_bool(value, &out.model.protocol.big_bang_enabled);
    } else if (!is_campaign && key == "bad_dominates_fusion") {
      ok = parse_bool(value, &out.model.protocol.bad_dominates_fusion);
    } else if (!is_campaign && key == "allow_host_freeze") {
      ok = parse_bool(value, &out.model.protocol.allow_host_freeze);
    } else if (!is_campaign && key == "model_await_test") {
      ok = parse_bool(value, &out.model.protocol.model_await_test);
    } else if (!is_campaign && key == "allow_reinit") {
      ok = parse_bool(value, &out.model.protocol.allow_reinit);
    } else if (!is_campaign && key == "allow_coldstart_duplication") {
      ok = parse_bool(value, &out.model.allow_coldstart_duplication);
    } else if (!is_campaign && key == "allow_cstate_duplication") {
      ok = parse_bool(value, &out.model.allow_cstate_duplication);
    } else if (!is_campaign && key == "allow_silence_fault") {
      ok = parse_bool(value, &out.model.allow_silence_fault);
    } else if (!is_campaign && key == "allow_bad_frame_fault") {
      ok = parse_bool(value, &out.model.allow_bad_frame_fault);
    } else if (!is_campaign && key == "max_states") {
      ok = parse_u64(value, &out.max_states) && out.max_states > 0;
    } else if (!is_campaign && key == "table") {
      ok = is_string;
      if (value == "flat") {
        out.table_backend = mc::TableBackend::kFlat;
      } else if (value == "compact") {
        out.table_backend = mc::TableBackend::kCompact;
      } else {
        ok = false;
      }
    } else if (is_campaign && key == "topology") {
      ok = is_string && parse_topology(value, &out.campaign.topology);
    } else if (is_campaign && key == "criterion") {
      ok = is_string && parse_criterion(value, &out.campaign.criterion);
    } else if (is_campaign && key == "steps") {
      ok = parse_u64(value, &out.campaign.steps) && out.campaign.steps > 0;
    } else if (key == "seed") {
      // Campaigns seed the trial RNG streams; verification jobs seed the
      // swarm engine's racers. Both are digest-invariant execution hints.
      ok = is_campaign ? parse_u64(value, &out.campaign.seed)
                       : parse_u64(value, &out.seed);
    } else if (is_campaign && key == "min_trials") {
      ok = parse_u64(value, &n) && n <= UINT32_MAX;
      if (ok) out.campaign.min_trials = static_cast<std::uint32_t>(n);
    } else if (is_campaign && key == "max_trials") {
      ok = parse_u64(value, &n) && n > 0 && n <= UINT32_MAX;
      if (ok) out.campaign.max_trials = static_cast<std::uint32_t>(n);
    } else if (is_campaign && key == "batch") {
      ok = parse_u64(value, &n) && n > 0 && n <= UINT32_MAX;
      if (ok) out.campaign.batch_size = static_cast<std::uint32_t>(n);
    } else if (is_campaign && key == "epsilon_ppm") {
      ok = parse_u64(value, &n) && n >= 1 && n <= campaign::kPpmScale;
      if (ok) out.campaign.epsilon_ppm = static_cast<std::uint32_t>(n);
    } else if (is_campaign && key == "fail_bound_ppm") {
      ok = parse_u64(value, &n) && n <= campaign::kPpmScale;
      if (ok) out.campaign.fail_bound_ppm = static_cast<std::uint32_t>(n);
    } else if (is_campaign && key == "faults") {
      std::string dict_error;
      if (!is_string || !campaign::parse_fault_dictionary(
                            value, &out.campaign, &dict_error)) {
        return fail((dict_error.empty() ? "bad value for \"faults\""
                                        : dict_error) +
                    at(f));
      }
    } else {
      return fail("unknown key \"" + key + "\"" + at(f) + " for " +
                  to_string(out.kind) + " jobs");
    }
    if (!ok) {
      return fail("bad value for \"" + key + "\"" + at(f) + ": " + value);
    }
  }

  if (is_campaign) {
    if (std::string err = out.campaign.validate(); !err.empty()) {
      return fail(err);
    }
  } else if (out.model.protocol.num_slots < out.model.protocol.num_nodes) {
    return fail("slots must be >= nodes");
  }
  *spec = out;
  return true;
}

std::string number(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string number(std::uint64_t v) { return std::to_string(v); }

}  // namespace

bool parse_job_line(const std::string& line, JobSpec* spec,
                    std::string* error) {
  return parse_line_impl(line, spec, nullptr, error);
}

bool parse_request_line(const std::string& line, WireRequest* request,
                        std::string* error) {
  WireRequest out;
  if (!parse_line_impl(line, &out.spec, &out, error)) return false;
  *request = std::move(out);
  return true;
}

std::string decorate_request_line(const std::string& job_line,
                                  std::int32_t priority,
                                  const std::string& id,
                                  const std::string& tenant) {
  const std::size_t close = job_line.rfind('}');
  std::string out = job_line.substr(0, close);
  const std::size_t open = out.find('{');
  const bool empty_object =
      out.find_first_not_of(" \t", open + 1) == std::string::npos;
  std::string extra = std::string("\"") + WireGrammar::kPriorityKey +
                      "\":" + std::to_string(priority);
  if (!id.empty()) {
    extra += std::string(",\"") + WireGrammar::kIdKey + "\":\"" +
             json_escape(id) + "\"";
  }
  if (!tenant.empty()) {
    extra += std::string(",\"") + WireGrammar::kTenantKey + "\":\"" +
             json_escape(tenant) + "\"";
  }
  out += empty_object ? extra : "," + extra;
  out += job_line.substr(close);
  return out;
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string result_json(const JobSpec& spec, const JobResult& result,
                        unsigned pass, std::uint64_t seq, double ts_ms,
                        const std::string& id) {
  std::string out = "{";
  if (!id.empty()) out += "\"id\":\"" + json_escape(id) + "\",";
  out += "\"pass\":" + number(std::uint64_t{pass});
  out += ",\"seq\":" + number(seq);
  out += ",\"ts_ms\":" + number(ts_ms);
  out += ",\"digest\":\"" + util::digest_hex(result.digest) + "\"";
  out += ",\"config\":\"" + config_label(spec) + "\"";
  out += ",\"property\":\"";
  out += to_string(spec.property);
  out += "\",\"engine\":\"";
  out += to_string(result.engine_used);
  out += "\",\"verdict\":\"";
  out += mc::to_string(result.verdict);
  out += "\",\"states\":" + number(result.stats.states_explored);
  out += ",\"transitions\":" + number(result.stats.transitions);
  out += ",\"depth\":" + number(result.stats.max_depth);
  out += ",\"trace_len\":" + number(std::uint64_t{result.trace.size()});
  out += ",\"dead_states\":" + number(result.dead_states);
  out += ",\"engine_seconds\":" + number(result.stats.seconds);
  out += ",\"queue_seconds\":" + number(result.queue_seconds);
  out += ",\"deadline_hit\":" + number(std::uint64_t{result.stats.cancelled});
  out += ",\"from_cache\":" + number(std::uint64_t{result.from_cache});
  out += ",\"from_persistent\":" +
         number(std::uint64_t{result.from_persistent});
  out += ",\"resumed\":" + number(std::uint64_t{result.stats.resumed});
  if (result.has_campaign) {
    const CampaignEstimate& c = result.campaign;
    out += ",\"campaign\":{";
    out += "\"criterion\":\"";
    out += campaign::to_string(spec.campaign.criterion);
    out += "\",\"trials\":" + number(c.trials);
    out += ",\"failures\":" + number(c.failures);
    out += ",\"batches\":" + number(c.batches);
    out += ",\"p_hat\":" + number(c.p_hat);
    out += ",\"ci_low\":" + number(c.ci_low);
    out += ",\"ci_high\":" + number(c.ci_high);
    out += ",\"conclusive\":" + number(std::uint64_t{c.conclusive});
    out += "}";
  }
  out += ",\"outcome\":" + result.outcome.to_json();
  out += "}";
  return out;
}

std::string error_row(const std::string& reason, int lineno) {
  return "{\"error\":\"" + json_escape(reason) +
         "\",\"line\":" + std::to_string(lineno) + "}";
}

std::string progress_row(const ProgressRow& row) {
  std::string out = "{";
  if (!row.id.empty()) out += "\"id\":\"" + json_escape(row.id) + "\",";
  out += "\"progress\":1";
  out += ",\"seq\":" + number(row.seq);
  out += ",\"ts_ms\":" + number(row.ts_ms);
  out += ",\"digest\":\"" + util::digest_hex(row.digest) + "\"";
  out += ",\"state\":\"";
  out += row.state;
  out += "\",\"trials\":" + number(row.trials);
  out += ",\"failures\":" + number(row.failures);
  out += ",\"batches\":" + number(row.batches);
  out += ",\"p_hat\":" + number(row.p_hat);
  out += ",\"ci_low\":" + number(row.ci_low);
  out += ",\"ci_high\":" + number(row.ci_high);
  out += "}";
  return out;
}

}  // namespace tta::svc
