#include "wire/signal.h"

#include <cmath>

namespace tta::wire {

SignalAttrs nominal_signal() { return SignalAttrs{900.0, 0.0}; }

bool accepts(const ReceiverTolerance& tol, const SignalAttrs& attrs) {
  return attrs.amplitude_mv >= tol.min_amplitude_mv &&
         std::abs(attrs.timing_offset_ns) <= tol.window_ns;
}

bool is_sos(const std::vector<ReceiverTolerance>& receivers,
            const SignalAttrs& attrs) {
  bool any_accept = false;
  bool any_reject = false;
  for (const auto& tol : receivers) {
    (accepts(tol, attrs) ? any_accept : any_reject) = true;
  }
  return any_accept && any_reject;
}

std::vector<ReceiverTolerance> spread_tolerances(std::size_t n,
                                                 double amplitude_step_mv,
                                                 double window_step_ns) {
  std::vector<ReceiverTolerance> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ReceiverTolerance tol;
    tol.min_amplitude_mv += static_cast<double>(i) * amplitude_step_mv;
    tol.window_ns -= static_cast<double>(i) * window_step_ns;
    out.push_back(tol);
  }
  return out;
}

}  // namespace tta::wire
