// Analog attributes of a transmitted frame and receiver acceptance.
//
// Slightly-off-specification (SOS) faults — the fault class the central
// guardian's "active signal reshaping" exists to kill — are frames whose
// amplitude or timing sits so close to the receivers' acceptance thresholds
// that hardware tolerance spread makes *some* receivers accept and *others*
// reject the same frame. We model exactly the two dimensions the paper
// names: signal strength (value domain) and frame timing (time domain).
#pragma once

#include <vector>

namespace tta::wire {

/// Per-transmission analog attributes as seen at a receiver's input.
struct SignalAttrs {
  double amplitude_mv = 900.0;     ///< differential signal strength
  double timing_offset_ns = 0.0;   ///< start-of-frame offset from slot start
                                   ///< (positive = late)

  friend bool operator==(const SignalAttrs&, const SignalAttrs&) = default;
};

/// A receiver's hardware acceptance window; spread between nodes is what
/// turns a marginal signal into an SOS disagreement.
struct ReceiverTolerance {
  double min_amplitude_mv = 600.0;  ///< weaker signals are rejected
  double window_ns = 1000.0;        ///< |offset| beyond this is rejected
};

/// Nominal attributes a healthy transmitter produces.
SignalAttrs nominal_signal();

/// Whether one receiver accepts the transmission.
bool accepts(const ReceiverTolerance& tol, const SignalAttrs& attrs);

/// A transmission is SOS w.r.t. a set of receivers iff they disagree on it.
bool is_sos(const std::vector<ReceiverTolerance>& receivers,
            const SignalAttrs& attrs);

/// Spread-out tolerances for `n` receivers: node i's thresholds deviate from
/// nominal by i * step in both dimensions (deterministic, so SOS scenarios
/// in tests and benches are exactly reproducible).
std::vector<ReceiverTolerance> spread_tolerances(std::size_t n,
                                                 double amplitude_step_mv,
                                                 double window_step_ns);

}  // namespace tta::wire
