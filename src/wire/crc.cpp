#include "wire/crc.h"

#include "util/check.h"

namespace tta::wire {

CrcSpec crc24_channel(int channel) {
  TTA_CHECK(channel == 0 || channel == 1);
  // FlexRay frame CRC-24 polynomial; init vectors differ per channel exactly
  // as FlexRay does (0xFEDCBA / 0xABCDEF) to give the two TTP/C channels
  // independent CRC schedules.
  return CrcSpec{24, 0x5D6DCB,
                 channel == 0 ? 0xFEDCBAu : 0xABCDEFu, 0x000000};
}

CrcSpec crc16_ccitt() { return CrcSpec{16, 0x1021, 0xFFFF, 0x0000}; }

CrcSpec crc8_autosar() { return CrcSpec{8, 0x2F, 0xFF, 0xFF}; }

CrcSpec crc32_bzip2() {
  return CrcSpec{32, 0x04C11DB7, 0xFFFFFFFF, 0xFFFFFFFF};
}

Crc::Crc(const CrcSpec& spec) : spec_(spec) {
  TTA_CHECK(spec.width >= 8 && spec.width <= 32);
  mask_ = spec.width == 32 ? 0xFFFFFFFFu : ((1u << spec.width) - 1);
  topbit_ = 1u << (spec.width - 1);
  reset();
}

void Crc::reset(std::uint32_t seed) { reg_ = (spec_.init ^ seed) & mask_; }

void Crc::push_bit(bool b) {
  bool top = (reg_ & topbit_) != 0;
  reg_ = (reg_ << 1) & mask_;
  if (top != b) reg_ ^= spec_.poly & mask_;
}

void Crc::push(const BitStream& bits) { push(bits, 0, bits.size()); }

void Crc::push(const BitStream& bits, std::size_t pos, std::size_t len) {
  TTA_CHECK(pos + len <= bits.size());
  for (std::size_t i = 0; i < len; ++i) push_bit(bits.bit(pos + i));
}

std::uint32_t Crc::value() const { return (reg_ ^ spec_.xorout) & mask_; }

std::uint32_t Crc::compute(const CrcSpec& spec, const BitStream& bits,
                           std::uint32_t seed) {
  Crc c(spec);
  c.reset(seed);
  c.push(bits);
  return c.value();
}

}  // namespace tta::wire
