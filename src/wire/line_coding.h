// Line-coding overhead model.
//
// Equation (1) of the paper charges the central guardian `le` bits of buffer
// for "line encoding" — the preamble/sync pattern a receiver needs before
// payload bits become meaningful, which the guardian must absorb before it
// can start re-driving the signal. We model line coding as a fixed
// `preamble_bits`-bit alternating sync pattern prepended to the frame image
// (default 4, the paper's le = 4), which is exactly the quantity the
// analysis equations consume.
#pragma once

#include <cstddef>
#include <optional>

#include "wire/bitstream.h"

namespace tta::wire {

class LineCoding {
 public:
  explicit LineCoding(unsigned preamble_bits = 4);

  unsigned preamble_bits() const { return preamble_bits_; }

  /// Frame image -> wire image (preamble + frame bits).
  BitStream encode(const BitStream& frame) const;

  /// Wire image -> frame image; nullopt if the preamble is damaged.
  std::optional<BitStream> decode(const BitStream& wire) const;

  /// Size bookkeeping used by the leaky-bucket analysis.
  std::size_t wire_bits(std::size_t frame_bits) const {
    return frame_bits + preamble_bits_;
  }

 private:
  bool preamble_bit(unsigned i) const { return (i % 2) == 0; }

  unsigned preamble_bits_;
};

}  // namespace tta::wire
