// Bit-serial CRC over BitStreams.
//
// TTP/C protects every frame with a 24-bit CRC, and the *implicit C-state*
// mechanism seeds that CRC with the sender's C-state bits so a receiver with
// a different C-state rejects the frame without the C-state ever being
// transmitted. The exact TTP/C polynomial is not published in the paper, so
// we substitute the public CRC-24 used by the closely related FlexRay
// protocol (poly 0x5D6DCB) — the reproduction only relies on CRC *behaviour*
// (error detection + implicit-state seeding), not on a specific polynomial.
// Documented as a substitution in DESIGN.md.
#pragma once

#include <cstdint>

#include "wire/bitstream.h"

namespace tta::wire {

/// Parameters of a non-reflected bit-serial CRC.
struct CrcSpec {
  unsigned width;        ///< 8..32 bits.
  std::uint32_t poly;    ///< Generator polynomial (top bit implicit).
  std::uint32_t init;    ///< Initial register value.
  std::uint32_t xorout;  ///< Final XOR.
};

/// CRC-24 (FlexRay polynomial). TTP/C runs distinct CRC schedules on the two
/// channels so a node cannot accidentally pass on the wrong channel; we model
/// that with per-channel init vectors.
CrcSpec crc24_channel(int channel);

/// CRC-16/CCITT-FALSE, used for the short diagnostic framing in tests.
CrcSpec crc16_ccitt();

/// CRC-8 (poly 0x2F), used by the line-coding self-checks.
CrcSpec crc8_autosar();

/// CRC-32/BZIP2 (poly 0x04C11DB7, non-reflected). The persistence layer's
/// byte-oriented util::crc32 computes exactly this spec table-driven;
/// exposing it here lets the tests cross-validate the two implementations
/// bit for bit (util_file_journal_test.cpp).
CrcSpec crc32_bzip2();

class Crc {
 public:
  explicit Crc(const CrcSpec& spec);

  /// Resets the register to `init` XOR-folded with a seed. Seeding is how
  /// implicit C-state works: the seed is the C-state image, so two parties
  /// with different C-states compute different CRCs over identical bits.
  void reset(std::uint32_t seed = 0);

  /// Clocks one bit through the register.
  void push_bit(bool b);

  /// Clocks a whole stream (optionally a [pos, pos+len) slice).
  void push(const BitStream& bits);
  void push(const BitStream& bits, std::size_t pos, std::size_t len);

  /// Final CRC value (xorout applied; register itself is not disturbed).
  std::uint32_t value() const;

  unsigned width() const { return spec_.width; }

  /// One-shot convenience.
  static std::uint32_t compute(const CrcSpec& spec, const BitStream& bits,
                               std::uint32_t seed = 0);

 private:
  CrcSpec spec_;
  std::uint32_t reg_ = 0;
  std::uint32_t mask_ = 0;
  std::uint32_t topbit_ = 0;
};

}  // namespace tta::wire
