#include "wire/frame.h"

#include "util/check.h"

namespace tta::wire {

namespace {

constexpr std::size_t kNPayloadMaxBytes = 240;

void push_header(BitStream& out, const FrameHeader& h) {
  out.push_bits(static_cast<std::uint64_t>(h.type), 2);
  // Only 2 of the paper's 3 MCR bits fit next to a 2-bit type in the 4-bit
  // header nibble; mode changes are out of scope for the reproduced
  // experiments, so MCR is truncated to 2 bits here.
  out.push_bits(h.mode_change_request & 0x3u, 2);
}

void push_cstate(BitStream& out, const CStateImage& cs) {
  out.push_bits(cs.global_time, 16);
  out.push_bits(cs.medl_position, 16);
  out.push_bits(cs.membership, 16);
}

CStateImage read_cstate(const BitStream& in, std::size_t pos) {
  CStateImage cs;
  cs.global_time = static_cast<std::uint16_t>(in.read_bits(pos, 16));
  cs.medl_position = static_cast<std::uint16_t>(in.read_bits(pos + 16, 16));
  cs.membership = static_cast<std::uint16_t>(in.read_bits(pos + 32, 16));
  return cs;
}

void push_crc(BitStream& out, int channel, std::uint32_t seed) {
  Crc crc(crc24_channel(channel));
  crc.reset(seed);
  crc.push(out);
  out.push_bits(crc.value(), 24);
}

bool check_crc(const BitStream& bits, int channel, std::uint32_t seed,
               std::size_t covered_bits) {
  Crc crc(crc24_channel(channel));
  crc.reset(seed);
  crc.push(bits, 0, covered_bits);
  return crc.value() == bits.read_bits(covered_bits, 24);
}

}  // namespace

std::uint32_t CStateImage::crc_seed() const {
  // 48 -> 24 bit fold with multiplicative mixing so that single-field
  // differences always change the seed.
  std::uint64_t x = (static_cast<std::uint64_t>(global_time) << 32) |
                    (static_cast<std::uint64_t>(medl_position) << 16) |
                    membership;
  x ^= x >> 23;
  x *= 0x2127599bf4325c37ull;
  x ^= x >> 29;
  return static_cast<std::uint32_t>(x & 0xFFFFFF);
}

std::size_t encoded_bits(const WireFrame& frame) {
  switch (frame.header.type) {
    case WireFrameType::kN:
      return kNFrameMinBits + frame.payload.size() * 8;
    case WireFrameType::kI:
      return kIFrameBits;
    case WireFrameType::kX:
      return kXFrameBits;
    case WireFrameType::kColdStart:
      return kColdStartFrameBits;
  }
  TTA_CHECK(false);
}

BitStream encode_frame(const WireFrame& frame, int channel) {
  TTA_CHECK(channel == 0 || channel == 1);
  BitStream out;
  push_header(out, frame.header);
  switch (frame.header.type) {
    case WireFrameType::kN: {
      TTA_CHECK(frame.payload.size() <= kNPayloadMaxBytes);
      for (std::uint8_t b : frame.payload) out.push_bits(b, 8);
      // Implicit C-state: the C-state never hits the wire; it seeds the CRC.
      push_crc(out, channel, frame.cstate.crc_seed());
      break;
    }
    case WireFrameType::kI: {
      push_cstate(out, frame.cstate);
      push_crc(out, channel, 0);
      break;
    }
    case WireFrameType::kX: {
      TTA_CHECK(frame.payload.size() * 8 == kXPayloadBits);
      push_cstate(out, frame.cstate);
      out.push_bits(0, 48);  // reserved half of the 96-bit X C-state area
      for (std::uint8_t b : frame.payload) out.push_bits(b, 8);
      // Two independent CRCs ("48 bits for two CRCs"): one per channel
      // schedule, so either channel's receiver can verify natively.
      {
        Crc c0(crc24_channel(0));
        c0.push(out);
        std::uint32_t v0 = c0.value();
        Crc c1(crc24_channel(1));
        c1.push(out);
        out.push_bits(v0, 24);
        out.push_bits(c1.value(), 24);
      }
      out.push_bits(0, static_cast<unsigned>(kXPadBits));
      break;
    }
    case WireFrameType::kColdStart: {
      out.push_bits(frame.cstate.global_time, 16);
      TTA_CHECK(frame.round_slot < (1u << kColdStartRoundSlotBits));
      out.push_bits(frame.round_slot,
                    static_cast<unsigned>(kColdStartRoundSlotBits));
      push_crc(out, channel, 0);
      break;
    }
  }
  TTA_CHECK(out.size() == encoded_bits(frame));
  return out;
}

DecodeResult decode_frame(const BitStream& bits, int channel,
                          const CStateImage& receiver_cstate) {
  TTA_CHECK(channel == 0 || channel == 1);
  DecodeResult r;
  if (bits.size() < kHeaderBits + kCrcBits) {
    r.status = DecodeStatus::kTruncated;
    return r;
  }
  auto type_raw = bits.read_bits(0, 2);
  auto mcr = static_cast<std::uint8_t>(bits.read_bits(2, 2));
  auto type = static_cast<WireFrameType>(type_raw);
  r.frame.header = FrameHeader{type, mcr};

  switch (type) {
    case WireFrameType::kN: {
      std::size_t body = bits.size() - kHeaderBits - kCrcBits;
      if (body % 8 != 0 || body / 8 > kNPayloadMaxBytes) {
        r.status = DecodeStatus::kBadHeader;
        return r;
      }
      if (!check_crc(bits, channel, receiver_cstate.crc_seed(),
                     bits.size() - kCrcBits)) {
        r.status = DecodeStatus::kCrcMismatch;
        return r;
      }
      r.frame.cstate = receiver_cstate;  // implicit: agreement was verified
      for (std::size_t i = 0; i < body / 8; ++i) {
        r.frame.payload.push_back(static_cast<std::uint8_t>(
            bits.read_bits(kHeaderBits + i * 8, 8)));
      }
      return r;
    }
    case WireFrameType::kI: {
      if (bits.size() != kIFrameBits) {
        r.status = DecodeStatus::kTruncated;
        return r;
      }
      if (!check_crc(bits, channel, 0, bits.size() - kCrcBits)) {
        r.status = DecodeStatus::kCrcMismatch;
        return r;
      }
      r.frame.cstate = read_cstate(bits, kHeaderBits);
      return r;
    }
    case WireFrameType::kX: {
      if (bits.size() != kXFrameBits) {
        r.status = DecodeStatus::kTruncated;
        return r;
      }
      std::size_t covered = kHeaderBits + kCStateBitsX + kXPayloadBits;
      Crc c(crc24_channel(channel));
      c.push(bits, 0, covered);
      std::size_t crc_pos = covered + (channel == 0 ? 0 : kCrcBits);
      if (c.value() != bits.read_bits(crc_pos, 24)) {
        r.status = DecodeStatus::kCrcMismatch;
        return r;
      }
      if (bits.read_bits(covered + 2 * kCrcBits,
                         static_cast<unsigned>(kXPadBits)) != 0) {
        r.status = DecodeStatus::kBadPadding;
        return r;
      }
      r.frame.cstate = read_cstate(bits, kHeaderBits);
      for (std::size_t i = 0; i < kXPayloadBits / 8; ++i) {
        r.frame.payload.push_back(static_cast<std::uint8_t>(
            bits.read_bits(kHeaderBits + kCStateBitsX + i * 8, 8)));
      }
      return r;
    }
    case WireFrameType::kColdStart: {
      if (bits.size() != kColdStartFrameBits) {
        r.status = DecodeStatus::kTruncated;
        return r;
      }
      if (!check_crc(bits, channel, 0, bits.size() - kCrcBits)) {
        r.status = DecodeStatus::kCrcMismatch;
        return r;
      }
      r.frame.cstate.global_time =
          static_cast<std::uint16_t>(bits.read_bits(kHeaderBits, 16));
      r.frame.round_slot = static_cast<std::uint16_t>(bits.read_bits(
          kHeaderBits + 16, static_cast<unsigned>(kColdStartRoundSlotBits)));
      return r;
    }
  }
  r.status = DecodeStatus::kBadHeader;
  return r;
}

}  // namespace tta::wire
