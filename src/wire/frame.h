// Concrete TTP/C frame layouts (bit-exact encode/decode).
//
// The paper quotes frame sizes from the TTP/C Bus-Compatibility
// Specification: 28-bit minimal N-frame, 40-bit minimal cold-start frame,
// 76-bit protocol I-frame, 2076-bit maximal X-frame. We implement
// self-consistent layouts that reproduce the headline sizes the analysis
// depends on (N = 28, I = 76, X = 2076); for the cold-start frame the
// paper's own field list (1 + 16 + 9 + 24) does not sum to its stated 40-bit
// total, so our wire layout uses a 4-bit header like every other frame
// (4 + 16 + 9 + 24 = 53 bits) and the *analysis* catalog keeps the paper's
// 40-bit headline number verbatim (see analysis/frame_catalog).
//
// Implicit C-state (N-frames): the C-state is not transmitted; instead it
// seeds the CRC, so any receiver whose C-state differs sees a CRC mismatch.
// Explicit C-state (I/X/cold-start): the fields travel in the frame and are
// additionally covered by the CRC.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "wire/bitstream.h"
#include "wire/crc.h"

namespace tta::wire {

/// 48-bit controller-state image as carried by I-frames: the three fields
/// TTP/C agreement is defined over.
struct CStateImage {
  std::uint16_t global_time = 0;
  std::uint16_t medl_position = 0;  ///< round slot position in the schedule
  std::uint16_t membership = 0;     ///< one bit per node, node 1 = LSB

  friend bool operator==(const CStateImage&, const CStateImage&) = default;

  /// Folds the image into a CRC seed (this is what "implicit C-state via
  /// inclusion in the CRC calculation" means operationally).
  std::uint32_t crc_seed() const;
};

enum class WireFrameType : std::uint8_t {
  kN = 0,         ///< normal frame, implicit C-state
  kI = 1,         ///< initialization frame, explicit C-state, no data
  kX = 2,         ///< combined frame: explicit C-state + application data
  kColdStart = 3  ///< cold-start frame sent before time agreement exists
};

/// Header nibble: 1 type-class bit + 3 mode-change-request bits, matching
/// the paper's "4 bits for the mode change request and frame type".
struct FrameHeader {
  WireFrameType type = WireFrameType::kN;
  std::uint8_t mode_change_request = 0;  ///< 0..7

  friend bool operator==(const FrameHeader&, const FrameHeader&) = default;
};

struct WireFrame {
  FrameHeader header;
  CStateImage cstate;                 ///< explicit or implicit depending on type
  std::uint16_t round_slot = 0;       ///< cold-start frames only (9 bits)
  std::vector<std::uint8_t> payload;  ///< N: 0..240 bytes, X: exactly 240

  friend bool operator==(const WireFrame&, const WireFrame&) = default;
};

/// Fixed layout constants (bits).
inline constexpr std::size_t kHeaderBits = 4;
inline constexpr std::size_t kCrcBits = 24;
inline constexpr std::size_t kCStateBitsI = 48;
inline constexpr std::size_t kCStateBitsX = 96;  ///< 48 live + 48 reserved
inline constexpr std::size_t kXPayloadBits = 1920;
inline constexpr std::size_t kXPadBits = 8;
inline constexpr std::size_t kColdStartRoundSlotBits = 9;

inline constexpr std::size_t kNFrameMinBits = kHeaderBits + kCrcBits;  // 28
inline constexpr std::size_t kIFrameBits =
    kHeaderBits + kCStateBitsI + kCrcBits;  // 76
inline constexpr std::size_t kXFrameBits = kHeaderBits + kCStateBitsX +
                                           kXPayloadBits + 2 * kCrcBits +
                                           kXPadBits;  // 2076
inline constexpr std::size_t kColdStartFrameBits =
    kHeaderBits + 16 + kColdStartRoundSlotBits + kCrcBits;  // 53

/// Exact encoded size of a frame in bits (before line coding).
std::size_t encoded_bits(const WireFrame& frame);

/// Serializes `frame` for the given channel (0/1 select the CRC schedule).
/// N-frames use frame.cstate as the implicit CRC seed.
BitStream encode_frame(const WireFrame& frame, int channel);

enum class DecodeStatus {
  kOk,
  kTruncated,     ///< too few bits for the claimed type
  kBadHeader,     ///< unknown type encoding
  kCrcMismatch,   ///< CRC check failed — corruption OR C-state disagreement;
                  ///< a TTP/C receiver cannot tell these apart, which is
                  ///< exactly why implicit C-state disagreements look like
                  ///< invalid frames
  kBadPadding     ///< X-frame tail padding not zero
};

struct DecodeResult {
  DecodeStatus status = DecodeStatus::kOk;
  WireFrame frame;  ///< valid only when status == kOk
};

/// Parses a frame image. `receiver_cstate` is the receiver's own C-state,
/// used to validate implicit-C-state (N) frames; explicit-C-state frames
/// decode regardless and the caller compares C-states at the protocol layer.
DecodeResult decode_frame(const BitStream& bits, int channel,
                          const CStateImage& receiver_cstate);

}  // namespace tta::wire
