#include "wire/line_coding.h"

#include "util/check.h"

namespace tta::wire {

LineCoding::LineCoding(unsigned preamble_bits) : preamble_bits_(preamble_bits) {
  TTA_CHECK(preamble_bits >= 1 && preamble_bits <= 64);
}

BitStream LineCoding::encode(const BitStream& frame) const {
  BitStream out;
  for (unsigned i = 0; i < preamble_bits_; ++i) out.push_bit(preamble_bit(i));
  out.append(frame);
  return out;
}

std::optional<BitStream> LineCoding::decode(const BitStream& wire) const {
  if (wire.size() < preamble_bits_) return std::nullopt;
  for (unsigned i = 0; i < preamble_bits_; ++i) {
    if (wire.bit(i) != preamble_bit(i)) return std::nullopt;
  }
  BitStream frame;
  for (std::size_t i = preamble_bits_; i < wire.size(); ++i) {
    frame.push_bit(wire.bit(i));
  }
  return frame;
}

}  // namespace tta::wire
