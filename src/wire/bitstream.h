// Bit-granular byte-free frame images.
//
// TTP/C frame sizes are odd bit counts (28-bit N-frames, 2076-bit X-frames),
// and the Section 6 analysis is entirely in bits, so the wire substrate
// never rounds to bytes. BitStream is an append-only bit vector (MSB-first
// within the logical stream) with random read access; it is what frame
// encoders produce and what the guardian's bit-clock forwarder shuttles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace tta::wire {

class BitStream {
 public:
  BitStream() = default;

  /// Appends a single bit.
  void push_bit(bool b);

  /// Appends the low `bits` bits of `value`, most significant first.
  void push_bits(std::uint64_t value, unsigned bits);

  /// Appends all bits of another stream.
  void append(const BitStream& other);

  bool bit(std::size_t i) const {
    TTA_DCHECK(i < size_);
    return (bytes_[i >> 3] >> (7 - (i & 7))) & 1;
  }

  /// Reads `bits` bits starting at `pos`, most significant first.
  std::uint64_t read_bits(std::size_t pos, unsigned bits) const;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  void clear() {
    bytes_.clear();
    size_ = 0;
  }

  /// Flips bit `i` in place (used by fault injection to corrupt frames).
  void flip_bit(std::size_t i);

  /// "0101..." rendering for tests and logs.
  std::string to_string() const;

  friend bool operator==(const BitStream& a, const BitStream& b) {
    return a.size_ == b.size_ && a.bytes_ == b.bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t size_ = 0;
};

}  // namespace tta::wire
