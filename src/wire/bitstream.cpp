#include "wire/bitstream.h"

namespace tta::wire {

void BitStream::push_bit(bool b) {
  if ((size_ & 7) == 0) bytes_.push_back(0);
  if (b) bytes_[size_ >> 3] |= static_cast<std::uint8_t>(1u << (7 - (size_ & 7)));
  ++size_;
}

void BitStream::push_bits(std::uint64_t value, unsigned bits) {
  TTA_DCHECK(bits >= 1 && bits <= 64);
  TTA_DCHECK(bits == 64 || value < (1ull << bits));
  for (unsigned i = bits; i-- > 0;) {
    push_bit((value >> i) & 1);
  }
}

void BitStream::append(const BitStream& other) {
  for (std::size_t i = 0; i < other.size(); ++i) push_bit(other.bit(i));
}

std::uint64_t BitStream::read_bits(std::size_t pos, unsigned bits) const {
  TTA_DCHECK(bits >= 1 && bits <= 64);
  TTA_DCHECK(pos + bits <= size_);
  std::uint64_t v = 0;
  for (unsigned i = 0; i < bits; ++i) {
    v = (v << 1) | static_cast<std::uint64_t>(bit(pos + i));
  }
  return v;
}

void BitStream::flip_bit(std::size_t i) {
  TTA_CHECK(i < size_);
  bytes_[i >> 3] ^= static_cast<std::uint8_t>(1u << (7 - (i & 7)));
}

std::string BitStream::to_string() const {
  std::string s;
  s.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) s += bit(i) ? '1' : '0';
  return s;
}

}  // namespace tta::wire
