#include "ttpc/cstate.h"

#include <bit>
#include <cstdio>

namespace tta::ttpc {

std::size_t CState::member_count() const {
  return static_cast<std::size_t>(std::popcount(membership_));
}

std::string CState::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "t=%u slot=%u members=0x%04x", global_time_,
                round_slot_, membership_);
  return buf;
}

}  // namespace tta::ttpc
