// Distributed clock synchronization (the TTP/C service the slot-synchronous
// models abstract away).
//
// "Clock synchronization ... requires each node to observe frames sent by
// other nodes and calculate the difference between each frame's actual
// arrival time and the expected arrival time. This allows the observing
// node to adjust its own internal clock" (paper, Section 2.1). TTP/C uses
// the fault-tolerant average (FTA): collect the deviation measurements of a
// round, discard the k largest and k smallest (so k Byzantine-faulty clocks
// cannot steer the average), and apply the mean of the rest.
//
// This module provides the algorithm plus a tick-level simulation of an
// oscillator ensemble running it, which quantifies the achieved precision —
// the quantity that ultimately sizes the receive windows whose tolerance
// spread makes SOS faults possible, and bounds the rho of eq. (2).
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace tta::ttpc {

/// Fault-tolerant average: sort, drop the `k` smallest and `k` largest,
/// return the mean of the remainder. With 2k < n this tolerates k
/// arbitrarily wrong measurements. Returns 0 for an empty (post-discard)
/// set — a node with no usable measurements leaves its clock alone.
double fta_correction(std::vector<double> deviations, std::size_t k = 1);

/// One node's oscillator.
struct ClockModel {
  double drift_ppm = 0.0;  ///< systematic rate error
  double jitter = 0.0;     ///< uniform per-measurement noise amplitude; a
                           ///< Byzantine-faulty clock is modeled with huge
                           ///< jitter (its apparent send times are garbage)
  bool faulty = false;     ///< excluded from the precision metric
};

struct SyncConfig {
  std::vector<ClockModel> clocks;   ///< one entry per node (>= 2)
  double round_duration = 1.0;      ///< real time between resynchronizations
  double sync_gain = 1.0;           ///< fraction of the correction applied
  std::size_t fta_discard = 1;      ///< k of the fault-tolerant average
  std::uint64_t seed = 1;           ///< jitter stream seed (deterministic)
};

struct SyncRoundSample {
  double precision = 0.0;    ///< max pairwise offset among non-faulty clocks
  double accuracy = 0.0;     ///< max |offset from real time| among non-faulty
};

/// Tick-level ensemble simulation: each round every clock drifts by
/// drift_ppm * round_duration, every node measures every other clock's
/// offset relative to itself (sender jitter applied), runs the FTA over the
/// measurements, and corrects itself.
class ClockSyncSimulation {
 public:
  explicit ClockSyncSimulation(const SyncConfig& config);

  /// Advances one resynchronization round; returns the post-correction
  /// sample.
  SyncRoundSample run_round();

  /// Runs `rounds` rounds and returns one sample per round.
  std::vector<SyncRoundSample> run(std::size_t rounds);

  /// Current offset of clock i from real time.
  double offset(std::size_t i) const;

  std::size_t num_clocks() const { return config_.clocks.size(); }

  /// Steady-state precision bound for a healthy ensemble: one round of
  /// maximal relative drift plus two jitter amplitudes (measurement + the
  /// correction it induces). Tests and benches compare against this.
  double precision_bound() const;

 private:
  SyncRoundSample sample() const;

  SyncConfig config_;
  std::vector<double> offsets_;  ///< local time - real time, per clock
  util::Rng rng_;
};

}  // namespace tta::ttpc
