#include "ttpc/medl.h"

#include <algorithm>

#include "util/check.h"

namespace tta::ttpc {

Medl Medl::uniform(const ProtocolConfig& cfg, std::uint32_t frame_bits) {
  cfg.validate();
  Medl m;
  for (std::uint8_t s = 1; s <= cfg.num_slots; ++s) {
    SlotDescriptor d;
    // Slots beyond the node count cycle back over the nodes so that every
    // slot has an owner even in schedules with more slots than nodes.
    d.sender = static_cast<NodeId>((s - 1) % cfg.num_nodes + 1);
    d.frame_bits = frame_bits;
    d.explicit_cstate = true;
    m.slots_.push_back(d);
  }
  return m;
}

Medl Medl::with_sizes(const std::vector<std::uint32_t>& sizes,
                      bool explicit_cstate) {
  TTA_CHECK(!sizes.empty() && sizes.size() <= 255);
  Medl m;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    SlotDescriptor d;
    d.sender = static_cast<NodeId>(i + 1);
    d.frame_bits = sizes[i];
    d.explicit_cstate = explicit_cstate;
    m.slots_.push_back(d);
  }
  return m;
}

const SlotDescriptor& Medl::slot(SlotNumber s) const {
  TTA_CHECK(s >= 1 && s <= slots_.size());
  return slots_[s - 1];
}

SlotNumber Medl::slot_of(NodeId node) const {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].sender == node) return static_cast<SlotNumber>(i + 1);
  }
  return 0;
}

std::uint64_t Medl::round_bits() const {
  std::uint64_t total = 0;
  for (const auto& d : slots_) total += d.frame_bits;
  return total;
}

std::uint32_t Medl::max_frame_bits() const {
  TTA_CHECK(!slots_.empty());
  return std::max_element(slots_.begin(), slots_.end(),
                          [](const SlotDescriptor& a, const SlotDescriptor& b) {
                            return a.frame_bits < b.frame_bits;
                          })
      ->frame_bits;
}

std::uint32_t Medl::min_frame_bits() const {
  TTA_CHECK(!slots_.empty());
  return std::min_element(slots_.begin(), slots_.end(),
                          [](const SlotDescriptor& a, const SlotDescriptor& b) {
                            return a.frame_bits < b.frame_bits;
                          })
      ->frame_bits;
}

}  // namespace tta::ttpc
