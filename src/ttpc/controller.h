// The TTP/C controller state machine of the paper's formal model.
//
// This is a literal transcription of the transition constraints in Section
// 4.3 ("Modeling a node"), shared verbatim by the cluster simulator
// (src/sim) and the model checker (src/mc): the simulator draws the
// nondeterministic choices from a policy/RNG, the checker enumerates all of
// them. Keeping one implementation guarantees the two tools agree on the
// protocol semantics.
//
// One call to step() advances a node across exactly one TDMA slot. Inputs
// are the node's current state, what it observed on the two channels during
// the slot, and the index of the nondeterministic choice to take; outputs
// are the next state plus a narration event used by trace printers.
#pragma once

#include <cstdint>

#include "ttpc/config.h"
#include "ttpc/types.h"

namespace tta::ttpc {

/// All state variables the paper models for one node (Section 4.3), plus
/// nothing else — application data is deliberately absent.
struct NodeState {
  CtrlState state = CtrlState::kFreeze;
  SlotNumber slot = 1;              ///< current TDMA slot by this node's view
  std::uint8_t agreed = 0;          ///< agreed_slots_counter
  std::uint8_t failed = 0;          ///< failed_slots_counter
  bool big_bang = false;            ///< saw a cold-start frame while listening
  std::uint8_t listen_timeout = 0;  ///< slots remaining in listen; doubles as
                                    ///< the cold-start contention back-off
  /// History bit maintained only when ProtocolConfig::allow_reinit is
  /// false: distinguishes the initial power-on freeze (exitable) from a
  /// post-expulsion freeze (absorbing without host intervention). Always
  /// false otherwise, so default-configuration state spaces are unchanged.
  bool ever_integrated = false;

  friend bool operator==(const NodeState&, const NodeState&) = default;
};

/// Narration of what happened to a node during one step; used by the model
/// checker's counterexample printer and the simulator's event trace to tell
/// the paper-style story ("Node B integrates on it...").
enum class StepEvent : std::uint8_t {
  kNone = 0,
  kEnteredInit,
  kEnteredListen,
  kBigBangArmed,             ///< first cold-start seen, ignored per big bang
  kIntegratedOnColdStart,    ///< listen -> passive via a cold-start frame
  kIntegratedOnCState,       ///< listen -> passive via an explicit-C-state frame
  kListenTimeout,            ///< listen -> cold_start
  kSentColdStart,
  kSentCState,
  kCliqueRetryColdStart,     ///< lone cold-starter, no traffic: try again
  kCliqueToActive,           ///< clique test passed
  kCliqueBackToListen,       ///< cold-start clique test failed: reintegrate
  kCliqueFreeze,             ///< clique avoidance error: forced freeze
  kHostFreeze,               ///< voluntary (host-commanded) freeze
  kHostPassive               ///< voluntary active -> passive
};

const char* to_string(StepEvent event);

struct StepOutcome {
  NodeState next;
  StepEvent event = StepEvent::kNone;
};

/// Classifies one slot's channel view for the clique counters, from the
/// perspective of a receiver whose current slot counter is `slot`.
/// A frame is *correct* iff its embedded id equals `slot` (the abstraction
/// of C-state agreement); fusion across the two channels follows
/// cfg.bad_dominates_fusion (DESIGN.md §5.4).
SlotVerdict classify_view(const ChannelView& view, SlotNumber slot,
                          const ProtocolConfig& cfg);

class Controller {
 public:
  explicit Controller(const ProtocolConfig& cfg) : cfg_(cfg) {
    cfg_.validate();
  }

  const ProtocolConfig& config() const { return cfg_; }

  /// Number of nondeterministic alternatives available to a node in state
  /// `s` (>= 1; choice indices are dense in [0, num_choices)).
  unsigned num_choices(const NodeState& s) const;

  /// The frame this node drives onto both channels during its current slot
  /// (kind kNone if it is not transmitting). Matches the paper's
  /// `frame_sent` definition exactly.
  ChannelFrame frame_to_send(const NodeState& s, NodeId node_id) const;

  /// Advances one TDMA slot. `view` is what the node observed on the two
  /// channels during the slot (including its own transmission as forwarded
  /// by the couplers), `choice` selects among num_choices(s) alternatives.
  StepOutcome step(const NodeState& s, NodeId node_id, const ChannelView& view,
                   unsigned choice) const;

  /// Fresh power-on state (freeze, everything cleared).
  static NodeState initial_state() { return NodeState{}; }

 private:
  StepOutcome dispatch(const NodeState& s, NodeId node_id,
                       const ChannelView& view, unsigned choice) const;
  StepOutcome step_freeze(const NodeState& s, unsigned choice) const;
  StepOutcome step_init(const NodeState& s, NodeId node_id,
                        unsigned choice) const;
  StepOutcome step_listen(const NodeState& s, NodeId node_id,
                          const ChannelView& view) const;
  StepOutcome step_cold_start(const NodeState& s, NodeId node_id,
                              const ChannelView& view) const;
  StepOutcome step_integrated(const NodeState& s, NodeId node_id,
                              const ChannelView& view, unsigned choice) const;

  /// Saturating counter update from one slot's verdict.
  static void apply_verdict(NodeState& s, SlotVerdict verdict);

  ProtocolConfig cfg_;
};

}  // namespace tta::ttpc
