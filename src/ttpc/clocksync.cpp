#include "ttpc/clocksync.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.h"

namespace tta::ttpc {

double fta_correction(std::vector<double> deviations, std::size_t k) {
  if (deviations.size() <= 2 * k) return 0.0;
  std::sort(deviations.begin(), deviations.end());
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = k; i + k < deviations.size(); ++i) {
    sum += deviations[i];
    ++n;
  }
  return sum / static_cast<double>(n);
}

ClockSyncSimulation::ClockSyncSimulation(const SyncConfig& config)
    : config_(config),
      offsets_(config.clocks.size(), 0.0),
      rng_(config.seed) {
  TTA_CHECK(config_.clocks.size() >= 2);
  TTA_CHECK(config_.round_duration > 0.0);
  TTA_CHECK(config_.sync_gain > 0.0 && config_.sync_gain <= 1.0);
}

SyncRoundSample ClockSyncSimulation::run_round() {
  const std::size_t n = offsets_.size();

  // 1. Free-running drift across the round.
  for (std::size_t i = 0; i < n; ++i) {
    offsets_[i] += config_.clocks[i].drift_ppm * 1e-6 *
                   config_.round_duration;
  }

  // 2. Each sender's frame leaves when *its* clock says so; the apparent
  //    send-time error every receiver sees is the sender's offset plus the
  //    sender's jitter this round (one draw per sender — all receivers see
  //    the same physical edge).
  std::vector<double> apparent(n);
  for (std::size_t i = 0; i < n; ++i) {
    double jitter = config_.clocks[i].jitter;
    apparent[i] =
        offsets_[i] + (jitter > 0.0
                           ? (rng_.next_double() * 2.0 - 1.0) * jitter
                           : 0.0);
  }

  // 3. Every node measures deviation = (sender's apparent time base) -
  //    (its own), feeds the FTA, and corrects itself.
  std::vector<double> corrections(n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> deviations;
    deviations.reserve(n - 1);
    for (std::size_t i = 0; i < n; ++i) {
      if (i == j) continue;
      deviations.push_back(apparent[i] - offsets_[j]);
    }
    corrections[j] =
        config_.sync_gain * fta_correction(deviations, config_.fta_discard);
  }
  for (std::size_t j = 0; j < n; ++j) {
    offsets_[j] += corrections[j];
  }

  return sample();
}

std::vector<SyncRoundSample> ClockSyncSimulation::run(std::size_t rounds) {
  std::vector<SyncRoundSample> out;
  out.reserve(rounds);
  for (std::size_t r = 0; r < rounds; ++r) out.push_back(run_round());
  return out;
}

double ClockSyncSimulation::offset(std::size_t i) const {
  TTA_CHECK(i < offsets_.size());
  return offsets_[i];
}

SyncRoundSample ClockSyncSimulation::sample() const {
  SyncRoundSample s;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (std::size_t i = 0; i < offsets_.size(); ++i) {
    if (config_.clocks[i].faulty) continue;
    lo = std::min(lo, offsets_[i]);
    hi = std::max(hi, offsets_[i]);
    s.accuracy = std::max(s.accuracy, std::abs(offsets_[i]));
  }
  s.precision = hi - lo;
  return s;
}

double ClockSyncSimulation::precision_bound() const {
  double drift_spread = 0.0;
  double max_jitter = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -lo;
  for (const ClockModel& c : config_.clocks) {
    if (c.faulty) continue;
    lo = std::min(lo, c.drift_ppm);
    hi = std::max(hi, c.drift_ppm);
    max_jitter = std::max(max_jitter, c.jitter);
  }
  drift_spread = (hi - lo) * 1e-6 * config_.round_duration;
  return 2.0 * drift_spread + 4.0 * max_jitter;
}

}  // namespace tta::ttpc
