// Protocol model configuration.
//
// Every knob corresponds either to a parameter the paper states (cluster
// size, big-bang rule) or to a documented modeling inference from DESIGN.md
// §5 (host freezes, await/test branches, channel-fusion policy) so that the
// sensitivity of the results to each inference is testable.
#pragma once

#include <cstdint>

#include "util/check.h"

namespace tta::ttpc {

struct ProtocolConfig {
  /// Cluster size; the paper's model uses 4 nodes (A..D), one slot each.
  std::uint8_t num_nodes = 4;
  /// TDMA slots per round; node i sends in slot i, so num_slots >= num_nodes.
  std::uint8_t num_slots = 4;

  /// TTP/C "big bang": a listening node ignores the first cold-start frame
  /// it sees and integrates only on the second. Disabling it is an ablation
  /// that makes single masqueraded cold-starts strictly more dangerous.
  bool big_bang_enabled = true;

  /// Model the nondeterministic host-commanded active->passive/freeze
  /// transitions. Off by default: the checked property quantifies over
  /// *forced* freezes, so voluntary ones must be excluded (DESIGN.md §5.2).
  bool allow_host_freeze = false;

  /// Model the freeze->await/test branches. Off by default: they are
  /// unconstrained sinks in the paper's model (DESIGN.md §5.1).
  bool model_await_test = false;

  /// Model the host awakening a frozen controller (freeze -> init). TTP/C
  /// leaves reintegration to the host; disabling this makes freeze
  /// absorbing, which is how the recoverability analysis asks "what if no
  /// host intervenes?".
  bool allow_reinit = true;

  /// Channel fusion for the clique counters. TTP/C is optimistic: a correct
  /// frame on either channel makes the slot agreed. The pessimistic variant
  /// (any bad frame poisons the slot) is kept as an ablation that shows why
  /// the optimistic rule is required for single-channel fault tolerance.
  bool bad_dominates_fusion = false;

  void validate() const {
    TTA_CHECK(num_nodes >= 2 && num_nodes <= 16);
    TTA_CHECK(num_slots >= num_nodes && num_slots <= 16);
  }

  std::uint8_t next_slot(std::uint8_t slot) const {
    return slot == num_slots ? std::uint8_t{1}
                             : static_cast<std::uint8_t>(slot + 1);
  }

  /// Initial listen-timeout load for a node: "the number of slots plus the
  /// number of the slot that is assigned to the node" (Section 4.3).
  std::uint8_t listen_timeout_for(std::uint8_t node_id) const {
    return static_cast<std::uint8_t>(num_slots + node_id);
  }
};

}  // namespace tta::ttpc
