// Message Descriptor List (MEDL).
//
// TTP/C's TDMA schedule is static and known to every component before
// start-up: which node owns which slot, and how long each slot's frame is.
// The cluster simulator uses it to time slots, and the central guardian's
// time-window and semantic-analysis features are *defined* by it — a central
// guardian can only police traffic because it holds the same MEDL as the
// nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "ttpc/config.h"
#include "ttpc/types.h"

namespace tta::ttpc {

/// Static description of one TDMA slot.
struct SlotDescriptor {
  NodeId sender = 0;              ///< node that owns the slot
  std::uint32_t frame_bits = 28;  ///< scheduled frame length (pre line coding)
  bool explicit_cstate = true;    ///< I/X-frame (true) vs N-frame (false)

  friend bool operator==(const SlotDescriptor&,
                         const SlotDescriptor&) = default;
};

class Medl {
 public:
  /// Builds the schedule the paper's model implies: one slot per node, node
  /// i transmits an explicit-C-state frame of `frame_bits` bits in slot i.
  static Medl uniform(const ProtocolConfig& cfg, std::uint32_t frame_bits = 76);

  /// Builds a schedule with per-slot frame lengths (sizes.size() slots,
  /// slot i owned by node i). Used by the mixed-frame-size benches.
  static Medl with_sizes(const std::vector<std::uint32_t>& sizes,
                         bool explicit_cstate = true);

  std::size_t num_slots() const { return slots_.size(); }

  /// 1-based slot access, matching protocol slot numbering.
  const SlotDescriptor& slot(SlotNumber s) const;

  NodeId sender_of(SlotNumber s) const { return slot(s).sender; }

  /// The (first) slot owned by `node`; 0 if the node owns none.
  SlotNumber slot_of(NodeId node) const;

  /// Total scheduled bits in one TDMA round.
  std::uint64_t round_bits() const;

  /// Longest / shortest scheduled frame in bits — the f_max / f_min the
  /// Section 6 buffer analysis is parameterized by.
  std::uint32_t max_frame_bits() const;
  std::uint32_t min_frame_bits() const;

 private:
  std::vector<SlotDescriptor> slots_;  ///< index 0 = slot 1
};

}  // namespace tta::ttpc
