// Controller state (C-state) at the protocol level.
//
// The C-state is the information two TTP/C controllers must agree on to be
// "in the same cluster": global time, position in the MEDL schedule, and the
// membership vector. The abstract model (src/mc) compresses agreement to a
// slot-id comparison; this type is the uncompressed version used by the
// frame-level simulator and by the guardian's semantic analysis.
#pragma once

#include <cstdint>
#include <string>

#include "ttpc/config.h"
#include "ttpc/types.h"
#include "wire/frame.h"

namespace tta::ttpc {

class CState {
 public:
  CState() = default;
  CState(std::uint16_t global_time, SlotNumber round_slot,
         std::uint16_t membership)
      : global_time_(global_time),
        round_slot_(round_slot),
        membership_(membership) {}

  std::uint16_t global_time() const { return global_time_; }
  SlotNumber round_slot() const { return round_slot_; }
  std::uint16_t membership() const { return membership_; }

  /// Advances to the next slot: time moves forward one slot tick, the MEDL
  /// position wraps at the round boundary.
  void advance(const ProtocolConfig& cfg) {
    ++global_time_;
    round_slot_ = cfg.next_slot(round_slot_);
  }

  bool is_member(NodeId node) const {
    return (membership_ >> (node - 1)) & 1u;
  }
  void set_member(NodeId node, bool present) {
    std::uint16_t bit = static_cast<std::uint16_t>(1u << (node - 1));
    membership_ = present ? static_cast<std::uint16_t>(membership_ | bit)
                          : static_cast<std::uint16_t>(membership_ & ~bit);
  }
  std::size_t member_count() const;

  /// TTP/C agreement: frames are correct only if sender and receiver
  /// C-states match exactly.
  friend bool operator==(const CState&, const CState&) = default;

  /// Conversion to the 48-bit image carried in I-frames / seeding N-frame
  /// CRCs.
  wire::CStateImage to_image() const {
    return wire::CStateImage{global_time_, round_slot_, membership_};
  }
  static CState from_image(const wire::CStateImage& img) {
    return CState(img.global_time, static_cast<SlotNumber>(img.medl_position),
                  img.membership);
  }

  std::string to_string() const;

 private:
  std::uint16_t global_time_ = 0;
  SlotNumber round_slot_ = 1;
  std::uint16_t membership_ = 0;
};

}  // namespace tta::ttpc
