#include "ttpc/controller.h"

#include "util/check.h"

namespace tta::ttpc {

namespace {

/// Saturation bound for the clique counters; they reset every round, so the
/// bound only matters for state packing, never for the protocol logic.
constexpr std::uint8_t kCounterCap = 15;

enum class ChannelVerdict : std::uint8_t { kCorrect, kIncorrect, kNull };

// TTP/C frame-status taxonomy: a *correct* frame is valid with matching
// C-state; an *incorrect* frame is valid but disagrees on C-state (this is
// what feeds the failed-slots counter); an *invalid* frame (noise, coding
// violation, collision) or silence is *null* — it feeds neither clique
// counter. Counting noise as failed would let a single bad_frame coupler
// fault freeze a freshly integrated node, which contradicts both the TTP/C
// design and the paper's verification result for non-buffering couplers.
ChannelVerdict classify_channel(const ChannelFrame& f, SlotNumber slot) {
  switch (f.kind) {
    case FrameKind::kNone:
    case FrameKind::kBad:
      return ChannelVerdict::kNull;
    case FrameKind::kColdStart:
    case FrameKind::kCState:
    case FrameKind::kOther:
      // Correctness abstracts C-state agreement: the embedded slot id must
      // match the receiver's own view of the current slot.
      return f.id == slot ? ChannelVerdict::kCorrect
                          : ChannelVerdict::kIncorrect;
  }
  return ChannelVerdict::kNull;
}

}  // namespace

const char* to_string(FrameKind kind) {
  switch (kind) {
    case FrameKind::kNone:
      return "none";
    case FrameKind::kColdStart:
      return "cold_start";
    case FrameKind::kCState:
      return "c_state";
    case FrameKind::kOther:
      return "other";
    case FrameKind::kBad:
      return "bad_frame";
  }
  return "?";
}

const char* to_string(CtrlState state) {
  switch (state) {
    case CtrlState::kFreeze:
      return "freeze";
    case CtrlState::kInit:
      return "init";
    case CtrlState::kListen:
      return "listen";
    case CtrlState::kColdStart:
      return "cold_start";
    case CtrlState::kActive:
      return "active";
    case CtrlState::kPassive:
      return "passive";
    case CtrlState::kTest:
      return "test";
    case CtrlState::kAwait:
      return "await";
    case CtrlState::kDownload:
      return "download";
  }
  return "?";
}

const char* to_string(SlotVerdict verdict) {
  switch (verdict) {
    case SlotVerdict::kAgreed:
      return "agreed";
    case SlotVerdict::kFailed:
      return "failed";
    case SlotVerdict::kNull:
      return "null";
  }
  return "?";
}

const char* to_string(StepEvent event) {
  switch (event) {
    case StepEvent::kNone:
      return "none";
    case StepEvent::kEnteredInit:
      return "entered init";
    case StepEvent::kEnteredListen:
      return "entered listen";
    case StepEvent::kBigBangArmed:
      return "ignored first cold-start frame (big bang)";
    case StepEvent::kIntegratedOnColdStart:
      return "integrated on cold-start frame";
    case StepEvent::kIntegratedOnCState:
      return "integrated on C-state frame";
    case StepEvent::kListenTimeout:
      return "listen timeout expired, entering cold start";
    case StepEvent::kSentColdStart:
      return "sent cold-start frame";
    case StepEvent::kSentCState:
      return "sent C-state frame";
    case StepEvent::kCliqueRetryColdStart:
      return "no traffic observed, repeating cold start";
    case StepEvent::kCliqueToActive:
      return "clique test passed, entering active";
    case StepEvent::kCliqueBackToListen:
      return "clique test failed, back to listen";
    case StepEvent::kCliqueFreeze:
      return "FROZE due to clique avoidance error";
    case StepEvent::kHostFreeze:
      return "host commanded freeze";
    case StepEvent::kHostPassive:
      return "host commanded passive";
  }
  return "?";
}

SlotVerdict classify_view(const ChannelView& view, SlotNumber slot,
                          const ProtocolConfig& cfg) {
  ChannelVerdict v0 = classify_channel(view.ch0, slot);
  ChannelVerdict v1 = classify_channel(view.ch1, slot);
  bool any_correct =
      v0 == ChannelVerdict::kCorrect || v1 == ChannelVerdict::kCorrect;
  bool any_incorrect =
      v0 == ChannelVerdict::kIncorrect || v1 == ChannelVerdict::kIncorrect;
  if (cfg.bad_dominates_fusion) {
    if (any_incorrect) return SlotVerdict::kFailed;
    if (any_correct) return SlotVerdict::kAgreed;
    return SlotVerdict::kNull;
  }
  if (any_correct) return SlotVerdict::kAgreed;
  if (any_incorrect) return SlotVerdict::kFailed;
  return SlotVerdict::kNull;
}

unsigned Controller::num_choices(const NodeState& s) const {
  switch (s.state) {
    case CtrlState::kFreeze:
      // Without host intervention, a freeze *after* integration (clique
      // expulsion) is absorbing; the initial power-on freeze is not.
      if (!cfg_.allow_reinit && s.ever_integrated) return 1u;
      return 2u + (cfg_.model_await_test ? 2u : 0u);
    case CtrlState::kInit:
      return 2u + (cfg_.allow_host_freeze ? 1u : 0u);
    case CtrlState::kActive:
      return 1u + (cfg_.allow_host_freeze ? 2u : 0u);
    default:
      return 1u;
  }
}

ChannelFrame Controller::frame_to_send(const NodeState& s,
                                       NodeId node_id) const {
  if (s.slot != node_id) return ChannelFrame{};
  if (s.state == CtrlState::kActive) {
    return ChannelFrame{FrameKind::kCState, s.slot};
  }
  if (s.state == CtrlState::kColdStart) {
    // A cold-starter holding a collision back-off (listen_timeout doubles
    // as the back-off counter in this state) skips its sending opportunity.
    if (s.listen_timeout != 0) return ChannelFrame{};
    return ChannelFrame{FrameKind::kColdStart, s.slot};
  }
  return ChannelFrame{};
}

void Controller::apply_verdict(NodeState& s, SlotVerdict verdict) {
  switch (verdict) {
    case SlotVerdict::kAgreed:
      if (s.agreed < kCounterCap) ++s.agreed;
      break;
    case SlotVerdict::kFailed:
      if (s.failed < kCounterCap) ++s.failed;
      break;
    case SlotVerdict::kNull:
      break;
  }
}

StepOutcome Controller::step(const NodeState& s, NodeId node_id,
                             const ChannelView& view, unsigned choice) const {
  TTA_DCHECK(node_id >= 1 && node_id <= cfg_.num_nodes);
  TTA_DCHECK(choice < num_choices(s));
  StepOutcome out = dispatch(s, node_id, view, choice);
  if (!cfg_.allow_reinit && is_integrated(out.next.state)) {
    out.next.ever_integrated = true;
  }
  return out;
}

StepOutcome Controller::dispatch(const NodeState& s, NodeId node_id,
                                 const ChannelView& view,
                                 unsigned choice) const {
  switch (s.state) {
    case CtrlState::kFreeze:
      return step_freeze(s, choice);
    case CtrlState::kInit:
      return step_init(s, node_id, choice);
    case CtrlState::kListen:
      return step_listen(s, node_id, view);
    case CtrlState::kColdStart:
      return step_cold_start(s, node_id, view);
    case CtrlState::kActive:
    case CtrlState::kPassive:
      return step_integrated(s, node_id, view, choice);
    case CtrlState::kTest:
    case CtrlState::kAwait:
    case CtrlState::kDownload:
      // Unconstrained in the paper's model; absorbing here (DESIGN.md §5.1).
      return StepOutcome{s, StepEvent::kNone};
  }
  TTA_CHECK(false);
}

StepOutcome Controller::step_freeze(const NodeState& s, unsigned choice) const {
  NodeState n = s;
  switch (choice) {
    case 0:
      return {n, StepEvent::kNone};  // remain frozen
    case 1:
      n = NodeState{};  // power-up re-initialization clears everything
      n.state = CtrlState::kInit;
      return {n, StepEvent::kEnteredInit};
    case 2:
      n.state = CtrlState::kAwait;
      return {n, StepEvent::kNone};
    case 3:
      n.state = CtrlState::kTest;
      return {n, StepEvent::kNone};
  }
  TTA_CHECK(false);
}

StepOutcome Controller::step_init(const NodeState& s, NodeId node_id,
                                  unsigned choice) const {
  NodeState n = s;
  switch (choice) {
    case 0:
      return {n, StepEvent::kNone};  // initialization still in progress
    case 1:
      n.state = CtrlState::kListen;
      n.big_bang = false;
      n.listen_timeout = cfg_.listen_timeout_for(node_id);
      return {n, StepEvent::kEnteredListen};
    case 2:
      n.state = CtrlState::kFreeze;
      return {n, StepEvent::kHostFreeze};
  }
  TTA_CHECK(false);
}

StepOutcome Controller::step_listen(const NodeState& s, NodeId node_id,
                                    const ChannelView& view) const {
  const bool cold0 = view.ch0.kind == FrameKind::kColdStart;
  const bool cold1 = view.ch1.kind == FrameKind::kColdStart;
  const bool cstate0 = view.ch0.kind == FrameKind::kCState;
  const bool cstate1 = view.ch1.kind == FrameKind::kCState;
  const bool other_seen = view.ch0.kind == FrameKind::kOther ||
                          view.ch1.kind == FrameKind::kOther;

  // Big-bang rule: integrate on a cold-start frame only if one was already
  // seen while listening (s.big_bang holds the *current* flag; integration
  // conditions use unprimed variables, Section 4.3.2).
  const bool integrating_on_cold =
      (cold0 || cold1) && (s.big_bang || !cfg_.big_bang_enabled);
  const bool integrating_on_cstate = cstate0 || cstate1;

  NodeState n = s;
  if (integrating_on_cstate || integrating_on_cold) {
    // Prefer explicit C-state (immediate integration), channel 0 first
    // (DESIGN.md §5.6: deterministic tie-break, couplers are symmetric).
    SlotNumber id_on_bus;
    StepEvent ev;
    if (integrating_on_cstate) {
      id_on_bus = cstate0 ? view.ch0.id : view.ch1.id;
      ev = StepEvent::kIntegratedOnCState;
    } else {
      id_on_bus = cold0 ? view.ch0.id : view.ch1.id;
      ev = StepEvent::kIntegratedOnColdStart;
    }
    n.state = CtrlState::kPassive;
    n.slot = cfg_.next_slot(id_on_bus);
    n.agreed = 0;
    n.failed = 0;
    n.big_bang = false;
    return {n, ev};
  }

  if (cold0 || cold1) {
    // First cold-start frame: arm big bang, refresh the timeout, stay in
    // listen even if the timeout just reached zero (Section 4.3.2).
    StepEvent ev = n.big_bang ? StepEvent::kNone : StepEvent::kBigBangArmed;
    n.big_bang = true;
    n.listen_timeout = cfg_.listen_timeout_for(node_id);
    return {n, ev};
  }

  if (s.listen_timeout == 0) {
    n.state = CtrlState::kColdStart;
    n.slot = node_id;  // slot' = node_id upon entering cold start
    n.agreed = 0;
    n.failed = 0;
    n.big_bang = false;
    return {n, StepEvent::kListenTimeout};
  }

  // Quiet (or noisy-but-not-integrable) slot: count down, unless a regular
  // frame refreshed the timeout.
  if (other_seen) {
    n.listen_timeout = cfg_.listen_timeout_for(node_id);
  } else {
    --n.listen_timeout;
  }
  return {n, StepEvent::kNone};
}

StepOutcome Controller::step_cold_start(const NodeState& s, NodeId node_id,
                                        const ChannelView& view) const {
  NodeState n = s;
  apply_verdict(n, classify_view(view, s.slot, cfg_));

  if (n.listen_timeout > 0) --n.listen_timeout;

  // Contention breaking (TTP/C's node-unique cold-start timeout): if this
  // node transmitted its cold-start frame this slot and the channels carry
  // only noise — two cold-starters collided — it backs off for a
  // node-unique number of slots before its next attempt, so symmetric
  // collisions cannot repeat forever. Without this, two nodes whose listen
  // timeouts expire in the same slot livelock (found by the startup
  // property sweep; DESIGN.md §5.9).
  if (s.slot == node_id && s.listen_timeout == 0) {
    bool any_correct =
        classify_view(view, s.slot, cfg_) == SlotVerdict::kAgreed;
    bool any_noise = view.ch0.kind == FrameKind::kBad ||
                     view.ch1.kind == FrameKind::kBad;
    if (!any_correct && any_noise) {
      n.listen_timeout =
          static_cast<std::uint8_t>(node_id * cfg_.num_slots);
    }
  }

  const SlotNumber nxt = cfg_.next_slot(s.slot);
  StepEvent ev = StepEvent::kNone;
  if (nxt == node_id) {
    // One TDMA round finished: clique-avoidance test on the primed counters
    // (the paper's constraint reads agreed_slots_counter', i.e. including
    // this slot's observation).
    if (n.agreed <= 1 && n.failed == 0) {
      ev = StepEvent::kCliqueRetryColdStart;  // alone on the bus; try again
    } else if (n.agreed > n.failed) {
      n.state = CtrlState::kActive;
      ev = StepEvent::kCliqueToActive;
    } else {
      n.state = CtrlState::kListen;
      n.big_bang = false;
      n.listen_timeout = cfg_.listen_timeout_for(node_id);
      ev = StepEvent::kCliqueBackToListen;
    }
    n.agreed = 0;
    n.failed = 0;
  }
  n.slot = nxt;
  return {n, ev};
}

StepOutcome Controller::step_integrated(const NodeState& s, NodeId node_id,
                                        const ChannelView& view,
                                        unsigned choice) const {
  NodeState n = s;
  apply_verdict(n, classify_view(view, s.slot, cfg_));

  if (s.state == CtrlState::kActive && choice > 0) {
    // Host-commanded transitions (modeled only when allow_host_freeze).
    n.slot = cfg_.next_slot(s.slot);
    if (choice == 1) {
      n.state = CtrlState::kPassive;
      return {n, StepEvent::kHostPassive};
    }
    n.state = CtrlState::kFreeze;
    return {n, StepEvent::kHostFreeze};
  }

  const SlotNumber nxt = cfg_.next_slot(s.slot);
  StepEvent ev = StepEvent::kNone;
  if (nxt == node_id) {
    // Round boundary: integrated nodes run the clique-avoidance test before
    // their own sending slot (DESIGN.md §5.3).
    if (n.agreed == 0 && n.failed == 0) {
      // Totally silent round: nothing to disagree about; keep waiting.
    } else if (n.agreed > n.failed) {
      if (s.state == CtrlState::kPassive) {
        n.state = CtrlState::kActive;
        ev = StepEvent::kCliqueToActive;
      }
    } else {
      n.state = CtrlState::kFreeze;
      ev = StepEvent::kCliqueFreeze;
    }
    n.agreed = 0;
    n.failed = 0;
  }
  n.slot = nxt;
  return {n, ev};
}

}  // namespace tta::ttpc
