// Abstract protocol-level types shared by the simulator and model checker.
//
// Following the paper's Section 4 abstraction, one "step" is one TDMA slot
// and a channel carries one abstract frame per slot: none (silence), a
// cold-start frame, a frame with explicit C-state, a regular frame without
// explicit C-state ("other"), or a bad frame/noise. Frames carry the slot id
// they were (originally) sent in; comparing that id against the receiver's
// own slot counter abstracts the C-state agreement check.
#pragma once

#include <cstdint>

namespace tta::ttpc {

using NodeId = std::uint8_t;      ///< 1-based; node i owns TDMA slot i
using SlotNumber = std::uint8_t;  ///< 1..num_slots

/// The abstract per-slot channel alphabet of the paper's model.
enum class FrameKind : std::uint8_t {
  kNone = 0,       ///< silence
  kColdStart = 1,  ///< cold-start frame
  kCState = 2,     ///< frame with explicit C-state
  kOther = 3,      ///< regular frame without explicit C-state
  kBad = 4         ///< bad frame / noise
};

const char* to_string(FrameKind kind);

/// What one channel carries during one slot.
struct ChannelFrame {
  FrameKind kind = FrameKind::kNone;
  SlotNumber id = 0;  ///< slot position embedded in the frame (0 if none/bad)
  /// Membership image carried in the C-state. The formal model (src/mc)
  /// abstracts membership away and always leaves this 0, exactly as the
  /// paper's model does; the frame-level simulator (src/sim) uses it to
  /// reproduce membership divergence after SOS faults.
  std::uint16_t membership = 0;

  friend bool operator==(const ChannelFrame&, const ChannelFrame&) = default;
};

/// What a node observes during one slot: both redundant channels.
struct ChannelView {
  ChannelFrame ch0;
  ChannelFrame ch1;

  friend bool operator==(const ChannelView&, const ChannelView&) = default;
};

/// The nine controller states of the TTP/C protocol state machine.
enum class CtrlState : std::uint8_t {
  kFreeze = 0,
  kInit = 1,
  kListen = 2,
  kColdStart = 3,
  kActive = 4,
  kPassive = 5,
  kTest = 6,
  kAwait = 7,
  kDownload = 8
};

const char* to_string(CtrlState state);

/// Has this controller integrated into the cluster (the states the paper's
/// correctness property quantifies over)?
constexpr bool is_integrated(CtrlState s) {
  return s == CtrlState::kActive || s == CtrlState::kPassive;
}

/// Per-slot verdict a receiving node forms for the clique-avoidance
/// counters (TTP/C "correct frame" / "invalid or incorrect frame" / "null").
enum class SlotVerdict : std::uint8_t { kAgreed, kFailed, kNull };

const char* to_string(SlotVerdict verdict);

}  // namespace tta::ttpc
