#include "campaign/runner.h"

#include <algorithm>
#include <chrono>
#include <vector>

#include "sim/cluster.h"
#include "util/check.h"
#include "util/rng.h"

namespace tta::campaign {

namespace {

/// Per-trial stream seed: the campaign seed mixed with the trial index by a
/// fixed odd multiplier. util::Rng::reseed() runs the result through
/// splitmix64, so nearby indices still yield independent-looking streams.
std::uint64_t trial_seed(std::uint64_t campaign_seed, std::uint64_t index) {
  return campaign_seed ^ (0x9e3779b97f4a7c15ull * (index + 1));
}

/// Instantiates the probabilistic dictionary into a concrete schedule.
/// Draw order is fixed (coupler entries, then node entries, each drawing
/// the Bernoulli first and the uniform victim second) — it is part of the
/// campaign's identity, so tests can hand-compute scenarios.
sim::FaultInjector draw_schedule(const CampaignSpec& spec, util::Rng& rng) {
  sim::FaultInjector injector;
  for (const CouplerFaultEntry& e : spec.coupler_faults) {
    const bool fires = rng.next_below(kPpmScale) < e.ppm;
    if (!fires) continue;
    sim::CouplerFaultWindow w;
    w.channel = e.channel == kAnyTarget
                    ? static_cast<int>(rng.next_below(spec.num_channels))
                    : e.channel;
    w.fault = e.fault;
    w.from_step = e.from_step;
    w.to_step = e.to_step;
    injector.add(w);
  }
  for (const NodeFaultEntry& e : spec.node_faults) {
    const bool fires = rng.next_below(kPpmScale) < e.ppm;
    if (!fires) continue;
    sim::NodeFaultWindow w;
    w.node = e.node == kAnyTarget
                 ? static_cast<ttpc::NodeId>(1 + rng.next_below(spec.num_nodes))
                 : static_cast<ttpc::NodeId>(e.node);
    w.mode = e.mode;
    w.from_step = e.from_step;
    w.to_step = e.to_step;
    injector.add(w);
  }
  return injector;
}

sim::ClusterConfig cluster_config(const CampaignSpec& spec) {
  sim::ClusterConfig cfg;
  cfg.protocol.num_nodes = static_cast<std::uint8_t>(spec.num_nodes);
  cfg.protocol.num_slots = static_cast<std::uint8_t>(spec.num_nodes);
  cfg.topology = spec.topology;
  cfg.num_channels = static_cast<int>(spec.num_channels);
  cfg.guardian.authority = spec.authority;
  cfg.keep_log = false;  // statistical runs never replay the event log
  return cfg;
}

}  // namespace

bool trial_fails(const CampaignSpec& spec, std::uint64_t trial_index) {
  util::Rng rng(trial_seed(spec.seed, trial_index));
  sim::Cluster cluster(cluster_config(spec), draw_schedule(spec, rng));
  switch (spec.criterion) {
    case Criterion::kAllActiveReached:
      return !cluster.run_until_all_healthy_active(spec.steps);
    case Criterion::kNoHealthyCliqueFreeze:
      cluster.run(spec.steps);
      return cluster.healthy_clique_frozen() > 0;
  }
  return false;
}

bool stop_rule_met(const CampaignSpec& spec, const Estimate& est) {
  const double scale = static_cast<double>(kPpmScale);
  const double bound = static_cast<double>(spec.fail_bound_ppm) / scale;
  if (est.half_width() * scale <= static_cast<double>(spec.epsilon_ppm)) {
    return true;
  }
  // The interval cleared the verdict boundary: more trials cannot change
  // the answer, only narrow the figure.
  return est.ci_high <= bound || est.ci_low > bound;
}

CampaignResult run_campaign(const CampaignSpec& spec, util::ThreadPool* pool,
                            const util::CancelToken* cancel,
                            const ProgressFn& progress) {
  TTA_CHECK(spec.validate().empty());
  const auto started = std::chrono::steady_clock::now();

  CampaignResult result;
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  std::vector<std::uint8_t> outcomes;

  while (trials < spec.max_trials) {
    if (cancel && cancel->cancelled()) {
      result.cancelled = true;
      break;
    }
    const std::uint64_t batch = std::min<std::uint64_t>(
        spec.batch_size, spec.max_trials - trials);
    const std::uint64_t base = trials;
    outcomes.assign(static_cast<std::size_t>(batch), 0);
    auto evaluate = [&](std::size_t i) {
      outcomes[i] = trial_fails(spec, base + i) ? 1 : 0;
    };
    if (pool) {
      pool->run_tasks(static_cast<std::size_t>(batch), evaluate);
    } else {
      for (std::size_t i = 0; i < batch; ++i) evaluate(i);
    }
    // Accumulate in index order — identical at any thread count.
    for (std::uint8_t o : outcomes) failures += o;
    trials += batch;
    ++result.batches;

    result.estimate = wilson_estimate(failures, trials);
    if (progress) progress(BatchUpdate{result.batches, result.estimate});
    if (trials >= spec.min_trials && stop_rule_met(spec, result.estimate)) {
      result.conclusive = true;
      break;
    }
  }
  if (result.batches == 0) result.estimate = wilson_estimate(0, 0);

  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - started)
                       .count();
  return result;
}

}  // namespace tta::campaign
