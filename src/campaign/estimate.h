// Binomial-proportion estimation for Monte Carlo fault campaigns.
//
// A campaign observes `failures` out of `trials` independent Bernoulli
// trials and reports the failure probability with a Wilson score interval —
// the methodology Simonot et al. use to attach confidence levels to
// TDMA-network safety figures. Wilson is preferred over the normal (Wald)
// approximation because campaign probabilities sit near 0, where Wald
// collapses to a zero-width interval after a streak of successes; Wilson
// stays honest there.
#pragma once

#include <cstdint>

namespace tta::campaign {

/// Point estimate plus a two-sided Wilson score confidence interval.
/// Invariant: 0 <= ci_low <= p_hat <= ci_high <= 1 whenever trials > 0.
struct Estimate {
  std::uint64_t trials = 0;
  std::uint64_t failures = 0;
  double p_hat = 0.0;    ///< failures / trials (0 when trials == 0)
  double ci_low = 0.0;
  double ci_high = 1.0;  ///< the empty campaign knows nothing

  double half_width() const { return (ci_high - ci_low) / 2.0; }
};

/// z-score of the default 95% two-sided interval.
inline constexpr double kDefaultZ = 1.959964;

/// Wilson score interval for `failures` successes in `trials` draws.
/// trials == 0 yields the vacuous [0, 1] interval.
Estimate wilson_estimate(std::uint64_t failures, std::uint64_t trials,
                         double z = kDefaultZ);

}  // namespace tta::campaign
