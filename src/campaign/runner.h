// Monte Carlo campaign execution over sim::Cluster.
//
// Determinism contract: every trial's outcome is a pure function of
// (spec, trial_index) — each trial owns a counter-based RNG stream seeded
// from the campaign seed mixed with its index, so trial i draws the same
// fault instantiation whether it runs on the calling thread, a 2-thread
// pool, or a 64-thread pool. Trials are scored in fixed-size batches and
// the stopping rule (Wilson half-width <= epsilon, or the interval clearing
// the fail bound) is evaluated only at batch boundaries over counts
// accumulated in index order; the trial count, failure count, and estimate
// of a campaign are therefore bit-identical at any thread count. Pinned by
// tests/campaign_runner_test.cpp.
#pragma once

#include <functional>

#include "campaign/estimate.h"
#include "campaign/spec.h"
#include "util/cancel_token.h"
#include "util/thread_pool.h"

namespace tta::campaign {

/// Snapshot delivered after every completed batch (progress streaming).
struct BatchUpdate {
  std::uint64_t batches = 0;  ///< batches completed so far (1-based)
  Estimate estimate;          ///< over all trials scored so far
};

using ProgressFn = std::function<void(const BatchUpdate&)>;

struct CampaignResult {
  Estimate estimate;
  std::uint64_t batches = 0;
  /// The stopping rule was satisfied: the estimate answers the query. A
  /// campaign that exhausts max_trials without reaching epsilon (and
  /// without the interval clearing the fail bound) is NOT conclusive.
  bool conclusive = false;
  bool cancelled = false;  ///< cancel token tripped at a batch boundary
  double seconds = 0.0;    ///< wall time
};

/// Evaluates one trial: instantiates the fault dictionary with the trial's
/// private RNG stream, runs the cluster for spec.steps slots, scores the
/// criterion. Pure function of (spec, trial_index); exposed for tests and
/// benches.
bool trial_fails(const CampaignSpec& spec, std::uint64_t trial_index);

/// True once `est` satisfies the spec's stopping rule (interval narrower
/// than epsilon, or conclusively on one side of the fail bound).
bool stop_rule_met(const CampaignSpec& spec, const Estimate& est);

/// Runs the campaign. `pool` == nullptr runs trials sequentially on the
/// calling thread; results are identical either way. `progress` (optional)
/// is invoked on the calling thread after every batch.
CampaignResult run_campaign(const CampaignSpec& spec, util::ThreadPool* pool,
                            const util::CancelToken* cancel = nullptr,
                            const ProgressFn& progress = nullptr);

}  // namespace tta::campaign
