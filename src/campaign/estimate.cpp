#include "campaign/estimate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tta::campaign {

Estimate wilson_estimate(std::uint64_t failures, std::uint64_t trials,
                         double z) {
  TTA_CHECK(failures <= trials);
  Estimate est;
  est.trials = trials;
  est.failures = failures;
  if (trials == 0) return est;  // vacuous [0, 1]

  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(failures) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  const double spread =
      (z / denom) * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));

  est.p_hat = p;
  est.ci_low = std::max(0.0, center - spread);
  est.ci_high = std::min(1.0, center + spread);
  return est;
}

}  // namespace tta::campaign
