#include "campaign/estimate.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tta::campaign {

Estimate wilson_estimate(std::uint64_t failures, std::uint64_t trials,
                         double z) {
  TTA_CHECK(failures <= trials);
  Estimate est;
  est.trials = trials;
  est.failures = failures;
  if (trials == 0) return est;  // vacuous [0, 1]

  const double n = static_cast<double>(trials);
  // Clamp the proportion into [0, 1]: above 2^53 trials the u64 -> double
  // conversions round independently and the quotient can land a hair
  // outside, which would make the p*(1-p) radicand negative (NaN).
  const double p =
      std::clamp(static_cast<double>(failures) / n, 0.0, 1.0);
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2.0 * n)) / denom;
  // At the degenerate edges (failures == 0, failures == trials, and both
  // at trials == 1) center - spread / center + spread are exactly 0 / 1
  // in real arithmetic, so only rounding noise lives outside [0, 1]; the
  // max() guards the radicand against that noise and the clamps pin the
  // documented invariant 0 <= ci_low <= p_hat <= ci_high <= 1 exactly,
  // so ppm-scaled intervals stay inside [0, 1e6] with a non-negative
  // half-width.
  const double spread =
      (z / denom) *
      std::sqrt(std::max(0.0, p * (1.0 - p) / n + z2 / (4.0 * n * n)));

  est.p_hat = p;
  est.ci_low = std::clamp(center - spread, 0.0, p);
  est.ci_high = std::clamp(center + spread, p, 1.0);
  return est;
}

}  // namespace tta::campaign
