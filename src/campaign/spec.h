// Declarative description of one Monte Carlo fault campaign.
//
// A campaign asks: over a parameterized N-node / M-channel cluster with a
// *probabilistic* fault dictionary, how likely is it that a run violates
// the chosen correctness criterion? Each trial instantiates the dictionary
// by independent Bernoulli draws (one per entry), runs the full-fidelity
// simulator (sim::Cluster) for a fixed number of TDMA slots, and scores
// pass/fail; the campaign aggregates trials into a failure-probability
// estimate with a Wilson confidence interval (campaign/estimate.h).
//
// Probabilities are carried as integer parts-per-million, never doubles:
// ppm values have one canonical byte encoding (the job digest depends on
// it) and admit exact Bernoulli draws via util::Rng::next_below(1e6).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "guardian/authority.h"
#include "sim/fault_injector.h"
#include "sim/topology.h"

namespace tta::campaign {

/// Probability denominator: entries draw with probability ppm / 1e6.
inline constexpr std::uint32_t kPpmScale = 1'000'000;

/// Pass/fail criterion scored at the end of each trial.
enum class Criterion : std::uint8_t {
  /// Failure iff the healthy nodes did not all reach the active state
  /// within the trial's step budget (startup / integration failure).
  kAllActiveReached = 0,
  /// Failure iff any *healthy* node was ever forced out of the cluster by
  /// a clique-avoidance error — the paper's fault-propagation metric.
  kNoHealthyCliqueFreeze = 1,
};

const char* to_string(Criterion criterion);

/// One probabilistic coupler/channel fault. With probability `ppm` the
/// trial schedules `fault` on `channel` for steps [from_step, to_step].
struct CouplerFaultEntry {
  /// Channel index, or kAnyTarget to draw uniformly over the cluster's
  /// channels when the entry fires.
  std::int32_t channel = 0;
  guardian::CouplerFault fault = guardian::CouplerFault::kSilence;
  std::uint32_t ppm = 0;
  std::uint64_t from_step = 0;
  std::uint64_t to_step = UINT64_MAX;  ///< inclusive
};

/// One probabilistic node fault; `node` is 1-based or kAnyTarget.
struct NodeFaultEntry {
  std::int32_t node = 1;
  sim::NodeFaultMode mode = sim::NodeFaultMode::kSilent;
  std::uint32_t ppm = 0;
  std::uint64_t from_step = 0;
  std::uint64_t to_step = UINT64_MAX;
};

/// Sentinel target: draw the victim uniformly when the entry fires.
inline constexpr std::int32_t kAnyTarget = -1;

struct CampaignSpec {
  // ---- Cluster shape (the parameterized axes).
  std::uint32_t num_nodes = 4;
  std::uint32_t num_channels = 2;  ///< couplers / buses, 1 or 2
  sim::Topology topology = sim::Topology::kStar;
  guardian::Authority authority = guardian::Authority::kFullShifting;

  // ---- Per-trial run.
  Criterion criterion = Criterion::kNoHealthyCliqueFreeze;
  std::uint64_t steps = 64;  ///< TDMA slots simulated per trial

  // ---- Sampling plan. Trials are scored in batches; stopping decisions
  // happen only at batch boundaries so the trial count is a pure function
  // of the spec, independent of thread count.
  std::uint64_t seed = 1;          ///< semantic: re-keys the estimate
  std::uint32_t min_trials = 64;
  std::uint32_t max_trials = 100'000;
  std::uint32_t batch_size = 64;
  /// Stop once the Wilson interval's half-width is <= epsilon (in ppm).
  std::uint32_t epsilon_ppm = 50'000;
  /// The verdict boundary: the campaign concludes HOLDS iff the estimated
  /// failure probability is <= fail_bound_ppm / 1e6.
  std::uint32_t fail_bound_ppm = 500'000;

  // ---- Probabilistic fault dictionary. Entries draw independently, in
  // declaration order (couplers first) — the draw schedule is part of the
  // campaign's identity.
  std::vector<CouplerFaultEntry> coupler_faults;
  std::vector<NodeFaultEntry> node_faults;

  /// Non-empty error string when the spec is internally inconsistent
  /// (node/channel bounds, ppm ranges, targets, batch plan).
  std::string validate() const;

  /// Appends this spec's canonical little-endian byte encoding — every
  /// semantic field in fixed order and width — to `out`. Stable across
  /// processes/builds; svc::JobSpec::canonical_bytes() embeds it under the
  /// campaign format-version byte.
  void append_canonical_bytes(std::vector<std::uint8_t>* out) const;
};

/// Parses the compact fault-dictionary grammar used by the JSON job line's
/// "faults" key: ';'-separated entries, each
///   coupler:<channel|*>:<fault>:<ppm>[@<from>-<to>]
///   node:<id|*>:<mode>:<ppm>[@<from>-<to>]
/// e.g. "coupler:0:silence:141000;node:*:clock_drift:250000@0-47".
/// Appends to spec->coupler_faults / spec->node_faults. Returns false and
/// fills *error on malformed input.
bool parse_fault_dictionary(const std::string& text, CampaignSpec* spec,
                            std::string* error);

/// Inverse of parse_fault_dictionary (round-trips exactly).
std::string format_fault_dictionary(const CampaignSpec& spec);

}  // namespace tta::campaign
