#include "campaign/spec.h"

#include <cstdio>

namespace tta::campaign {

const char* to_string(Criterion criterion) {
  switch (criterion) {
    case Criterion::kAllActiveReached: return "all_active";
    case Criterion::kNoHealthyCliqueFreeze: return "no_healthy_freeze";
  }
  return "?";
}

std::string CampaignSpec::validate() const {
  if (num_nodes < 2 || num_nodes > 16) {
    return "campaign nodes must be in [2, 16]";
  }
  if (num_channels < 1 || num_channels > 2) {
    return "campaign channels must be 1 or 2";
  }
  if (steps == 0) return "campaign steps must be > 0";
  if (batch_size == 0) return "campaign batch must be > 0";
  if (max_trials == 0) return "campaign max_trials must be > 0";
  if (min_trials > max_trials) return "campaign min_trials > max_trials";
  if (epsilon_ppm == 0 || epsilon_ppm > kPpmScale) {
    return "campaign epsilon_ppm must be in [1, 1000000]";
  }
  if (fail_bound_ppm > kPpmScale) {
    return "campaign fail_bound_ppm must be <= 1000000";
  }
  if (coupler_faults.empty() && node_faults.empty()) {
    return "campaign fault dictionary is empty";
  }
  for (const CouplerFaultEntry& e : coupler_faults) {
    if (e.channel != kAnyTarget &&
        (e.channel < 0 || e.channel >= static_cast<std::int32_t>(num_channels))) {
      return "coupler fault channel out of range";
    }
    if (e.fault == guardian::CouplerFault::kNone) {
      return "coupler fault entry must name a fault";
    }
    if (e.ppm > kPpmScale) return "coupler fault ppm > 1000000";
    if (e.to_step < e.from_step) return "coupler fault window is empty";
  }
  for (const NodeFaultEntry& e : node_faults) {
    if (e.node != kAnyTarget &&
        (e.node < 1 || e.node > static_cast<std::int32_t>(num_nodes))) {
      return "node fault id out of range";
    }
    if (e.mode == sim::NodeFaultMode::kNone) {
      return "node fault entry must name a mode";
    }
    if (e.ppm > kPpmScale) return "node fault ppm > 1000000";
    if (e.to_step < e.from_step) return "node fault window is empty";
  }
  return {};
}

void CampaignSpec::append_canonical_bytes(std::vector<std::uint8_t>* out) const {
  auto u8 = [out](std::uint8_t v) { out->push_back(v); };
  auto u32 = [out](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  auto u64 = [out](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  };
  // kAnyTarget (-1) encodes as 0xff; concrete targets fit a byte.
  auto target = [&u8](std::int32_t t) {
    u8(t == kAnyTarget ? 0xff : static_cast<std::uint8_t>(t));
  };

  u8(static_cast<std::uint8_t>(num_nodes));
  u8(static_cast<std::uint8_t>(num_channels));
  u8(static_cast<std::uint8_t>(topology));
  u8(static_cast<std::uint8_t>(authority));
  u8(static_cast<std::uint8_t>(criterion));
  u64(steps);
  u64(seed);
  u32(min_trials);
  u32(max_trials);
  u32(batch_size);
  u32(epsilon_ppm);
  u32(fail_bound_ppm);
  u8(static_cast<std::uint8_t>(coupler_faults.size()));
  for (const CouplerFaultEntry& e : coupler_faults) {
    target(e.channel);
    u8(static_cast<std::uint8_t>(e.fault));
    u32(e.ppm);
    u64(e.from_step);
    u64(e.to_step);
  }
  u8(static_cast<std::uint8_t>(node_faults.size()));
  for (const NodeFaultEntry& e : node_faults) {
    target(e.node);
    u8(static_cast<std::uint8_t>(e.mode));
    u32(e.ppm);
    u64(e.from_step);
    u64(e.to_step);
  }
}

namespace {

constexpr sim::NodeFaultMode kAllNodeModes[] = {
    sim::NodeFaultMode::kSilent,
    sim::NodeFaultMode::kBabbling,
    sim::NodeFaultMode::kMasqueradeColdStart,
    sim::NodeFaultMode::kBadCState,
    sim::NodeFaultMode::kSosValue,
    sim::NodeFaultMode::kSosTime,
    sim::NodeFaultMode::kClockDrift,
    sim::NodeFaultMode::kClockJump,
};

bool parse_u64_field(const std::string& v, std::uint64_t* out) {
  if (v.empty()) return false;
  std::uint64_t acc = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    acc = acc * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = acc;
  return true;
}

/// Splits `text` on `sep`, keeping empty pieces (they are grammar errors
/// the caller reports with context).
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool parse_target(const std::string& v, std::int32_t* out) {
  if (v == "*") {
    *out = kAnyTarget;
    return true;
  }
  std::uint64_t n = 0;
  if (!parse_u64_field(v, &n) || n > 16) return false;
  *out = static_cast<std::int32_t>(n);
  return true;
}

bool parse_entry(const std::string& entry, CampaignSpec* spec,
                 std::string* error) {
  auto fail = [error, &entry](const char* what) {
    if (error) *error = std::string(what) + " in fault entry \"" + entry + "\"";
    return false;
  };

  // Optional trailing "@from-to" window.
  std::string body = entry;
  std::uint64_t from = 0, to = UINT64_MAX;
  if (std::size_t at = entry.find('@'); at != std::string::npos) {
    body = entry.substr(0, at);
    const std::string window = entry.substr(at + 1);
    const std::size_t dash = window.find('-');
    if (dash == std::string::npos) return fail("expected @from-to window");
    if (!parse_u64_field(window.substr(0, dash), &from) ||
        !parse_u64_field(window.substr(dash + 1), &to)) {
      return fail("bad step window");
    }
  }

  const std::vector<std::string> parts = split(body, ':');
  if (parts.size() != 4) return fail("expected target:where:mode:ppm");

  std::int32_t where = 0;
  if (!parse_target(parts[1], &where)) return fail("bad target");
  std::uint64_t ppm = 0;
  if (!parse_u64_field(parts[3], &ppm) || ppm > kPpmScale) {
    return fail("bad ppm");
  }

  if (parts[0] == "coupler") {
    CouplerFaultEntry e;
    e.channel = where;
    e.ppm = static_cast<std::uint32_t>(ppm);
    e.from_step = from;
    e.to_step = to;
    bool known = false;
    for (guardian::CouplerFault f : guardian::kAllCouplerFaults) {
      if (f != guardian::CouplerFault::kNone &&
          parts[2] == guardian::to_string(f)) {
        e.fault = f;
        known = true;
      }
    }
    if (!known) return fail("unknown coupler fault");
    spec->coupler_faults.push_back(e);
    return true;
  }
  if (parts[0] == "node") {
    NodeFaultEntry e;
    e.node = where;
    e.ppm = static_cast<std::uint32_t>(ppm);
    e.from_step = from;
    e.to_step = to;
    bool known = false;
    for (sim::NodeFaultMode m : kAllNodeModes) {
      if (parts[2] == sim::to_string(m)) {
        e.mode = m;
        known = true;
      }
    }
    if (!known) return fail("unknown node fault mode");
    spec->node_faults.push_back(e);
    return true;
  }
  return fail("unknown fault target kind");
}

void append_window(std::string* out, std::uint64_t from, std::uint64_t to) {
  if (from == 0 && to == UINT64_MAX) return;
  *out += "@" + std::to_string(from) + "-" + std::to_string(to);
}

std::string target_string(std::int32_t t) {
  return t == kAnyTarget ? "*" : std::to_string(t);
}

}  // namespace

bool parse_fault_dictionary(const std::string& text, CampaignSpec* spec,
                            std::string* error) {
  for (const std::string& entry : split(text, ';')) {
    if (!parse_entry(entry, spec, error)) return false;
  }
  return true;
}

std::string format_fault_dictionary(const CampaignSpec& spec) {
  std::string out;
  for (const CouplerFaultEntry& e : spec.coupler_faults) {
    if (!out.empty()) out += ";";
    out += "coupler:" + target_string(e.channel) + ":" +
           guardian::to_string(e.fault) + ":" + std::to_string(e.ppm);
    append_window(&out, e.from_step, e.to_step);
  }
  for (const NodeFaultEntry& e : spec.node_faults) {
    if (!out.empty()) out += ";";
    out += "node:" + target_string(e.node) + ":" + sim::to_string(e.mode) +
           ":" + std::to_string(e.ppm);
    append_window(&out, e.from_step, e.to_step);
  }
  return out;
}

}  // namespace tta::campaign
