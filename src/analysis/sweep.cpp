#include "analysis/sweep.h"

#include <cmath>
#include <cstdio>

#include "analysis/equations.h"
#include "analysis/frame_catalog.h"
#include "util/check.h"

namespace tta::analysis {

std::vector<Figure3Series> figure3(const Figure3Config& config) {
  TTA_CHECK(config.stride > 1.0);
  TTA_CHECK(config.f_max_from >= 1 && config.f_max_to >= config.f_max_from);
  std::vector<Figure3Series> out;
  for (std::int64_t f_min : config.f_min_values) {
    Figure3Series series;
    series.f_min = f_min;
    double x = static_cast<double>(config.f_max_from);
    std::int64_t prev = -1;
    while (true) {
      auto f_max = static_cast<std::int64_t>(std::llround(x));
      if (f_max > config.f_max_to) break;
      if (f_max != prev && f_max >= f_min) {
        series.points.push_back(
            Figure3Point{f_max, max_clock_ratio(f_max, f_min, config.le)});
        prev = f_max;
      }
      x *= config.stride;
    }
    out.push_back(std::move(series));
  }
  return out;
}

std::string section6_worked_examples() {
  char buf[256];
  std::string out;

  const unsigned le = default_line_encoding_bits();
  const std::int64_t f_min = shortest_frame_bits();

  double rho = rho_from_ppm(100.0);
  std::snprintf(buf, sizeof buf,
                "eq (5): rho for +-100ppm crystals          = %.4g\n", rho);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "eq (6): f_max @ rho=%.4g, f_min=%lld, le=%u = %.0f bits\n",
                rho, static_cast<long long>(f_min), le,
                max_frame_bits(f_min, le, rho));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "eq (8): rho limit @ f_max=%lld (I-frame)     = %.4f "
                "(%.2f%%)\n",
                static_cast<long long>(protocol_i_frame_bits()),
                max_rho(f_min, le, protocol_i_frame_bits()),
                100.0 * max_rho(f_min, le, protocol_i_frame_bits()));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "eq (9): rho limit @ f_max=%lld (X-frame)    = %.4f "
                "(%.2f%%)\n",
                static_cast<long long>(longest_frame_bits()),
                max_rho(f_min, le, longest_frame_bits()),
                100.0 * max_rho(f_min, le, longest_frame_bits()));
  out += buf;
  std::snprintf(buf, sizeof buf,
                "eq (10) check: f_min=f_max=128 -> ratio     = %.4g "
                "(= f_max/5, the paper's highlighted point)\n",
                max_clock_ratio(128, 128, le));
  out += buf;
  return out;
}

}  // namespace tta::analysis
