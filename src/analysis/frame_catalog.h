// TTP/C frame catalog from the Bus-Compatibility Specification as quoted by
// the paper (Section 6). These headline numbers parameterize the analysis
// equations; the bit-exact wire layouts live in src/wire (see the note there
// about the cold-start frame, whose quoted field list does not sum to its
// quoted total — the catalog keeps the paper's totals verbatim).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tta::analysis {

struct CatalogEntry {
  std::string name;
  std::int64_t total_bits;
  std::string field_breakdown;  ///< the paper's own accounting, verbatim
};

/// Shortest frame in TTP/C: N-frame with no data, implicit CRC — 28 bits.
std::int64_t shortest_frame_bits();

/// Minimum cold-start frame — 40 bits per the paper.
std::int64_t cold_start_frame_bits();

/// Largest frame required for minimal protocol operation: I-frame, 76 bits.
std::int64_t protocol_i_frame_bits();

/// Longest allowable frame: maximal X-frame, 2076 bits.
std::int64_t longest_frame_bits();

/// Line-encoding bits the paper assumes (le = 4).
unsigned default_line_encoding_bits();

/// All catalog rows, for the reference tables in benches/docs.
std::vector<CatalogEntry> frame_catalog();

}  // namespace tta::analysis
