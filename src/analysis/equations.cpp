#include "analysis/equations.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace tta::analysis {

double relative_clock_difference(double rate_a, double rate_b) {
  TTA_CHECK(rate_a > 0.0 && rate_b > 0.0);
  double w_max = std::max(rate_a, rate_b);
  double w_min = std::min(rate_a, rate_b);
  return (w_max - w_min) / w_max;
}

double rho_from_ppm(double tolerance_ppm) {
  TTA_CHECK(tolerance_ppm >= 0.0);
  // Paper eq. (5): rho = 2 * tol (fast guardian at +tol, slow node at -tol).
  return 2.0 * tolerance_ppm * 1e-6;
}

double rho_from_ppm_exact(double tolerance_ppm) {
  TTA_CHECK(tolerance_ppm >= 0.0);
  double tol = tolerance_ppm * 1e-6;
  // (w_max - w_min)/w_max with w_max = 1+tol, w_min = 1-tol.
  return 2.0 * tol / (1.0 + tol);
}

double min_buffer_bits(unsigned le, double rho, double f_max) {
  TTA_CHECK(rho >= 0.0 && rho < 1.0);
  TTA_CHECK(f_max >= 1.0);
  return static_cast<double>(le) + rho * f_max;  // eq. (1)
}

std::int64_t max_buffer_bits(std::int64_t f_min) {
  TTA_CHECK(f_min >= 1);
  return f_min - 1;  // eq. (3)
}

double max_frame_bits(std::int64_t f_min, unsigned le, double rho) {
  TTA_CHECK(rho > 0.0 && rho < 1.0);
  TTA_CHECK(f_min >= 1 + static_cast<std::int64_t>(le));
  return static_cast<double>(f_min - 1 - static_cast<std::int64_t>(le)) /
         rho;  // eq. (4)
}

double max_rho(std::int64_t f_min, unsigned le, std::int64_t f_max) {
  TTA_CHECK(f_max >= 1);
  TTA_CHECK(f_min >= 1 + static_cast<std::int64_t>(le));
  return static_cast<double>(f_min - 1 - static_cast<std::int64_t>(le)) /
         static_cast<double>(f_max);  // eq. (7)
}

double max_clock_ratio(std::int64_t f_max, std::int64_t f_min, unsigned le) {
  TTA_CHECK(f_max >= 1 && f_min >= 1);
  std::int64_t denom = f_max - f_min + 1 + static_cast<std::int64_t>(le);
  TTA_CHECK(denom > 0);
  return static_cast<double>(f_max) / static_cast<double>(denom);  // eq. (10)
}

bool design_feasible(std::int64_t f_min, std::int64_t f_max, unsigned le,
                     double rho) {
  TTA_CHECK(f_min >= 1 && f_max >= f_min);
  TTA_CHECK(rho >= 0.0 && rho < 1.0);
  return min_buffer_bits(le, rho, static_cast<double>(f_max)) <=
         static_cast<double>(max_buffer_bits(f_min));
}

bool design_feasible_exact(std::int64_t f_min, std::int64_t f_max, unsigned le,
                           const util::Rational& rho) {
  TTA_CHECK(f_min >= 1 && f_max >= f_min);
  TTA_CHECK(rho >= util::Rational(0) && rho < util::Rational(1));
  // le + rho * f_max <= f_min - 1, kept in exact arithmetic.
  util::Rational lhs =
      util::Rational(static_cast<std::int64_t>(le)) +
      rho * util::Rational(f_max);
  return lhs <= util::Rational(max_buffer_bits(f_min));
}

}  // namespace tta::analysis
