// The buffer/frame-size/clock-rate analysis of Section 6, equations (1)-(10).
//
// Notation follows the paper:
//   le     bits required for line encoding (default 4)
//   f_max  longest frame on the network, in bits
//   f_min  shortest frame on the network, in bits
//   rho    relative clock-rate difference (w_max - w_min) / w_max
//   B_min  minimum guardian buffer: le + rho * f_max                  (1)
//   B_max  maximum allowed buffer:  f_min - 1                         (3)
//   f_max limit given rho:          (f_min - 1 - le) / rho            (4)
//   rho limit given f_max:          (f_min - 1 - le) / f_max          (7)
//   clock ratio limit:  w_max/w_min = f_max / (f_max - f_min + 1 + le) (10)
//
// All functions validate their domains (TTA_CHECK) rather than returning
// garbage: these numbers gate real design decisions in the benches.
#pragma once

#include <cstdint>

#include "util/rational.h"

namespace tta::analysis {

/// Eq. (2): rho = (w_max - w_min) / w_max for two clock rates.
double relative_clock_difference(double rate_a, double rate_b);

/// Worst-case rho when both clocks have the same nominal rate but each may
/// deviate by +-tolerance_ppm (paper eq. (5): 100 ppm each way -> 0.0002).
/// Note the paper's simplification rho ~= 2 * tol; exact would be
/// 2 tol / (1 + tol) — we keep the paper's form and expose the exact one.
double rho_from_ppm(double tolerance_ppm);
double rho_from_ppm_exact(double tolerance_ppm);

/// Eq. (1): minimum buffer bits the guardian needs.
double min_buffer_bits(unsigned le, double rho, double f_max);

/// Eq. (3): maximum buffer bits allowed (must not hold a whole frame).
std::int64_t max_buffer_bits(std::int64_t f_min);

/// Eq. (4): largest allowable frame given the buffer ceiling.
double max_frame_bits(std::int64_t f_min, unsigned le, double rho);

/// Eq. (7): largest allowable rho given f_min and f_max.
double max_rho(std::int64_t f_min, unsigned le, std::int64_t f_max);

/// Eq. (10): largest allowable w_max / w_min clock ratio.
double max_clock_ratio(std::int64_t f_max, std::int64_t f_min, unsigned le);

/// Whether a (f_min, f_max, rho, le) design point is feasible, i.e.
/// B_min <= B_max. The paper's central design constraint.
bool design_feasible(std::int64_t f_min, std::int64_t f_max, unsigned le,
                     double rho);

/// Exact-rational variant of the feasibility check, used by tests to guard
/// the floating-point version against boundary errors.
bool design_feasible_exact(std::int64_t f_min, std::int64_t f_max, unsigned le,
                           const util::Rational& rho);

}  // namespace tta::analysis
