#include "analysis/frame_catalog.h"

namespace tta::analysis {

std::int64_t shortest_frame_bits() { return 28; }
std::int64_t cold_start_frame_bits() { return 40; }
std::int64_t protocol_i_frame_bits() { return 76; }
std::int64_t longest_frame_bits() { return 2076; }
unsigned default_line_encoding_bits() { return 4; }

std::vector<CatalogEntry> frame_catalog() {
  return {
      {"N-frame (minimal)", 28,
       "4 mode-change-request + frame type, 24 CRC (implicit C-state)"},
      {"cold-start frame (minimal)", 40,
       "frame type, 16 global time, round-slot position, 24 CRC "
       "(paper total; its own field list sums differently — see wire/frame.h)"},
      {"I-frame (explicit C-state)", 76,
       "4 header, 16 global time, 16 MEDL position, 16 membership, 24 CRC"},
      {"X-frame (maximal)", 2076,
       "4 header, 96 C-state, 1920 data, 48 two CRCs, 8 CRC padding"},
  };
}

}  // namespace tta::analysis
