// Parameter sweeps that regenerate the paper's figures.
//
// Figure 3 plots the maximum tolerable clock-rate ratio w_max/w_min (eq. 10)
// against the maximum frame size, for le = 4; the feasible region lies below
// the curve. We emit one series per f_min value so the "wide frame-size
// range => narrow clock-rate range" effect is visible in a single table.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tta::analysis {

struct Figure3Point {
  std::int64_t f_max = 0;
  double clock_ratio_limit = 0.0;
};

struct Figure3Series {
  std::int64_t f_min = 0;
  std::vector<Figure3Point> points;
};

struct Figure3Config {
  std::vector<std::int64_t> f_min_values{8, 28, 128};
  std::int64_t f_max_from = 8;
  std::int64_t f_max_to = 4096;
  /// Geometric stride (sample f_max at f_max_from * stride^k).
  double stride = 1.25;
  unsigned le = 4;
};

/// Generates the Figure 3 data (skips points with f_max < f_min).
std::vector<Figure3Series> figure3(const Figure3Config& config);

/// Worked examples of Section 6 as a printable report block: eqs (5), (6),
/// (8), (9) with the paper's inputs.
std::string section6_worked_examples();

}  // namespace tta::analysis
