#include "guardian/coupler.h"

#include "util/check.h"

namespace tta::guardian {

const char* to_string(Authority authority) {
  switch (authority) {
    case Authority::kPassive:
      return "passive";
    case Authority::kTimeWindows:
      return "time_windows";
    case Authority::kSmallShifting:
      return "small_shifting";
    case Authority::kFullShifting:
      return "full_shifting";
  }
  return "?";
}

const char* to_string(CouplerFault fault) {
  switch (fault) {
    case CouplerFault::kNone:
      return "none";
    case CouplerFault::kSilence:
      return "silence";
    case CouplerFault::kBadFrame:
      return "bad_frame";
    case CouplerFault::kOutOfSlot:
      return "out_of_slot";
  }
  return "?";
}

ttpc::ChannelFrame AbstractCoupler::merge_transmissions(
    const std::vector<ttpc::ChannelFrame>& sent) {
  ttpc::ChannelFrame merged;  // silence by default
  unsigned active = 0;
  for (const auto& f : sent) {
    if (f.kind == ttpc::FrameKind::kNone) continue;
    ++active;
    merged = f;
  }
  if (active > 1) {
    // Simultaneous transmitters collide into noise (DESIGN.md §5.5).
    merged = ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
  }
  return merged;
}

ttpc::ChannelFrame AbstractCoupler::transfer(const ttpc::ChannelFrame& input,
                                             CouplerFault fault,
                                             CouplerState& state) const {
  TTA_CHECK(fault_possible(authority_, fault));

  ttpc::ChannelFrame out;
  switch (fault) {
    case CouplerFault::kSilence:
      out = ttpc::ChannelFrame{ttpc::FrameKind::kNone, 0};
      break;
    case CouplerFault::kBadFrame:
      out = ttpc::ChannelFrame{ttpc::FrameKind::kBad, 0};
      break;
    case CouplerFault::kOutOfSlot:
      out = ttpc::ChannelFrame{state.buffered_frame, state.buffered_id,
                               state.buffered_membership};
      break;
    case CouplerFault::kNone:
      out = input;
      break;
  }

  // "buffered_id' = if channel_id = 0 then buffered_id else channel_id":
  // the buffer tracks the channel's content, keeping the last real frame.
  if (out.id != 0) {
    state.buffered_id = out.id;
    state.buffered_frame = out.kind;
    state.buffered_membership = out.membership;
  }
  return out;
}

}  // namespace tta::guardian
