// Active signal reshaping (value and time domain).
//
// Ademaj et al. [7] gave the central bus guardian authority to "boost
// signals that are SOS in the value domain and delay or block signals that
// are SOS in the time domain" — this is the capability that kills SOS faults
// in the star topology. The reshaper is a pure function from incoming signal
// attributes to an outcome: regenerated-to-nominal, or blocked when the
// signal is beyond what the hardware can correct.
#pragma once

#include <cstdint>

#include "wire/signal.h"

namespace tta::guardian {

struct ReshaperLimits {
  /// Weakest incoming amplitude the driver can still regenerate from.
  double min_recoverable_amplitude_mv = 300.0;
  /// Largest |timing offset| the guardian may absorb by slightly delaying or
  /// advancing the forwarded frame ("small shifting").
  double max_timing_correction_ns = 2000.0;
};

enum class ReshapeOutcome : std::uint8_t {
  kForwardedNominal,  ///< regenerated: receivers see a clean signal
  kBlocked            ///< unrecoverable: guardian truncates the transmission
};

struct ReshapeResult {
  ReshapeOutcome outcome = ReshapeOutcome::kForwardedNominal;
  wire::SignalAttrs attrs;  ///< what goes out (nominal when forwarded)
};

/// Applies the reshaping rule: anything inside the recoverable envelope goes
/// out at nominal amplitude and on-time; anything outside is blocked (a
/// blocked frame is strictly better than an SOS frame — every receiver then
/// agrees the slot was null).
ReshapeResult reshape(const ReshaperLimits& limits,
                      const wire::SignalAttrs& incoming);

}  // namespace tta::guardian
