#include "guardian/reshaper.h"

#include <cmath>

namespace tta::guardian {

ReshapeResult reshape(const ReshaperLimits& limits,
                      const wire::SignalAttrs& incoming) {
  ReshapeResult r;
  if (incoming.amplitude_mv < limits.min_recoverable_amplitude_mv ||
      std::abs(incoming.timing_offset_ns) > limits.max_timing_correction_ns) {
    r.outcome = ReshapeOutcome::kBlocked;
    r.attrs = incoming;
    return r;
  }
  r.outcome = ReshapeOutcome::kForwardedNominal;
  r.attrs = wire::nominal_signal();
  return r;
}

}  // namespace tta::guardian
