#include "guardian/mailbox.h"

#include <algorithm>

#include "util/check.h"
#include "util/rng.h"

namespace tta::guardian {

MailboxService::MailboxService(Authority authority, const ttpc::Medl& medl)
    : authority_(authority), entries_(medl.num_slots()) {}

void MailboxService::observe(ttpc::SlotNumber slot,
                             const ttpc::ChannelFrame& frame) {
  if (!available()) return;
  TTA_CHECK(slot >= 1 && slot <= entries_.size());
  if (frame.kind == ttpc::FrameKind::kNone ||
      frame.kind == ttpc::FrameKind::kBad) {
    return;
  }
  Entry& e = entries_[slot - 1];
  e.frame = frame;
  e.age_rounds = 0;
  e.valid = true;
}

std::optional<ttpc::ChannelFrame> MailboxService::substitute(
    ttpc::SlotNumber slot) const {
  if (!available()) return std::nullopt;
  TTA_CHECK(slot >= 1 && slot <= entries_.size());
  const Entry& e = entries_[slot - 1];
  if (!e.valid) return std::nullopt;
  return e.frame;
}

std::optional<unsigned> MailboxService::staleness(
    ttpc::SlotNumber slot) const {
  TTA_CHECK(slot >= 1 && slot <= entries_.size());
  const Entry& e = entries_[slot - 1];
  if (!available() || !e.valid) return std::nullopt;
  return e.age_rounds;
}

void MailboxService::end_of_round() {
  for (Entry& e : entries_) {
    if (e.valid) ++e.age_rounds;
  }
}

PriorityRelay::PriorityRelay(Authority authority, std::size_t capacity)
    : authority_(authority), capacity_(capacity) {
  TTA_CHECK(capacity >= 1);
}

bool PriorityRelay::enqueue(std::uint8_t priority,
                            const ttpc::ChannelFrame& frame) {
  if (!available() || queue_.size() >= capacity_) return false;
  queue_.push_back(Item{priority, next_seq_++, frame});
  return true;
}

std::optional<ttpc::ChannelFrame> PriorityRelay::pop() {
  if (queue_.empty()) return std::nullopt;
  auto best = std::min_element(
      queue_.begin(), queue_.end(), [](const Item& a, const Item& b) {
        return a.priority != b.priority ? a.priority < b.priority
                                        : a.seq < b.seq;
      });
  ttpc::ChannelFrame frame = best->frame;
  queue_.erase(best);
  return frame;
}

ContinuityReport measure_data_continuity(Authority authority,
                                         const ttpc::Medl& medl,
                                         std::uint64_t slots,
                                         double loss_probability,
                                         std::uint64_t seed) {
  MailboxService mailbox(authority, medl);
  util::Rng rng(seed);
  ContinuityReport report;
  ttpc::SlotNumber slot = 1;
  for (std::uint64_t s = 0; s < slots; ++s) {
    ttpc::ChannelFrame live{ttpc::FrameKind::kCState, slot};
    bool lost = rng.next_bool(loss_probability);
    if (!lost) {
      mailbox.observe(slot, live);
      ++report.delivered_fresh;
    } else if (auto stale = mailbox.substitute(slot)) {
      // The guardian papers over the loss with the cached value — a frame
      // from an earlier round, i.e. a frame outside its original slot.
      ++report.delivered_stale;
    } else {
      ++report.lost;
    }
    if (slot == medl.num_slots()) {
      mailbox.end_of_round();
      slot = 1;
    } else {
      ++slot;
    }
  }
  return report;
}

}  // namespace tta::guardian
