#include "guardian/semantic.h"

namespace tta::guardian {

const char* to_string(SemanticVerdict verdict) {
  switch (verdict) {
    case SemanticVerdict::kPass:
      return "pass";
    case SemanticVerdict::kMasqueradeBlocked:
      return "masquerade_blocked";
    case SemanticVerdict::kBadCStateBlocked:
      return "bad_cstate_blocked";
    case SemanticVerdict::kNotCheckable:
      return "not_checkable";
  }
  return "?";
}

SemanticAnalyzer::SemanticAnalyzer(const ttpc::Medl& medl,
                                   std::uint32_t buffer_bits)
    : medl_(medl), buffer_bits_(buffer_bits) {}

SemanticVerdict SemanticAnalyzer::check(
    ttpc::NodeId port, const ttpc::ChannelFrame& frame,
    std::optional<ttpc::SlotNumber> guardian_slot) const {
  if (frame.kind == ttpc::FrameKind::kNone ||
      frame.kind == ttpc::FrameKind::kBad) {
    return SemanticVerdict::kPass;  // nothing semantic to check
  }
  if (buffer_bits_ < kInspectionBits) {
    return SemanticVerdict::kNotCheckable;
  }

  if (frame.kind == ttpc::FrameKind::kColdStart) {
    // A cold-start frame claims a round-slot position; the physical port it
    // arrived on pins down which position it is *allowed* to claim. No time
    // base is needed, so this works during startup.
    if (frame.id != medl_.slot_of(port)) {
      return SemanticVerdict::kMasqueradeBlocked;
    }
    return SemanticVerdict::kPass;
  }

  // Explicit/implicit C-state frames: once the guardian has a synchronized
  // slot view, a frame whose embedded position disagrees with it carries an
  // invalid C-state and must not reach integrating nodes.
  if (guardian_slot.has_value() && frame.id != *guardian_slot) {
    return SemanticVerdict::kBadCStateBlocked;
  }
  return SemanticVerdict::kPass;
}

}  // namespace tta::guardian
