// The enhanced guardian features that *require* full-frame buffering —
// Section 6's list of temptations:
//
//   "an active central guardian that keeps 'mailboxes' with recent data
//    values could help provide data continuity if frames are corrupted by
//    providing slightly stale values instead of no value. A central
//    guardian could also provide prioritized message service (e.g., CAN
//    emulation) if it were allowed to buffer frames and send them in a
//    specially reserved time slice, in priority order. Both of these
//    enhanced functions would require buffering full frames."
//
// MailboxService and PriorityRelay implement exactly those two features so
// the ablation experiment (E10) can show the *functional* upside of
// full-shifting authority next to its dependability downside: every frame
// either feature emits is by construction a frame outside its original
// slot — the out_of_slot fault class as a feature.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "guardian/authority.h"
#include "ttpc/medl.h"
#include "ttpc/types.h"

namespace tta::guardian {

/// Per-slot cache of the last correctly received frame, served as a stale
/// substitute when the live frame is lost. Only constructible in a useful
/// state for couplers that may buffer whole frames.
class MailboxService {
 public:
  MailboxService(Authority authority, const ttpc::Medl& medl);

  /// Feature availability follows the authority lattice.
  bool available() const { return can_buffer_frames(authority_); }

  /// Records the frame observed in `slot` (identifiable frames only).
  void observe(ttpc::SlotNumber slot, const ttpc::ChannelFrame& frame);

  /// A substitute for a lost frame in `slot`: the cached value, if any.
  /// Returns nullopt when the feature is unavailable or nothing is cached.
  std::optional<ttpc::ChannelFrame> substitute(ttpc::SlotNumber slot) const;

  /// Rounds since the cached frame for `slot` was fresh (0 = this round);
  /// nullopt if nothing cached. Must be called once per round via
  /// end_of_round() to age the entries.
  std::optional<unsigned> staleness(ttpc::SlotNumber slot) const;

  void end_of_round();

 private:
  struct Entry {
    ttpc::ChannelFrame frame;
    unsigned age_rounds = 0;
    bool valid = false;
  };

  Authority authority_;
  std::vector<Entry> entries_;  ///< index 0 = slot 1
};

/// CAN-style prioritized relay: buffered frames drain in priority order
/// (lower number = higher priority; FIFO within a priority) during a
/// reserved time slice. Bounded queue; enqueue fails when full or when the
/// coupler lacks buffering authority.
class PriorityRelay {
 public:
  PriorityRelay(Authority authority, std::size_t capacity);

  bool available() const { return can_buffer_frames(authority_); }
  std::size_t size() const { return queue_.size(); }
  std::size_t capacity() const { return capacity_; }

  /// Queues a frame; false if unavailable or full.
  bool enqueue(std::uint8_t priority, const ttpc::ChannelFrame& frame);

  /// Pops the highest-priority (then oldest) frame; nullopt when empty.
  std::optional<ttpc::ChannelFrame> pop();

 private:
  struct Item {
    std::uint8_t priority;
    std::uint64_t seq;  ///< FIFO tie-break
    ttpc::ChannelFrame frame;
  };

  Authority authority_;
  std::size_t capacity_;
  std::uint64_t next_seq_ = 0;
  std::vector<Item> queue_;
};

/// Quantifies the mailbox's data-continuity value on a lossy channel: out
/// of `slots` scheduled frames with independent loss (deterministic stream
/// from `seed`, probability `loss_probability`), how many application
/// values reach the receiver fresh / stale / not at all.
struct ContinuityReport {
  std::uint64_t delivered_fresh = 0;
  std::uint64_t delivered_stale = 0;  ///< only possible with the mailbox
  std::uint64_t lost = 0;

  double availability(std::uint64_t total) const {
    return total == 0 ? 0.0
                      : static_cast<double>(delivered_fresh +
                                            delivered_stale) /
                            static_cast<double>(total);
  }
};

ContinuityReport measure_data_continuity(Authority authority,
                                         const ttpc::Medl& medl,
                                         std::uint64_t slots,
                                         double loss_probability,
                                         std::uint64_t seed);

}  // namespace tta::guardian
