// Star-coupler authority levels (Section 4.1) and coupler fault modes
// (Section 4.4).
//
// The paper's whole argument hangs on this lattice: each added capability
// both *prevents* some node-fault propagation and *admits* new coupler fault
// modes. `fault_possible` encodes the key asymmetry — the out_of_slot fault
// (replaying a buffered frame in a later slot) exists only when the coupler
// has full-shifting authority, because only then does it hold whole frames.
#pragma once

#include <cstdint>

namespace tta::guardian {

/// The four feature sets modeled in Section 4.1, ordered by authority.
enum class Authority : std::uint8_t {
  kPassive = 0,        ///< forwards everything; cannot stop or shift frames
  kTimeWindows = 1,    ///< can open/close bus write access per TDMA slot
  kSmallShifting = 2,  ///< + slight timing adjustment, signal reshaping, and
                       ///<   semantic analysis (the active central guardian
                       ///<   of Bauer et al. [2])
  kFullShifting = 3    ///< + can buffer whole frames and send them later
};

const char* to_string(Authority authority);

/// Star-coupler fault modes of the paper's model.
enum class CouplerFault : std::uint8_t {
  kNone = 0,      ///< error-free operation
  kSilence = 1,   ///< replaces any frame on its channel with silence
  kBadFrame = 2,  ///< places a bad frame / noise on the bus
  kOutOfSlot = 3  ///< re-sends the last frame it received, in a later slot
};

const char* to_string(CouplerFault fault);

/// Capability queries derived from the authority level.
constexpr bool can_block(Authority a) { return a >= Authority::kTimeWindows; }
constexpr bool can_shift_small(Authority a) {
  return a >= Authority::kSmallShifting;
}
constexpr bool can_reshape_signal(Authority a) {
  return a >= Authority::kSmallShifting;
}
constexpr bool can_analyze_semantics(Authority a) {
  return a >= Authority::kSmallShifting;
}
constexpr bool can_buffer_frames(Authority a) {
  return a >= Authority::kFullShifting;
}

/// Which fault modes a coupler of the given authority can exhibit.
/// "The out_of_slot fault occurs only if the couplers are configured for
/// full time shifting. All other faults may be caused by any configuration."
constexpr bool fault_possible(Authority a, CouplerFault f) {
  return f != CouplerFault::kOutOfSlot || can_buffer_frames(a);
}

inline constexpr Authority kAllAuthorities[] = {
    Authority::kPassive, Authority::kTimeWindows, Authority::kSmallShifting,
    Authority::kFullShifting};

inline constexpr CouplerFault kAllCouplerFaults[] = {
    CouplerFault::kNone, CouplerFault::kSilence, CouplerFault::kBadFrame,
    CouplerFault::kOutOfSlot};

}  // namespace tta::guardian
