// Abstract (slot-level) star coupler — the component under study.
//
// This is the coupler of the paper's formal model (Section 4.4): per slot it
// takes whatever the nodes drove toward the hub, applies its fault mode, and
// produces the one frame its channel carries. It also maintains the
// buffered_id / buffered_frame pair that makes the out_of_slot replay fault
// expressible at all. The model checker and the cluster simulator both use
// this type, so the fault semantics cannot diverge between the two tools.
#pragma once

#include <vector>

#include "guardian/authority.h"
#include "ttpc/types.h"

namespace tta::guardian {

/// Persistent coupler state: the last non-silent frame forwarded on this
/// coupler's channel ("the id and type of the frame that was received
/// last"), initialized to {none, 0} as in the paper.
struct CouplerState {
  ttpc::FrameKind buffered_frame = ttpc::FrameKind::kNone;
  ttpc::SlotNumber buffered_id = 0;
  std::uint16_t buffered_membership = 0;  ///< sim-level refinement; 0 in mc

  friend bool operator==(const CouplerState&, const CouplerState&) = default;
};

/// Slot-level coupler transfer function.
class AbstractCoupler {
 public:
  explicit AbstractCoupler(Authority authority) : authority_(authority) {}

  Authority authority() const { return authority_; }

  /// Merges simultaneous node transmissions into the channel's raw content:
  /// none sent -> silence; one sent -> that frame; several -> collision
  /// noise (bad frame).
  static ttpc::ChannelFrame merge_transmissions(
      const std::vector<ttpc::ChannelFrame>& sent);

  /// One slot of coupler behaviour: applies `fault` to the raw channel
  /// content and updates the frame buffer. The fault must be possible for
  /// this coupler's authority (checked).
  ///
  ///   silence     -> channel carries nothing
  ///   bad_frame   -> channel carries noise, regardless of input
  ///   out_of_slot -> channel carries the previously buffered frame
  ///   none        -> channel carries the input
  ttpc::ChannelFrame transfer(const ttpc::ChannelFrame& input,
                              CouplerFault fault, CouplerState& state) const;

 private:
  Authority authority_;
};

}  // namespace tta::guardian
