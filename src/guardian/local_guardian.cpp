#include "guardian/local_guardian.h"

namespace tta::guardian {

const char* to_string(LocalGuardianFault fault) {
  switch (fault) {
    case LocalGuardianFault::kNone:
      return "none";
    case LocalGuardianFault::kStuckClosed:
      return "stuck_closed";
    case LocalGuardianFault::kStuckOpen:
      return "stuck_open";
  }
  return "?";
}

bool LocalGuardian::allows(std::optional<ttpc::SlotNumber> true_slot,
                           const ttpc::ChannelFrame& tx) const {
  if (tx.kind == ttpc::FrameKind::kNone) return true;
  switch (fault_) {
    case LocalGuardianFault::kStuckClosed:
      return false;
    case LocalGuardianFault::kStuckOpen:
      return true;
    case LocalGuardianFault::kNone:
      break;
  }
  if (!true_slot.has_value()) {
    // No synchronized time base yet: the guardian cannot police windows.
    return true;
  }
  return *true_slot == slot_;
}

}  // namespace tta::guardian
