// Frame-level central bus guardian (one per star coupler / channel).
//
// This is the component the cluster simulator places at the hub of the star
// topology: per TDMA slot it arbitrates all port transmissions into the one
// frame its channel carries, exercising exactly the authority level it was
// configured with. It composes the slot-level AbstractCoupler (fault
// semantics shared with the model checker) with the frame-level protections
// — time windows, signal reshaping, semantic analysis — that the abstract
// model does not need but the fault-injection experiments (E9) do.
#pragma once

#include <optional>
#include <vector>

#include "guardian/authority.h"
#include "guardian/coupler.h"
#include "guardian/reshaper.h"
#include "guardian/semantic.h"
#include "ttpc/medl.h"
#include "ttpc/types.h"
#include "wire/signal.h"

namespace tta::guardian {

/// One node's attempted transmission as it arrives at the hub. The physical
/// port is trustworthy (it is a wire); everything else is claimed content.
struct PortTransmission {
  ttpc::NodeId port = 0;
  ttpc::ChannelFrame frame;  ///< abstract content; id = claimed slot position
  wire::SignalAttrs attrs = wire::nominal_signal();
};

/// What the guardian did with one port's transmission (for metrics).
enum class GuardianAction : std::uint8_t {
  kForwarded,
  kReshaped,             ///< forwarded after signal regeneration
  kBlockedWindow,        ///< outside the sender's time window
  kBlockedSignal,        ///< unrecoverable SOS signal
  kBlockedMasquerade,    ///< semantic analysis: cold-start slot mismatch
  kBlockedBadCState      ///< semantic analysis: C-state mismatch
};

const char* to_string(GuardianAction action);

struct GuardianConfig {
  Authority authority = Authority::kSmallShifting;
  ReshaperLimits reshaper;
  /// Inspection buffer available for semantic analysis, in bits. The
  /// Section 6 constraint says this must stay below f_min; configuring it
  /// below SemanticAnalyzer::kInspectionBits disables semantic checks.
  std::uint32_t buffer_bits = 24;
  /// Activity supervision (time-window authority and above): a port driving
  /// the medium in more than this many consecutive slots is cut off until it
  /// goes silent. This is what contains a babbling idiot even *before* the
  /// guardian has a time base — legitimate senders transmit at most once per
  /// round.
  unsigned max_consecutive_transmissions = 2;
};

class CentralGuardian {
 public:
  CentralGuardian(const GuardianConfig& config, const ttpc::Medl& medl);

  Authority authority() const { return config_.authority; }

  struct SlotResult {
    ttpc::ChannelFrame out;  ///< what the channel carries this slot
    wire::SignalAttrs attrs = wire::nominal_signal();
    /// Per-attempt dispositions, parallel to the input vector.
    std::vector<GuardianAction> actions;
  };

  /// Arbitrates one slot. `guardian_slot` is the guardian's own synchronized
  /// view of the current slot (nullopt before it has synchronized — during
  /// cluster startup); `fault` is this coupler's fault mode for the slot.
  SlotResult arbitrate(std::optional<ttpc::SlotNumber> guardian_slot,
                       const std::vector<PortTransmission>& attempts,
                       CouplerFault fault);

  /// Buffered-frame state (meaningful for full-shifting guardians; it is
  /// what an out_of_slot fault replays).
  const CouplerState& coupler_state() const { return state_; }

 private:
  GuardianConfig config_;
  ttpc::Medl medl_;
  AbstractCoupler coupler_;
  SemanticAnalyzer semantics_;
  CouplerState state_;
  std::vector<unsigned> consecutive_tx_;  ///< per-port activity counters
};

}  // namespace tta::guardian
