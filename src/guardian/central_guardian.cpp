#include "guardian/central_guardian.h"

namespace tta::guardian {

const char* to_string(GuardianAction action) {
  switch (action) {
    case GuardianAction::kForwarded:
      return "forwarded";
    case GuardianAction::kReshaped:
      return "reshaped";
    case GuardianAction::kBlockedWindow:
      return "blocked_window";
    case GuardianAction::kBlockedSignal:
      return "blocked_signal";
    case GuardianAction::kBlockedMasquerade:
      return "blocked_masquerade";
    case GuardianAction::kBlockedBadCState:
      return "blocked_bad_cstate";
  }
  return "?";
}

CentralGuardian::CentralGuardian(const GuardianConfig& config,
                                 const ttpc::Medl& medl)
    : config_(config),
      medl_(medl),
      coupler_(config.authority),
      semantics_(medl, config.buffer_bits),
      consecutive_tx_(17, 0) {}

CentralGuardian::SlotResult CentralGuardian::arbitrate(
    std::optional<ttpc::SlotNumber> guardian_slot,
    const std::vector<PortTransmission>& attempts, CouplerFault fault) {
  SlotResult result;
  result.actions.resize(attempts.size(), GuardianAction::kForwarded);

  // Activity bookkeeping for this slot (who attempted to drive the medium).
  std::vector<bool> attempted(consecutive_tx_.size(), false);

  std::vector<ttpc::ChannelFrame> admitted;
  wire::SignalAttrs admitted_attrs = wire::nominal_signal();
  for (std::size_t i = 0; i < attempts.size(); ++i) {
    const PortTransmission& tx = attempts[i];
    if (tx.frame.kind == ttpc::FrameKind::kNone) continue;
    if (tx.port < attempted.size()) attempted[tx.port] = true;

    // 1a. Activity supervision: a port that never stops transmitting is cut
    //     off regardless of synchronization state (babbling containment).
    if (can_block(config_.authority) && tx.port < consecutive_tx_.size() &&
        consecutive_tx_[tx.port] >= config_.max_consecutive_transmissions) {
      result.actions[i] = GuardianAction::kBlockedWindow;
      continue;
    }

    // 1b. Time windows: once synchronized, only the scheduled sender may
    //     drive the channel. Before synchronization there is no time base,
    //     so windows cannot help (this is why startup masquerading needs
    //     semantic analysis instead).
    if (can_block(config_.authority) && guardian_slot.has_value() &&
        medl_.sender_of(*guardian_slot) != tx.port) {
      result.actions[i] = GuardianAction::kBlockedWindow;
      continue;
    }

    // 2. Signal reshaping: regenerate SOS signals or block unrecoverable
    //    ones. A passive or windows-only coupler forwards attrs untouched,
    //    preserving SOS disagreement at the receivers.
    wire::SignalAttrs out_attrs = tx.attrs;
    if (can_reshape_signal(config_.authority)) {
      ReshapeResult rr = reshape(config_.reshaper, tx.attrs);
      if (rr.outcome == ReshapeOutcome::kBlocked) {
        result.actions[i] = GuardianAction::kBlockedSignal;
        continue;
      }
      out_attrs = rr.attrs;
      if (!(tx.attrs == wire::nominal_signal())) {
        result.actions[i] = GuardianAction::kReshaped;
      }
    }

    // 3. Semantic analysis of frame content.
    if (can_analyze_semantics(config_.authority)) {
      switch (semantics_.check(tx.port, tx.frame, guardian_slot)) {
        case SemanticVerdict::kMasqueradeBlocked:
          result.actions[i] = GuardianAction::kBlockedMasquerade;
          continue;
        case SemanticVerdict::kBadCStateBlocked:
          result.actions[i] = GuardianAction::kBlockedBadCState;
          continue;
        case SemanticVerdict::kPass:
        case SemanticVerdict::kNotCheckable:
          break;
      }
    }

    admitted.push_back(tx.frame);
    admitted_attrs = out_attrs;
  }

  for (std::size_t port = 0; port < consecutive_tx_.size(); ++port) {
    consecutive_tx_[port] = attempted[port] ? consecutive_tx_[port] + 1 : 0;
  }

  ttpc::ChannelFrame merged = AbstractCoupler::merge_transmissions(admitted);
  result.out = coupler_.transfer(merged, fault, state_);
  // A coupler fault that replaces the frame also replaces its analog
  // attributes with the hub driver's nominal output.
  result.attrs =
      fault == CouplerFault::kNone ? admitted_attrs : wire::nominal_signal();
  return result;
}

}  // namespace tta::guardian
