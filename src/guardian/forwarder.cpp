#include "guardian/forwarder.h"

#include <algorithm>

#include "util/check.h"

namespace tta::guardian {

using util::Rational;

BitstreamForwarder::BitstreamForwarder(Rational node_rate,
                                       Rational guardian_rate,
                                       wire::LineCoding line)
    : node_rate_(node_rate), guardian_rate_(guardian_rate), line_(line) {
  TTA_CHECK(node_rate_ > Rational(0));
  TTA_CHECK(guardian_rate_ > Rational(0));
}

ForwardingOutcome BitstreamForwarder::forward(std::int64_t frame_bits,
                                              std::int64_t margin_bits) const {
  TTA_CHECK(frame_bits >= 1);
  TTA_CHECK(margin_bits >= 0);
  const std::int64_t le = line_.preamble_bits();
  const std::int64_t wire_bits = le + frame_bits;
  const std::int64_t threshold = std::min(le + margin_bits, wire_bits);

  // Exact integer-fraction timestamps (128-bit cross-multiplication) so the
  // per-bit loop stays cheap even for 115k-bit frames:
  //   input bit i arrives at   i * qf / pf
  //   output bit k starts at   threshold*qf/pf + (k-1) * qd / pd
  const __int128 pf = node_rate_.num(), qf = node_rate_.den();
  const __int128 pd = guardian_rate_.num(), qd = guardian_rate_.den();

  ForwardingOutcome out;
  // Underrun: output bit k would start before input bit k arrived.
  for (std::int64_t k = threshold + 1; k <= wire_bits; ++k) {
    __int128 lhs = static_cast<__int128>(k) * qf * pd;  // arrival * pf*pd
    __int128 rhs = static_cast<__int128>(threshold) * qf * pd +
                   static_cast<__int128>(k - 1) * qd * pf;
    if (lhs > rhs) {
      out.underrun = true;
      break;
    }
  }

  // Peak occupancy: evaluate just after each arrival.
  std::int64_t peak = 0;
  for (std::int64_t i = 1; i <= wire_bits; ++i) {
    std::int64_t drained = 0;
    if (i > threshold) {
      // drained(t_i) = floor((t_i - T0) * D), clamped to what exists.
      __int128 num = static_cast<__int128>(i - threshold) * qf * pd;
      __int128 den = static_cast<__int128>(pf) * qd;
      drained = static_cast<std::int64_t>(num / den);
      drained = std::clamp<std::int64_t>(drained, 0, i);
    }
    peak = std::max(peak, i - drained);
  }
  out.peak_buffer_bits = peak;
  return out;
}

std::int64_t BitstreamForwarder::min_margin_bits(std::int64_t frame_bits) const {
  // forward() is monotone in margin (starting later can only help), so
  // binary search the smallest safe margin.
  std::int64_t lo = 0;
  std::int64_t hi = frame_bits;
  TTA_CHECK(!forward(frame_bits, hi).underrun);
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    if (forward(frame_bits, mid).underrun) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace tta::guardian
