// Bit-clock frame forwarding through the central guardian.
//
// The empirical counterpart of eq. (1): bits of a line-coded frame arrive at
// the sender's clock rate and must leave the guardian gaplessly at the
// guardian's clock rate. The guardian must (a) absorb the full le-bit
// line-encoding preamble before it can recognize the frame and regenerate
// sync, and (b) hold enough payload margin that the faster of the two clocks
// never starves or overflows it. BitstreamForwarder simulates this bit by
// bit with exact rational timestamps and *measures* the minimum buffer — the
// bench (E8) compares the measurement against B_min = le + rho * f_max.
#pragma once

#include <cstdint>

#include "util/rational.h"
#include "wire/line_coding.h"

namespace tta::guardian {

struct ForwardingOutcome {
  bool underrun = false;          ///< output starved mid-frame
  std::int64_t peak_buffer_bits = 0;  ///< max bits held at once (incl. preamble)
};

class BitstreamForwarder {
 public:
  /// Rates in bits per unit time. `line` supplies the preamble length le.
  BitstreamForwarder(util::Rational node_rate, util::Rational guardian_rate,
                     wire::LineCoding line);

  /// Simulates forwarding a frame of `frame_bits` payload bits (the wire
  /// image is le + frame_bits long). Output starts once the preamble plus
  /// `margin_bits` payload bits have arrived.
  ForwardingOutcome forward(std::int64_t frame_bits,
                            std::int64_t margin_bits) const;

  /// Smallest payload margin with no underrun (measured, not computed).
  std::int64_t min_margin_bits(std::int64_t frame_bits) const;

  /// Total measured minimum buffer: preamble + min margin. This is the
  /// quantity eq. (1) predicts as B_min.
  std::int64_t min_buffer_bits(std::int64_t frame_bits) const {
    return line_.preamble_bits() + min_margin_bits(frame_bits);
  }

 private:
  util::Rational node_rate_;
  util::Rational guardian_rate_;
  wire::LineCoding line_;
};

}  // namespace tta::guardian
