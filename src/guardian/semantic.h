// Semantic analysis of frames at the central guardian.
//
// Bauer et al. [2] give the central guardian authority to inspect frame
// *content*: a cold-start frame whose claimed round-slot position does not
// match the physical port it arrived on is a masquerade attempt and is
// blocked; a frame whose C-state disagrees with the guardian's own C-state
// view is blocked so integrating nodes can never adopt it. Both checks
// require buffering the first `required_buffer_bits` of the frame before the
// tail is forwarded — the very requirement that sets B_min in eq. (1).
#pragma once

#include <cstdint>
#include <optional>

#include "ttpc/medl.h"
#include "ttpc/types.h"

namespace tta::guardian {

enum class SemanticVerdict : std::uint8_t {
  kPass,                 ///< content consistent with schedule and C-state
  kMasqueradeBlocked,    ///< cold-start frame claiming someone else's slot
  kBadCStateBlocked,     ///< explicit C-state disagrees with guardian's view
  kNotCheckable          ///< guardian lacks the buffer bits to inspect
};

const char* to_string(SemanticVerdict verdict);

class SemanticAnalyzer {
 public:
  /// `buffer_bits` is the guardian's inspection buffer; checking a frame
  /// requires buffering its id/C-state fields (we charge the protocol
  /// header: 16 bits, well under any legal B_max).
  SemanticAnalyzer(const ttpc::Medl& medl, std::uint32_t buffer_bits);

  /// Bits of a frame that must sit in the buffer before the semantic checks
  /// can run.
  static constexpr std::uint32_t kInspectionBits = 16;

  /// Checks one transmission arriving on physical port `port` while the
  /// guardian believes the cluster is in `guardian_slot` (nullopt before the
  /// guardian has synchronized — then only the port-vs-claim check applies,
  /// which is precisely what stops masquerading *during startup*).
  SemanticVerdict check(ttpc::NodeId port,
                        const ttpc::ChannelFrame& frame,
                        std::optional<ttpc::SlotNumber> guardian_slot) const;

 private:
  ttpc::Medl medl_;
  std::uint32_t buffer_bits_;
};

}  // namespace tta::guardian
