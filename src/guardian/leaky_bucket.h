// Leaky-bucket buffer-occupancy model.
//
// Section 6 explains the guardian's buffer as "a leaky bucket where the fill
// rate is not equal to the drain rate": bits arrive at the sender's clock
// rate and leave at the guardian's. This module computes, in exact rational
// arithmetic, how full such a bucket gets over one frame — both the
// closed-form bound and an event-exact evaluation that the tests compare
// against the closed form and against the bit-clock BitstreamForwarder.
#pragma once

#include <cstdint>

#include "util/rational.h"

namespace tta::guardian {

/// Relative rate difference rho = (w_max - w_min) / w_max (paper eq. 2).
util::Rational relative_rate_difference(const util::Rational& rate_a,
                                        const util::Rational& rate_b);

struct LeakyBucketResult {
  std::int64_t peak_bits = 0;    ///< max occupancy, in whole buffered bits
  bool underrun = false;         ///< drain outpaced fill mid-frame
};

class LeakyBucket {
 public:
  /// `fill_rate` / `drain_rate` in bits per unit time; `initial_bits` are
  /// already in the bucket when draining starts (the guardian's start-up
  /// buffering threshold, including the line-encoding bits).
  LeakyBucket(util::Rational fill_rate, util::Rational drain_rate);

  /// Evaluates one frame of `frame_bits` bits: filling starts at t = 0,
  /// draining starts the moment `initial_bits` have arrived. Exact: peak
  /// occupancy is attained either when draining starts (fast source) or
  /// when the last input bit lands (slow drain), and underrun can only
  /// happen at the last output bit — all three are checked analytically.
  LeakyBucketResult run(std::int64_t frame_bits,
                        std::int64_t initial_bits) const;

  /// Smallest `initial_bits` for which run() reports no underrun.
  std::int64_t min_initial_bits(std::int64_t frame_bits) const;

 private:
  util::Rational fill_;
  util::Rational drain_;
};

}  // namespace tta::guardian
