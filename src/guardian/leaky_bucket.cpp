#include "guardian/leaky_bucket.h"

#include <algorithm>

#include "util/check.h"

namespace tta::guardian {

using util::Rational;

Rational relative_rate_difference(const Rational& rate_a,
                                  const Rational& rate_b) {
  const Rational& w_max = std::max(rate_a, rate_b);
  const Rational& w_min = std::min(rate_a, rate_b);
  TTA_CHECK(w_max > Rational(0));
  return (w_max - w_min) / w_max;
}

LeakyBucket::LeakyBucket(Rational fill_rate, Rational drain_rate)
    : fill_(fill_rate), drain_(drain_rate) {
  TTA_CHECK(fill_ > Rational(0));
  TTA_CHECK(drain_ > Rational(0));
}

LeakyBucketResult LeakyBucket::run(std::int64_t frame_bits,
                                   std::int64_t initial_bits) const {
  TTA_CHECK(frame_bits >= 1);
  TTA_CHECK(initial_bits >= 0);
  LeakyBucketResult res;

  if (initial_bits >= frame_bits) {
    // Whole frame buffered before draining: trivially no underrun, and the
    // peak is the full frame — the configuration B_max exists to forbid.
    res.peak_bits = frame_bits;
    return res;
  }

  // Fill bit k (1-based) completes at k/F; draining starts at
  // T0 = initial/F; drain bit k begins at T0 + (k-1)/D and must not begin
  // before fill bit k has completed. The slack is linear in k, so checking
  // the two extreme unbuffered bits is exact.
  const Rational t0 = Rational(initial_bits) / fill_;
  auto starved = [&](std::int64_t k) {
    Rational need = Rational(k) / fill_;                    // arrival of bit k
    Rational have = t0 + Rational(k - 1) / drain_;          // drain start
    return have < need;
  };
  if (starved(initial_bits + 1) || starved(frame_bits)) {
    res.underrun = true;
  }

  // Peak occupancy is attained either right at drain start (initial bits
  // held) or at the last arrival (slow drain accumulates).
  const Rational t_end = Rational(frame_bits) / fill_;  // last bit arrival
  Rational drained_r = (t_end - t0) * drain_;
  std::int64_t drained = std::clamp<std::int64_t>(drained_r.floor(), 0,
                                                  frame_bits);
  res.peak_bits = std::max(initial_bits, frame_bits - drained);
  return res;
}

std::int64_t LeakyBucket::min_initial_bits(std::int64_t frame_bits) const {
  // run() is monotone in initial_bits (later drain start can only help), so
  // binary search for the smallest safe threshold.
  std::int64_t lo = 0;
  std::int64_t hi = frame_bits;
  TTA_CHECK(!run(frame_bits, hi).underrun);
  while (lo < hi) {
    std::int64_t mid = lo + (hi - lo) / 2;
    if (run(frame_bits, mid).underrun) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace tta::guardian
