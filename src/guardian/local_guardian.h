// Local (per-node) bus guardian — the decentralized baseline.
//
// In the TTA bus topology every node's transmitter passes through its own
// independent bus guardian (Figure 1). A healthy local guardian enforces
// fail-silence in the time domain: its node may only drive the bus during
// the node's own MEDL slot. What it *cannot* do — and this is the paper's
// baseline asymmetry — is reshape marginal signals, verify cold-start
// content, or check C-states: those require the receiving end or a central
// vantage point. Its fault modes are local: a stuck-closed guardian silences
// only its own node; a stuck-open one merely loses protection.
#pragma once

#include <cstdint>
#include <optional>

#include "ttpc/medl.h"
#include "ttpc/types.h"

namespace tta::guardian {

enum class LocalGuardianFault : std::uint8_t {
  kNone = 0,
  kStuckClosed = 1,  ///< blocks every transmission of its node
  kStuckOpen = 2     ///< passes every transmission (protection lost)
};

const char* to_string(LocalGuardianFault fault);

class LocalGuardian {
 public:
  LocalGuardian(ttpc::NodeId owner, const ttpc::Medl& medl)
      : owner_(owner), slot_(medl.slot_of(owner)) {}

  ttpc::NodeId owner() const { return owner_; }

  void inject(LocalGuardianFault fault) { fault_ = fault; }
  LocalGuardianFault fault() const { return fault_; }

  /// Gate decision for one attempted transmission. `true_slot` is the
  /// guardian's independent view of the current slot (nullopt before the
  /// cluster — and thus the guardian's clock — has synchronized; during
  /// startup a local guardian has no time base and must pass traffic,
  /// which is why bus-topology startup masquerading is possible at all).
  bool allows(std::optional<ttpc::SlotNumber> true_slot,
              const ttpc::ChannelFrame& tx) const;

 private:
  ttpc::NodeId owner_;
  ttpc::SlotNumber slot_;  ///< the one slot the owner may use
  LocalGuardianFault fault_ = LocalGuardianFault::kNone;
};

}  // namespace tta::guardian
