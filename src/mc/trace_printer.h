// Counterexample narration.
//
// Renders a Checker trace in the style the paper uses in Section 5.2
// ("Node A makes a transition into the listen state... A faulty star
// coupler replays the previous cold start frame. Node B integrates on
// it..."), plus a compact per-step table for debugging. Nodes are lettered
// A, B, C, ... to match the paper.
#pragma once

#include <string>
#include <vector>

#include "mc/checker.h"

namespace tta::mc {

class TracePrinter {
 public:
  explicit TracePrinter(const TtpcStarModel& model) : model_(&model) {}

  /// Paper-style numbered narration; one entry per step with an event worth
  /// telling (quiet countdown steps are merged into "…timeout decreases").
  std::string narrate(const std::vector<TraceStep>& trace) const;

  /// Dense per-step table: channels, every node's state/slot/counters.
  std::string table(const std::vector<TraceStep>& trace) const;

 private:
  const TtpcStarModel* model_;
};

}  // namespace tta::mc
