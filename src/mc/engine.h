// The unified engine interface: one `run(model, query) -> result` surface
// over the serial reference Checker, the lock-free ParallelChecker, and
// their redundant cross-checked composition.
//
// Callers above this line (the verification service) schedule *engines*,
// not if-ladders: a query is a declarative (kind, predicate, budget)
// triple, an engine is an object, and redundancy is composition —
// RedundantEngine wraps any two engines and cross-checks their answers,
// so a TMR tiebreaker is a third wrapped engine away, not a new switch
// arm in every dispatch site.
//
// Engines keep the contracts of the classes they wrap (docs/CHECKER.md):
// bit-identical verdicts and exploration statistics between SerialEngine
// and ParallelEngine at any thread count, cooperative cancellation via
// util::CancelToken, and checkpoint/resume at BFS level barriers where
// supports_checkpoint() allows it.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "mc/checker.h"
#include "mc/checkpoint.h"
#include "mc/model.h"
#include "util/cancel_token.h"

namespace tta::mc {

/// A declarative engine query: what to search for and how hard to try.
/// Exactly one of `violation` / `goal` is consulted, per `kind`.
struct EngineQuery {
  enum class Kind : std::uint8_t {
    kSafetyCheck = 0,     ///< Checker::check over `violation`
    kFindState = 1,       ///< Checker::find_state over `goal`
    kRecoverability = 2,  ///< Checker::check_recoverability over `goal`
  };

  Kind kind = Kind::kSafetyCheck;
  Checker<TtpcStarModel>::Violation violation;  ///< kSafetyCheck only
  Checker<TtpcStarModel>::Goal goal;  ///< kFindState / kRecoverability
  std::uint64_t max_states = 50'000'000;
};

/// What every engine returns: the explicit verdict, the exploration
/// fingerprint, and — for redundant compositions — the second engine's
/// stat block (`stats` holds the engine whose answer was adopted).
struct EngineResult {
  Verdict verdict = Verdict::kInconclusive;
  CheckStats stats;
  std::uint64_t dead_states = 0;     ///< kRecoverability only
  std::vector<TraceStep> trace;      ///< counterexample / witness
  bool redundant = false;            ///< produced by a cross-checked pair
  CheckStats secondary_stats;        ///< redundant only: the other engine
};

class Engine {
 public:
  virtual ~Engine() = default;

  virtual const char* name() const = 0;

  /// False when the engine must not be given a checkpoint sink (redundant
  /// compositions: two engines racing on one wavefront file would corrupt
  /// it, and per-engine files would let a resumed half diverge for free).
  virtual bool supports_checkpoint() const { return true; }

  /// Runs one query to an explicit verdict. `cancel` may be null (never
  /// cancelled); `checkpoint` may be null (no resume) and is ignored by
  /// engines that report supports_checkpoint() == false, as well as for
  /// kRecoverability queries (mc/checkpoint.h scopes the format to the
  /// BFS wavefront, which recoverability's edge list outgrows).
  virtual EngineResult run(const TtpcStarModel& model,
                           const EngineQuery& query,
                           const util::CancelToken* cancel,
                           const CheckpointConfig* checkpoint) const = 0;
};

/// The single-threaded reference Checker behind the Engine interface.
/// `options.table` selects the visited-table backend (flat/compact); both
/// backends are contractually bit-identical, so the choice is invisible in
/// the result and only moves the memory/throughput tradeoff.
class SerialEngine final : public Engine {
 public:
  explicit SerialEngine(CheckOptions options = {}) : options_(options) {}

  const char* name() const override { return "serial"; }
  TableBackend table_backend() const { return options_.table; }
  EngineResult run(const TtpcStarModel& model, const EngineQuery& query,
                   const util::CancelToken* cancel,
                   const CheckpointConfig* checkpoint) const override;

 private:
  CheckOptions options_;
};

/// The level-synchronized ParallelChecker behind the Engine interface.
class ParallelEngine final : public Engine {
 public:
  /// `threads` == 0 picks the hardware concurrency.
  explicit ParallelEngine(unsigned threads = 0, CheckOptions options = {})
      : threads_(threads), options_(options) {}

  const char* name() const override { return "parallel"; }
  unsigned threads() const { return threads_; }
  TableBackend table_backend() const { return options_.table; }
  EngineResult run(const TtpcStarModel& model, const EngineQuery& query,
                   const util::CancelToken* cancel,
                   const CheckpointConfig* checkpoint) const override;

 private:
  unsigned threads_;
  CheckOptions options_;
};

/// Redundant composition, mirroring the paper's dual star couplers: the
/// same query runs on both wrapped engines concurrently (the reference on
/// a helper thread, the shadow on the caller), and the answers are merged
/// by cross_check(). Costs roughly the sum of both engines.
class RedundantEngine final : public Engine {
 public:
  RedundantEngine(std::unique_ptr<Engine> reference,
                  std::unique_ptr<Engine> shadow);

  const char* name() const override { return "redundant"; }
  bool supports_checkpoint() const override { return false; }
  EngineResult run(const TtpcStarModel& model, const EngineQuery& query,
                   const util::CancelToken* cancel,
                   const CheckpointConfig* checkpoint) const override;

 private:
  std::unique_ptr<Engine> reference_;
  std::unique_ptr<Engine> shadow_;
};

/// Merges a redundant pair's results (exposed for tests). Rules: both
/// conclusive and agreeing (verdict + state counts + depth + dead states +
/// trace length) -> the reference result with the shadow's stats attached;
/// both conclusive but disagreeing -> kEngineDivergence with both stat
/// blocks and no trace (neither deserves trust); exactly one conclusive ->
/// that answer (the redundancy payoff: one stalled engine no longer blocks
/// the job); neither conclusive -> the attempt that got further.
EngineResult cross_check(const EngineResult& reference,
                         const EngineResult& shadow);

}  // namespace tta::mc
