// Checkpoint/resume for the BFS reachability engines.
//
// A long 6-node run explores tens of millions of states over hours; losing
// all of it to a deadline, a crash, or a restart is exactly the kind of
// centralized-failure cost this project studies. Both engines therefore
// can serialize their level-synchronized BFS wavefront — the visited set
// with parent links plus the current frontier *in order* — to a checkpoint
// file at level barriers, and resume an interrupted run to a bit-identical
// result: same verdict, same states/transitions/max_depth, same
// counterexample. Bit-identity holds because the engines are deterministic
// given a frontier order, and the checkpoint preserves that order exactly.
//
// The file format is versioned, bound to the query (the caller supplies a
// binding digest — the service uses JobSpec::digest()), and closed by a
// CRC-32 trailer over every preceding byte (util::crc32). Publication is
// atomic: the writer produces `path.tmp` and renames it over `path`, so a
// crash mid-checkpoint leaves the previous checkpoint intact. A missing,
// corrupt, torn, or mismatched checkpoint is *not* an error — load fails
// softly and the engine simply starts fresh, which is always correct.
//
// Scope: check() and find_state() on both engines. check_recoverability()
// additionally accumulates the full edge list for the backward closure;
// checkpointing that is out of scope (an interrupted recoverability run
// re-executes), which the service layer documents.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bitpack.h"

namespace tta::mc {

struct CheckpointConfig {
  std::string path;
  /// Caller-chosen query identity (the service passes JobSpec::digest());
  /// a checkpoint written under a different binding is ignored on load.
  std::uint64_t binding = 0;
  /// Write a checkpoint every N completed BFS levels. 1 checkpoints at
  /// every barrier — right for this model family's level sizes; raise it
  /// when frontier serialization starts to rival level expansion cost.
  std::uint32_t every_levels = 1;
};

/// One visited state: its packed key, its BFS parent (as a packed key, not
/// a slot index — slot indices do not survive a restart), the choice code
/// that replays parent -> state, and the depth. Roots carry kRootFlag and
/// reference themselves as parent.
struct CheckpointEntry {
  static constexpr std::uint8_t kRootFlag = 1;

  util::PackedState key;
  util::PackedState parent;
  std::uint32_t choice = 0;
  std::uint32_t depth = 0;
  std::uint8_t flags = 0;
};

/// The engine-agnostic wavefront snapshot both engines save and restore.
struct CheckpointData {
  /// What kind of query the wavefront belongs to; a safety checkpoint must
  /// not resume a reachability query (their per-level verdict logic
  /// differs), so load rejects a mode mismatch.
  enum class Mode : std::uint8_t { kSafetyCheck = 0, kFindState = 1 };

  Mode mode = Mode::kSafetyCheck;
  std::uint32_t next_depth = 0;  ///< the level the resumed run expands first
  std::uint64_t transitions = 0;   ///< stats accumulated before the barrier
  std::uint64_t dedup_skips = 0;
  /// Hash recomputations accumulated before the barrier (format v2; loads
  /// of v1 files report 0). Diagnostic, carried so a resumed run's counter
  /// stays cumulative.
  std::uint64_t hash_recomputes = 0;
  std::vector<CheckpointEntry> visited;
  /// The frontier at the barrier, in exactly the engine's expansion order
  /// (this order decides which minimal counterexample is reported, so it
  /// is part of the bit-identity contract).
  std::vector<util::PackedState> frontier;
};

/// Serializes `data` to config.path atomically (tmp + rename). Best-effort:
/// returns false on I/O failure and the engine carries on unchecked.
bool save_checkpoint(const CheckpointConfig& config,
                     const CheckpointData& data);

/// Loads and validates a checkpoint. Returns false — never throws, never
/// aborts — when the file is missing, torn, CRC-corrupt, of a different
/// format version, bound to a different query, or of a different mode.
bool load_checkpoint(const CheckpointConfig& config, CheckpointData* data,
                     CheckpointData::Mode expected_mode);

/// Advisory header-only snapshot of a checkpoint file, for progress
/// reporting: how deep the owning run's wavefront has gotten without
/// deserializing (or CRC-validating) the full visited set.
struct CheckpointPeek {
  CheckpointData::Mode mode = CheckpointData::Mode::kSafetyCheck;
  std::uint32_t next_depth = 0;    ///< the BFS level the run expands next
  std::uint64_t transitions = 0;   ///< accumulated before the barrier
  std::uint64_t visited = 0;       ///< states in the checkpointed set
  std::uint64_t frontier = 0;      ///< states in the checkpointed frontier
};

/// Reads only the fixed-size header (magic / version / binding validated;
/// the CRC trailer is NOT checked — a torn file can yield stale counts,
/// which is acceptable for progress display and nothing else). Returns
/// false softly, like load_checkpoint.
bool peek_checkpoint(const CheckpointConfig& config, CheckpointPeek* out);

/// Removes a checkpoint file (after its run concluded). Missing is fine.
void remove_checkpoint(const std::string& path);

}  // namespace tta::mc
