#include "mc/engine.h"

#include <thread>
#include <utility>

#include "mc/parallel_checker.h"
#include "util/compact_state_table.h"

namespace tta::mc {

namespace {

bool conclusive(Verdict verdict) {
  return verdict == Verdict::kHolds || verdict == Verdict::kViolated;
}

EngineResult from_check(CheckResult&& res) {
  EngineResult out;
  out.verdict = res.verdict;
  out.stats = res.stats;
  out.trace = std::move(res.trace);
  return out;
}

EngineResult from_recoverability(RecoverabilityResult&& res) {
  EngineResult out;
  out.verdict = res.verdict;
  out.stats = res.stats;
  out.dead_states = res.dead_states;
  out.trace = std::move(res.witness);
  return out;
}

/// One query dispatch over an already-constructed checker (either engine,
/// either table backend — the checkers share the query surface).
template <class Checker>
EngineResult dispatch(const Checker& checker, const EngineQuery& query,
                      const util::CancelToken* cancel,
                      const CheckpointConfig* checkpoint) {
  switch (query.kind) {
    case EngineQuery::Kind::kSafetyCheck:
      return from_check(
          checker.check(query.violation, query.max_states, cancel,
                        checkpoint));
    case EngineQuery::Kind::kFindState:
      return from_check(
          checker.find_state(query.goal, query.max_states, cancel,
                             checkpoint));
    case EngineQuery::Kind::kRecoverability:
      return from_recoverability(
          checker.check_recoverability(query.goal, query.max_states, cancel));
  }
  return EngineResult{};  // unreachable
}

}  // namespace

EngineResult SerialEngine::run(const TtpcStarModel& model,
                               const EngineQuery& query,
                               const util::CancelToken* cancel,
                               const CheckpointConfig* checkpoint) const {
  if (options_.table == TableBackend::kCompact) {
    Checker<TtpcStarModel, util::CompactStateTable> checker(model);
    return dispatch(checker, query, cancel, checkpoint);
  }
  Checker<TtpcStarModel> checker(model);
  return dispatch(checker, query, cancel, checkpoint);
}

EngineResult ParallelEngine::run(const TtpcStarModel& model,
                                 const EngineQuery& query,
                                 const util::CancelToken* cancel,
                                 const CheckpointConfig* checkpoint) const {
  if (options_.table == TableBackend::kCompact) {
    ParallelChecker<TtpcStarModel, util::CompactStateTable> checker(model,
                                                                    threads_);
    return dispatch(checker, query, cancel, checkpoint);
  }
  ParallelChecker<TtpcStarModel> checker(model, threads_);
  return dispatch(checker, query, cancel, checkpoint);
}

RedundantEngine::RedundantEngine(std::unique_ptr<Engine> reference,
                                 std::unique_ptr<Engine> shadow)
    : reference_(std::move(reference)), shadow_(std::move(shadow)) {}

EngineResult RedundantEngine::run(const TtpcStarModel& model,
                                  const EngineQuery& query,
                                  const util::CancelToken* cancel,
                                  const CheckpointConfig* /*checkpoint*/)
    const {
  // Both engines share the one cancel token (the job has one deadline, not
  // one per engine); neither checkpoints — see supports_checkpoint().
  EngineResult reference_result;
  std::thread reference_thread([&] {
    reference_result = reference_->run(model, query, cancel, nullptr);
  });
  EngineResult shadow_result = shadow_->run(model, query, cancel, nullptr);
  reference_thread.join();
  return cross_check(reference_result, shadow_result);
}

EngineResult cross_check(const EngineResult& reference,
                         const EngineResult& shadow) {
  const bool r_ok = conclusive(reference.verdict);
  const bool s_ok = conclusive(shadow.verdict);

  EngineResult merged;
  bool reference_primary = true;
  if (r_ok && s_ok) {
    // Both answered: they must agree not just on the verdict but on the
    // whole exploration fingerprint — the engines are contractually
    // bit-identical (docs/CHECKER.md), so any delta means one of them is
    // wrong and the result cannot be trusted.
    const bool agree =
        reference.verdict == shadow.verdict &&
        reference.stats.states_explored == shadow.stats.states_explored &&
        reference.stats.transitions == shadow.stats.transitions &&
        reference.stats.max_depth == shadow.stats.max_depth &&
        reference.dead_states == shadow.dead_states &&
        reference.trace.size() == shadow.trace.size();
    merged = reference;  // the single-threaded reference is the primary
    if (!agree) {
      merged.verdict = Verdict::kEngineDivergence;
      merged.trace.clear();  // neither trace deserves trust
    }
  } else if (r_ok != s_ok) {
    // Exactly one engine concluded (the other hit its deadline or budget):
    // the conclusive answer stands — this is the availability half of the
    // redundancy tradeoff.
    reference_primary = r_ok;
    merged = r_ok ? reference : shadow;
  } else {
    // Neither concluded; report the attempt that got further.
    reference_primary =
        reference.stats.states_explored > shadow.stats.states_explored;
    merged = reference_primary ? reference : shadow;
  }
  merged.redundant = true;
  merged.secondary_stats = reference_primary ? shadow.stats : reference.stats;
  return merged;
}

}  // namespace tta::mc
