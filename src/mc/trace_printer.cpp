#include "mc/trace_printer.h"

#include <cstdio>

namespace tta::mc {

namespace {

char node_letter(std::size_t i) { return static_cast<char>('A' + i); }

std::string frame_str(const ttpc::ChannelFrame& f) {
  if (f.kind == ttpc::FrameKind::kNone) return "-";
  if (f.kind == ttpc::FrameKind::kBad) return "noise";
  char buf[48];
  std::snprintf(buf, sizeof buf, "%s(id=%u)", ttpc::to_string(f.kind), f.id);
  return buf;
}

bool fault_active(const TransitionLabel& label) {
  return label.fault0 != guardian::CouplerFault::kNone ||
         label.fault1 != guardian::CouplerFault::kNone;
}

}  // namespace

std::string TracePrinter::narrate(const std::vector<TraceStep>& trace) const {
  const std::size_t n = model_->num_nodes();
  std::string out;
  unsigned item = 0;
  std::size_t quiet = 0;
  char buf[256];

  auto flush_quiet = [&] {
    if (quiet == 0) return;
    std::snprintf(buf, sizeof buf,
                  "%2u) %zu quiet slot(s) pass; listen timeout counters "
                  "decrease.\n",
                  ++item, quiet);
    out += buf;
    quiet = 0;
  };

  std::snprintf(buf, sizeof buf, "%2u) Initially, all nodes are in the %s "
                "state.\n", ++item, "freeze");
  out += buf;

  for (const TraceStep& step : trace) {
    std::string lines;
    // Coupler faults first — they are the story.
    if (step.label.fault0 != guardian::CouplerFault::kNone ||
        step.label.fault1 != guardian::CouplerFault::kNone) {
      int ch = step.label.fault0 != guardian::CouplerFault::kNone ? 0 : 1;
      guardian::CouplerFault f =
          ch == 0 ? step.label.fault0 : step.label.fault1;
      const ttpc::ChannelFrame& carried = ch == 0 ? step.label.ch0
                                                  : step.label.ch1;
      if (f == guardian::CouplerFault::kOutOfSlot) {
        std::snprintf(buf, sizeof buf,
                      "    A faulty star coupler (channel %d) replays the "
                      "buffered %s into this slot.\n",
                      ch, frame_str(carried).c_str());
      } else {
        std::snprintf(buf, sizeof buf,
                      "    Star coupler %d exhibits a %s fault this slot.\n",
                      ch, guardian::to_string(f));
      }
      lines += buf;
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (step.label.sent[i].kind != ttpc::FrameKind::kNone) {
        std::snprintf(buf, sizeof buf, "    Node %c sends a %s.\n",
                      node_letter(i),
                      frame_str(step.label.sent[i]).c_str());
        lines += buf;
      }
      ttpc::StepEvent ev = step.label.events[i];
      if (ev != ttpc::StepEvent::kNone) {
        std::snprintf(buf, sizeof buf, "    Node %c: %s (now %s, slot %u).\n",
                      node_letter(i), ttpc::to_string(ev),
                      ttpc::to_string(step.after.nodes[i].state),
                      step.after.nodes[i].slot);
        lines += buf;
      }
    }
    if (lines.empty() && !fault_active(step.label)) {
      ++quiet;
      continue;
    }
    flush_quiet();
    std::snprintf(buf, sizeof buf, "%2u) ch0=%s ch1=%s\n", ++item,
                  frame_str(step.label.ch0).c_str(),
                  frame_str(step.label.ch1).c_str());
    out += buf;
    out += lines;
  }
  flush_quiet();
  return out;
}

std::string TracePrinter::table(const std::vector<TraceStep>& trace) const {
  const std::size_t n = model_->num_nodes();
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof buf, "%-4s %-18s %-18s", "step", "ch0", "ch1");
  out += buf;
  for (std::size_t i = 0; i < n; ++i) {
    std::snprintf(buf, sizeof buf, " | %c: state slot a/f  ", node_letter(i));
    out += buf;
  }
  out += '\n';
  for (std::size_t t = 0; t < trace.size(); ++t) {
    const TraceStep& step = trace[t];
    std::snprintf(buf, sizeof buf, "%-4zu %-18s %-18s", t + 1,
                  frame_str(step.label.ch0).c_str(),
                  frame_str(step.label.ch1).c_str());
    out += buf;
    for (std::size_t i = 0; i < n; ++i) {
      const ttpc::NodeState& ns = step.after.nodes[i];
      std::snprintf(buf, sizeof buf, " | %-10s %2u %u/%u ",
                    ttpc::to_string(ns.state), ns.slot, ns.agreed, ns.failed);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

}  // namespace tta::mc
