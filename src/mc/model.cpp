#include "mc/model.h"

#include "util/check.h"

namespace tta::mc {

namespace {

// Packed field widths (must cover the value ranges asserted in pack()).
constexpr unsigned kStateBits = 4;
constexpr unsigned kSlotBits = 5;
constexpr unsigned kCounterBits = 4;
constexpr unsigned kTimeoutBits = 6;
constexpr unsigned kKindBits = 3;
constexpr unsigned kOosBits = 3;

}  // namespace

TtpcStarModel::TtpcStarModel(const ModelConfig& config)
    : config_(config),
      controller_(config.protocol),
      coupler_(config.authority) {
  TTA_CHECK(config_.protocol.num_nodes <= kMaxNodes);
  TTA_CHECK(config_.num_couplers >= 1 && config_.num_couplers <= 2);

  // Build the static fault lattice: every (f0, f1) pair with at most one
  // coupler faulty and each fault possible for this authority level. The
  // state-dependent admissibility of out_of_slot is checked at apply time.
  std::vector<guardian::CouplerFault> singles{guardian::CouplerFault::kNone};
  if (config_.allow_silence_fault) {
    singles.push_back(guardian::CouplerFault::kSilence);
  }
  if (config_.allow_bad_frame_fault) {
    singles.push_back(guardian::CouplerFault::kBadFrame);
  }
  if (guardian::can_buffer_frames(config_.authority) &&
      config_.max_out_of_slot_errors > 0) {
    singles.push_back(guardian::CouplerFault::kOutOfSlot);
  }
  for (guardian::CouplerFault f : singles) {
    fault_pairs_.push_back(FaultPair{f, guardian::CouplerFault::kNone});
    // A single-coupler cluster has no channel 1 to fault.
    if (f != guardian::CouplerFault::kNone && config_.num_couplers == 2) {
      fault_pairs_.push_back(FaultPair{guardian::CouplerFault::kNone, f});
    }
  }
  TTA_CHECK(fault_pairs_.size() <= 8);  // 3 bits in the choice code
}

bool TtpcStarModel::replay_allowed(
    const WorldState& s, const guardian::CouplerState& coupler) const {
  if (s.oos_errors_used >= config_.max_out_of_slot_errors) return false;
  switch (coupler.buffered_frame) {
    case ttpc::FrameKind::kNone:
      return false;  // replaying nothing is just silence; prune
    case ttpc::FrameKind::kColdStart:
      return config_.allow_coldstart_duplication;
    case ttpc::FrameKind::kCState:
      return config_.allow_cstate_duplication;
    default:
      return true;
  }
}

std::pair<WorldState, TransitionLabel> TtpcStarModel::apply(
    const WorldState& s, std::uint32_t choice_code) const {
  const std::size_t n = num_nodes();
  const FaultPair& pair = fault_pairs_[choice_code & 0x7];

  WorldState next = s;
  TransitionLabel label;
  label.fault0 = pair.f0;
  label.fault1 = pair.f1;

  // 1. Transmissions: every node drives both channels identically.
  std::vector<ttpc::ChannelFrame> sent;
  sent.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ttpc::ChannelFrame f = controller_.frame_to_send(
        s.nodes[i], static_cast<ttpc::NodeId>(i + 1));
    label.sent[i] = f;
    sent.push_back(f);
  }
  ttpc::ChannelFrame merged = guardian::AbstractCoupler::merge_transmissions(sent);

  // 2. Coupler transfer (updates the frame buffers in `next`). A missing
  // coupler 1 carries permanent silence and keeps no buffer state.
  label.ch0 = coupler_.transfer(merged, pair.f0, next.couplers[0]);
  label.ch1 = config_.num_couplers == 2
                  ? coupler_.transfer(merged, pair.f1, next.couplers[1])
                  : ttpc::ChannelFrame{};
  if (pair.f0 == guardian::CouplerFault::kOutOfSlot ||
      pair.f1 == guardian::CouplerFault::kOutOfSlot) {
    if (next.oos_errors_used < 7) ++next.oos_errors_used;
  }

  // 3. Node transitions under the encoded choices.
  ttpc::ChannelView view{label.ch0, label.ch1};
  for (std::size_t i = 0; i < n; ++i) {
    unsigned choice = (choice_code >> (3 + 2 * i)) & 0x3;
    ttpc::StepOutcome out = controller_.step(
        s.nodes[i], static_cast<ttpc::NodeId>(i + 1), view, choice);
    next.nodes[i] = out.next;
    label.events[i] = out.event;
  }
  return {next, label};
}

std::vector<Successor> TtpcStarModel::successors(const WorldState& s) const {
  const std::size_t n = num_nodes();
  std::vector<Successor> out;

  // Per-node choice counts for the odometer.
  std::array<unsigned, kMaxNodes> counts{};
  for (std::size_t i = 0; i < n; ++i) {
    counts[i] = controller_.num_choices(s.nodes[i]);
  }

  for (std::size_t fp = 0; fp < fault_pairs_.size(); ++fp) {
    const FaultPair& pair = fault_pairs_[fp];
    // State-dependent admissibility of the replay fault.
    if (pair.f0 == guardian::CouplerFault::kOutOfSlot &&
        !replay_allowed(s, s.couplers[0])) {
      continue;
    }
    if (pair.f1 == guardian::CouplerFault::kOutOfSlot &&
        !replay_allowed(s, s.couplers[1])) {
      continue;
    }

    std::array<unsigned, kMaxNodes> odo{};
    while (true) {
      std::uint32_t code = static_cast<std::uint32_t>(fp);
      for (std::size_t i = 0; i < n; ++i) {
        code |= static_cast<std::uint32_t>(odo[i]) << (3 + 2 * i);
      }
      out.push_back(Successor{apply(s, code).first, code});

      // Odometer increment over the per-node choice ranges.
      std::size_t i = 0;
      for (; i < n; ++i) {
        if (++odo[i] < counts[i]) break;
        odo[i] = 0;
      }
      if (i == n) break;
    }
  }
  return out;
}

util::PackedState TtpcStarModel::pack(const WorldState& s) const {
  util::PackedState p;
  util::BitWriter w(p);
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    const ttpc::NodeState& ns = s.nodes[i];
    w.write(static_cast<std::uint64_t>(ns.state), kStateBits);
    w.write(ns.slot, kSlotBits);
    w.write(ns.agreed, kCounterBits);
    w.write(ns.failed, kCounterBits);
    w.write_bool(ns.big_bang);
    w.write(ns.listen_timeout, kTimeoutBits);
    w.write_bool(ns.ever_integrated);
  }
  for (std::size_t c = 0; c < config_.num_couplers; ++c) {
    w.write(static_cast<std::uint64_t>(s.couplers[c].buffered_frame),
            kKindBits);
    w.write(s.couplers[c].buffered_id, kSlotBits);
  }
  w.write(s.oos_errors_used, kOosBits);
  return p;
}

unsigned TtpcStarModel::packed_bits() const {
  // Mirrors pack() exactly: per-node fields, two couplers, the oos budget.
  const unsigned per_node = kStateBits + kSlotBits + kCounterBits +
                            kCounterBits + 1 + kTimeoutBits + 1;
  const unsigned per_coupler = kKindBits + kSlotBits;
  return static_cast<unsigned>(num_nodes()) * per_node +
         config_.num_couplers * per_coupler + kOosBits;
}

WorldState TtpcStarModel::unpack(const util::PackedState& p) const {
  WorldState s;
  util::BitReader r(p);
  for (std::size_t i = 0; i < num_nodes(); ++i) {
    ttpc::NodeState& ns = s.nodes[i];
    ns.state = static_cast<ttpc::CtrlState>(r.read(kStateBits));
    ns.slot = static_cast<ttpc::SlotNumber>(r.read(kSlotBits));
    ns.agreed = static_cast<std::uint8_t>(r.read(kCounterBits));
    ns.failed = static_cast<std::uint8_t>(r.read(kCounterBits));
    ns.big_bang = r.read_bool();
    ns.listen_timeout = static_cast<std::uint8_t>(r.read(kTimeoutBits));
    ns.ever_integrated = r.read_bool();
  }
  for (std::size_t c = 0; c < config_.num_couplers; ++c) {
    s.couplers[c].buffered_frame =
        static_cast<ttpc::FrameKind>(r.read(kKindBits));
    s.couplers[c].buffered_id =
        static_cast<ttpc::SlotNumber>(r.read(kSlotBits));
  }
  s.oos_errors_used = static_cast<std::uint8_t>(r.read(kOosBits));
  return s;
}

}  // namespace tta::mc
