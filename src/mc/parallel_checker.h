// Multi-core explicit-state reachability engine.
//
// Implements the same level-synchronized BFS semantics as the serial
// Checker (mc/checker.h), with every depth level split into contiguous
// frontier chunks expanded concurrently over a util::ThreadPool and the
// visited set held in a shared lock-free table (LTSmin-style). Because a
// level is always completed before a verdict is reported, and because the
// set of states at depth d is a property of the state graph alone, the
// engine reproduces the serial checker's results exactly — same verdicts,
// same states_explored / transitions / max_depth, and counterexamples of
// identical (minimal) length — for any thread count. Only the *content* of
// a counterexample may differ when several distinct violations exist at
// the minimal depth. See docs/CHECKER.md for the argument.
//
// Like the serial engine, the visited table is a storage policy (TableT):
// the flat util::ConcurrentStateTable or the quotienting
// util::CompactStateTable, selected via CheckOptions / svc::JobSpec. The
// table stores one 12-byte detail::BfsNode per state inline next to the
// (full or quotiented) key, so counterexample reconstruction walks slot
// indices instead of hashing packed states. Capacity grows by rebuilding
// at level barriers, where exactly one thread is active; if a level
// overflows the table mid-flight, the partially inserted level is dropped
// during the rebuild and the level is re-expanded (insert-if-absent makes
// the retry idempotent; the re-expansion's hashes are surfaced in
// CheckStats::hash_recomputes).
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "mc/checker.h"
#include "util/concurrent_state_table.h"
#include "util/thread_pool.h"

namespace tta::mc {

template <class Model,
          template <class> class TableT = util::ConcurrentStateTable>
class ParallelChecker {
 public:
  using State = typename Model::State;
  using Violation = std::function<bool(const State&, const State&)>;
  using Goal = std::function<bool(const State&)>;

  /// `num_threads` == 0 picks the hardware concurrency.
  explicit ParallelChecker(const Model& model, unsigned num_threads = 0,
                           std::size_t initial_capacity = 1u << 16)
      : model_(&model),
        pool_(num_threads),
        initial_capacity_(initial_capacity) {}

  unsigned num_threads() const { return pool_.size(); }

  /// Test hook: states of headroom the proactive growth budgets per
  /// frontier state. 0 disables proactive growth so a growing level must
  /// take the mid-level overflow + retry path.
  void set_growth_headroom(std::size_t per_frontier_state) {
    growth_headroom_ = per_frontier_state;
  }

  /// Exhaustive safety check; see Checker::check. `checkpoint` makes the
  /// search resumable across restarts (mc/checkpoint.h); parent slot
  /// indices are converted to packed keys on save and rebuilt on load, so
  /// a serial-written checkpoint even resumes under this engine — and a
  /// flat-table checkpoint under a compact table — and vice versa: the
  /// wavefront is engine- and backend-agnostic.
  CheckResultT<State> check(const Violation& violation,
                            std::uint64_t max_states = 50'000'000,
                            const util::CancelToken* cancel = nullptr,
                            const CheckpointConfig* checkpoint =
                                nullptr) const {
    return run(&violation, nullptr, max_states, nullptr, nullptr, cancel,
               checkpoint);
  }

  /// Shortest witness to a goal state; see Checker::find_state.
  CheckResultT<State> find_state(const Goal& goal,
                                 std::uint64_t max_states = 50'000'000,
                                 const util::CancelToken* cancel = nullptr,
                                 const CheckpointConfig* checkpoint =
                                     nullptr) const {
    return run(nullptr, &goal, max_states, nullptr, nullptr, cancel,
               checkpoint);
  }

  /// AG EF goal; see Checker::check_recoverability. The forward pass runs
  /// on the thread pool; the backward closure is a cheap serial sweep over
  /// the reversed edge list.
  RecoverabilityResultT<State> check_recoverability(
      const Goal& goal, std::uint64_t max_states = 10'000'000,
      const util::CancelToken* cancel = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    RecoverabilityResultT<State> result;

    Table table(initial_capacity_, detail::packed_key_bits(*model_));
    std::vector<Edge> edges;
    ForwardGraph graph{&table, &edges, &goal};
    run(nullptr, nullptr, max_states, &graph, &result.stats, cancel);
    if (!result.stats.exhausted) {
      // Incomplete graph: withhold the verdict explicitly (mirrors the
      // serial engine's budget bail-out).
      result.verdict = Verdict::kInconclusive;
      result.recoverable_everywhere = false;
      result.dead_states = 0;
      result.stats.seconds = seconds_since(t0);
      return result;
    }

    // Backward closure over reversed edges from the goal states, on slot
    // indices (the slot array is sparse; empty slots are simply untouched).
    const std::size_t cap = table.capacity();
    std::vector<std::uint32_t> offsets(cap + 1, 0);
    for (const Edge& e : edges) ++offsets[e.to + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    std::vector<std::uint32_t> reverse(edges.size());
    {
      std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (const Edge& e : edges) reverse[cursor[e.to]++] = e.from;
    }
    std::vector<bool> can_recover(cap, false);
    std::deque<std::uint32_t> back;
    for (std::uint32_t s = 0; s < cap; ++s) {
      if (table.occupied(s) &&
          (table.value_at(s).flags & detail::kBfsGoalFlag)) {
        can_recover[s] = true;
        back.push_back(s);
      }
    }
    while (!back.empty()) {
      std::uint32_t cur = back.front();
      back.pop_front();
      for (std::uint32_t e = offsets[cur]; e < offsets[cur + 1]; ++e) {
        std::uint32_t pred = reverse[e];
        if (!can_recover[pred]) {
          can_recover[pred] = true;
          back.push_back(pred);
        }
      }
    }

    // Verdict + shortest witness into the dead region.
    std::uint32_t witness_slot = Table::kNoSlot;
    std::uint32_t witness_depth = UINT32_MAX;
    for (std::uint32_t s = 0; s < cap; ++s) {
      if (!table.occupied(s) || can_recover[s]) continue;
      ++result.dead_states;
      if (table.value_at(s).depth < witness_depth) {
        witness_depth = table.value_at(s).depth;
        witness_slot = s;
      }
    }
    result.recoverable_everywhere = result.dead_states == 0;
    result.verdict = result.recoverable_everywhere ? Verdict::kHolds
                                                   : Verdict::kViolated;
    if (!result.recoverable_everywhere) {
      result.witness = detail::reconstruct_trace(*model_, table,
                                                 witness_slot);
    }
    result.stats.seconds = seconds_since(t0);
    return result;
  }

 private:
  using NodeInfo = detail::BfsNode;
  using Table = TableT<NodeInfo>;
  using Edge = detail::BfsEdge;

  /// Direct-mapped cache of recently inserted successors, valid within one
  /// level expansion of one chunk (slot indices are stable between level
  /// barriers). An empty entry is marked by kNoSlot, which a successful
  /// insert can never return. Indexed by the caller's memoized raw hash,
  /// so a cache probe never re-hashes the key.
  struct DedupCache {
    static constexpr std::size_t kSize = 1u << 12;

    std::vector<util::PackedState> keys =
        std::vector<util::PackedState>(kSize);
    std::vector<std::uint32_t> slots =
        std::vector<std::uint32_t>(kSize, Table::kNoSlot);

    void reset() {
      std::fill(slots.begin(), slots.end(), Table::kNoSlot);
    }
    std::uint32_t lookup(const util::PackedState& key,
                         std::size_t raw_hash) const {
      const std::size_t h = raw_hash & (kSize - 1);
      return slots[h] != Table::kNoSlot && keys[h] == key ? slots[h]
                                                          : Table::kNoSlot;
    }
    void remember(const util::PackedState& key, std::size_t raw_hash,
                  std::uint32_t slot) {
      const std::size_t h = raw_hash & (kSize - 1);
      keys[h] = key;
      slots[h] = slot;
    }
  };

  /// When run() enumerates the full graph for check_recoverability it also
  /// records every transition edge and tags goal states in the table.
  struct ForwardGraph {
    Table* table;
    std::vector<Edge>* edges;
    const Goal* goal;
  };

  /// First hit within a task's chunk, ordered by (frontier index,
  /// successor index); chunks are contiguous, so the per-task first hit is
  /// the per-task minimum and the cross-task minimum is the level minimum.
  struct Hit {
    std::uint64_t frontier_index = UINT64_MAX;
    std::uint32_t slot = Table::kNoSlot;  ///< violating state / goal state
    std::uint32_t choice = 0;             ///< violating transition's choice
  };

  static double seconds_since(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }

  /// Grows `table` (detail::grow_table rewrites the parent links), then
  /// rewrites the slot references only this engine holds: the current
  /// frontier and (for recoverability) the accumulated edge list.
  /// Single-threaded; called only at level barriers.
  template <class Drop>
  static void grow(Table& table, std::size_t needed,
                   std::vector<std::uint32_t>& level,
                   std::vector<Edge>* edges, Drop&& drop) {
    std::vector<std::uint32_t> remap =
        detail::grow_table(table, needed, std::forward<Drop>(drop));
    for (std::uint32_t& s : level) s = remap[s];
    if (edges) {
      for (Edge& e : *edges) {
        e.from = remap[e.from];
        e.to = remap[e.to];
      }
    }
  }

  CheckResultT<State> run(const Violation* violation, const Goal* goal,
                          std::uint64_t max_states,
                          const ForwardGraph* graph,
                          CheckStats* stats_out = nullptr,
                          const util::CancelToken* cancel = nullptr,
                          const CheckpointConfig* checkpoint = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    CheckResultT<State> result;

    Table local_table(initial_capacity_, detail::packed_key_bits(*model_));
    Table& table = graph ? *graph->table : local_table;
    std::vector<Edge>* edges = graph ? graph->edges : nullptr;
    const Goal* tag_goal = graph ? graph->goal : nullptr;
    // Recoverability's forward pass also accumulates the edge list, which
    // the checkpoint format does not carry — graph mode never checkpoints.
    const CheckpointConfig* ckpt = graph ? nullptr : checkpoint;
    const CheckpointData::Mode ckpt_mode =
        violation ? CheckpointData::Mode::kSafetyCheck
                  : CheckpointData::Mode::kFindState;

    auto finish = [&](Verdict verdict) {
      result.verdict = verdict;
      result.stats.states_explored = table.size();
      detail::fill_table_stats(table, &result.stats);
      result.stats.seconds = seconds_since(t0);
      if (stats_out) *stats_out = result.stats;
    };

    std::vector<std::uint32_t> level;
    std::uint32_t start_depth = 0;
    if (ckpt) {
      detail::restore_wavefront(*ckpt, ckpt_mode, table, &level,
                                &start_depth, &result.stats,
                                growth_headroom_);
    }
    if (!result.stats.resumed) {
      State init = model_->initial();
      NodeInfo root{0, 0, 0, detail::kBfsRootFlag};
      if (tag_goal && (*tag_goal)(init)) root.flags |= detail::kBfsGoalFlag;
      typename Table::Insert ins = table.insert(model_->pack(init), root);
      TTA_CHECK(ins.inserted);
      level.push_back(ins.slot);
      if (goal && (*goal)(init)) {
        finish(Verdict::kViolated);
        return result;  // goal reachable at depth 0, empty witness
      }
    }

    const unsigned tasks = pool_.size();
    // Per-chunk, per-level successor dedup: a direct-mapped cache of the
    // most recent packed successors this chunk inserted during the current
    // level, mapping to their table slots. Many choice combinations of one
    // frontier state collapse to the same next state, so skipping the
    // table's CAS + probe for those repeats cuts shared-table traffic
    // without changing any observable result: a cache hit implies the
    // state is already in the table (inserted == false), and the cached
    // slot keeps recoverability edge recording exact. Slots are stable
    // within a level (the table only rebuilds at level barriers), and the
    // cache is reset whenever a chunk starts a level.
    std::vector<DedupCache> dedup(tasks);
    bool was_cancelled = false;
    // Set when a level overflowed and is being re-expanded; the successful
    // pass re-hashes every successor the dropped pass already hashed, and
    // that cost is surfaced in hash_recomputes when the retry completes.
    bool retried_level = false;
    for (std::uint32_t depth = start_depth;; ++depth) {
      if (table.size() > max_states) {
        result.stats.exhausted = false;
        break;
      }
      if (cancel && cancel->cancelled_now()) {
        was_cancelled = true;
        break;
      }
      TTA_CHECK(depth < UINT16_MAX);  // BfsNode stores depth as u16
      result.stats.max_depth = depth;
      // Proactive growth: leave headroom for a level that discovers up to
      // growth_headroom_ (~4) new states per frontier state, generous for
      // this model family. A level that still outgrows the table aborts
      // and retries below.
      const std::size_t headroom =
          table.size() + growth_headroom_ * level.size();
      if (headroom >= table.max_load()) {
        grow(table, headroom, level, edges, detail::KeepAll{});
      }

      std::vector<std::vector<std::uint32_t>> next(tasks);
      std::vector<std::vector<Edge>> new_edges(tasks);
      std::vector<std::uint64_t> transitions(tasks, 0);
      std::vector<std::uint64_t> dedup_skips(tasks, 0);
      std::vector<Hit> violation_hit(tasks);
      std::vector<Hit> goal_hit(tasks);
      std::atomic<bool> overflow{false};
      std::atomic<bool> cancelled_mid_level{false};

      pool_.parallel_for(
          level.size(),
          [&](unsigned chunk, std::size_t begin, std::size_t end) {
            // Work on chunk-local state; publish into the index-addressed
            // output slots once at the end (avoids false sharing on the
            // hot transition counter).
            std::vector<std::uint32_t> my_next;
            std::vector<Edge> my_edges;
            std::uint64_t my_transitions = 0;
            std::uint64_t my_dedup_skips = 0;
            Hit my_violation, my_goal;
            DedupCache& dd = dedup[chunk];
            dd.reset();
            for (std::size_t i = begin; i < end; ++i) {
              if (overflow.load(std::memory_order_relaxed)) break;
              if (cancel && cancel->cancelled()) {
                cancelled_mid_level.store(true, std::memory_order_relaxed);
                break;
              }
              const std::uint32_t cur_slot = level[i];
              State cur = model_->unpack(table.key_at(cur_slot));
              for (const auto& succ : model_->successors(cur)) {
                ++my_transitions;
                if (violation && my_violation.slot == Table::kNoSlot &&
                    (*violation)(cur, succ.next)) {
                  my_violation = Hit{i, cur_slot, succ.choice_code};
                }
                util::PackedState packed = model_->pack(succ.next);
                // Hash once per successor; the token feeds the dedup
                // cache's index and the table's probe sequence.
                const typename Table::Hashed hashed = table.hash(packed);
                if (std::uint32_t cached = dd.lookup(packed, hashed.raw());
                    cached != Table::kNoSlot) {
                  // Dedup hit: this chunk already inserted `packed` during
                  // this level, so the insert would report inserted ==
                  // false and return the cached slot — skip it entirely.
                  ++my_dedup_skips;
                  if (edges) my_edges.push_back(Edge{cur_slot, cached});
                  continue;
                }
                NodeInfo info{cur_slot, succ.choice_code,
                              static_cast<std::uint16_t>(depth + 1), 0};
                if (tag_goal && (*tag_goal)(succ.next)) {
                  info.flags |= detail::kBfsGoalFlag;
                }
                typename Table::Insert r = table.insert(packed, info, hashed);
                if (r.slot == Table::kNoSlot) {
                  overflow.store(true, std::memory_order_relaxed);
                  break;
                }
                dd.remember(packed, hashed.raw(), r.slot);
                if (edges) my_edges.push_back(Edge{cur_slot, r.slot});
                if (r.inserted) {
                  my_next.push_back(r.slot);
                  if (goal && my_goal.slot == Table::kNoSlot &&
                      (*goal)(succ.next)) {
                    my_goal = Hit{i, r.slot, 0};
                  }
                }
              }
              if (overflow.load(std::memory_order_relaxed)) break;
            }
            next[chunk] = std::move(my_next);
            new_edges[chunk] = std::move(my_edges);
            transitions[chunk] = my_transitions;
            dedup_skips[chunk] = my_dedup_skips;
            violation_hit[chunk] = my_violation;
            goal_hit[chunk] = my_goal;
          });

      if (cancelled_mid_level.load(std::memory_order_relaxed)) {
        // The level is half-expanded: neither a verdict nor a minimal
        // counterexample can be reported. Bail out with partial stats.
        for (unsigned c = 0; c < tasks; ++c) {
          result.stats.transitions += transitions[c];
          result.stats.dedup_skips += dedup_skips[c];
        }
        was_cancelled = true;
        break;
      }

      if (overflow.load(std::memory_order_relaxed)) {
        // The level half-finished: drop its partial discoveries, grow, and
        // re-expand the same level from scratch. Dropped entries all have
        // depth == depth + 1, so no surviving parent link can point at
        // them.
        const std::uint16_t dropped_depth =
            static_cast<std::uint16_t>(depth + 1);
        grow(table, table.size() * 2, level, edges,
             [dropped_depth](const NodeInfo& info) {
               return info.depth == dropped_depth;
             });
        retried_level = true;
        --depth;  // redo this level
        continue;
      }

      for (unsigned c = 0; c < tasks; ++c) {
        result.stats.transitions += transitions[c];
        result.stats.dedup_skips += dedup_skips[c];
      }
      if (retried_level) {
        // Every successor of this level was hashed at least twice: once in
        // the pass that overflowed and again in this completed one.
        for (unsigned c = 0; c < tasks; ++c) {
          result.stats.hash_recomputes += transitions[c];
        }
        retried_level = false;
      }

      if (violation) {
        Hit best;
        for (const Hit& h : violation_hit) {
          if (h.frontier_index < best.frontier_index) best = h;
        }
        if (best.slot != Table::kNoSlot) {
          // Counterexample: path to the violating state plus the violating
          // transition itself. Minimal depth is guaranteed because every
          // earlier level completed without a hit.
          std::vector<TraceStepT<State>> steps =
              detail::reconstruct_trace(*model_, table, best.slot);
          TraceStepT<State> final_step;
          final_step.before = model_->unpack(table.key_at(best.slot));
          auto [nxt, label] = model_->apply(final_step.before, best.choice);
          final_step.label = label;
          final_step.after = nxt;
          steps.push_back(final_step);
          result.trace = std::move(steps);
          finish(Verdict::kViolated);
          return result;
        }
      }
      if (goal) {
        Hit best;
        for (const Hit& h : goal_hit) {
          if (h.frontier_index < best.frontier_index) best = h;
        }
        if (best.slot != Table::kNoSlot) {
          result.trace = detail::reconstruct_trace(*model_, table,
                                                   best.slot);
          finish(Verdict::kViolated);
          return result;
        }
      }

      std::size_t total = 0;
      for (const auto& chunk : next) total += chunk.size();
      if (edges) {
        for (auto& chunk : new_edges) {
          edges->insert(edges->end(), chunk.begin(), chunk.end());
        }
      }
      if (total == 0) break;
      std::vector<std::uint32_t> next_level;
      next_level.reserve(total);
      for (const auto& chunk : next) {
        next_level.insert(next_level.end(), chunk.begin(), chunk.end());
      }
      level = std::move(next_level);
      // Level barrier (single-threaded here): persist the wavefront so an
      // interrupted run resumes instead of re-exploring. Best-effort.
      if (ckpt && (depth + 1) % std::max(1u, ckpt->every_levels) == 0) {
        save_checkpoint(*ckpt,
                        detail::snapshot_wavefront(table, level, depth + 1,
                                                   result.stats, ckpt_mode));
      }
    }

    if (was_cancelled) {
      result.stats.exhausted = false;
      result.stats.cancelled = true;
    }
    finish(result.stats.exhausted ? Verdict::kHolds
                                  : Verdict::kInconclusive);
    return result;
  }

  const Model* model_;
  mutable util::ThreadPool pool_;
  std::size_t initial_capacity_;
  std::size_t growth_headroom_ = 4;
};

}  // namespace tta::mc
