// History-augmented model: tracks *how* each node integrated.
//
// BFS returns the shortest counterexample, which for the full-shifting
// coupler is a node freezing after merely *observing* a replayed frame. The
// paper's narrated trace 1 is a specific deeper violation: the victim
// integrates *on* the replayed cold-start frame and is expelled later. To
// reproduce that exact causal shape we run the same model in product with a
// monitor automaton: one extra bit per node recording "this node's current
// integration was adopted from a coupler-replayed frame". The property
// replay_victim_freezes() then quantifies only over those victims.
//
// This is the standard safety-monitor construction (state space grows by at
// most 2^nodes), built on the unmodified TtpcStarModel semantics.
#pragma once

#include <cstdint>
#include <vector>

#include "mc/checker.h"
#include "mc/model.h"

namespace tta::mc {

struct MonitoredState {
  WorldState base;
  /// Bit i set: node i+1 is integrated and adopted its C-state from a frame
  /// that a coupler replayed out of slot.
  std::uint8_t integrated_on_replay = 0;

  friend bool operator==(const MonitoredState&,
                         const MonitoredState&) = default;
};

struct MonitoredSuccessor {
  MonitoredState next;
  std::uint32_t choice_code = 0;
};

class MonitoredModel {
 public:
  using State = MonitoredState;

  explicit MonitoredModel(const ModelConfig& config) : inner_(config) {}

  const TtpcStarModel& inner() const { return inner_; }
  std::size_t num_nodes() const { return inner_.num_nodes(); }

  State initial() const { return MonitoredState{inner_.initial(), 0}; }

  std::vector<MonitoredSuccessor> successors(const State& s) const {
    std::vector<MonitoredSuccessor> out;
    for (const Successor& succ : inner_.successors(s.base)) {
      out.push_back(MonitoredSuccessor{advance(s, succ.choice_code).first,
                                       succ.choice_code});
    }
    return out;
  }

  std::pair<State, TransitionLabel> apply(const State& s,
                                          std::uint32_t choice_code) const {
    return advance(s, choice_code);
  }

  util::PackedState pack(const State& s) const {
    util::PackedState p = inner_.pack(s.base);
    // The inner encoding never reaches the last word; stash the monitor
    // bits there (verified by the round-trip unit tests).
    p.words[util::kPackedWords - 1] |=
        static_cast<std::uint64_t>(s.integrated_on_replay) << 56;
    return p;
  }

  State unpack(const util::PackedState& p) const {
    util::PackedState base_packed = p;
    base_packed.words[util::kPackedWords - 1] &= ~(0xFFull << 56);
    MonitoredState s;
    s.base = inner_.unpack(base_packed);
    s.integrated_on_replay =
        static_cast<std::uint8_t>(p.words[util::kPackedWords - 1] >> 56);
    return s;
  }

 private:
  std::pair<State, TransitionLabel> advance(const State& s,
                                            std::uint32_t choice_code) const {
    auto [base_next, label] = inner_.apply(s.base, choice_code);
    MonitoredState next;
    next.base = base_next;
    next.integrated_on_replay = s.integrated_on_replay;
    for (std::size_t i = 0; i < num_nodes(); ++i) {
      const std::uint8_t bit = static_cast<std::uint8_t>(1u << i);
      switch (label.events[i]) {
        case ttpc::StepEvent::kIntegratedOnColdStart:
        case ttpc::StepEvent::kIntegratedOnCState: {
          bool via_replay = integration_channel_was_replayed(label, i);
          next.integrated_on_replay = static_cast<std::uint8_t>(
              via_replay ? next.integrated_on_replay | bit
                         : next.integrated_on_replay & ~bit);
          break;
        }
        default:
          // Leaving the integrated world clears the history bit (the freeze
          // transition itself is the property's concern and is evaluated on
          // the *before* state).
          if (!ttpc::is_integrated(base_next.nodes[i].state) &&
              base_next.nodes[i].state != ttpc::CtrlState::kColdStart) {
            next.integrated_on_replay =
                static_cast<std::uint8_t>(next.integrated_on_replay & ~bit);
          }
          break;
      }
    }
    return {next, label};
  }

  /// Mirrors the controller's integration preference (explicit C-state
  /// before cold-start, channel 0 before channel 1) to decide which channel
  /// the node adopted, then checks whether that channel carried a replay.
  static bool integration_channel_was_replayed(const TransitionLabel& label,
                                               std::size_t node_index) {
    ttpc::FrameKind wanted =
        label.events[node_index] == ttpc::StepEvent::kIntegratedOnCState
            ? ttpc::FrameKind::kCState
            : ttpc::FrameKind::kColdStart;
    if (label.ch0.kind == wanted) {
      return label.fault0 == guardian::CouplerFault::kOutOfSlot;
    }
    return label.fault1 == guardian::CouplerFault::kOutOfSlot;
  }

  TtpcStarModel inner_;
};

/// Paper trace 1's exact causal shape: a node whose current integration was
/// adopted from a replayed frame is forced into freeze.
std::function<bool(const MonitoredState&, const MonitoredState&)>
replay_victim_freezes();

/// Converts a monitored trace to base-model steps for TracePrinter.
std::vector<TraceStep> strip_monitor(
    const std::vector<TraceStepT<MonitoredState>>& trace);

}  // namespace tta::mc
