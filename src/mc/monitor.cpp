#include "mc/monitor.h"

namespace tta::mc {

std::function<bool(const MonitoredState&, const MonitoredState&)>
replay_victim_freezes() {
  return [](const MonitoredState& before, const MonitoredState& after) {
    for (std::size_t i = 0; i < kMaxNodes; ++i) {
      bool was_replay_victim = (before.integrated_on_replay >> i) & 1u;
      if (was_replay_victim &&
          ttpc::is_integrated(before.base.nodes[i].state) &&
          after.base.nodes[i].state == ttpc::CtrlState::kFreeze) {
        return true;
      }
    }
    return false;
  };
}

std::vector<TraceStep> strip_monitor(
    const std::vector<TraceStepT<MonitoredState>>& trace) {
  std::vector<TraceStep> out;
  out.reserve(trace.size());
  for (const auto& step : trace) {
    out.push_back(TraceStep{step.before.base, step.label, step.after.base});
  }
  return out;
}

}  // namespace tta::mc
