#include "mc/checker.h"

namespace tta::mc {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kHolds: return "HOLDS";
    case Verdict::kViolated: return "VIOLATED";
    case Verdict::kInconclusive: return "INCONCLUSIVE";
    case Verdict::kEngineDivergence: return "ENGINE_DIVERGENCE";
  }
  return "?";
}

const char* to_string(TableBackend backend) {
  switch (backend) {
    case TableBackend::kFlat: return "flat";
    case TableBackend::kCompact: return "compact";
  }
  return "?";
}

std::function<bool(const WorldState&, const WorldState&)>
no_integrated_node_freezes() {
  return [](const WorldState& before, const WorldState& after) {
    for (std::size_t i = 0; i < kMaxNodes; ++i) {
      if (ttpc::is_integrated(before.nodes[i].state) &&
          after.nodes[i].state == ttpc::CtrlState::kFreeze) {
        return true;
      }
    }
    return false;
  };
}

}  // namespace tta::mc
