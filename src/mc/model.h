// The synchronous formal model of Section 4: nodes + two star couplers,
// one transition per TDMA slot.
//
// This is the C++ rendering of the paper's SMV model. The node transition
// relation is the shared ttpc::Controller (identical to the simulator's);
// the coupler transfer function is the shared guardian::AbstractCoupler.
// What this class adds is the *composition*: enumerating every combination
// of nondeterministic node choices and coupler fault assignments, subject to
// the paper's constraints:
//   * at most one coupler is faulty at a given time (TTP/C fault hypothesis,
//     "couplerA.fault = none | couplerB.fault = none");
//   * the out_of_slot fault exists only for full-shifting couplers;
//   * optional: at most `max_out_of_slot_errors` replays in a run (the paper
//     adds this to get the minimal single-fault trace);
//   * optional: prohibit replaying cold-start frames (the paper adds this to
//     obtain the duplicated C-state trace).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "guardian/authority.h"
#include "guardian/coupler.h"
#include "ttpc/controller.h"
#include "util/bitpack.h"

namespace tta::mc {

/// Upper bound on cluster size supported by the packed encoding.
inline constexpr std::size_t kMaxNodes = 6;

struct ModelConfig {
  ttpc::ProtocolConfig protocol;  ///< defaults: 4 nodes, restricted choices
  guardian::Authority authority = guardian::Authority::kFullShifting;

  /// Star couplers in the composition (1 or 2). The paper's cluster is the
  /// dual-coupler star; the single-coupler point removes channel 1 entirely
  /// (permanent silence, no coupler-1 faults, no coupler-1 state), which
  /// both shrinks the packed state and drops channel redundancy — the
  /// degraded axis the campaign subsystem sweeps.
  unsigned num_couplers = 2;

  /// Budget of out_of_slot replays across a run (paper Section 5.2 limits
  /// this to 1 for the narrated trace). Saturates at 7.
  unsigned max_out_of_slot_errors = 7;

  /// Which buffered frames an out_of_slot fault may replay. Clearing
  /// allow_coldstart_duplication reproduces the paper's second trace.
  bool allow_coldstart_duplication = true;
  bool allow_cstate_duplication = true;

  /// Enable/disable the transient silence / bad-frame fault modes.
  bool allow_silence_fault = true;
  bool allow_bad_frame_fault = true;
};

/// Full system state: every node's protocol variables plus both couplers'
/// frame buffers and the consumed out-of-slot budget.
struct WorldState {
  std::array<ttpc::NodeState, kMaxNodes> nodes{};
  std::array<guardian::CouplerState, 2> couplers{};
  std::uint8_t oos_errors_used = 0;

  friend bool operator==(const WorldState&, const WorldState&) = default;
};

/// Everything needed to narrate one transition of a counterexample.
struct TransitionLabel {
  guardian::CouplerFault fault0 = guardian::CouplerFault::kNone;
  guardian::CouplerFault fault1 = guardian::CouplerFault::kNone;
  ttpc::ChannelFrame ch0;  ///< what channel 0 carried during the slot
  ttpc::ChannelFrame ch1;
  std::array<ttpc::ChannelFrame, kMaxNodes> sent{};
  std::array<ttpc::StepEvent, kMaxNodes> events{};
};

/// One enumerated successor; `choice_code` replays the exact transition.
struct Successor {
  WorldState next;
  std::uint32_t choice_code = 0;
};

class TtpcStarModel {
 public:
  using State = WorldState;

  explicit TtpcStarModel(const ModelConfig& config);

  const ModelConfig& config() const { return config_; }
  std::size_t num_nodes() const { return config_.protocol.num_nodes; }

  /// "Initially, all the nodes are in the freeze state."
  WorldState initial() const { return WorldState{}; }

  /// All successors of `s` under every legal choice combination.
  std::vector<Successor> successors(const WorldState& s) const;

  /// Deterministically replays one transition (used for counterexample
  /// reconstruction). `choice_code` must come from successors().
  std::pair<WorldState, TransitionLabel> apply(const WorldState& s,
                                               std::uint32_t choice_code) const;

  util::PackedState pack(const WorldState& s) const;
  WorldState unpack(const util::PackedState& p) const;

  /// Number of significant low bits pack() writes (every higher bit of the
  /// PackedState is zero). Lets the compact visited-table backend quotient
  /// keys down to the model's true width — 119 bits for the paper's 4-node
  /// cluster instead of the container's 256.
  unsigned packed_bits() const;

 private:
  struct FaultPair {
    guardian::CouplerFault f0 = guardian::CouplerFault::kNone;
    guardian::CouplerFault f1 = guardian::CouplerFault::kNone;
  };

  /// Whether an out_of_slot replay is admissible for `coupler` in state `s`
  /// (budget, authority, buffered-frame content constraints).
  bool replay_allowed(const WorldState& s,
                      const guardian::CouplerState& coupler) const;

  ModelConfig config_;
  ttpc::Controller controller_;
  guardian::AbstractCoupler coupler_;
  std::vector<FaultPair> fault_pairs_;  ///< static part of the fault lattice
};

}  // namespace tta::mc
