#include "mc/swarm_engine.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/rng.h"

namespace tta::mc {

namespace {

using Clock = std::chrono::steady_clock;

bool conclusive(Verdict verdict) {
  return verdict == Verdict::kHolds || verdict == Verdict::kViolated;
}

/// Everything the racers and the sweep share. The race token is the only
/// cancellation surface the workers see; the coordinator forwards the
/// caller's token into it, the first raw win trips it, and a conclusive
/// sweep trips it (losing racers can add nothing to an exhaustive
/// verdict).
struct RaceShared {
  util::CancelToken race;
  std::mutex mu;
  std::condition_variable cv;
  unsigned live = 0;  ///< workers (racers + sweep) still running
  bool winner_found = false;
  unsigned winner = 0;
  /// The raw win: choice codes replaying root -> violation. For a safety
  /// win the last code is the violating transition; for a reachability
  /// win the last code steps into the goal state.
  std::vector<std::uint32_t> winning_choices;
  bool tripped = false;           ///< someone already cancelled the field
  Clock::time_point tripped_at{};

  /// First-trip bookkeeping under mu; request_cancel itself is idempotent.
  void trip(std::unique_lock<std::mutex>& lock) {
    (void)lock;
    if (!tripped) {
      tripped = true;
      tripped_at = Clock::now();
    }
    race.request_cancel();
  }
};

/// One racer's exploration. Even workers run randomized DFS (the stack
/// order plus a Fisher-Yates shuffle of each state's successors), odd
/// workers run shuffled-frontier BFS (level order shuffled at every
/// barrier) — two different ways of decorrelating the search order from
/// the frontier order the exhaustive engines share. Bookkeeping mirrors
/// check_recoverability's forward pass: an index over packed states with
/// parent/choice records, so a win replays as pure choice codes.
void race_worker(const TtpcStarModel& model, const EngineQuery& query,
                 unsigned index, std::uint64_t worker_seed, RaceShared* shared,
                 std::uint64_t* states_out) {
  util::Rng rng(worker_seed);
  const bool depth_first = (index % 2) == 0;

  struct Node {
    std::uint32_t parent = 0;
    std::uint32_t choice = 0;
  };
  std::unordered_map<util::PackedState, std::uint32_t> seen;
  std::vector<util::PackedState> keys;
  std::vector<Node> nodes;

  auto finish = [&] { *states_out = keys.size(); };
  auto path_to = [&](std::uint32_t at) {
    std::vector<std::uint32_t> choices;
    for (; at != 0; at = nodes[at].parent) choices.push_back(nodes[at].choice);
    std::reverse(choices.begin(), choices.end());
    return choices;
  };
  auto claim = [&](std::vector<std::uint32_t> choices) {
    std::unique_lock<std::mutex> lock(shared->mu);
    if (!shared->winner_found) {
      shared->winner_found = true;
      shared->winner = index;
      shared->winning_choices = std::move(choices);
    }
    shared->trip(lock);
    lock.unlock();
    shared->cv.notify_all();
  };

  const WorldState init = model.initial();
  const util::PackedState init_packed = model.pack(init);
  seen.emplace(init_packed, 0);
  keys.push_back(init_packed);
  nodes.push_back(Node{});
  if (query.kind == EngineQuery::Kind::kFindState && query.goal(init)) {
    finish();
    claim({});
    return;
  }

  // `open` is a stack for DFS and the current level for BFS.
  std::vector<std::uint32_t> open{0};
  std::vector<std::uint32_t> next_level;
  while (!open.empty()) {
    if (!depth_first) {
      // Shuffled-frontier BFS: randomize this level's expansion order.
      for (std::size_t i = open.size(); i > 1; --i) {
        std::swap(open[i - 1], open[rng.next_below(i)]);
      }
    }
    while (!open.empty()) {
      if (shared->race.cancelled()) {
        finish();
        return;
      }
      if (keys.size() > query.max_states) {
        // Private budget exhausted: this racer proves nothing either way;
        // the sweep (or another racer) still owns the verdict.
        finish();
        return;
      }
      const std::uint32_t cur = open.back();
      open.pop_back();
      const WorldState cur_state = model.unpack(keys[cur]);
      std::vector<Successor> succs = model.successors(cur_state);
      if (depth_first) {
        // Randomized DFS: shuffle the successor order so the plunge path
        // (and the pushes below it) decorrelate from the model's choice
        // enumeration.
        for (std::size_t i = succs.size(); i > 1; --i) {
          std::swap(succs[i - 1], succs[rng.next_below(i)]);
        }
      }
      for (const Successor& succ : succs) {
        if (query.kind == EngineQuery::Kind::kSafetyCheck &&
            query.violation(cur_state, succ.next)) {
          std::vector<std::uint32_t> choices = path_to(cur);
          choices.push_back(succ.choice_code);
          finish();
          claim(std::move(choices));
          return;
        }
        const util::PackedState packed = model.pack(succ.next);
        const auto [it, inserted] =
            seen.emplace(packed, static_cast<std::uint32_t>(keys.size()));
        if (!inserted) continue;
        keys.push_back(packed);
        nodes.push_back(Node{cur, succ.choice_code});
        if (query.kind == EngineQuery::Kind::kFindState &&
            query.goal(succ.next)) {
          finish();
          claim(path_to(it->second));
          return;
        }
        (depth_first ? open : next_level).push_back(it->second);
      }
    }
    if (!depth_first) open = std::move(next_level);
    next_level.clear();
  }
  finish();
}

/// Replays a raw win through the model's own apply() — the proof that the
/// randomized search found a real violating path, independent of its
/// private bookkeeping. The canonical result still comes from the serial
/// checker afterwards; this gate only decides whether the race counts as
/// won (and whether the serial canonicalization is justified to a reader
/// of the swarm_race_won diagnostic).
bool validate_raw_win(const TtpcStarModel& model, const EngineQuery& query,
                      const std::vector<std::uint32_t>& choices) {
  WorldState state = model.initial();
  if (choices.empty()) {
    return query.kind == EngineQuery::Kind::kFindState && query.goal(state);
  }
  for (std::size_t i = 0; i < choices.size(); ++i) {
    auto [next, label] = model.apply(state, choices[i]);
    (void)label;
    if (query.kind == EngineQuery::Kind::kSafetyCheck &&
        i + 1 == choices.size()) {
      return query.violation(state, next);
    }
    state = next;
  }
  return query.kind == EngineQuery::Kind::kFindState && query.goal(state);
}

}  // namespace

std::uint64_t swarm_worker_seed(std::uint64_t seed, unsigned worker) {
  // splitmix64 finalizer over seed + (worker+1) * golden gamma — the same
  // counter-style stream derivation the campaign subsystem uses for
  // per-trial RNGs: pure in (seed, worker), so a swarm win replays from
  // the spec seed alone.
  std::uint64_t z =
      seed + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(worker) + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

SwarmEngine::SwarmEngine(unsigned racers, std::uint64_t seed,
                         unsigned sweep_threads, CheckOptions options)
    : racers_(std::max(1u, racers)),
      seed_(seed),
      sweep_threads_(sweep_threads),
      options_(options) {}

EngineResult SwarmEngine::run(const TtpcStarModel& model,
                              const EngineQuery& query,
                              const util::CancelToken* cancel,
                              const CheckpointConfig* /*checkpoint*/) const {
  // Recoverability is a whole-graph analysis (forward sweep + backward
  // closure): there is no "first violation" to race to, so it goes
  // straight to the standard parallel engine.
  if (query.kind == EngineQuery::Kind::kRecoverability) {
    return ParallelEngine(sweep_threads_, options_)
        .run(model, query, cancel, nullptr);
  }

  const auto t0 = Clock::now();
  RaceShared shared;
  shared.live = racers_ + 1;

  std::vector<std::uint64_t> racer_states(racers_, 0);
  EngineResult sweep_result;
  std::vector<std::thread> threads;
  threads.reserve(racers_ + 1);
  // The exhaustive sweep: the standard ParallelChecker run whose HOLDS
  // (and statistics) are bit-identical to the serial engine. It races on
  // the shared token like everyone else, and trips it when conclusive.
  threads.emplace_back([&] {
    sweep_result = ParallelEngine(sweep_threads_, options_)
                       .run(model, query, &shared.race, nullptr);
    std::unique_lock<std::mutex> lock(shared.mu);
    if (conclusive(sweep_result.verdict)) shared.trip(lock);
    --shared.live;
    lock.unlock();
    shared.cv.notify_all();
  });
  for (unsigned w = 0; w < racers_; ++w) {
    threads.emplace_back([&, w] {
      race_worker(model, query, w, swarm_worker_seed(seed_, w), &shared,
                  &racer_states[w]);
      std::unique_lock<std::mutex> lock(shared.mu);
      --shared.live;
      lock.unlock();
      shared.cv.notify_all();
    });
  }

  // Coordinate: wait for the field to stand down, forwarding the caller's
  // cancellation (explicit or deadline) into the race token as it arrives.
  {
    std::unique_lock<std::mutex> lock(shared.mu);
    while (shared.live > 0) {
      shared.cv.wait_for(lock, std::chrono::milliseconds(2));
      if (cancel && cancel->cancelled_now()) shared.trip(lock);
    }
  }
  for (std::thread& t : threads) t.join();
  const auto joined_at = Clock::now();

  const bool race_won =
      shared.winner_found &&
      validate_raw_win(model, query, shared.winning_choices);

  EngineResult out;
  if (conclusive(sweep_result.verdict)) {
    // The exhaustive sweep got there first (every HOLDS lands here): its
    // answer is already canonical by the parallel engine's bit-identity
    // contract, so report it verbatim.
    out = std::move(sweep_result);
  } else if (race_won && !(cancel && cancel->cancelled_now())) {
    // A racer won: the raw randomized trace replayed clean, so the
    // violation is real — but its path is an artifact of one shuffle.
    // Canonicalize through the serial checker: the reported verdict,
    // statistics, and shortest counterexample are bit-identical to
    // SerialEngine's, independent of which ordering won the race. The
    // caller's token still applies, so a deadline firing here yields an
    // honest kInconclusive.
    out = SerialEngine(options_).run(model, query, cancel, nullptr);
  } else {
    // No winner and no sweep verdict: the caller cancelled, or every
    // budget ran out. The sweep's partial stats are the honest report.
    out = std::move(sweep_result);
  }

  out.stats.swarm_workers = racers_;
  out.stats.swarm_race_won = race_won ? 1 : 0;
  for (unsigned w = 0; w < racers_; ++w) {
    if (race_won && shared.winner_found && shared.winner == w) continue;
    out.stats.swarm_loser_states += racer_states[w];
  }
  if (race_won) {
    out.stats.swarm_race_seconds =
        std::chrono::duration<double>(shared.tripped_at - t0).count();
  }
  if (shared.tripped) {
    out.stats.swarm_cancel_seconds =
        std::chrono::duration<double>(joined_at - shared.tripped_at).count();
  }
  return out;
}

}  // namespace tta::mc
