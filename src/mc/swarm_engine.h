// Swarm counterexample racing: N workers explore the same state space
// under independently seeded randomized successor orderings — even-index
// workers run randomized DFS, odd-index workers run shuffled-frontier
// BFS — racing one concurrent exhaustive ParallelChecker sweep to the
// first property violation. The first finder trips a shared
// util::CancelToken and the losers stand down (LTSmin multi-core style:
// a VIOLATED configuration concludes as soon as ANY ordering stumbles
// onto a violating path, typically long before level-synchronized BFS
// has expanded every shallower level).
//
// Determinism contract (docs/CHECKER.md, "The swarm racing engine"):
// whatever ordering wins, the REPORTED result is canonical. A raw racer
// trace is first replayed choice-code by choice-code through
// Model::apply() to prove it is a real violating path, then discarded in
// favor of a fresh serial mc::Checker run whose verdict, statistics, and
// shortest counterexample are bit-identical to SerialEngine's — so
// mc::cross_check against any other engine stays clean and the trace
// length is a function of the state graph alone, not of race timing.
// HOLDS can only come from the exhaustive sweep (a racer that drains its
// reachable set proves nothing the sweep will not also prove), and is
// reported verbatim — bit-identical by the parallel engine's contract.
//
// Worker seeds derive counter-style from one spec-level seed (pure in
// (seed, worker)), so a swarm win is replayable: the same seed races the
// same orderings. The race outcome only moves the swarm_* diagnostic
// fields of CheckStats, never the canonical ones.
#pragma once

#include <cstdint>

#include "mc/engine.h"

namespace tta::mc {

/// Per-worker seed derivation: splitmix64-style mix of the spec-level
/// seed and the worker index. Pure in (seed, worker) — replaying a swarm
/// win needs only the spec seed. Exposed for tests and docs.
std::uint64_t swarm_worker_seed(std::uint64_t seed, unsigned worker);

class SwarmEngine final : public Engine {
 public:
  /// `racers` randomized workers (>= 1; even indices run randomized DFS,
  /// odd indices shuffled-frontier BFS) race one ParallelChecker sweep on
  /// `sweep_threads` threads. `seed` is the spec-level seed the per-worker
  /// seeds derive from; it is an execution hint (digest-invariant) because
  /// the reported result is canonicalized independent of who won.
  SwarmEngine(unsigned racers, std::uint64_t seed,
              unsigned sweep_threads = 0, CheckOptions options = {});

  const char* name() const override { return "swarm"; }
  /// Racers keep private visited bookkeeping and the sweep may lose the
  /// race mid-level — neither produces a resumable canonical wavefront.
  bool supports_checkpoint() const override { return false; }
  unsigned racers() const { return racers_; }
  std::uint64_t seed() const { return seed_; }
  EngineResult run(const TtpcStarModel& model, const EngineQuery& query,
                   const util::CancelToken* cancel,
                   const CheckpointConfig* checkpoint) const override;

 private:
  unsigned racers_;
  std::uint64_t seed_;
  unsigned sweep_threads_;
  CheckOptions options_;
};

}  // namespace tta::mc
