// Explicit-state breadth-first model checker.
//
// Substitutes for the paper's use of Cadence SMV: the model is finite, so
// exhaustive BFS gives the same verdicts, and because BFS explores in
// distance order the first violation found yields a *shortest* counter-
// example — the property SMV's reported traces had ("SMV produces the
// shortest possible trace").
//
// Checker is generic over the model. A Model must provide:
//   using State = ...;                 (equality-comparable)
//   State initial() const;
//   std::vector<SuccessorT<State>> successors(const State&) const;
//   std::pair<State, TransitionLabel> apply(const State&, uint32_t) const;
//   util::PackedState pack(const State&) const;
//   State unpack(const util::PackedState&) const;
// and may provide packed_bits() — the number of significant low bits of
// its pack() encoding — which the compact table backend uses to quotient
// keys (models without it fall back to the full 256-bit width). Both
// TtpcStarModel (the paper's model) and MonitoredModel (the
// history-augmented variant in mc/monitor.h) satisfy this.
//
// Both engines are additionally generic over the visited-table storage
// policy (TableT): util::ConcurrentStateTable (flat, full keys inline) or
// util::CompactStateTable (Cleary-style quotiented keys, ~0.5x the bytes
// per state). The backends answer membership identically, so verdicts,
// statistics, and traces are bit-identical across them; mc::cross_check
// (engine.h) and the known-answer tests gate that contract.
//
// Two query modes:
//   * check(violation)  — safety over transitions: holds iff no reachable
//     transition violates the property; otherwise a minimal trace.
//   * find_state(goal)  — reachability: shortest path to a state satisfying
//     the goal (used by tests to prove, e.g., that startup can succeed).
//
// Checker is the single-threaded reference engine; mc/parallel_checker.h
// implements the same level-synchronized BFS semantics across a thread pool
// and is cross-validated against this class (docs/CHECKER.md).
#pragma once

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mc/checkpoint.h"
#include "mc/model.h"
#include "util/cancel_token.h"
#include "util/check.h"
#include "util/concurrent_state_table.h"
#include "util/state_table_base.h"

namespace tta::mc {

/// The paper's correctness criterion (Section 5.1): as the nodes are modeled
/// not to fail, no single fault may force a node that has integrated
/// (active/passive) into the freeze state.
std::function<bool(const WorldState&, const WorldState&)>
no_integrated_node_freezes();

template <class State>
struct TraceStepT {
  State before;
  TransitionLabel label;
  State after;
};

using TraceStep = TraceStepT<WorldState>;

/// Explicit three-valued outcome of a query. Every engine return path
/// assigns a Verdict explicitly, so a budget or deadline bail-out can
/// never leak a default verdict: it is kInconclusive by construction and
/// only a fully exhausted search upgrades it to kHolds.
enum class Verdict : std::uint8_t {
  kHolds = 0,         ///< exhaustive search, property holds / goal unreachable
  kViolated = 1,      ///< counterexample or goal witness found
  kInconclusive = 2,  ///< state budget, deadline, or cancellation stopped it
  /// Redundant dual-engine execution (svc) ran the serial and parallel
  /// engines on the same query and they disagreed — on the verdict or on
  /// the exploration statistics the engines are documented to reproduce
  /// bit-identically. Always a bug (most likely in the lock-free table or
  /// the level-synchronization argument), never cached, and reported with
  /// both engines' stat blocks so the divergence is debuggable.
  kEngineDivergence = 3,
};

const char* to_string(Verdict verdict);

/// Visited-table storage policy for the BFS engines (docs/CHECKER.md,
/// "Memory model"). Selectable end-to-end: CheckOptions on the engines,
/// "table" on a svc::JobSpec. An execution hint — both backends produce
/// bit-identical verdicts and statistics, so it is excluded from the job
/// digest like the engine choice itself.
enum class TableBackend : std::uint8_t {
  kFlat = 0,     ///< util::ConcurrentStateTable — full 256-bit keys inline
  kCompact = 1,  ///< util::CompactStateTable — quotiented keys, ~0.5x bytes
};

const char* to_string(TableBackend backend);

/// Engine-construction knobs that do not change any verdict.
struct CheckOptions {
  TableBackend table = TableBackend::kFlat;
};

struct CheckStats {
  std::uint64_t states_explored = 0;   ///< distinct states expanded
  std::uint64_t transitions = 0;       ///< successor edges generated
  std::uint64_t max_depth = 0;         ///< BFS depth reached
  std::uint64_t dedup_skips = 0;       ///< parallel engine: per-level
                                       ///< successor dedup cache hits
  /// Times a state's hash/mix was computed again for a state the search
  /// had already hashed once: flat-table rebuild rehashes, checkpoint-
  /// restore lookups, and re-expansion after a mid-level overflow. The
  /// successor fast path memoizes the hash at generation time, so a clean
  /// non-growing run reports 0. Diagnostic — like dedup_skips it may
  /// differ between engines/backends and is outside the bit-identity set.
  std::uint64_t hash_recomputes = 0;
  /// Visited-table footprint and probe behavior at the end of the search
  /// (diagnostic; feeds the bench_mc_perf memory panel).
  std::uint64_t table_bytes = 0;
  std::uint64_t table_capacity = 0;
  std::array<std::uint64_t, 8> probe_hist{};  ///< last bin = distance >= 7
  std::uint64_t probe_max = 0;
  double probe_avg = 0.0;
  double seconds = 0.0;
  // Swarm racing diagnostics (mc::SwarmEngine; zero everywhere else).
  // Like dedup_skips/hash_recomputes they are outside the bit-identity
  // set: the canonical verdict/trace fields above stay equal to the
  // serial engine's, these describe how fast the race got there.
  std::uint64_t swarm_workers = 0;       ///< racers launched
  std::uint64_t swarm_race_won = 0;      ///< 1 if a racer beat the sweep
  std::uint64_t swarm_loser_states = 0;  ///< states explored by losing racers
  double swarm_race_seconds = 0.0;  ///< start -> first validated raw trace
  double swarm_cancel_seconds = 0.0;  ///< race win -> last loser stood down
  bool exhausted = true;  ///< false if the state budget stopped the search
  bool cancelled = false;  ///< true if a CancelToken stopped the search
  bool resumed = false;    ///< search continued from a checkpoint file
};

template <class State>
struct CheckResultT {
  Verdict verdict = Verdict::kInconclusive;  ///< always set explicitly
  std::vector<TraceStepT<State>> trace;  ///< counterexample / witness
  CheckStats stats;

  /// True iff the search concluded that the property holds (for
  /// find_state: the goal is NOT reachable). Computed from the verdict,
  /// so — unlike the removed legacy bool, which stayed default-true on a
  /// bail-out — an inconclusive result is never mistaken for a pass.
  bool holds() const { return verdict == Verdict::kHolds; }
};

using CheckResult = CheckResultT<WorldState>;

/// Result of the AG EF ("always recoverable") analysis: from every
/// reachable state, is a goal state still reachable?
template <class State>
struct RecoverabilityResultT {
  bool recoverable_everywhere = true;
  Verdict verdict = Verdict::kInconclusive;  ///< always set explicitly
  std::uint64_t dead_states = 0;  ///< reachable states with no path to goal
  /// Shortest path into the recoverability-violating region (if any).
  std::vector<TraceStepT<State>> witness;
  CheckStats stats;
};

using RecoverabilityResult = RecoverabilityResultT<WorldState>;

namespace detail {

inline constexpr std::uint8_t kBfsRootFlag = 1;
inline constexpr std::uint8_t kBfsGoalFlag = 2;

/// Inline per-state value both engines store in the visited table: BFS
/// parent as a slot index (rewritten through the remap whenever the table
/// rebuilds), the choice code that replays parent -> state, and the BFS
/// depth. Kept at 12 bytes (u16 depth — this model family's diameters are
/// in the hundreds) because the value rides in every slot of both
/// backends; see the bytes/state budget in docs/CHECKER.md.
struct BfsNode {
  std::uint32_t parent = 0;
  std::uint32_t choice = 0;
  std::uint16_t depth = 0;
  std::uint8_t flags = 0;
};
static_assert(sizeof(BfsNode) == 12, "BfsNode rides in every table slot");

struct BfsEdge {
  std::uint32_t from = 0;
  std::uint32_t to = 0;
};

/// The model's significant packed width, for key quotienting; models that
/// do not declare packed_bits() use all 256 bits (always correct).
template <class Model>
unsigned packed_key_bits(const Model& model) {
  if constexpr (requires { model.packed_bits(); }) {
    return model.packed_bits();
  } else {
    return static_cast<unsigned>(util::kPackedWords) * 64;
  }
}

/// Builds the trace root -> ... -> `last` by walking parent slots, then
/// replaying each stored choice to recover the labels.
template <class Model, class Table>
std::vector<TraceStepT<typename Model::State>> reconstruct_trace(
    const Model& model, const Table& table, std::uint32_t last) {
  std::vector<std::uint32_t> path{last};
  while (!(table.value_at(path.back()).flags & kBfsRootFlag)) {
    path.push_back(table.value_at(path.back()).parent);
  }
  std::vector<TraceStepT<typename Model::State>> steps;
  for (std::size_t i = path.size(); i-- > 1;) {
    TraceStepT<typename Model::State> step;
    step.before = model.unpack(table.key_at(path[i]));
    auto [next, label] =
        model.apply(step.before, table.value_at(path[i - 1]).choice);
    TTA_CHECK(model.pack(next) == table.key_at(path[i - 1]));
    step.label = label;
    step.after = next;
    steps.push_back(step);
  }
  return steps;
}

/// Grows `table` so `needed` entries fit under max_load(), dropping
/// entries selected by `drop`, and rewrites the parent links inside the
/// table. Returns the remap so the caller can rewrite every slot index it
/// holds (frontiers, edge lists, pending hits). Single-threaded; called
/// only at synchronization points.
template <class Table, class Drop>
std::vector<std::uint32_t> grow_table(Table& table, std::size_t needed,
                                      Drop&& drop) {
  std::size_t cap = table.capacity();
  while (cap - cap / 4 <= needed) cap <<= 1;
  std::vector<std::uint32_t> remap =
      table.rebuild(cap, std::forward<Drop>(drop));
  for (std::uint32_t s = 0; s < table.capacity(); ++s) {
    if (!table.occupied(s)) continue;
    BfsNode& info = table.value_at(s);
    if (!(info.flags & kBfsRootFlag)) info.parent = remap[info.parent];
  }
  return remap;
}

struct KeepAll {
  bool operator()(const BfsNode&) const { return false; }
};

/// Stamps the table's end-of-search footprint and probe behavior into the
/// stats block (and folds in the hashes the table recomputed internally).
template <class Table>
void fill_table_stats(const Table& table, CheckStats* stats) {
  stats->table_bytes = table.memory_bytes();
  stats->table_capacity = table.capacity();
  stats->hash_recomputes += table.hash_recomputes();
  const util::TableProbeStats probe = table.probe_stats();
  stats->probe_hist = probe.hist;
  stats->probe_max = probe.max_probe;
  stats->probe_avg = probe.avg_probe;
}

/// Serializes the wavefront for save_checkpoint: the visited set in slot
/// order (content-addressed on restore) with parent slot indices converted
/// to packed keys — slots do not survive a restart — and the frontier in
/// exactly its expansion order, which the bit-identity contract depends
/// on. The format stores full keys, so a checkpoint written under one
/// table backend (or engine) restores under any other.
template <class Table>
CheckpointData snapshot_wavefront(const Table& table,
                                  const std::vector<std::uint32_t>& level,
                                  std::uint32_t next_depth,
                                  const CheckStats& stats,
                                  CheckpointData::Mode mode) {
  CheckpointData data;
  data.mode = mode;
  data.next_depth = next_depth;
  data.transitions = stats.transitions;
  data.dedup_skips = stats.dedup_skips;
  data.hash_recomputes = stats.hash_recomputes + table.hash_recomputes();
  data.visited.reserve(table.size());
  for (std::uint32_t s = 0; s < table.capacity(); ++s) {
    if (!table.occupied(s)) continue;
    const BfsNode& info = table.value_at(s);
    CheckpointEntry e;
    e.key = table.key_at(s);
    e.parent = (info.flags & kBfsRootFlag) ? e.key
                                           : table.key_at(info.parent);
    e.choice = info.choice;
    e.depth = info.depth;
    e.flags = (info.flags & kBfsRootFlag) ? CheckpointEntry::kRootFlag : 0;
    data.visited.push_back(e);
  }
  data.frontier.reserve(level.size());
  for (std::uint32_t s : level) data.frontier.push_back(table.key_at(s));
  return data;
}

/// Loads a checkpoint into `table` + `level`. Restore happens in two
/// passes: inserts assign fresh slots (remembered in insertion order, so
/// no per-entry re-hash), then parent keys are resolved back into slot
/// indices. The parent/frontier find()s are genuine hash recomputes and
/// are counted as such. Returns false softly when there is nothing to
/// resume.
template <class Table>
bool restore_wavefront(const CheckpointConfig& ckpt,
                       CheckpointData::Mode mode, Table& table,
                       std::vector<std::uint32_t>* level,
                       std::uint32_t* start_depth, CheckStats* stats,
                       std::size_t frontier_headroom) {
  CheckpointData data;
  if (!load_checkpoint(ckpt, &data, mode)) return false;
  const std::size_t needed =
      data.visited.size() + frontier_headroom * data.frontier.size();
  if (needed >= table.max_load()) {
    std::size_t cap = table.capacity();
    while (cap - cap / 4 <= needed) cap <<= 1;
    table.rebuild(cap);
  }
  std::vector<std::uint32_t> slots;
  slots.reserve(data.visited.size());
  for (const CheckpointEntry& e : data.visited) {
    TTA_CHECK(e.depth <= UINT16_MAX);
    BfsNode info{0, e.choice, static_cast<std::uint16_t>(e.depth),
                 (e.flags & CheckpointEntry::kRootFlag)
                     ? kBfsRootFlag
                     : std::uint8_t{0}};
    typename Table::Insert r = table.insert(e.key, info);
    if (r.slot == Table::kNoSlot) {
      // The compact backend can saturate on its displacement bound before
      // the load ceiling; grow and retry (parents are still placeholders,
      // so only the slot list needs rewriting).
      std::vector<std::uint32_t> remap =
          grow_table(table, table.size() * 2, KeepAll{});
      for (std::uint32_t& s : slots) s = remap[s];
      r = table.insert(e.key, info);
    }
    TTA_CHECK(r.inserted);
    slots.push_back(r.slot);
  }
  for (std::size_t i = 0; i < data.visited.size(); ++i) {
    const CheckpointEntry& e = data.visited[i];
    if (e.flags & CheckpointEntry::kRootFlag) continue;
    const std::uint32_t parent = table.find(e.parent);
    ++stats->hash_recomputes;
    TTA_CHECK(parent != Table::kNoSlot);
    table.value_at(slots[i]).parent = parent;
  }
  level->clear();
  level->reserve(data.frontier.size());
  for (const util::PackedState& s : data.frontier) {
    const std::uint32_t slot = table.find(s);
    ++stats->hash_recomputes;
    TTA_CHECK(slot != Table::kNoSlot);
    level->push_back(slot);
  }
  *start_depth = data.next_depth;
  stats->transitions = data.transitions;
  stats->dedup_skips = data.dedup_skips;
  stats->hash_recomputes += data.hash_recomputes;
  stats->resumed = true;
  return true;
}

}  // namespace detail

template <class Model,
          template <class> class TableT = util::ConcurrentStateTable>
class Checker {
 public:
  using State = typename Model::State;
  using Violation = std::function<bool(const State&, const State&)>;
  using Goal = std::function<bool(const State&)>;

  explicit Checker(const Model& model,
                   std::size_t initial_capacity = 1u << 16)
      : model_(&model), initial_capacity_(initial_capacity) {}

  /// Exhaustive safety check. `max_states` bounds memory; if the bound is
  /// hit the result reports exhausted = false and verdict = kInconclusive.
  /// A non-null `cancel` token is polled once per
  /// expanded state; tripping it ends the search with kInconclusive and
  /// honest partial stats — never a hang, never a fabricated verdict.
  /// A non-null `checkpoint` makes the search resumable: the wavefront is
  /// saved at level barriers and a later invocation with the same config
  /// continues from it to a bit-identical result (mc/checkpoint.h).
  CheckResultT<State> check(const Violation& violation,
                            std::uint64_t max_states = 50'000'000,
                            const util::CancelToken* cancel = nullptr,
                            const CheckpointConfig* checkpoint =
                                nullptr) const {
    return run(&violation, nullptr, max_states, cancel, checkpoint);
  }

  /// Shortest witness to a goal state; holds() == true means unreachable.
  CheckResultT<State> find_state(const Goal& goal,
                                 std::uint64_t max_states = 50'000'000,
                                 const util::CancelToken* cancel = nullptr,
                                 const CheckpointConfig* checkpoint =
                                     nullptr) const {
    return run(nullptr, &goal, max_states, cancel, checkpoint);
  }

  /// AG EF goal — an availability property stronger than the safety check:
  /// from *every* reachable state there must still exist a path to a goal
  /// state. Computed as a forward exploration of the full reachable graph
  /// followed by a backward closure from the goal states; a state outside
  /// the closure is "dead" (the system can no longer recover from it).
  /// (Serial recoverability keys its index on full packed states — the
  /// table backend policy applies to check()/find_state().)
  RecoverabilityResultT<State> check_recoverability(
      const Goal& goal, std::uint64_t max_states = 10'000'000,
      const util::CancelToken* cancel = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    RecoverabilityResultT<State> result;

    // Forward pass: enumerate the reachable graph.
    std::unordered_map<util::PackedState, std::uint32_t> index;
    std::vector<util::PackedState> states;
    std::vector<ParentInfo> parents;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::vector<bool> is_goal;
    std::deque<std::uint32_t> frontier;

    State init = model_->initial();
    util::PackedState init_packed = model_->pack(init);
    index.emplace(init_packed, 0);
    states.push_back(init_packed);
    parents.push_back(ParentInfo{{}, 0, 0, true});
    is_goal.push_back(goal(init));
    frontier.push_back(0);

    while (!frontier.empty()) {
      const bool over_budget = states.size() > max_states;
      if (over_budget || (cancel && cancel->cancelled())) {
        // Budget exceeded or cancelled: the graph is incomplete, so any
        // verdict would be unsound. Report the partial exploration honestly
        // — timing and depth included — and withhold the verdict explicitly
        // instead of leaking the default-true initial value.
        result.stats.exhausted = false;
        result.stats.cancelled = !over_budget;
        result.stats.states_explored = states.size();
        result.stats.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        result.verdict = Verdict::kInconclusive;
        result.recoverable_everywhere = false;
        result.dead_states = 0;
        return result;
      }
      std::uint32_t cur_idx = frontier.front();
      frontier.pop_front();
      State cur = model_->unpack(states[cur_idx]);
      const std::uint32_t depth = parents[cur_idx].depth;
      result.stats.max_depth =
          std::max<std::uint64_t>(result.stats.max_depth, depth);

      for (const auto& succ : model_->successors(cur)) {
        ++result.stats.transitions;
        util::PackedState next_packed = model_->pack(succ.next);
        auto [it, inserted] =
            index.emplace(next_packed,
                          static_cast<std::uint32_t>(states.size()));
        if (inserted) {
          states.push_back(next_packed);
          parents.push_back(
              ParentInfo{states[cur_idx], succ.choice_code, depth + 1,
                         false});
          is_goal.push_back(goal(succ.next));
          frontier.push_back(it->second);
        }
        edges.emplace_back(cur_idx, it->second);
      }
    }

    // Backward closure over reversed edges from the goal states.
    std::vector<std::uint32_t> offsets(states.size() + 1, 0);
    for (const auto& [from, to] : edges) ++offsets[to + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    std::vector<std::uint32_t> reverse(edges.size());
    {
      std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (const auto& [from, to] : edges) reverse[cursor[to]++] = from;
    }
    std::vector<bool> can_recover(states.size(), false);
    std::deque<std::uint32_t> back;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (is_goal[i]) {
        can_recover[i] = true;
        back.push_back(i);
      }
    }
    while (!back.empty()) {
      std::uint32_t cur = back.front();
      back.pop_front();
      for (std::uint32_t e = offsets[cur]; e < offsets[cur + 1]; ++e) {
        std::uint32_t pred = reverse[e];
        if (!can_recover[pred]) {
          can_recover[pred] = true;
          back.push_back(pred);
        }
      }
    }

    // Verdict + shortest witness into the dead region.
    std::uint32_t witness_idx = 0;
    std::uint32_t witness_depth = UINT32_MAX;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (can_recover[i]) continue;
      ++result.dead_states;
      if (parents[i].depth < witness_depth) {
        witness_depth = parents[i].depth;
        witness_idx = i;
      }
    }
    result.recoverable_everywhere = result.dead_states == 0;
    result.verdict = result.recoverable_everywhere ? Verdict::kHolds
                                                   : Verdict::kViolated;
    if (!result.recoverable_everywhere) {
      std::vector<util::PackedState> path{states[witness_idx]};
      util::PackedState cur = states[witness_idx];
      while (true) {
        const ParentInfo& info = parents[index.at(cur)];
        if (info.is_root) break;
        path.push_back(info.parent);
        cur = info.parent;
      }
      for (std::size_t i = path.size(); i-- > 1;) {
        TraceStepT<State> step;
        step.before = model_->unpack(path[i]);
        auto [next, label] = model_->apply(
            step.before, parents[index.at(path[i - 1])].choice_code);
        step.label = label;
        step.after = next;
        result.witness.push_back(step);
      }
    }

    result.stats.states_explored = states.size();
    result.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  }

 private:
  using Table = TableT<detail::BfsNode>;

  struct ParentInfo {
    util::PackedState parent;
    std::uint32_t choice_code = 0;
    std::uint32_t depth = 0;
    bool is_root = false;
  };

  // Level-synchronized BFS: the frontier is expanded one full depth level
  // at a time, and a violation/goal found at level d is reported only after
  // every state of level d has been expanded and all its successors
  // recorded. Within a level the first hit in frontier order wins, which is
  // the same transition the classic pop-one-state BFS would report — but
  // the level-complete accounting makes states_explored, transitions and
  // max_depth functions of the state graph alone, independent of intra-
  // level visit order. ParallelChecker implements the identical semantics
  // with the level split across threads, so the two engines can be
  // cross-validated field-for-field (see docs/CHECKER.md).
  //
  // The visited set lives in a slot table (the TableT policy), like the
  // parallel engine's: the frontier holds slot indices, parents are slot
  // links, and growth remaps them — in place, mid-level, since exactly one
  // thread is active here (the parallel engine instead drops the partial
  // level and retries at the barrier).
  CheckResultT<State> run(const Violation* violation, const Goal* goal,
                          std::uint64_t max_states,
                          const util::CancelToken* cancel,
                          const CheckpointConfig* checkpoint = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    CheckResultT<State> result;
    const CheckpointData::Mode ckpt_mode =
        violation ? CheckpointData::Mode::kSafetyCheck
                  : CheckpointData::Mode::kFindState;

    Table table(initial_capacity_, detail::packed_key_bits(*model_));

    auto finish = [&](Verdict verdict) {
      result.verdict = verdict;
      result.stats.states_explored = table.size();
      detail::fill_table_stats(table, &result.stats);
      result.stats.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };

    std::vector<std::uint32_t> level;
    std::uint32_t start_depth = 0;
    if (checkpoint) {
      detail::restore_wavefront(*checkpoint, ckpt_mode, table, &level,
                                &start_depth, &result.stats,
                                /*frontier_headroom=*/0);
    }
    if (!result.stats.resumed) {
      State init = model_->initial();
      detail::BfsNode root{0, 0, 0, detail::kBfsRootFlag};
      typename Table::Insert ins = table.insert(model_->pack(init), root);
      TTA_CHECK(ins.inserted);
      level.push_back(ins.slot);
      if (goal && (*goal)(init)) {
        finish(Verdict::kViolated);
        return result;  // goal reachable at depth 0, empty witness
      }
    }

    bool was_cancelled = false;
    for (std::uint32_t depth = start_depth;; ++depth) {
      if (table.size() > max_states) {
        result.stats.exhausted = false;
        break;
      }
      if (cancel && cancel->cancelled_now()) {
        was_cancelled = true;
        break;
      }
      TTA_CHECK(depth < UINT16_MAX);  // BfsNode stores depth as u16
      result.stats.max_depth = depth;

      // First violating transition (frontier order) and first discovered
      // goal state in this level, if any — tracked as slots, remapped on
      // growth.
      bool violation_found = false;
      std::uint32_t violation_slot = Table::kNoSlot;
      std::uint32_t violation_choice = 0;
      bool goal_found = false;
      std::uint32_t goal_slot = Table::kNoSlot;

      std::vector<std::uint32_t> next_level;
      for (std::size_t i = 0; i < level.size(); ++i) {
        if (cancel && cancel->cancelled()) {
          was_cancelled = true;
          break;
        }
        std::uint32_t cur_slot = level[i];
        State cur = model_->unpack(table.key_at(cur_slot));
        for (const auto& succ : model_->successors(cur)) {
          ++result.stats.transitions;
          if (violation && !violation_found &&
              (*violation)(cur, succ.next)) {
            violation_found = true;
            violation_slot = cur_slot;
            violation_choice = succ.choice_code;
          }
          util::PackedState next_packed = model_->pack(succ.next);
          const typename Table::Hashed hashed = table.hash(next_packed);
          detail::BfsNode node{cur_slot, succ.choice_code,
                               static_cast<std::uint16_t>(depth + 1), 0};
          typename Table::Insert r = table.insert(next_packed, node, hashed);
          if (r.slot == Table::kNoSlot) {
            // In-place growth: single-threaded, so remap every slot index
            // in flight and retry the same insert with the same memoized
            // hash — no transition is recounted, no level is redone.
            std::vector<std::uint32_t> remap = detail::grow_table(
                table, table.size() * 2, detail::KeepAll{});
            for (std::uint32_t& s : level) s = remap[s];
            for (std::uint32_t& s : next_level) s = remap[s];
            if (violation_found) violation_slot = remap[violation_slot];
            if (goal_found) goal_slot = remap[goal_slot];
            cur_slot = remap[cur_slot];
            node.parent = cur_slot;
            r = table.insert(next_packed, node, hashed);
            TTA_CHECK(r.slot != Table::kNoSlot);
          }
          if (r.inserted) {
            next_level.push_back(r.slot);
            if (goal && !goal_found && (*goal)(succ.next)) {
              goal_found = true;
              goal_slot = r.slot;
            }
          }
        }
      }

      if (was_cancelled) {
        // The level is half-expanded, so neither a verdict nor a minimal
        // counterexample can be reported; bail out with partial stats.
        break;
      }

      if (violation_found) {
        // Counterexample: path to the violating state plus the violating
        // transition itself.
        std::vector<TraceStepT<State>> steps =
            detail::reconstruct_trace(*model_, table, violation_slot);
        TraceStepT<State> final_step;
        final_step.before = model_->unpack(table.key_at(violation_slot));
        auto [next, label] = model_->apply(final_step.before,
                                           violation_choice);
        final_step.label = label;
        final_step.after = next;
        steps.push_back(final_step);
        result.trace = std::move(steps);
        finish(Verdict::kViolated);
        return result;
      }
      if (goal_found) {
        result.trace = detail::reconstruct_trace(*model_, table, goal_slot);
        finish(Verdict::kViolated);
        return result;
      }
      if (next_level.empty()) break;
      level = std::move(next_level);
      // Level barrier: persist the wavefront so a later run — after a
      // crash, a fired deadline, or a budget bail — continues from here
      // instead of re-exploring everything. Best-effort by design.
      if (checkpoint &&
          (depth + 1) % std::max(1u, checkpoint->every_levels) == 0) {
        save_checkpoint(*checkpoint,
                        detail::snapshot_wavefront(table, level, depth + 1,
                                                   result.stats, ckpt_mode));
      }
    }

    if (was_cancelled) {
      result.stats.exhausted = false;
      result.stats.cancelled = true;
    }
    finish(result.stats.exhausted ? Verdict::kHolds
                                  : Verdict::kInconclusive);
    return result;
  }

  const Model* model_;
  std::size_t initial_capacity_;
};

}  // namespace tta::mc
