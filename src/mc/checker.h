// Explicit-state breadth-first model checker.
//
// Substitutes for the paper's use of Cadence SMV: the model is finite, so
// exhaustive BFS gives the same verdicts, and because BFS explores in
// distance order the first violation found yields a *shortest* counter-
// example — the property SMV's reported traces had ("SMV produces the
// shortest possible trace").
//
// Checker is generic over the model. A Model must provide:
//   using State = ...;                 (equality-comparable)
//   State initial() const;
//   std::vector<SuccessorT<State>> successors(const State&) const;
//   std::pair<State, TransitionLabel> apply(const State&, uint32_t) const;
//   util::PackedState pack(const State&) const;
//   State unpack(const util::PackedState&) const;
// Both TtpcStarModel (the paper's model) and MonitoredModel (the
// history-augmented variant in mc/monitor.h) satisfy this.
//
// Two query modes:
//   * check(violation)  — safety over transitions: holds iff no reachable
//     transition violates the property; otherwise a minimal trace.
//   * find_state(goal)  — reachability: shortest path to a state satisfying
//     the goal (used by tests to prove, e.g., that startup can succeed).
//
// Checker is the single-threaded reference engine; mc/parallel_checker.h
// implements the same level-synchronized BFS semantics across a thread pool
// and is cross-validated against this class (docs/CHECKER.md).
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "mc/checkpoint.h"
#include "mc/model.h"
#include "util/cancel_token.h"
#include "util/check.h"

namespace tta::mc {

/// The paper's correctness criterion (Section 5.1): as the nodes are modeled
/// not to fail, no single fault may force a node that has integrated
/// (active/passive) into the freeze state.
std::function<bool(const WorldState&, const WorldState&)>
no_integrated_node_freezes();

template <class State>
struct TraceStepT {
  State before;
  TransitionLabel label;
  State after;
};

using TraceStep = TraceStepT<WorldState>;

/// Explicit three-valued outcome of a query. Every engine return path
/// assigns a Verdict explicitly, so a budget or deadline bail-out can
/// never leak a default verdict: it is kInconclusive by construction and
/// only a fully exhausted search upgrades it to kHolds.
enum class Verdict : std::uint8_t {
  kHolds = 0,         ///< exhaustive search, property holds / goal unreachable
  kViolated = 1,      ///< counterexample or goal witness found
  kInconclusive = 2,  ///< state budget, deadline, or cancellation stopped it
  /// Redundant dual-engine execution (svc) ran the serial and parallel
  /// engines on the same query and they disagreed — on the verdict or on
  /// the exploration statistics the engines are documented to reproduce
  /// bit-identically. Always a bug (most likely in the lock-free table or
  /// the level-synchronization argument), never cached, and reported with
  /// both engines' stat blocks so the divergence is debuggable.
  kEngineDivergence = 3,
};

const char* to_string(Verdict verdict);

struct CheckStats {
  std::uint64_t states_explored = 0;   ///< distinct states expanded
  std::uint64_t transitions = 0;       ///< successor edges generated
  std::uint64_t max_depth = 0;         ///< BFS depth reached
  std::uint64_t dedup_skips = 0;       ///< parallel engine: per-level
                                       ///< successor dedup cache hits
  double seconds = 0.0;
  bool exhausted = true;  ///< false if the state budget stopped the search
  bool cancelled = false;  ///< true if a CancelToken stopped the search
  bool resumed = false;    ///< search continued from a checkpoint file
};

template <class State>
struct CheckResultT {
  Verdict verdict = Verdict::kInconclusive;  ///< always set explicitly
  std::vector<TraceStepT<State>> trace;  ///< counterexample / witness
  CheckStats stats;

  /// True iff the search concluded that the property holds (for
  /// find_state: the goal is NOT reachable). Computed from the verdict,
  /// so — unlike the removed legacy bool, which stayed default-true on a
  /// bail-out — an inconclusive result is never mistaken for a pass.
  bool holds() const { return verdict == Verdict::kHolds; }
};

using CheckResult = CheckResultT<WorldState>;

/// Result of the AG EF ("always recoverable") analysis: from every
/// reachable state, is a goal state still reachable?
template <class State>
struct RecoverabilityResultT {
  bool recoverable_everywhere = true;
  Verdict verdict = Verdict::kInconclusive;  ///< always set explicitly
  std::uint64_t dead_states = 0;  ///< reachable states with no path to goal
  /// Shortest path into the recoverability-violating region (if any).
  std::vector<TraceStepT<State>> witness;
  CheckStats stats;
};

using RecoverabilityResult = RecoverabilityResultT<WorldState>;

template <class Model>
class Checker {
 public:
  using State = typename Model::State;
  using Violation = std::function<bool(const State&, const State&)>;
  using Goal = std::function<bool(const State&)>;

  explicit Checker(const Model& model) : model_(&model) {}

  /// Exhaustive safety check. `max_states` bounds memory; if the bound is
  /// hit the result reports exhausted = false and verdict = kInconclusive.
  /// A non-null `cancel` token is polled once per
  /// expanded state; tripping it ends the search with kInconclusive and
  /// honest partial stats — never a hang, never a fabricated verdict.
  /// A non-null `checkpoint` makes the search resumable: the wavefront is
  /// saved at level barriers and a later invocation with the same config
  /// continues from it to a bit-identical result (mc/checkpoint.h).
  CheckResultT<State> check(const Violation& violation,
                            std::uint64_t max_states = 50'000'000,
                            const util::CancelToken* cancel = nullptr,
                            const CheckpointConfig* checkpoint =
                                nullptr) const {
    return run(&violation, nullptr, max_states, cancel, checkpoint);
  }

  /// Shortest witness to a goal state; holds() == true means unreachable.
  CheckResultT<State> find_state(const Goal& goal,
                                 std::uint64_t max_states = 50'000'000,
                                 const util::CancelToken* cancel = nullptr,
                                 const CheckpointConfig* checkpoint =
                                     nullptr) const {
    return run(nullptr, &goal, max_states, cancel, checkpoint);
  }

  /// AG EF goal — an availability property stronger than the safety check:
  /// from *every* reachable state there must still exist a path to a goal
  /// state. Computed as a forward exploration of the full reachable graph
  /// followed by a backward closure from the goal states; a state outside
  /// the closure is "dead" (the system can no longer recover from it).
  RecoverabilityResultT<State> check_recoverability(
      const Goal& goal, std::uint64_t max_states = 10'000'000,
      const util::CancelToken* cancel = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    RecoverabilityResultT<State> result;

    // Forward pass: enumerate the reachable graph.
    std::unordered_map<util::PackedState, std::uint32_t> index;
    std::vector<util::PackedState> states;
    std::vector<ParentInfo> parents;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
    std::vector<bool> is_goal;
    std::deque<std::uint32_t> frontier;

    State init = model_->initial();
    util::PackedState init_packed = model_->pack(init);
    index.emplace(init_packed, 0);
    states.push_back(init_packed);
    parents.push_back(ParentInfo{{}, 0, 0, true});
    is_goal.push_back(goal(init));
    frontier.push_back(0);

    while (!frontier.empty()) {
      const bool over_budget = states.size() > max_states;
      if (over_budget || (cancel && cancel->cancelled())) {
        // Budget exceeded or cancelled: the graph is incomplete, so any
        // verdict would be unsound. Report the partial exploration honestly
        // — timing and depth included — and withhold the verdict explicitly
        // instead of leaking the default-true initial value.
        result.stats.exhausted = false;
        result.stats.cancelled = !over_budget;
        result.stats.states_explored = states.size();
        result.stats.seconds =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        result.verdict = Verdict::kInconclusive;
        result.recoverable_everywhere = false;
        result.dead_states = 0;
        return result;
      }
      std::uint32_t cur_idx = frontier.front();
      frontier.pop_front();
      State cur = model_->unpack(states[cur_idx]);
      const std::uint32_t depth = parents[cur_idx].depth;
      result.stats.max_depth =
          std::max<std::uint64_t>(result.stats.max_depth, depth);

      for (const auto& succ : model_->successors(cur)) {
        ++result.stats.transitions;
        util::PackedState next_packed = model_->pack(succ.next);
        auto [it, inserted] =
            index.emplace(next_packed,
                          static_cast<std::uint32_t>(states.size()));
        if (inserted) {
          states.push_back(next_packed);
          parents.push_back(
              ParentInfo{states[cur_idx], succ.choice_code, depth + 1,
                         false});
          is_goal.push_back(goal(succ.next));
          frontier.push_back(it->second);
        }
        edges.emplace_back(cur_idx, it->second);
      }
    }

    // Backward closure over reversed edges from the goal states.
    std::vector<std::uint32_t> offsets(states.size() + 1, 0);
    for (const auto& [from, to] : edges) ++offsets[to + 1];
    for (std::size_t i = 1; i < offsets.size(); ++i) {
      offsets[i] += offsets[i - 1];
    }
    std::vector<std::uint32_t> reverse(edges.size());
    {
      std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
      for (const auto& [from, to] : edges) reverse[cursor[to]++] = from;
    }
    std::vector<bool> can_recover(states.size(), false);
    std::deque<std::uint32_t> back;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (is_goal[i]) {
        can_recover[i] = true;
        back.push_back(i);
      }
    }
    while (!back.empty()) {
      std::uint32_t cur = back.front();
      back.pop_front();
      for (std::uint32_t e = offsets[cur]; e < offsets[cur + 1]; ++e) {
        std::uint32_t pred = reverse[e];
        if (!can_recover[pred]) {
          can_recover[pred] = true;
          back.push_back(pred);
        }
      }
    }

    // Verdict + shortest witness into the dead region.
    std::uint32_t witness_idx = 0;
    std::uint32_t witness_depth = UINT32_MAX;
    for (std::uint32_t i = 0; i < states.size(); ++i) {
      if (can_recover[i]) continue;
      ++result.dead_states;
      if (parents[i].depth < witness_depth) {
        witness_depth = parents[i].depth;
        witness_idx = i;
      }
    }
    result.recoverable_everywhere = result.dead_states == 0;
    result.verdict = result.recoverable_everywhere ? Verdict::kHolds
                                                   : Verdict::kViolated;
    if (!result.recoverable_everywhere) {
      std::vector<util::PackedState> path{states[witness_idx]};
      util::PackedState cur = states[witness_idx];
      while (true) {
        const ParentInfo& info = parents[index.at(cur)];
        if (info.is_root) break;
        path.push_back(info.parent);
        cur = info.parent;
      }
      for (std::size_t i = path.size(); i-- > 1;) {
        TraceStepT<State> step;
        step.before = model_->unpack(path[i]);
        auto [next, label] = model_->apply(
            step.before, parents[index.at(path[i - 1])].choice_code);
        step.label = label;
        step.after = next;
        result.witness.push_back(step);
      }
    }

    result.stats.states_explored = states.size();
    result.stats.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  }

 private:
  struct ParentInfo {
    util::PackedState parent;
    std::uint32_t choice_code = 0;
    std::uint32_t depth = 0;
    bool is_root = false;
  };

  // Level-synchronized BFS: the frontier is expanded one full depth level
  // at a time, and a violation/goal found at level d is reported only after
  // every state of level d has been expanded and all its successors
  // recorded. Within a level the first hit in frontier order wins, which is
  // the same transition the classic pop-one-state BFS would report — but
  // the level-complete accounting makes states_explored, transitions and
  // max_depth functions of the state graph alone, independent of intra-
  // level visit order. ParallelChecker implements the identical semantics
  // with the level split across threads, so the two engines can be
  // cross-validated field-for-field (see docs/CHECKER.md).
  /// Serializes the wavefront for save_checkpoint: the visited map in any
  /// order (content-addressed on restore) but the frontier in exactly its
  /// expansion order, which the bit-identity contract depends on.
  CheckpointData make_checkpoint(
      const std::unordered_map<util::PackedState, ParentInfo>& visited,
      const std::vector<util::PackedState>& level, std::uint32_t next_depth,
      const CheckStats& stats, CheckpointData::Mode mode) const {
    CheckpointData data;
    data.mode = mode;
    data.next_depth = next_depth;
    data.transitions = stats.transitions;
    data.dedup_skips = stats.dedup_skips;
    data.visited.reserve(visited.size());
    for (const auto& [key, info] : visited) {
      CheckpointEntry e;
      e.key = key;
      e.parent = info.is_root ? key : info.parent;
      e.choice = info.choice_code;
      e.depth = info.depth;
      e.flags = info.is_root ? CheckpointEntry::kRootFlag : 0;
      data.visited.push_back(e);
    }
    data.frontier = level;
    return data;
  }

  CheckResultT<State> run(const Violation* violation, const Goal* goal,
                          std::uint64_t max_states,
                          const util::CancelToken* cancel,
                          const CheckpointConfig* checkpoint = nullptr) const {
    const auto t0 = std::chrono::steady_clock::now();
    CheckResultT<State> result;
    const CheckpointData::Mode ckpt_mode =
        violation ? CheckpointData::Mode::kSafetyCheck
                  : CheckpointData::Mode::kFindState;

    std::unordered_map<util::PackedState, ParentInfo> visited;

    auto finish = [&](Verdict verdict) {
      result.verdict = verdict;
      result.stats.states_explored = visited.size();
      result.stats.seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
    };

    // Builds the trace root -> ... -> `last` by walking parents, then
    // replaying each stored choice to recover the labels.
    auto reconstruct = [&](const util::PackedState& last) {
      std::vector<util::PackedState> path{last};
      util::PackedState cur = last;
      while (true) {
        const ParentInfo& info = visited.at(cur);
        if (info.is_root) break;
        path.push_back(info.parent);
        cur = info.parent;
      }
      std::vector<TraceStepT<State>> steps;
      for (std::size_t i = path.size(); i-- > 1;) {
        const util::PackedState& from = path[i];
        const util::PackedState& to = path[i - 1];
        TraceStepT<State> step;
        step.before = model_->unpack(from);
        auto [next, label] =
            model_->apply(step.before, visited.at(to).choice_code);
        TTA_CHECK(model_->pack(next) == to);
        step.label = label;
        step.after = next;
        steps.push_back(step);
      }
      return steps;
    };

    std::vector<util::PackedState> level;
    std::uint32_t start_depth = 0;
    if (checkpoint) {
      CheckpointData data;
      if (load_checkpoint(*checkpoint, &data, ckpt_mode)) {
        visited.reserve(data.visited.size());
        for (const CheckpointEntry& e : data.visited) {
          visited.emplace(
              e.key,
              ParentInfo{e.parent, e.choice, e.depth,
                         (e.flags & CheckpointEntry::kRootFlag) != 0});
        }
        level = std::move(data.frontier);
        start_depth = data.next_depth;
        result.stats.transitions = data.transitions;
        result.stats.dedup_skips = data.dedup_skips;
        result.stats.resumed = true;
      }
    }
    if (!result.stats.resumed) {
      State init = model_->initial();
      util::PackedState init_packed = model_->pack(init);
      visited.emplace(init_packed, ParentInfo{{}, 0, 0, true});
      level.push_back(init_packed);
      if (goal && (*goal)(init)) {
        finish(Verdict::kViolated);
        return result;  // goal reachable at depth 0, empty witness
      }
    }

    bool was_cancelled = false;
    for (std::uint32_t depth = start_depth;; ++depth) {
      if (visited.size() > max_states) {
        result.stats.exhausted = false;
        break;
      }
      if (cancel && cancel->cancelled_now()) {
        was_cancelled = true;
        break;
      }
      result.stats.max_depth = depth;

      // First violating transition (frontier order) and first discovered
      // goal state in this level, if any.
      bool violation_found = false;
      util::PackedState violation_state{};
      std::uint32_t violation_choice = 0;
      bool goal_found = false;
      util::PackedState goal_state{};

      std::vector<util::PackedState> next_level;
      for (const util::PackedState& cur_packed : level) {
        if (cancel && cancel->cancelled()) {
          was_cancelled = true;
          break;
        }
        State cur = model_->unpack(cur_packed);
        for (const auto& succ : model_->successors(cur)) {
          ++result.stats.transitions;
          if (violation && !violation_found &&
              (*violation)(cur, succ.next)) {
            violation_found = true;
            violation_state = cur_packed;
            violation_choice = succ.choice_code;
          }
          util::PackedState next_packed = model_->pack(succ.next);
          auto [it, inserted] = visited.emplace(
              next_packed,
              ParentInfo{cur_packed, succ.choice_code, depth + 1, false});
          if (inserted) {
            next_level.push_back(next_packed);
            if (goal && !goal_found && (*goal)(succ.next)) {
              goal_found = true;
              goal_state = next_packed;
            }
          }
        }
      }

      if (was_cancelled) {
        // The level is half-expanded, so neither a verdict nor a minimal
        // counterexample can be reported; bail out with partial stats.
        break;
      }

      if (violation_found) {
        // Counterexample: path to the violating state plus the violating
        // transition itself.
        std::vector<TraceStepT<State>> steps = reconstruct(violation_state);
        TraceStepT<State> final_step;
        final_step.before = model_->unpack(violation_state);
        auto [next, label] = model_->apply(final_step.before,
                                           violation_choice);
        final_step.label = label;
        final_step.after = next;
        steps.push_back(final_step);
        result.trace = std::move(steps);
        finish(Verdict::kViolated);
        return result;
      }
      if (goal_found) {
        result.trace = reconstruct(goal_state);
        finish(Verdict::kViolated);
        return result;
      }
      if (next_level.empty()) break;
      level = std::move(next_level);
      // Level barrier: persist the wavefront so a later run — after a
      // crash, a fired deadline, or a budget bail — continues from here
      // instead of re-exploring everything. Best-effort by design.
      if (checkpoint &&
          (depth + 1) % std::max(1u, checkpoint->every_levels) == 0) {
        save_checkpoint(*checkpoint,
                        make_checkpoint(visited, level, depth + 1,
                                        result.stats, ckpt_mode));
      }
    }

    if (was_cancelled) {
      result.stats.exhausted = false;
      result.stats.cancelled = true;
    }
    finish(result.stats.exhausted ? Verdict::kHolds
                                  : Verdict::kInconclusive);
    return result;
  }

  const Model* model_;
};

}  // namespace tta::mc
