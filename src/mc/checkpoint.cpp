#include "mc/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/crc32.h"
#include "util/fail_point.h"

namespace tta::mc {

namespace {

constexpr std::uint64_t kMagic = 0x31544B43'41545427ull;  // "'TATCKT1" tag
// v2 (current) appends hash_recomputes to the stats block; v1 files are
// still accepted on load (the field reads as 0). The entry and frontier
// encodings are unchanged across both versions — the format stores full
// packed keys precisely so a checkpoint restores under either table
// backend (flat or compact) and either engine.
constexpr std::uint32_t kVersion = 2;

/// Serialization cursor over a growing byte buffer (writing) or a fixed
/// one (reading). Little-endian fixed-width fields, like the JobSpec
/// canonical encoding.
struct ByteWriter {
  std::vector<std::uint8_t>* out;

  void u8(std::uint8_t v) { out->push_back(v); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      out->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void packed(const util::PackedState& s) {
    for (std::uint64_t w : s.words) u64(w);
  }
};

struct ByteReader {
  const std::uint8_t* p;
  const std::uint8_t* end;
  bool ok = true;

  bool need(std::size_t n) {
    if (static_cast<std::size_t>(end - p) < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return *p++;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(*p++) << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(*p++) << (8 * i);
    return v;
  }
  util::PackedState packed() {
    util::PackedState s;
    for (std::uint64_t& w : s.words) w = u64();
    return s;
  }
};

}  // namespace

bool save_checkpoint(const CheckpointConfig& config,
                     const CheckpointData& data) {
  if (config.path.empty()) return false;

  std::vector<std::uint8_t> bytes;
  bytes.reserve(64 + data.visited.size() * 73 + data.frontier.size() * 32);
  ByteWriter w{&bytes};
  w.u64(kMagic);
  w.u32(kVersion);
  w.u64(config.binding);
  w.u8(static_cast<std::uint8_t>(data.mode));
  w.u32(data.next_depth);
  w.u64(data.transitions);
  w.u64(data.dedup_skips);
  w.u64(data.hash_recomputes);
  w.u64(data.visited.size());
  w.u64(data.frontier.size());
  for (const CheckpointEntry& e : data.visited) {
    w.packed(e.key);
    w.packed(e.parent);
    w.u32(e.choice);
    w.u32(e.depth);
    w.u8(e.flags);
  }
  for (const util::PackedState& s : data.frontier) w.packed(s);
  const std::uint32_t crc = util::crc32(bytes.data(), bytes.size());
  w.u32(crc);

  // Fail point `ckpt.save.crc`: flip one CRC bit, producing a file that is
  // complete and well-shaped but must fail load_checkpoint's validation —
  // the "bit rot between save and load" case.
  if (util::fail_point("ckpt.save.crc").error()) {
    bytes.back() ^= 0x01;
  }
  // Fail point `ckpt.save.torn` (short-io(n)): only n bytes reach the
  // file, yet the rename below still publishes it — simulating a torn
  // frame that beat the atomic-publish protocol at the filesystem level
  // (e.g. a crash after rename of a partially synced file). Resume must
  // reject it and fall back to a fresh run.
  const util::FailDecision torn = util::fail_point("ckpt.save.torn");
  const std::size_t write_len =
      torn.short_io() ? static_cast<std::size_t>(std::min<std::uint64_t>(
                            torn.arg, bytes.size()))
                      : bytes.size();
  // Fail point `ckpt.save.error`: the filesystem refuses the write
  // outright (nothing published).
  if (util::fail_point("ckpt.save.error").error()) return false;

  const std::string tmp = config.path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  const bool wrote =
      std::fwrite(bytes.data(), 1, write_len, f) == write_len &&
      std::fflush(f) == 0;
  std::fclose(f);
  if (!wrote) {
    std::error_code ec;
    std::filesystem::remove(tmp, ec);
    return false;
  }
  std::error_code ec;
  std::filesystem::rename(tmp, config.path, ec);
  return !ec && write_len == bytes.size();
}

bool load_checkpoint(const CheckpointConfig& config, CheckpointData* data,
                     CheckpointData::Mode expected_mode) {
  if (config.path.empty()) return false;
  // Fail point `ckpt.load.error`: the file is unreadable (I/O error,
  // permissions). Load always fails soft — the engine restarts fresh.
  if (util::fail_point("ckpt.load.error").error()) return false;
  std::FILE* f = std::fopen(config.path.c_str(), "rb");
  if (!f) return false;
  std::vector<std::uint8_t> bytes;
  {
    std::uint8_t buf[1 << 16];
    std::size_t got;
    while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + got);
    }
  }
  std::fclose(f);
  if (bytes.size() < 4) return false;
  const std::size_t body = bytes.size() - 4;
  ByteReader trailer{bytes.data() + body, bytes.data() + bytes.size()};
  if (trailer.u32() != util::crc32(bytes.data(), body)) return false;

  ByteReader r{bytes.data(), bytes.data() + body};
  if (r.u64() != kMagic) return false;
  const std::uint32_t version = r.u32();
  if (version != 1 && version != kVersion) return false;
  if (r.u64() != config.binding) return false;
  const std::uint8_t mode = r.u8();
  if (mode != static_cast<std::uint8_t>(expected_mode)) return false;

  CheckpointData out;
  out.mode = expected_mode;
  out.next_depth = r.u32();
  out.transitions = r.u64();
  out.dedup_skips = r.u64();
  out.hash_recomputes = version >= 2 ? r.u64() : 0;
  const std::uint64_t visited_count = r.u64();
  const std::uint64_t frontier_count = r.u64();
  if (!r.ok) return false;
  // The CRC already vouches for the byte count; these bounds only guard
  // against allocating on a count field from a hostile/foreign file.
  if (visited_count * 73 + frontier_count * 32 >
      static_cast<std::uint64_t>(body)) {
    return false;
  }
  out.visited.resize(visited_count);
  for (CheckpointEntry& e : out.visited) {
    e.key = r.packed();
    e.parent = r.packed();
    e.choice = r.u32();
    e.depth = r.u32();
    e.flags = r.u8();
  }
  out.frontier.resize(frontier_count);
  for (util::PackedState& s : out.frontier) s = r.packed();
  if (!r.ok || r.p != r.end || out.frontier.empty()) return false;
  *data = std::move(out);
  return true;
}

bool peek_checkpoint(const CheckpointConfig& config, CheckpointPeek* out) {
  if (config.path.empty()) return false;
  std::FILE* f = std::fopen(config.path.c_str(), "rb");
  if (!f) return false;
  // The fixed header: magic u64, version u32, binding u64, mode u8,
  // next_depth u32, transitions u64, dedup_skips u64, [v2:
  // hash_recomputes u64,] visited u64, frontier u64 — 57 bytes for v1,
  // 65 for v2, before the variable-length entries.
  std::uint8_t buf[65];
  const std::size_t got = std::fread(buf, 1, sizeof buf, f);
  std::fclose(f);
  if (got < 57) return false;

  ByteReader r{buf, buf + got};
  if (r.u64() != kMagic) return false;
  const std::uint32_t version = r.u32();
  if (version != 1 && version != kVersion) return false;
  if (version >= 2 && got < 65) return false;
  if (r.u64() != config.binding) return false;
  const std::uint8_t mode = r.u8();
  if (mode > static_cast<std::uint8_t>(CheckpointData::Mode::kFindState)) {
    return false;
  }
  CheckpointPeek peek;
  peek.mode = static_cast<CheckpointData::Mode>(mode);
  peek.next_depth = r.u32();
  peek.transitions = r.u64();
  r.u64();  // dedup_skips: not part of the progress surface
  if (version >= 2) r.u64();  // hash_recomputes: likewise diagnostic-only
  peek.visited = r.u64();
  peek.frontier = r.u64();
  if (!r.ok) return false;
  // No CRC covers this header, so a torn or zero-filled write can reach
  // here looking structurally valid. A real wavefront always holds at
  // least the root in the visited set and at least one frontier state
  // (save_checkpoint runs only at level barriers with work left, and
  // load_checkpoint rejects an empty frontier) — a zero count is garbage,
  // and progress must report "unknown" rather than display it.
  if (peek.visited == 0 || peek.frontier == 0) return false;
  *out = peek;
  return true;
}

void remove_checkpoint(const std::string& path) {
  std::error_code ec;
  std::filesystem::remove(path, ec);
  std::filesystem::remove(path + ".tmp", ec);
}

}  // namespace tta::mc
