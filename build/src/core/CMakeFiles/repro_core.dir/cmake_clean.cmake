file(REMOVE_RECURSE
  "CMakeFiles/repro_core.dir/buffer_policy.cpp.o"
  "CMakeFiles/repro_core.dir/buffer_policy.cpp.o.d"
  "CMakeFiles/repro_core.dir/experiments.cpp.o"
  "CMakeFiles/repro_core.dir/experiments.cpp.o.d"
  "CMakeFiles/repro_core.dir/report.cpp.o"
  "CMakeFiles/repro_core.dir/report.cpp.o.d"
  "CMakeFiles/repro_core.dir/tradeoff.cpp.o"
  "CMakeFiles/repro_core.dir/tradeoff.cpp.o.d"
  "librepro_core.a"
  "librepro_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
