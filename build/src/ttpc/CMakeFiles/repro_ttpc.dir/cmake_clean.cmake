file(REMOVE_RECURSE
  "CMakeFiles/repro_ttpc.dir/clocksync.cpp.o"
  "CMakeFiles/repro_ttpc.dir/clocksync.cpp.o.d"
  "CMakeFiles/repro_ttpc.dir/controller.cpp.o"
  "CMakeFiles/repro_ttpc.dir/controller.cpp.o.d"
  "CMakeFiles/repro_ttpc.dir/cstate.cpp.o"
  "CMakeFiles/repro_ttpc.dir/cstate.cpp.o.d"
  "CMakeFiles/repro_ttpc.dir/medl.cpp.o"
  "CMakeFiles/repro_ttpc.dir/medl.cpp.o.d"
  "librepro_ttpc.a"
  "librepro_ttpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_ttpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
