
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ttpc/clocksync.cpp" "src/ttpc/CMakeFiles/repro_ttpc.dir/clocksync.cpp.o" "gcc" "src/ttpc/CMakeFiles/repro_ttpc.dir/clocksync.cpp.o.d"
  "/root/repo/src/ttpc/controller.cpp" "src/ttpc/CMakeFiles/repro_ttpc.dir/controller.cpp.o" "gcc" "src/ttpc/CMakeFiles/repro_ttpc.dir/controller.cpp.o.d"
  "/root/repo/src/ttpc/cstate.cpp" "src/ttpc/CMakeFiles/repro_ttpc.dir/cstate.cpp.o" "gcc" "src/ttpc/CMakeFiles/repro_ttpc.dir/cstate.cpp.o.d"
  "/root/repo/src/ttpc/medl.cpp" "src/ttpc/CMakeFiles/repro_ttpc.dir/medl.cpp.o" "gcc" "src/ttpc/CMakeFiles/repro_ttpc.dir/medl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repro_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
