file(REMOVE_RECURSE
  "librepro_ttpc.a"
)
