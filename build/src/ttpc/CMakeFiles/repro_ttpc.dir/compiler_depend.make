# Empty compiler generated dependencies file for repro_ttpc.
# This may be replaced when dependencies are built.
