
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/repro_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/fault_injector.cpp" "src/sim/CMakeFiles/repro_sim.dir/fault_injector.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/fault_injector.cpp.o.d"
  "/root/repo/src/sim/frame_pipeline.cpp" "src/sim/CMakeFiles/repro_sim.dir/frame_pipeline.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/frame_pipeline.cpp.o.d"
  "/root/repo/src/sim/node.cpp" "src/sim/CMakeFiles/repro_sim.dir/node.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/node.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/repro_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/wire_cluster.cpp" "src/sim/CMakeFiles/repro_sim.dir/wire_cluster.cpp.o" "gcc" "src/sim/CMakeFiles/repro_sim.dir/wire_cluster.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repro_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/ttpc/CMakeFiles/repro_ttpc.dir/DependInfo.cmake"
  "/root/repo/build/src/guardian/CMakeFiles/repro_guardian.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
