file(REMOVE_RECURSE
  "CMakeFiles/repro_sim.dir/cluster.cpp.o"
  "CMakeFiles/repro_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/repro_sim.dir/fault_injector.cpp.o"
  "CMakeFiles/repro_sim.dir/fault_injector.cpp.o.d"
  "CMakeFiles/repro_sim.dir/frame_pipeline.cpp.o"
  "CMakeFiles/repro_sim.dir/frame_pipeline.cpp.o.d"
  "CMakeFiles/repro_sim.dir/node.cpp.o"
  "CMakeFiles/repro_sim.dir/node.cpp.o.d"
  "CMakeFiles/repro_sim.dir/trace.cpp.o"
  "CMakeFiles/repro_sim.dir/trace.cpp.o.d"
  "CMakeFiles/repro_sim.dir/wire_cluster.cpp.o"
  "CMakeFiles/repro_sim.dir/wire_cluster.cpp.o.d"
  "librepro_sim.a"
  "librepro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
