
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mc/checker.cpp" "src/mc/CMakeFiles/repro_mc.dir/checker.cpp.o" "gcc" "src/mc/CMakeFiles/repro_mc.dir/checker.cpp.o.d"
  "/root/repo/src/mc/model.cpp" "src/mc/CMakeFiles/repro_mc.dir/model.cpp.o" "gcc" "src/mc/CMakeFiles/repro_mc.dir/model.cpp.o.d"
  "/root/repo/src/mc/monitor.cpp" "src/mc/CMakeFiles/repro_mc.dir/monitor.cpp.o" "gcc" "src/mc/CMakeFiles/repro_mc.dir/monitor.cpp.o.d"
  "/root/repo/src/mc/trace_printer.cpp" "src/mc/CMakeFiles/repro_mc.dir/trace_printer.cpp.o" "gcc" "src/mc/CMakeFiles/repro_mc.dir/trace_printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ttpc/CMakeFiles/repro_ttpc.dir/DependInfo.cmake"
  "/root/repo/build/src/guardian/CMakeFiles/repro_guardian.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repro_wire.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
