file(REMOVE_RECURSE
  "CMakeFiles/repro_mc.dir/checker.cpp.o"
  "CMakeFiles/repro_mc.dir/checker.cpp.o.d"
  "CMakeFiles/repro_mc.dir/model.cpp.o"
  "CMakeFiles/repro_mc.dir/model.cpp.o.d"
  "CMakeFiles/repro_mc.dir/monitor.cpp.o"
  "CMakeFiles/repro_mc.dir/monitor.cpp.o.d"
  "CMakeFiles/repro_mc.dir/trace_printer.cpp.o"
  "CMakeFiles/repro_mc.dir/trace_printer.cpp.o.d"
  "librepro_mc.a"
  "librepro_mc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_mc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
