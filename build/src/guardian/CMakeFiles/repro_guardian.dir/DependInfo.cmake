
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/guardian/central_guardian.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/central_guardian.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/central_guardian.cpp.o.d"
  "/root/repo/src/guardian/coupler.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/coupler.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/coupler.cpp.o.d"
  "/root/repo/src/guardian/forwarder.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/forwarder.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/forwarder.cpp.o.d"
  "/root/repo/src/guardian/leaky_bucket.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/leaky_bucket.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/leaky_bucket.cpp.o.d"
  "/root/repo/src/guardian/local_guardian.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/local_guardian.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/local_guardian.cpp.o.d"
  "/root/repo/src/guardian/mailbox.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/mailbox.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/mailbox.cpp.o.d"
  "/root/repo/src/guardian/reshaper.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/reshaper.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/reshaper.cpp.o.d"
  "/root/repo/src/guardian/semantic.cpp" "src/guardian/CMakeFiles/repro_guardian.dir/semantic.cpp.o" "gcc" "src/guardian/CMakeFiles/repro_guardian.dir/semantic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repro_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/ttpc/CMakeFiles/repro_ttpc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
