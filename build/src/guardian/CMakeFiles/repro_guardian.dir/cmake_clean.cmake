file(REMOVE_RECURSE
  "CMakeFiles/repro_guardian.dir/central_guardian.cpp.o"
  "CMakeFiles/repro_guardian.dir/central_guardian.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/coupler.cpp.o"
  "CMakeFiles/repro_guardian.dir/coupler.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/forwarder.cpp.o"
  "CMakeFiles/repro_guardian.dir/forwarder.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/leaky_bucket.cpp.o"
  "CMakeFiles/repro_guardian.dir/leaky_bucket.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/local_guardian.cpp.o"
  "CMakeFiles/repro_guardian.dir/local_guardian.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/mailbox.cpp.o"
  "CMakeFiles/repro_guardian.dir/mailbox.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/reshaper.cpp.o"
  "CMakeFiles/repro_guardian.dir/reshaper.cpp.o.d"
  "CMakeFiles/repro_guardian.dir/semantic.cpp.o"
  "CMakeFiles/repro_guardian.dir/semantic.cpp.o.d"
  "librepro_guardian.a"
  "librepro_guardian.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_guardian.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
