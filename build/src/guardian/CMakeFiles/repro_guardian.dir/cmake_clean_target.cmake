file(REMOVE_RECURSE
  "librepro_guardian.a"
)
