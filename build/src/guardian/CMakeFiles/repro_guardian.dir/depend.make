# Empty dependencies file for repro_guardian.
# This may be replaced when dependencies are built.
