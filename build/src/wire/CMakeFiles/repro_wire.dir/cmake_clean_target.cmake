file(REMOVE_RECURSE
  "librepro_wire.a"
)
