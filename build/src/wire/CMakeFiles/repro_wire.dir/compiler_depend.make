# Empty compiler generated dependencies file for repro_wire.
# This may be replaced when dependencies are built.
