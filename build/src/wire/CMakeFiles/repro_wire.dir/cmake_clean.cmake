file(REMOVE_RECURSE
  "CMakeFiles/repro_wire.dir/bitstream.cpp.o"
  "CMakeFiles/repro_wire.dir/bitstream.cpp.o.d"
  "CMakeFiles/repro_wire.dir/crc.cpp.o"
  "CMakeFiles/repro_wire.dir/crc.cpp.o.d"
  "CMakeFiles/repro_wire.dir/frame.cpp.o"
  "CMakeFiles/repro_wire.dir/frame.cpp.o.d"
  "CMakeFiles/repro_wire.dir/line_coding.cpp.o"
  "CMakeFiles/repro_wire.dir/line_coding.cpp.o.d"
  "CMakeFiles/repro_wire.dir/signal.cpp.o"
  "CMakeFiles/repro_wire.dir/signal.cpp.o.d"
  "librepro_wire.a"
  "librepro_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repro_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
