
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wire/bitstream.cpp" "src/wire/CMakeFiles/repro_wire.dir/bitstream.cpp.o" "gcc" "src/wire/CMakeFiles/repro_wire.dir/bitstream.cpp.o.d"
  "/root/repo/src/wire/crc.cpp" "src/wire/CMakeFiles/repro_wire.dir/crc.cpp.o" "gcc" "src/wire/CMakeFiles/repro_wire.dir/crc.cpp.o.d"
  "/root/repo/src/wire/frame.cpp" "src/wire/CMakeFiles/repro_wire.dir/frame.cpp.o" "gcc" "src/wire/CMakeFiles/repro_wire.dir/frame.cpp.o.d"
  "/root/repo/src/wire/line_coding.cpp" "src/wire/CMakeFiles/repro_wire.dir/line_coding.cpp.o" "gcc" "src/wire/CMakeFiles/repro_wire.dir/line_coding.cpp.o.d"
  "/root/repo/src/wire/signal.cpp" "src/wire/CMakeFiles/repro_wire.dir/signal.cpp.o" "gcc" "src/wire/CMakeFiles/repro_wire.dir/signal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
