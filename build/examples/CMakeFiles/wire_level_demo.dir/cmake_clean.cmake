file(REMOVE_RECURSE
  "CMakeFiles/wire_level_demo.dir/wire_level_demo.cpp.o"
  "CMakeFiles/wire_level_demo.dir/wire_level_demo.cpp.o.d"
  "wire_level_demo"
  "wire_level_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_level_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
