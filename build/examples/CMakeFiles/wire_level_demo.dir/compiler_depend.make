# Empty compiler generated dependencies file for wire_level_demo.
# This may be replaced when dependencies are built.
