file(REMOVE_RECURSE
  "CMakeFiles/can_emulation_demo.dir/can_emulation_demo.cpp.o"
  "CMakeFiles/can_emulation_demo.dir/can_emulation_demo.cpp.o.d"
  "can_emulation_demo"
  "can_emulation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/can_emulation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
