# Empty compiler generated dependencies file for can_emulation_demo.
# This may be replaced when dependencies are built.
