file(REMOVE_RECURSE
  "CMakeFiles/clock_sync_demo.dir/clock_sync_demo.cpp.o"
  "CMakeFiles/clock_sync_demo.dir/clock_sync_demo.cpp.o.d"
  "clock_sync_demo"
  "clock_sync_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clock_sync_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
