file(REMOVE_RECURSE
  "CMakeFiles/coupler_fault_demo.dir/coupler_fault_demo.cpp.o"
  "CMakeFiles/coupler_fault_demo.dir/coupler_fault_demo.cpp.o.d"
  "coupler_fault_demo"
  "coupler_fault_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coupler_fault_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
