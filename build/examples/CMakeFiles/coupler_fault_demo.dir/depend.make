# Empty dependencies file for coupler_fault_demo.
# This may be replaced when dependencies are built.
