file(REMOVE_RECURSE
  "CMakeFiles/topology_compare.dir/topology_compare.cpp.o"
  "CMakeFiles/topology_compare.dir/topology_compare.cpp.o.d"
  "topology_compare"
  "topology_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
