# Empty dependencies file for topology_compare.
# This may be replaced when dependencies are built.
