file(REMOVE_RECURSE
  "CMakeFiles/bench_recoverability.dir/bench_recoverability.cpp.o"
  "CMakeFiles/bench_recoverability.dir/bench_recoverability.cpp.o.d"
  "bench_recoverability"
  "bench_recoverability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recoverability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
