# Empty dependencies file for bench_recoverability.
# This may be replaced when dependencies are built.
