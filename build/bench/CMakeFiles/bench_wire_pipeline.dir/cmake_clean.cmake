file(REMOVE_RECURSE
  "CMakeFiles/bench_wire_pipeline.dir/bench_wire_pipeline.cpp.o"
  "CMakeFiles/bench_wire_pipeline.dir/bench_wire_pipeline.cpp.o.d"
  "bench_wire_pipeline"
  "bench_wire_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wire_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
