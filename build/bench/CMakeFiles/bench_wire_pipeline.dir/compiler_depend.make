# Empty compiler generated dependencies file for bench_wire_pipeline.
# This may be replaced when dependencies are built.
