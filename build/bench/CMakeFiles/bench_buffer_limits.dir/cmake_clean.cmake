file(REMOVE_RECURSE
  "CMakeFiles/bench_buffer_limits.dir/bench_buffer_limits.cpp.o"
  "CMakeFiles/bench_buffer_limits.dir/bench_buffer_limits.cpp.o.d"
  "bench_buffer_limits"
  "bench_buffer_limits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buffer_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
