# Empty compiler generated dependencies file for bench_buffer_limits.
# This may be replaced when dependencies are built.
