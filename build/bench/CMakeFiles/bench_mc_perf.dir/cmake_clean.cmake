file(REMOVE_RECURSE
  "CMakeFiles/bench_mc_perf.dir/bench_mc_perf.cpp.o"
  "CMakeFiles/bench_mc_perf.dir/bench_mc_perf.cpp.o.d"
  "bench_mc_perf"
  "bench_mc_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mc_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
