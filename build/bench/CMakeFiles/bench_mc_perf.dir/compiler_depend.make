# Empty compiler generated dependencies file for bench_mc_perf.
# This may be replaced when dependencies are built.
