# Empty dependencies file for bench_clock_sync.
# This may be replaced when dependencies are built.
