file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_cstate.dir/bench_trace_cstate.cpp.o"
  "CMakeFiles/bench_trace_cstate.dir/bench_trace_cstate.cpp.o.d"
  "bench_trace_cstate"
  "bench_trace_cstate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_cstate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
