# Empty dependencies file for bench_trace_cstate.
# This may be replaced when dependencies are built.
