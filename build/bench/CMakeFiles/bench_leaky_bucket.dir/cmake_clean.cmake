file(REMOVE_RECURSE
  "CMakeFiles/bench_leaky_bucket.dir/bench_leaky_bucket.cpp.o"
  "CMakeFiles/bench_leaky_bucket.dir/bench_leaky_bucket.cpp.o.d"
  "bench_leaky_bucket"
  "bench_leaky_bucket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_leaky_bucket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
