# Empty dependencies file for bench_leaky_bucket.
# This may be replaced when dependencies are built.
