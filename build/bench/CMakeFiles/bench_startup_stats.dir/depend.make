# Empty dependencies file for bench_startup_stats.
# This may be replaced when dependencies are built.
