
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_startup_stats.cpp" "bench/CMakeFiles/bench_startup_stats.dir/bench_startup_stats.cpp.o" "gcc" "bench/CMakeFiles/bench_startup_stats.dir/bench_startup_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/repro_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mc/CMakeFiles/repro_mc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/repro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/guardian/CMakeFiles/repro_guardian.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/repro_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ttpc/CMakeFiles/repro_ttpc.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/repro_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/repro_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
