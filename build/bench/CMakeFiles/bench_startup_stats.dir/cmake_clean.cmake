file(REMOVE_RECURSE
  "CMakeFiles/bench_startup_stats.dir/bench_startup_stats.cpp.o"
  "CMakeFiles/bench_startup_stats.dir/bench_startup_stats.cpp.o.d"
  "bench_startup_stats"
  "bench_startup_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_startup_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
