# Empty dependencies file for bench_trace_coldstart.
# This may be replaced when dependencies are built.
