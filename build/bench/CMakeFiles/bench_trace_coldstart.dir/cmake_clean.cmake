file(REMOVE_RECURSE
  "CMakeFiles/bench_trace_coldstart.dir/bench_trace_coldstart.cpp.o"
  "CMakeFiles/bench_trace_coldstart.dir/bench_trace_coldstart.cpp.o.d"
  "bench_trace_coldstart"
  "bench_trace_coldstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trace_coldstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
