file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_clock_ratio.dir/bench_fig3_clock_ratio.cpp.o"
  "CMakeFiles/bench_fig3_clock_ratio.dir/bench_fig3_clock_ratio.cpp.o.d"
  "bench_fig3_clock_ratio"
  "bench_fig3_clock_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_clock_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
