# Empty compiler generated dependencies file for bench_fig3_clock_ratio.
# This may be replaced when dependencies are built.
