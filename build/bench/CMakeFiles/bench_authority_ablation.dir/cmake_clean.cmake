file(REMOVE_RECURSE
  "CMakeFiles/bench_authority_ablation.dir/bench_authority_ablation.cpp.o"
  "CMakeFiles/bench_authority_ablation.dir/bench_authority_ablation.cpp.o.d"
  "bench_authority_ablation"
  "bench_authority_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_authority_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
