file(REMOVE_RECURSE
  "CMakeFiles/bench_topology_faults.dir/bench_topology_faults.cpp.o"
  "CMakeFiles/bench_topology_faults.dir/bench_topology_faults.cpp.o.d"
  "bench_topology_faults"
  "bench_topology_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_topology_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
