# Empty compiler generated dependencies file for bench_topology_faults.
# This may be replaced when dependencies are built.
