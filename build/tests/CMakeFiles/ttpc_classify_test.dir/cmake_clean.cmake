file(REMOVE_RECURSE
  "CMakeFiles/ttpc_classify_test.dir/ttpc_classify_test.cpp.o"
  "CMakeFiles/ttpc_classify_test.dir/ttpc_classify_test.cpp.o.d"
  "ttpc_classify_test"
  "ttpc_classify_test.pdb"
  "ttpc_classify_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttpc_classify_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
