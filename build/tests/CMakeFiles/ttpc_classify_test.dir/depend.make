# Empty dependencies file for ttpc_classify_test.
# This may be replaced when dependencies are built.
