file(REMOVE_RECURSE
  "CMakeFiles/guardian_authority_test.dir/guardian_authority_test.cpp.o"
  "CMakeFiles/guardian_authority_test.dir/guardian_authority_test.cpp.o.d"
  "guardian_authority_test"
  "guardian_authority_test.pdb"
  "guardian_authority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_authority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
