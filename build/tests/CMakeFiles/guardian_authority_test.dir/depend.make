# Empty dependencies file for guardian_authority_test.
# This may be replaced when dependencies are built.
