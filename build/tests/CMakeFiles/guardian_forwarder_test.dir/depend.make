# Empty dependencies file for guardian_forwarder_test.
# This may be replaced when dependencies are built.
