file(REMOVE_RECURSE
  "CMakeFiles/guardian_forwarder_test.dir/guardian_forwarder_test.cpp.o"
  "CMakeFiles/guardian_forwarder_test.dir/guardian_forwarder_test.cpp.o.d"
  "guardian_forwarder_test"
  "guardian_forwarder_test.pdb"
  "guardian_forwarder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_forwarder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
