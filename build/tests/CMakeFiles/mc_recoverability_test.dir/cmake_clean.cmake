file(REMOVE_RECURSE
  "CMakeFiles/mc_recoverability_test.dir/mc_recoverability_test.cpp.o"
  "CMakeFiles/mc_recoverability_test.dir/mc_recoverability_test.cpp.o.d"
  "mc_recoverability_test"
  "mc_recoverability_test.pdb"
  "mc_recoverability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_recoverability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
