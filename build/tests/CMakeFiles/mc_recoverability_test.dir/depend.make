# Empty dependencies file for mc_recoverability_test.
# This may be replaced when dependencies are built.
