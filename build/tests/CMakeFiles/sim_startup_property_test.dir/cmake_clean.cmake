file(REMOVE_RECURSE
  "CMakeFiles/sim_startup_property_test.dir/sim_startup_property_test.cpp.o"
  "CMakeFiles/sim_startup_property_test.dir/sim_startup_property_test.cpp.o.d"
  "sim_startup_property_test"
  "sim_startup_property_test.pdb"
  "sim_startup_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_startup_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
