# Empty compiler generated dependencies file for sim_startup_property_test.
# This may be replaced when dependencies are built.
