file(REMOVE_RECURSE
  "CMakeFiles/mc_checker_test.dir/mc_checker_test.cpp.o"
  "CMakeFiles/mc_checker_test.dir/mc_checker_test.cpp.o.d"
  "mc_checker_test"
  "mc_checker_test.pdb"
  "mc_checker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_checker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
