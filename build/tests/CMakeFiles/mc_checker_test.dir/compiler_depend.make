# Empty compiler generated dependencies file for mc_checker_test.
# This may be replaced when dependencies are built.
