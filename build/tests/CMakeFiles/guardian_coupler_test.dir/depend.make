# Empty dependencies file for guardian_coupler_test.
# This may be replaced when dependencies are built.
