file(REMOVE_RECURSE
  "CMakeFiles/guardian_coupler_test.dir/guardian_coupler_test.cpp.o"
  "CMakeFiles/guardian_coupler_test.dir/guardian_coupler_test.cpp.o.d"
  "guardian_coupler_test"
  "guardian_coupler_test.pdb"
  "guardian_coupler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_coupler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
