file(REMOVE_RECURSE
  "CMakeFiles/sim_frame_pipeline_test.dir/sim_frame_pipeline_test.cpp.o"
  "CMakeFiles/sim_frame_pipeline_test.dir/sim_frame_pipeline_test.cpp.o.d"
  "sim_frame_pipeline_test"
  "sim_frame_pipeline_test.pdb"
  "sim_frame_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_frame_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
