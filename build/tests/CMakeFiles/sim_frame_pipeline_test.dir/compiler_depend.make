# Empty compiler generated dependencies file for sim_frame_pipeline_test.
# This may be replaced when dependencies are built.
