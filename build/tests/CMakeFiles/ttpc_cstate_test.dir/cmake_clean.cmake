file(REMOVE_RECURSE
  "CMakeFiles/ttpc_cstate_test.dir/ttpc_cstate_test.cpp.o"
  "CMakeFiles/ttpc_cstate_test.dir/ttpc_cstate_test.cpp.o.d"
  "ttpc_cstate_test"
  "ttpc_cstate_test.pdb"
  "ttpc_cstate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttpc_cstate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
