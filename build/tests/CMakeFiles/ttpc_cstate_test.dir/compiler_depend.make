# Empty compiler generated dependencies file for ttpc_cstate_test.
# This may be replaced when dependencies are built.
