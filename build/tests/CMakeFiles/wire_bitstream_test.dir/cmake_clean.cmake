file(REMOVE_RECURSE
  "CMakeFiles/wire_bitstream_test.dir/wire_bitstream_test.cpp.o"
  "CMakeFiles/wire_bitstream_test.dir/wire_bitstream_test.cpp.o.d"
  "wire_bitstream_test"
  "wire_bitstream_test.pdb"
  "wire_bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
