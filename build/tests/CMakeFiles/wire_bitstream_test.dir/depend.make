# Empty dependencies file for wire_bitstream_test.
# This may be replaced when dependencies are built.
