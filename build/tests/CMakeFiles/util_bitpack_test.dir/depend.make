# Empty dependencies file for util_bitpack_test.
# This may be replaced when dependencies are built.
