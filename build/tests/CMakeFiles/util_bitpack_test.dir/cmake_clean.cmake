file(REMOVE_RECURSE
  "CMakeFiles/util_bitpack_test.dir/util_bitpack_test.cpp.o"
  "CMakeFiles/util_bitpack_test.dir/util_bitpack_test.cpp.o.d"
  "util_bitpack_test"
  "util_bitpack_test.pdb"
  "util_bitpack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_bitpack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
