file(REMOVE_RECURSE
  "CMakeFiles/ttpc_medl_test.dir/ttpc_medl_test.cpp.o"
  "CMakeFiles/ttpc_medl_test.dir/ttpc_medl_test.cpp.o.d"
  "ttpc_medl_test"
  "ttpc_medl_test.pdb"
  "ttpc_medl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttpc_medl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
