# Empty dependencies file for ttpc_medl_test.
# This may be replaced when dependencies are built.
