# Empty dependencies file for wire_crc_test.
# This may be replaced when dependencies are built.
