file(REMOVE_RECURSE
  "CMakeFiles/wire_crc_test.dir/wire_crc_test.cpp.o"
  "CMakeFiles/wire_crc_test.dir/wire_crc_test.cpp.o.d"
  "wire_crc_test"
  "wire_crc_test.pdb"
  "wire_crc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_crc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
