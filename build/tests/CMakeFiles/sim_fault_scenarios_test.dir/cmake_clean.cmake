file(REMOVE_RECURSE
  "CMakeFiles/sim_fault_scenarios_test.dir/sim_fault_scenarios_test.cpp.o"
  "CMakeFiles/sim_fault_scenarios_test.dir/sim_fault_scenarios_test.cpp.o.d"
  "sim_fault_scenarios_test"
  "sim_fault_scenarios_test.pdb"
  "sim_fault_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_fault_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
