# Empty compiler generated dependencies file for mc_monitor_test.
# This may be replaced when dependencies are built.
