file(REMOVE_RECURSE
  "CMakeFiles/mc_monitor_test.dir/mc_monitor_test.cpp.o"
  "CMakeFiles/mc_monitor_test.dir/mc_monitor_test.cpp.o.d"
  "mc_monitor_test"
  "mc_monitor_test.pdb"
  "mc_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
