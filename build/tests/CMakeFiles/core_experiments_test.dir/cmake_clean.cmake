file(REMOVE_RECURSE
  "CMakeFiles/core_experiments_test.dir/core_experiments_test.cpp.o"
  "CMakeFiles/core_experiments_test.dir/core_experiments_test.cpp.o.d"
  "core_experiments_test"
  "core_experiments_test.pdb"
  "core_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
