# Empty dependencies file for core_experiments_test.
# This may be replaced when dependencies are built.
