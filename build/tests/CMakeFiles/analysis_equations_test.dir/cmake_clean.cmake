file(REMOVE_RECURSE
  "CMakeFiles/analysis_equations_test.dir/analysis_equations_test.cpp.o"
  "CMakeFiles/analysis_equations_test.dir/analysis_equations_test.cpp.o.d"
  "analysis_equations_test"
  "analysis_equations_test.pdb"
  "analysis_equations_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_equations_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
