# Empty compiler generated dependencies file for analysis_equations_test.
# This may be replaced when dependencies are built.
