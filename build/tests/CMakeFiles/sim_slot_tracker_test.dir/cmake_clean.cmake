file(REMOVE_RECURSE
  "CMakeFiles/sim_slot_tracker_test.dir/sim_slot_tracker_test.cpp.o"
  "CMakeFiles/sim_slot_tracker_test.dir/sim_slot_tracker_test.cpp.o.d"
  "sim_slot_tracker_test"
  "sim_slot_tracker_test.pdb"
  "sim_slot_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_slot_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
