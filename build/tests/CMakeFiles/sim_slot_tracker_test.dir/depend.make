# Empty dependencies file for sim_slot_tracker_test.
# This may be replaced when dependencies are built.
