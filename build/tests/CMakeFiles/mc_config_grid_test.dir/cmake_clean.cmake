file(REMOVE_RECURSE
  "CMakeFiles/mc_config_grid_test.dir/mc_config_grid_test.cpp.o"
  "CMakeFiles/mc_config_grid_test.dir/mc_config_grid_test.cpp.o.d"
  "mc_config_grid_test"
  "mc_config_grid_test.pdb"
  "mc_config_grid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_config_grid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
