# Empty dependencies file for mc_config_grid_test.
# This may be replaced when dependencies are built.
