# Empty compiler generated dependencies file for ttpc_clocksync_test.
# This may be replaced when dependencies are built.
