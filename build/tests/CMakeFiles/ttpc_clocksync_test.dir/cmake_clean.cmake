file(REMOVE_RECURSE
  "CMakeFiles/ttpc_clocksync_test.dir/ttpc_clocksync_test.cpp.o"
  "CMakeFiles/ttpc_clocksync_test.dir/ttpc_clocksync_test.cpp.o.d"
  "ttpc_clocksync_test"
  "ttpc_clocksync_test.pdb"
  "ttpc_clocksync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttpc_clocksync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
