# Empty dependencies file for wire_signal_test.
# This may be replaced when dependencies are built.
