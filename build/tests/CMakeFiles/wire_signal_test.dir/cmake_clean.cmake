file(REMOVE_RECURSE
  "CMakeFiles/wire_signal_test.dir/wire_signal_test.cpp.o"
  "CMakeFiles/wire_signal_test.dir/wire_signal_test.cpp.o.d"
  "wire_signal_test"
  "wire_signal_test.pdb"
  "wire_signal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_signal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
