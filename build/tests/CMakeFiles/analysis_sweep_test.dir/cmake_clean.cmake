file(REMOVE_RECURSE
  "CMakeFiles/analysis_sweep_test.dir/analysis_sweep_test.cpp.o"
  "CMakeFiles/analysis_sweep_test.dir/analysis_sweep_test.cpp.o.d"
  "analysis_sweep_test"
  "analysis_sweep_test.pdb"
  "analysis_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
