# Empty dependencies file for mc_model_test.
# This may be replaced when dependencies are built.
