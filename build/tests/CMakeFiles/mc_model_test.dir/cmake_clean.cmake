file(REMOVE_RECURSE
  "CMakeFiles/mc_model_test.dir/mc_model_test.cpp.o"
  "CMakeFiles/mc_model_test.dir/mc_model_test.cpp.o.d"
  "mc_model_test"
  "mc_model_test.pdb"
  "mc_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
