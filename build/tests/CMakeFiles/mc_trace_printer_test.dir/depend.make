# Empty dependencies file for mc_trace_printer_test.
# This may be replaced when dependencies are built.
