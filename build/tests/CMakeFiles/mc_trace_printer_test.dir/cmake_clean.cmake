file(REMOVE_RECURSE
  "CMakeFiles/mc_trace_printer_test.dir/mc_trace_printer_test.cpp.o"
  "CMakeFiles/mc_trace_printer_test.dir/mc_trace_printer_test.cpp.o.d"
  "mc_trace_printer_test"
  "mc_trace_printer_test.pdb"
  "mc_trace_printer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_trace_printer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
