file(REMOVE_RECURSE
  "CMakeFiles/wire_line_coding_test.dir/wire_line_coding_test.cpp.o"
  "CMakeFiles/wire_line_coding_test.dir/wire_line_coding_test.cpp.o.d"
  "wire_line_coding_test"
  "wire_line_coding_test.pdb"
  "wire_line_coding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_line_coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
