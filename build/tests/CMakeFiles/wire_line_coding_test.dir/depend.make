# Empty dependencies file for wire_line_coding_test.
# This may be replaced when dependencies are built.
