file(REMOVE_RECURSE
  "CMakeFiles/sim_membership_test.dir/sim_membership_test.cpp.o"
  "CMakeFiles/sim_membership_test.dir/sim_membership_test.cpp.o.d"
  "sim_membership_test"
  "sim_membership_test.pdb"
  "sim_membership_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_membership_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
