# Empty dependencies file for sim_membership_test.
# This may be replaced when dependencies are built.
