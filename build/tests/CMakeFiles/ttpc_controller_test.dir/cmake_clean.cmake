file(REMOVE_RECURSE
  "CMakeFiles/ttpc_controller_test.dir/ttpc_controller_test.cpp.o"
  "CMakeFiles/ttpc_controller_test.dir/ttpc_controller_test.cpp.o.d"
  "ttpc_controller_test"
  "ttpc_controller_test.pdb"
  "ttpc_controller_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttpc_controller_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
