# Empty compiler generated dependencies file for ttpc_controller_test.
# This may be replaced when dependencies are built.
