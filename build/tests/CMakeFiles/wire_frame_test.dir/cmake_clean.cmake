file(REMOVE_RECURSE
  "CMakeFiles/wire_frame_test.dir/wire_frame_test.cpp.o"
  "CMakeFiles/wire_frame_test.dir/wire_frame_test.cpp.o.d"
  "wire_frame_test"
  "wire_frame_test.pdb"
  "wire_frame_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wire_frame_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
