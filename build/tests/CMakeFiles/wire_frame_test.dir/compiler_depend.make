# Empty compiler generated dependencies file for wire_frame_test.
# This may be replaced when dependencies are built.
