# Empty compiler generated dependencies file for sim_random_campaign_test.
# This may be replaced when dependencies are built.
