file(REMOVE_RECURSE
  "CMakeFiles/core_buffer_policy_test.dir/core_buffer_policy_test.cpp.o"
  "CMakeFiles/core_buffer_policy_test.dir/core_buffer_policy_test.cpp.o.d"
  "core_buffer_policy_test"
  "core_buffer_policy_test.pdb"
  "core_buffer_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_buffer_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
