# Empty compiler generated dependencies file for guardian_mailbox_test.
# This may be replaced when dependencies are built.
