file(REMOVE_RECURSE
  "CMakeFiles/guardian_mailbox_test.dir/guardian_mailbox_test.cpp.o"
  "CMakeFiles/guardian_mailbox_test.dir/guardian_mailbox_test.cpp.o.d"
  "guardian_mailbox_test"
  "guardian_mailbox_test.pdb"
  "guardian_mailbox_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_mailbox_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
