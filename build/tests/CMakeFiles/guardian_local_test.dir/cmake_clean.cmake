file(REMOVE_RECURSE
  "CMakeFiles/guardian_local_test.dir/guardian_local_test.cpp.o"
  "CMakeFiles/guardian_local_test.dir/guardian_local_test.cpp.o.d"
  "guardian_local_test"
  "guardian_local_test.pdb"
  "guardian_local_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_local_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
