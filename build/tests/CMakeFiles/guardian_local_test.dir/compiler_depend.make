# Empty compiler generated dependencies file for guardian_local_test.
# This may be replaced when dependencies are built.
