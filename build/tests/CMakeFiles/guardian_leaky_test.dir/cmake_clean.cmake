file(REMOVE_RECURSE
  "CMakeFiles/guardian_leaky_test.dir/guardian_leaky_test.cpp.o"
  "CMakeFiles/guardian_leaky_test.dir/guardian_leaky_test.cpp.o.d"
  "guardian_leaky_test"
  "guardian_leaky_test.pdb"
  "guardian_leaky_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_leaky_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
