# Empty dependencies file for guardian_leaky_test.
# This may be replaced when dependencies are built.
