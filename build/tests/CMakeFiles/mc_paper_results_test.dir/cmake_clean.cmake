file(REMOVE_RECURSE
  "CMakeFiles/mc_paper_results_test.dir/mc_paper_results_test.cpp.o"
  "CMakeFiles/mc_paper_results_test.dir/mc_paper_results_test.cpp.o.d"
  "mc_paper_results_test"
  "mc_paper_results_test.pdb"
  "mc_paper_results_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mc_paper_results_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
