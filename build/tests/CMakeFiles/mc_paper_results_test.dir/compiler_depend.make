# Empty compiler generated dependencies file for mc_paper_results_test.
# This may be replaced when dependencies are built.
