file(REMOVE_RECURSE
  "CMakeFiles/guardian_central_test.dir/guardian_central_test.cpp.o"
  "CMakeFiles/guardian_central_test.dir/guardian_central_test.cpp.o.d"
  "guardian_central_test"
  "guardian_central_test.pdb"
  "guardian_central_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_central_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
