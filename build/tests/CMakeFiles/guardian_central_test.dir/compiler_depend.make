# Empty compiler generated dependencies file for guardian_central_test.
# This may be replaced when dependencies are built.
