# Empty dependencies file for guardian_semantic_test.
# This may be replaced when dependencies are built.
