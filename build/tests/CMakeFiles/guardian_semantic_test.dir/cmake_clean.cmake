file(REMOVE_RECURSE
  "CMakeFiles/guardian_semantic_test.dir/guardian_semantic_test.cpp.o"
  "CMakeFiles/guardian_semantic_test.dir/guardian_semantic_test.cpp.o.d"
  "guardian_semantic_test"
  "guardian_semantic_test.pdb"
  "guardian_semantic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guardian_semantic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
