# Smoke test for tta_verify_batch --stream: two passes over the E1 grid
# must emit one timestamped JSON line per job per pass, the second pass
# must be served entirely from the result cache, and both passes must
# report the identical digest -> verdict mapping. Run as
#   cmake -DTOOL=<tta_verify_batch> -DJOBS=<e1_grid.jobs> -P stream_smoke.cmake
if(NOT TOOL OR NOT JOBS)
  message(FATAL_ERROR "usage: cmake -DTOOL=... -DJOBS=... -P stream_smoke.cmake")
endif()

execute_process(
  COMMAND ${TOOL} ${JOBS} --stream --passes=2 --workers=2
  OUTPUT_VARIABLE out
  RESULT_VARIABLE code)
if(NOT code EQUAL 0)
  message(FATAL_ERROR "tta_verify_batch --stream exited ${code}")
endif()

# Count the jobs in the grid (non-comment, non-blank lines).
file(STRINGS ${JOBS} job_lines REGEX "^[ \t]*\\{")
list(LENGTH job_lines jobs)
if(jobs EQUAL 0)
  message(FATAL_ERROR "no jobs parsed from ${JOBS}")
endif()

string(REPLACE "\n" ";" lines "${out}")
set(streamed 0)
set(pass1 "")
set(pass2 "")
foreach(line IN LISTS lines)
  if(NOT line MATCHES "^{\"pass\":([12]),.*\"ts_ms\":")
    continue()
  endif()
  set(pass "${CMAKE_MATCH_1}")
  math(EXPR streamed "${streamed} + 1")
  if(NOT line MATCHES "\"digest\":\"([0-9a-f]+)\"")
    message(FATAL_ERROR "streamed line without a digest: ${line}")
  endif()
  set(digest "${CMAKE_MATCH_1}")
  if(NOT line MATCHES "\"verdict\":\"([A-Z_]+)\"")
    message(FATAL_ERROR "streamed line without a verdict: ${line}")
  endif()
  list(APPEND pass${pass} "${digest}=${CMAKE_MATCH_1}")
  # Every pass-2 result must be a cache hit: nothing re-explores.
  if(pass EQUAL 2 AND NOT line MATCHES "\"from_cache\":1")
    message(FATAL_ERROR "pass-2 result not served from the cache: ${line}")
  endif()
endforeach()

math(EXPR expected "2 * ${jobs}")
if(NOT streamed EQUAL expected)
  message(FATAL_ERROR
    "expected ${expected} streamed JSON lines (2 passes x ${jobs} jobs), "
    "saw ${streamed}")
endif()

# The cache must change latency only, never answers: identical digest ->
# verdict multisets across passes.
list(SORT pass1)
list(SORT pass2)
if(NOT pass1 STREQUAL pass2)
  message(FATAL_ERROR "pass verdicts differ:\n  pass1: ${pass1}\n  pass2: ${pass2}")
endif()

message(STATUS "stream smoke: ${jobs} jobs x 2 passes streamed, "
  "pass 2 fully cache-served, verdicts identical")
