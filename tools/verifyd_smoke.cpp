// Socket-level integration smoke for tta_verifyd (registered as the
// ctest `tools.verifyd_smoke`, label `async` so the TSan job runs it).
//
//   verifyd_smoke VERIFYD CLIENT BATCH JOBS
//
// Phases, against one server started on an ephemeral port with one worker
// and the in-memory cache disabled (so every job really executes and the
// dispatch order is observable). The server argv is built through
// svc::ServerConfig::to_args — the same struct the binary parses — so the
// smoke cannot drift from the server's real flag grammar:
//
//   1. reference — run `BATCH JOBS --stream` and collect the E1 grid's
//      (digest, verdict) multiset from its JSON lines;
//   2. concurrency + priority — a bulk client replays the grid at priority
//      0; once its first answer lands, an urgent client replays the same
//      grid at priority 10 on a second connection. The urgent client must
//      (a) return the identical verdict multiset and (b) finish strictly
//      before the bulk client does — high-priority jobs overtake the
//      ~19 still-queued bulk jobs on the shared one-worker queue;
//   3. weighted-fair tenants — three equal-weight tenants replay the grid
//      concurrently at equal priority; deficit-round-robin dispatch must
//      interleave their lanes, so all three finish within a bounded
//      spread of each other (no tenant is starved behind another's whole
//      batch) and each returns the reference multiset;
//   4. tenant quota — the server pins tenant "greedy" to 2 in-flight
//      jobs. A greedy client bursts the whole grid and must get explicit
//      rejection rows for nearly all of it (exit 1), while a concurrent
//      default-tenant peer replays the grid unaffected (exit 0, reference
//      multiset);
//   5. malformed + disconnect — a raw connection sends garbage (expects an
//      {"error":...} line back), submits real jobs, reads one answer, and
//      disconnects abruptly mid-stream; the server must drain, not wedge;
//   6. swarm canonicalization — a raw connection runs the pinned VIOLATED
//      E1 job ("authority":"full_shifting","property":"safety","nodes":4)
//      once under "engine":"serial" and then under "engine":"swarm" at two
//      seeds; every run must answer VIOLATED with the identical trace_len,
//      because the swarm engine re-derives its reported counterexample
//      from a canonical serial replay regardless of which racer won;
//   7. clean shutdown — SIGTERM must exit 0 after flushing, and the final
//      metrics dump must report the connections, the malformed line, the
//      mid-stream drain, the quota rejections, and the per-tenant rows.
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/server.h"
#include "util/socket.h"

namespace {

using Clock = std::chrono::steady_clock;
using tta::util::LineConn;
using tta::util::Socket;

int g_failures = 0;

#define CHECK(cond, ...)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
      std::fprintf(stderr, __VA_ARGS__);                          \
      std::fprintf(stderr, "\n");                                 \
      ++g_failures;                                               \
    }                                                             \
  } while (0)

std::string shell_quote(const std::string& s) { return "'" + s + "'"; }

/// Runs a command line via popen, recording each stdout line with its
/// arrival time. Returns the exit status (-1 on popen failure).
struct RunResult {
  int status = -1;
  std::vector<std::pair<std::string, Clock::time_point>> lines;
};

RunResult run_streaming(const std::string& cmd,
                        std::atomic<bool>* first_line_seen = nullptr) {
  RunResult result;
  std::FILE* pipe = popen(cmd.c_str(), "r");
  if (!pipe) return result;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof buf, pipe)) {
    std::string line(buf);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    result.lines.emplace_back(std::move(line), Clock::now());
    if (first_line_seen) first_line_seen->store(true);
  }
  result.status = pclose(pipe);
  return result;
}

/// Extracts "key":"value" from a JSON line (the smoke only needs string
/// fields with known keys).
std::string json_str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// Extracts a numeric "key":123 field from a JSON line; -1 if absent.
long long json_num_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return -1;
  return std::atoll(line.c_str() + at + needle.size());
}

/// (digest, verdict) multiset from --stream / wire response lines.
std::map<std::pair<std::string, std::string>, int> verdict_multiset(
    const std::vector<std::pair<std::string, Clock::time_point>>& lines) {
  std::map<std::pair<std::string, std::string>, int> out;
  for (const auto& [line, when] : lines) {
    (void)when;
    const std::string digest = json_str_field(line, "digest");
    const std::string verdict = json_str_field(line, "verdict");
    if (!digest.empty() && !verdict.empty()) ++out[{digest, verdict}];
  }
  return out;
}

bool wait_for_file(const std::string& path, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    std::ifstream f(path);
    std::string content;
    if (f && std::getline(f, content) && !content.empty()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 5) {
    std::fprintf(stderr, "usage: %s VERIFYD CLIENT BATCH JOBS\n", argv[0]);
    return 2;
  }
  const std::string verifyd = argv[1];
  const std::string client = argv[2];
  const std::string batch = argv[3];
  const std::string jobs = argv[4];

  char dir_template[] = "/tmp/verifyd_smoke.XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (!dir) {
    std::perror("mkdtemp");
    return 2;
  }
  const std::string port_file = std::string(dir) + "/port.txt";
  const std::string server_log = std::string(dir) + "/server.log";

  // ---- phase 1: the reference multiset from the batch tool ------------
  const RunResult reference = run_streaming(
      shell_quote(batch) + " " + shell_quote(jobs) + " --stream 2>/dev/null");
  CHECK(reference.status == 0, "tta_verify_batch exited %d", reference.status);
  const auto expected = verdict_multiset(reference.lines);
  CHECK(expected.size() >= 10, "reference grid too small: %zu distinct rows",
        expected.size());
  std::size_t expected_total = 0;
  for (const auto& [key, n] : expected) expected_total += std::size_t(n);
  std::fprintf(stderr, "reference: %zu verdicts, %zu distinct\n",
               expected_total, expected.size());

  // ---- start the server ----------------------------------------------
  // The argv comes from ServerConfig::to_args: one worker, cache off, and
  // tenant "greedy" capped at 2 in-flight jobs for the quota phase.
  tta::svc::ServerConfig server_config;
  server_config.port = 0;
  server_config.port_file = port_file;
  server_config.service.workers = 1;
  server_config.service.cache_capacity = 0;
  {
    tta::svc::TenantQuota greedy;
    greedy.name = "greedy";
    greedy.weight = 1;
    greedy.max_in_flight = 2;
    server_config.tenants.push_back(greedy);
  }
  const std::vector<std::string> server_args = server_config.to_args();

  const pid_t server = fork();
  if (server == 0) {
    std::FILE* log = std::freopen(server_log.c_str(), "w", stdout);
    (void)log;
    std::vector<char*> exec_argv;
    exec_argv.push_back(const_cast<char*>(verifyd.c_str()));
    for (const std::string& arg : server_args) {
      exec_argv.push_back(const_cast<char*>(arg.c_str()));
    }
    exec_argv.push_back(nullptr);
    execv(verifyd.c_str(), exec_argv.data());
    std::perror("execv tta_verifyd");
    _exit(127);
  }
  CHECK(server > 0, "fork failed");
  if (!wait_for_file(port_file, 10'000)) {
    std::fprintf(stderr, "FAIL: server never wrote %s\n", port_file.c_str());
    if (server > 0) kill(server, SIGKILL);
    return 1;
  }
  std::string port;
  {
    std::ifstream f(port_file);
    std::getline(f, port);
  }
  const std::string endpoint = "127.0.0.1:" + port;
  std::fprintf(stderr, "server pid %d on %s\n", server, endpoint.c_str());

  // ---- phase 2: two concurrent connections, different priorities ------
  std::atomic<bool> bulk_started{false};
  RunResult bulk;
  std::thread bulk_thread([&] {
    bulk = run_streaming(shell_quote(client) + " " + endpoint + " " +
                             shell_quote(jobs) +
                             " --priority=0 --id-prefix=bulk 2>/dev/null",
                         &bulk_started);
  });
  while (!bulk_started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The bulk batch is now admitted and at most one job deep into a single
  // worker; everything the urgent client submits must overtake the rest.
  const RunResult urgent = run_streaming(
      shell_quote(client) + " " + endpoint + " " + shell_quote(jobs) +
      " --priority=10 --id-prefix=urgent 2>/dev/null");
  bulk_thread.join();

  CHECK(WIFEXITED(bulk.status) && WEXITSTATUS(bulk.status) == 0,
        "bulk client exited %d", bulk.status);
  CHECK(WIFEXITED(urgent.status) && WEXITSTATUS(urgent.status) == 0,
        "urgent client exited %d", urgent.status);
  CHECK(verdict_multiset(urgent.lines) == expected,
        "urgent client verdict multiset != tta_verify_batch reference");
  CHECK(verdict_multiset(bulk.lines) == expected,
        "bulk client verdict multiset != tta_verify_batch reference");
  for (const auto& [line, when] : urgent.lines) {
    (void)when;
    CHECK(json_str_field(line, "id").rfind("urgent-", 0) == 0,
          "response id not echoed: %s", line.c_str());
  }
  if (!bulk.lines.empty() && !urgent.lines.empty()) {
    const auto urgent_done = urgent.lines.back().second;
    const auto bulk_done = bulk.lines.back().second;
    CHECK(urgent_done < bulk_done,
          "priority inversion: urgent client finished %.0f ms AFTER bulk",
          std::chrono::duration<double, std::milli>(urgent_done - bulk_done)
              .count());
  }

  // ---- phase 3: weighted-fair dispatch across equal tenants -----------
  // Three tenants with the default (equal) weight replay the grid on one
  // worker. Deficit round robin rotates the lanes, so completions
  // interleave and the three clients' LAST answers land close together —
  // a scheduler that served any lane to exhaustion first would push one
  // client's finish toward t=span/3 and another's to t=span.
  {
    const auto fair_start = Clock::now();
    RunResult fair[3];
    std::vector<std::thread> fair_threads;
    for (int i = 0; i < 3; ++i) {
      fair_threads.emplace_back([&, i] {
        const std::string name = "fair" + std::to_string(i);
        fair[i] = run_streaming(shell_quote(client) + " " + endpoint + " " +
                                shell_quote(jobs) + " --tenant=" + name +
                                " --id-prefix=" + name + " 2>/dev/null");
      });
    }
    for (std::thread& t : fair_threads) t.join();

    Clock::time_point first_done = Clock::time_point::max();
    Clock::time_point last_done = Clock::time_point::min();
    for (int i = 0; i < 3; ++i) {
      CHECK(WIFEXITED(fair[i].status) && WEXITSTATUS(fair[i].status) == 0,
            "fair tenant %d exited %d", i, fair[i].status);
      CHECK(verdict_multiset(fair[i].lines) == expected,
            "fair tenant %d verdict multiset != reference", i);
      if (fair[i].lines.empty()) continue;
      const auto done = fair[i].lines.back().second;
      first_done = std::min(first_done, done);
      last_done = std::max(last_done, done);
    }
    const double span_ms =
        std::chrono::duration<double, std::milli>(last_done - fair_start)
            .count();
    const double spread_ms =
        std::chrono::duration<double, std::milli>(last_done - first_done)
            .count();
    std::fprintf(stderr, "fairness: span=%.0f ms, finish spread=%.0f ms\n",
                 span_ms, spread_ms);
    CHECK(span_ms > 0 && spread_ms < 0.5 * span_ms,
          "unfair dispatch: finish spread %.0f ms over a %.0f ms phase",
          spread_ms, span_ms);
  }

  // ---- phase 4: tenant quota gate -------------------------------------
  // "greedy" is capped at 2 in-flight jobs; bursting the whole grid down
  // one connection must come back almost entirely as explicit rejection
  // rows (so the client exits 1), while a concurrent default-tenant peer
  // sails through untouched.
  {
    RunResult peer;
    std::thread peer_thread([&] {
      peer = run_streaming(shell_quote(client) + " " + endpoint + " " +
                           shell_quote(jobs) + " --id-prefix=peer 2>/dev/null");
    });
    const RunResult greedy = run_streaming(
        shell_quote(client) + " " + endpoint + " " + shell_quote(jobs) +
        " --tenant=greedy --id-prefix=greedy 2>/dev/null");
    peer_thread.join();

    CHECK(WIFEXITED(greedy.status) && WEXITSTATUS(greedy.status) == 1,
          "greedy client should exit 1 (quota rejections), got %d",
          greedy.status);
    std::size_t answers = 0;
    std::size_t rejected = 0;
    for (const auto& [line, when] : greedy.lines) {
      (void)when;
      if (line.find("\"progress\":1") != std::string::npos) continue;
      ++answers;
      if (line.find("\"rejected\":1") != std::string::npos) ++rejected;
    }
    // The burst outruns the single worker, so nearly everything bounces
    // off the 2-job cap; completions racing the burst's tail may let a
    // few extra through, but every request line gets exactly one answer.
    CHECK(answers == expected_total,
          "greedy client: %zu answers for %zu requests", answers,
          expected_total);
    CHECK(rejected >= expected_total - 4,
          "greedy client: only %zu/%zu rejection rows — quota gate leaky?",
          rejected, answers);
    CHECK(rejected < answers, "greedy client: everything rejected — the "
                              "2-job allowance never admitted anything");
    std::fprintf(stderr, "quota: greedy %zu/%zu rejected\n", rejected,
                 answers);

    CHECK(WIFEXITED(peer.status) && WEXITSTATUS(peer.status) == 0,
          "peer client (default tenant) exited %d alongside greedy",
          peer.status);
    CHECK(verdict_multiset(peer.lines) == expected,
          "peer client verdict multiset != reference");
  }

  // ---- phase 5: malformed line, then abrupt disconnect mid-stream -----
  {
    std::string error;
    Socket sock = Socket::connect_to(
        "127.0.0.1", static_cast<std::uint16_t>(std::stoi(port)), 5'000,
        &error);
    CHECK(sock.valid(), "raw connect failed: %s", error.c_str());
    // SO_LINGER with zero timeout turns the eventual close() into an RST:
    // the server observes a hard connection error (not an orderly EOF),
    // which is the abrupt-disconnect path this phase is pinning.
    const struct linger abort_on_close = {1, 0};
    setsockopt(sock.fd(), SOL_SOCKET, SO_LINGER, &abort_on_close,
               sizeof abort_on_close);
    LineConn conn(std::move(sock));
    using Io = LineConn::Io;
    CHECK(conn.write_line("this is not json", 5'000) == Io::kOk,
          "garbage write failed");
    std::string line;
    CHECK(conn.read_line(&line, 30'000) == Io::kOk, "no error response");
    CHECK(line.find("\"error\"") != std::string::npos,
          "expected an error line, got: %s", line.c_str());

    // Real work on the same (still healthy) connection, then vanish.
    CHECK(conn.write_line("{\"authority\":\"passive\",\"property\":"
                          "\"safety\",\"id\":\"doomed-0\"}",
                          5'000) == Io::kOk,
          "request write failed");
    CHECK(conn.write_line("{\"authority\":\"time_windows\",\"property\":"
                          "\"safety\",\"id\":\"doomed-1\"}",
                          5'000) == Io::kOk,
          "request write failed");
    CHECK(conn.read_line(&line, 120'000) == Io::kOk,
          "no answer before disconnect");
    CHECK(json_str_field(line, "id").rfind("doomed-", 0) == 0,
          "unexpected first answer: %s", line.c_str());
  }  // destructor closes the socket abruptly: one answer still owed

  // The server must still serve a fresh connection after the drain.
  {
    const RunResult after = run_streaming(
        shell_quote(client) + " " + endpoint + " " + shell_quote(jobs) +
        " --id-prefix=after 2>/dev/null");
    CHECK(WIFEXITED(after.status) && WEXITSTATUS(after.status) == 0,
          "post-drain client exited %d", after.status);
    CHECK(verdict_multiset(after.lines) == expected,
          "post-drain client verdict multiset != reference");
  }

  // ---- phase 6: swarm counterexample canonicalization -----------------
  // The swarm engine races randomized workers against the exhaustive
  // sweep, but its reported VIOLATED verdict is re-derived by a serial
  // replay — so trace_len must be seed-independent and equal to the
  // plain serial engine's shortest counterexample.
  {
    std::string error;
    Socket sock = Socket::connect_to(
        "127.0.0.1", static_cast<std::uint16_t>(std::stoi(port)), 5'000,
        &error);
    CHECK(sock.valid(), "swarm-phase connect failed: %s", error.c_str());
    LineConn conn(std::move(sock));
    using Io = LineConn::Io;

    const std::string pinned_job =
        "\"authority\":\"full_shifting\",\"property\":\"safety\",\"nodes\":4";
    CHECK(conn.write_line("{" + pinned_job +
                              ",\"engine\":\"serial\",\"id\":\"canon\"}",
                          5'000) == Io::kOk,
          "serial reference write failed");
    std::string line;
    long long canon_len = -1;
    CHECK(conn.read_line(&line, 120'000) == Io::kOk,
          "no serial reference answer");
    CHECK(json_str_field(line, "verdict") == "VIOLATED",
          "serial reference not VIOLATED: %s", line.c_str());
    canon_len = json_num_field(line, "trace_len");
    CHECK(canon_len > 0, "serial reference has no trace: %s", line.c_str());

    for (int seed : {1, 2}) {
      const std::string id = "swarm-" + std::to_string(seed);
      CHECK(conn.write_line("{" + pinned_job +
                                ",\"engine\":\"swarm\",\"seed\":" +
                                std::to_string(seed) + ",\"id\":\"" + id +
                                "\"}",
                            5'000) == Io::kOk,
            "swarm write failed (seed %d)", seed);
      CHECK(conn.read_line(&line, 120'000) == Io::kOk,
            "no swarm answer (seed %d)", seed);
      CHECK(json_str_field(line, "id") == id, "swarm answer id mismatch: %s",
            line.c_str());
      CHECK(json_str_field(line, "verdict") == "VIOLATED",
            "swarm (seed %d) not VIOLATED: %s", seed, line.c_str());
      const long long swarm_len = json_num_field(line, "trace_len");
      CHECK(swarm_len == canon_len,
            "swarm (seed %d) trace_len %lld != serial canonical %lld", seed,
            swarm_len, canon_len);
    }
    std::fprintf(stderr, "swarm: canonical trace_len %lld at both seeds\n",
                 canon_len);
  }

  // ---- phase 7: SIGTERM drains and exits 0 ----------------------------
  kill(server, SIGTERM);
  int status = -1;
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  pid_t reaped = 0;
  while (Clock::now() < deadline) {
    reaped = waitpid(server, &status, WNOHANG);
    if (reaped == server) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (reaped != server) {
    std::fprintf(stderr, "FAIL: server ignored SIGTERM; killing\n");
    kill(server, SIGKILL);
    waitpid(server, &status, 0);
    ++g_failures;
  } else {
    CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "server exit status %d after SIGTERM", status);
  }

  // The final metrics dump accounts for everything this smoke did: bulk,
  // urgent, 3 fairness tenants, greedy + peer, the raw phase-5 socket,
  // the post-drain client, and the raw swarm socket = 10 connections.
  {
    std::ifstream f(server_log);
    std::string log((std::istreambuf_iterator<char>(f)),
                    std::istreambuf_iterator<char>());
    CHECK(log.find("tta_verifyd listening on 127.0.0.1:") !=
              std::string::npos,
          "startup banner missing from server log");
    CHECK(log.find("net: connections=10 ") != std::string::npos,
          "expected 10 connections in metrics; log tail:\n%.400s",
          log.size() > 400 ? log.c_str() + log.size() - 400 : log.c_str());
    CHECK(log.find("malformed=1 drains=1") != std::string::npos,
          "expected one malformed request and one mid-stream drain");
    CHECK(log.find("quota_rejected=0") == std::string::npos,
          "quota_rejected stayed zero despite the greedy burst");
    // Per-tenant accounting: the greedy burst recorded both admissions
    // (the 2-job allowance) and rejections, and the default tenant served
    // everything else without a single rejection.
    const std::size_t greedy_row = log.find("net:tenant:greedy: admitted=");
    CHECK(greedy_row != std::string::npos,
          "no net:tenant:greedy: row in the final metrics dump");
    if (greedy_row != std::string::npos) {
      const std::string row =
          log.substr(greedy_row, log.find('\n', greedy_row) - greedy_row);
      CHECK(row.find("admitted=0 ") == std::string::npos,
            "greedy tenant admitted nothing: %s", row.c_str());
      CHECK(row.find("rejected=0 ") == std::string::npos,
            "greedy tenant row shows no rejections: %s", row.c_str());
    }
    const std::size_t default_row =
        log.find("net:tenant:default: admitted=");
    CHECK(default_row != std::string::npos,
          "no net:tenant:default: row in the final metrics dump");
    if (default_row != std::string::npos) {
      const std::string row = log.substr(
          default_row, log.find('\n', default_row) - default_row);
      CHECK(row.find("rejected=0 ") != std::string::npos,
            "default tenant saw quota rejections: %s", row.c_str());
    }
  }

  if (g_failures == 0) std::fprintf(stderr, "verifyd_smoke: all phases OK\n");
  return g_failures == 0 ? 0 : 1;
}
