// Chaos campaign driver for the serving stack (registered as the ctest
// `tools.chaos_smoke`, label `async`; docs/SERVICE.md "Fault injection &
// chaos testing").
//
//   chaos_batch VERIFYD JOBS [--seed=N] [--runs=N]
//
// Replays the E1 job grid plus one pinned campaign job against tta_verifyd
// processes while a seeded schedule of fail points (TTA_FAILPOINTS, see
// util/fail_point.h) injects journal write failures, torn checkpoints,
// spurious inconclusive attempts, partial/reset socket I/O, and accept
// failures into each run's server. The schedule is a pure function of
// --seed: same seed, same injection env strings, same deterministic
// per-site firing — a failing run is replayable with one flag.
//
// Phases:
//   baseline   a clean server (no cache dir, no faults) answers the whole
//              workload; its id -> (digest, verdict) map is the truth.
//   chaos x N  each run starts a fresh server on a SHARED cache directory
//              with that run's fail points armed. The client submits every
//              job, reconnecting and resubmitting unanswered jobs when a
//              connection dies, until everything concludes.
//   recovery   a clean server on the same cache directory re-answers the
//              grid; concluded verify jobs must come back from the
//              persistent cache.
//
// Invariants checked after every phase (any violation fails the tool):
//   - verdicts: every job's (digest, verdict) is bit-identical to the
//     baseline, however many faults fired on the way;
//   - no aborts: every server exits 0 on SIGTERM — never a signal, never
//     a crash, and the log carries no injected-abort banner;
//   - explicit loss: the client only ever resubmits after an explicit
//     signal (rejection row, inconclusive row, dead connection) — silence
//     is counted as a hang and fails the run;
//   - recovery: the final clean run serves at least one answer with
//     "from_persistent":1.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/server.h"
#include "util/rng.h"
#include "util/socket.h"

namespace {

using Clock = std::chrono::steady_clock;
using tta::util::LineConn;
using tta::util::Socket;

int g_failures = 0;

#define CHECK(cond, ...)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
      std::fprintf(stderr, __VA_ARGS__);                          \
      std::fprintf(stderr, "\n");                                 \
      ++g_failures;                                               \
    }                                                             \
  } while (0)

bool wait_for_file(const std::string& path, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    std::ifstream f(path);
    std::string content;
    if (f && std::getline(f, content) && !content.empty()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

std::string json_str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

std::string slurp(const std::string& path) {
  std::ifstream f(path);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

/// One server process under test, with optional fail points armed via the
/// child's environment (the driver's own process never arms anything).
struct Server {
  pid_t pid = -1;
  std::string endpoint;  ///< "127.0.0.1:<port>"
  std::string log_path;

  bool start(const std::string& verifyd, const std::string& dir,
             const std::string& tag, const std::string& cache_dir,
             const std::string& failpoints, std::uint64_t fp_seed) {
    const std::string port_file = dir + "/" + tag + ".port";
    log_path = dir + "/" + tag + ".log";
    pid = fork();
    if (pid == 0) {
      if (!failpoints.empty()) {
        setenv("TTA_FAILPOINTS", failpoints.c_str(), 1);
        char seed_buf[32];
        std::snprintf(seed_buf, sizeof seed_buf, "%llu",
                      static_cast<unsigned long long>(fp_seed));
        setenv("TTA_FAILPOINTS_SEED", seed_buf, 1);
      }
      std::FILE* log = std::freopen(log_path.c_str(), "w", stdout);
      (void)log;
      // stderr joins the log so accept-backoff lines are visible too.
      dup2(fileno(stdout), fileno(stderr));
      // Server argv via ServerConfig::to_args — the same struct the
      // binary parses, so the harness cannot drift from its flag grammar.
      tta::svc::ServerConfig config;
      config.port = 0;
      config.port_file = port_file;
      config.service.workers = 4;
      config.service.retry.max_attempts = 1 + 3;  // --retries=3
      config.service.checkpoint_dir = dir + "/ckpt";
      config.service.cache_dir = cache_dir;  // "" = no persistent cache
      std::vector<std::string> args = {verifyd};
      for (std::string& a : config.to_args()) args.push_back(std::move(a));
      std::vector<char*> argv;
      argv.reserve(args.size() + 1);
      for (std::string& a : args) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(verifyd.c_str(), argv.data());
      std::perror("execv tta_verifyd");
      _exit(127);
    }
    if (pid < 0) return false;
    if (!wait_for_file(port_file, 15'000)) return false;
    std::ifstream f(port_file);
    std::string port;
    std::getline(f, port);
    endpoint = "127.0.0.1:" + port;
    return true;
  }

  /// SIGTERM, bounded wait, and the no-abort invariant: a server that dies
  /// on a signal (SIGABRT from an un-handled fault) fails the campaign.
  void stop_and_check(const char* phase) {
    if (pid <= 0) return;
    kill(pid, SIGTERM);
    int status = -1;
    pid_t reaped = 0;
    const auto deadline = Clock::now() + std::chrono::seconds(120);
    while (Clock::now() < deadline) {
      reaped = waitpid(pid, &status, WNOHANG);
      if (reaped == pid) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    if (reaped != pid) {
      std::fprintf(stderr, "FAIL: %s server ignored SIGTERM; killing\n",
                   phase);
      kill(pid, SIGKILL);
      waitpid(pid, &status, 0);
      ++g_failures;
    } else {
      CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
            "%s server exit status %d (signal = abort?)", phase, status);
    }
    const std::string log = slurp(log_path);
    CHECK(log.find("abort injected") == std::string::npos,
          "%s server log reports an injected abort", phase);
    pid = -1;
  }
};

/// id -> (digest, verdict) for every job of the workload.
using VerdictMap = std::map<std::string, std::pair<std::string, std::string>>;

/// Drives one full workload against `endpoint`, reconnecting and
/// resubmitting on every explicit loss (dead connection, rejection row,
/// spurious-inconclusive verify row) until all jobs conclude. Counts rows
/// served from the persistent cache into *persistent_hits when non-null.
/// Returns false if the workload could not finish within the attempt
/// bound.
bool run_workload(const std::string& endpoint,
                  const std::vector<std::string>& jobs, VerdictMap* out,
                  int* persistent_hits = nullptr) {
  using Io = LineConn::Io;
  const std::size_t colon = endpoint.find(':');
  const std::string host = endpoint.substr(0, colon);
  const auto port =
      static_cast<std::uint16_t>(std::stoi(endpoint.substr(colon + 1)));

  std::set<std::size_t> unanswered;
  for (std::size_t i = 0; i < jobs.size(); ++i) unanswered.insert(i);

  for (int attempt = 0; attempt < 30 && !unanswered.empty(); ++attempt) {
    std::string error;
    Socket sock = Socket::connect_to(host, port, 10'000, &error);
    if (!sock.valid()) {
      // Accept-failure injection can park us in the backlog briefly.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      continue;
    }
    LineConn conn(std::move(sock));
    bool submitted_all = true;
    for (std::size_t i : unanswered) {
      // Tag with the job index so every answer maps back even when rows
      // interleave across reconnects. Job lines are single JSON objects.
      const std::string line =
          "{\"id\":\"j" + std::to_string(i) + "\"," + jobs[i].substr(1);
      if (conn.write_line(line, 30'000) != Io::kOk) {
        submitted_all = false;  // connection died mid-burst: explicit loss
        break;
      }
    }
    if (submitted_all) conn.shutdown_write();

    std::string line;
    for (;;) {
      const Io io = conn.read_line(&line, 120'000);
      if (io != Io::kOk) break;  // kEof = server done; kError = reconnect;
                                 // kTimeout = counted as a hang below
      if (line.find("\"progress\":1") != std::string::npos) continue;
      if (line.find("\"error\"") != std::string::npos) continue;
      const std::string id = json_str_field(line, "id");
      if (id.size() < 2 || id[0] != 'j') continue;
      const std::size_t index = std::stoul(id.substr(1));
      if (index >= jobs.size()) continue;
      const std::string verdict = json_str_field(line, "verdict");
      const bool rejected =
          line.find("\"rejected\":1") != std::string::npos;
      const bool campaign = jobs[index].find("\"campaign\"") !=
                            std::string::npos;
      if (rejected || (!campaign && verdict == "INCONCLUSIVE")) {
        continue;  // explicit loss: stays unanswered, resubmitted next pass
      }
      if (verdict.empty()) continue;
      if (persistent_hits &&
          line.find("\"from_persistent\":1") != std::string::npos) {
        ++*persistent_hits;
      }
      (*out)[id] = {json_str_field(line, "digest"), verdict};
      unanswered.erase(index);
    }
  }
  return unanswered.empty();
}

/// One armable fault, with the grammar fragment parameterized per run.
struct MenuEntry {
  const char* site;
  const char* spec;  ///< action + modifiers, without the site=
};

/// The non-abort fault menu. Socket faults run at low per-hit probability
/// (they are evaluated once per send/recv); storage and dispatch faults
/// run hot because their sites are hit a handful of times per job.
constexpr MenuEntry kMenu[] = {
    {"journal.append.enospc", "error:prob(300000)"},
    {"journal.append.torn", "short-io(5):hits(2,2)"},
    {"journal.sync", "error:prob(250000)"},
    {"cache.compact.rename", "error:prob(300000)"},
    {"ckpt.save.torn", "short-io(64):prob(200000)"},
    {"ckpt.save.crc", "error:prob(200000)"},
    {"ckpt.load.error", "error:prob(400000)"},
    {"svc.attempt", "error:prob(250000)"},
    {"svc.attempt", "delay(15):prob(150000)"},
    {"sock.send", "short-io(7):prob(8000)"},
    {"sock.send", "error:prob(2500)"},
    {"sock.recv", "short-io(3):prob(10000)"},
    {"sock.recv.eintr", "error:prob(5000)"},
    {"sock.accept", "error:prob(500000):hits(1,6)"},
};

/// Derives run `r`'s injection schedule from the master seed: 2-4 distinct
/// sites drawn from the menu. Pure function of (seed, r) — the whole
/// reproducibility claim.
std::string schedule_for_run(std::uint64_t seed, int r,
                             std::uint64_t* fp_seed) {
  tta::util::Rng rng(seed * 1000003ull + static_cast<std::uint64_t>(r));
  *fp_seed = rng.next_u64();
  const std::size_t menu_size = sizeof kMenu / sizeof kMenu[0];
  const std::size_t want = 2 + rng.next_below(3);
  std::set<std::string> sites;
  std::string env;
  for (int draws = 0; draws < 32 && sites.size() < want; ++draws) {
    const MenuEntry& entry = kMenu[rng.next_below(menu_size)];
    if (!sites.insert(entry.site).second) continue;  // one spec per site
    if (!env.empty()) env += ";";
    env += std::string(entry.site) + "=" + entry.spec;
  }
  return env;
}

}  // namespace

int main(int argc, char** argv) {
  std::string verifyd, jobs_path;
  std::uint64_t seed = 20260808;
  int runs = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::atoi(arg.c_str() + 7);
    } else if (verifyd.empty()) {
      verifyd = arg;
    } else if (jobs_path.empty()) {
      jobs_path = arg;
    } else {
      std::fprintf(stderr,
                   "usage: %s VERIFYD JOBS [--seed=N] [--runs=N]\n", argv[0]);
      return 2;
    }
  }
  if (verifyd.empty() || jobs_path.empty()) {
    std::fprintf(stderr, "usage: %s VERIFYD JOBS [--seed=N] [--runs=N]\n",
                 argv[0]);
    return 2;
  }

  std::vector<std::string> jobs;
  {
    std::ifstream f(jobs_path);
    std::string line;
    while (std::getline(f, line)) {
      if (line.empty() || line[0] == '#') continue;
      jobs.push_back(line);
    }
  }
  CHECK(!jobs.empty(), "no jobs in %s", jobs_path.c_str());
  // The pinned campaign job: 200 trials, conclusive via the generous fail
  // bound, exercising the streamed-progress path and the campaign engine
  // under injected faults. Counter-based trial RNG keeps its verdict
  // deterministic at any worker count.
  jobs.push_back(
      "{\"kind\":\"campaign\",\"nodes\":4,\"channels\":2,"
      "\"criterion\":\"all_active\",\"steps\":32,\"seed\":7,"
      "\"min_trials\":200,\"max_trials\":200,\"batch\":50,"
      "\"epsilon_ppm\":1,\"fail_bound_ppm\":200000,"
      "\"faults\":\"coupler:0:silence:400000;coupler:1:silence:400000\"}");

  char dir_template[] = "/tmp/chaos_batch.XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (!dir) {
    std::perror("mkdtemp");
    return 2;
  }
  const std::string cache_dir = std::string(dir) + "/cache";

  // ---- baseline: clean server, no cache, no faults ---------------------
  VerdictMap baseline;
  {
    Server server;
    CHECK(server.start(verifyd, dir, "baseline", "", "", 0),
          "baseline server failed to start");
    CHECK(run_workload(server.endpoint, jobs, &baseline),
          "baseline workload did not finish");
    server.stop_and_check("baseline");
  }
  CHECK(baseline.size() == jobs.size(),
        "baseline answered %zu of %zu jobs", baseline.size(), jobs.size());
  std::fprintf(stderr, "chaos_batch: baseline %zu verdicts\n",
               baseline.size());

  // ---- chaos runs: seeded schedules on a shared cache dir --------------
  for (int r = 1; r <= runs; ++r) {
    std::uint64_t fp_seed = 0;
    const std::string schedule = schedule_for_run(seed, r, &fp_seed);
    std::fprintf(stderr,
                 "chaos_batch: run %d TTA_FAILPOINTS=\"%s\" "
                 "TTA_FAILPOINTS_SEED=%llu\n",
                 r, schedule.c_str(),
                 static_cast<unsigned long long>(fp_seed));
    Server server;
    CHECK(server.start(verifyd, dir, "chaos" + std::to_string(r), cache_dir,
                       schedule, fp_seed),
          "chaos run %d server failed to start", r);
    VerdictMap got;
    const bool finished = run_workload(server.endpoint, jobs, &got);
    server.stop_and_check("chaos");
    CHECK(finished, "chaos run %d workload did not finish", r);
    CHECK(got == baseline,
          "chaos run %d verdict map differs from baseline (%zu vs %zu rows)",
          r, got.size(), baseline.size());
    // Surface what fired, for the log.
    const std::string log = slurp(server.log_path);
    for (std::size_t at = log.find("failpoint: ");
         at != std::string::npos; at = log.find("failpoint: ", at + 1)) {
      const std::size_t end = log.find('\n', at);
      std::fprintf(stderr, "  %s\n",
                   log.substr(at, end - at).c_str());
    }
  }

  // ---- recovery: clean server over the battered cache dir --------------
  {
    Server server;
    CHECK(server.start(verifyd, dir, "recovery", cache_dir, "", 0),
          "recovery server failed to start");
    VerdictMap got;
    int persistent_hits = 0;
    CHECK(run_workload(server.endpoint, jobs, &got, &persistent_hits),
          "recovery workload did not finish");
    server.stop_and_check("recovery");
    CHECK(got == baseline, "recovery verdict map differs from baseline");
    // The concluded prefix must actually be served from disk: whatever
    // the chaos runs managed to persist comes back without recompute.
    CHECK(persistent_hits > 0,
          "recovery run served nothing from the persistent cache");
    std::fprintf(stderr, "chaos_batch: recovery served %d from disk\n",
                 persistent_hits);
  }

  if (g_failures == 0) {
    std::fprintf(stderr, "chaos_batch: all invariants held (seed=%llu)\n",
                 static_cast<unsigned long long>(seed));
  }
  return g_failures == 0 ? 0 : 1;
}
