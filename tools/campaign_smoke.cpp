// End-to-end smoke for campaign jobs served by tta_verifyd (registered as
// the ctest `tools.campaign_smoke`, label `async`).
//
//   campaign_smoke VERIFYD
//
// Phases, against one server on an ephemeral port with one worker and a
// single-entry LRU cache:
//
//   1. streaming — submit a pinned-seed 200-trial campaign (dual-channel
//      silence plus a WALDEN-style clock-drift entry) and require at least
//      one {"progress":1,...} row before the result row, every streamed
//      estimate well-formed (0 <= ci_low <= p_hat <= ci_high <= 1,
//      failures <= trials), and the final row's campaign object scoring
//      exactly 200 trials;
//   2. reproducibility — resubmit the identical spec on a fresh
//      connection; the campaign is inconclusive (epsilon unreachable), so
//      nothing was cached and the server recomputes: the point estimate
//      must come back bit-identical;
//   3. caching — a conclusive campaign (wide epsilon) twice: the first
//      run computes, the second must answer "from_cache":1 with the same
//      estimate and a conclusive verdict;
//   4. shutdown — SIGTERM exits 0 and the final metrics dump reports the
//      campaign counters.
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "svc/server.h"
#include "util/socket.h"

namespace {

using Clock = std::chrono::steady_clock;
using tta::util::LineConn;
using tta::util::Socket;

int g_failures = 0;

#define CHECK(cond, ...)                                          \
  do {                                                            \
    if (!(cond)) {                                                \
      std::fprintf(stderr, "FAIL %s:%d: ", __FILE__, __LINE__);   \
      std::fprintf(stderr, __VA_ARGS__);                          \
      std::fprintf(stderr, "\n");                                 \
      ++g_failures;                                               \
    }                                                             \
  } while (0)

bool wait_for_file(const std::string& path, int timeout_ms) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    std::ifstream f(path);
    std::string content;
    if (f && std::getline(f, content) && !content.empty()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

/// Numeric field ("key":123 or "key":0.25) from a JSON line; NaN when
/// absent. The smoke only reads fields it wrote, so no escaping concerns.
double json_num_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return std::nan("");
  return std::strtod(line.c_str() + at + needle.size(), nullptr);
}

std::string json_str_field(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

/// One request -> (progress rows..., result row) exchange on a fresh
/// connection. Returns false on any transport failure.
bool exchange(const std::string& port, const std::string& request,
              std::vector<std::string>* progress_rows,
              std::string* result_row) {
  std::string error;
  Socket sock = Socket::connect_to(
      "127.0.0.1", static_cast<std::uint16_t>(std::stoi(port)), 5'000,
      &error);
  if (!sock.valid()) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return false;
  }
  LineConn conn(std::move(sock));
  using Io = LineConn::Io;
  if (conn.write_line(request, 5'000) != Io::kOk) return false;
  conn.shutdown_write();
  std::string line;
  for (;;) {
    switch (conn.read_line(&line, 120'000)) {
      case Io::kOk:
        break;
      case Io::kEof:
        return !result_row->empty();
      default:
        return false;
    }
    if (line.find("\"progress\":1") != std::string::npos) {
      progress_rows->push_back(line);
    } else {
      *result_row = line;
    }
  }
}

/// Streamed estimates must always be internally consistent, progress rows
/// and final rows alike.
void check_estimate(const std::string& row) {
  const double trials = json_num_field(row, "trials");
  const double failures = json_num_field(row, "failures");
  const double p_hat = json_num_field(row, "p_hat");
  const double ci_low = json_num_field(row, "ci_low");
  const double ci_high = json_num_field(row, "ci_high");
  CHECK(failures >= 0 && failures <= trials,
        "failures out of range: %s", row.c_str());
  CHECK(0.0 <= ci_low && ci_low <= p_hat && p_hat <= ci_high &&
            ci_high <= 1.0,
        "malformed confidence interval: %s", row.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s VERIFYD\n", argv[0]);
    return 2;
  }
  const std::string verifyd = argv[1];

  char dir_template[] = "/tmp/campaign_smoke.XXXXXX";
  const char* dir = mkdtemp(dir_template);
  if (!dir) {
    std::perror("mkdtemp");
    return 2;
  }
  const std::string port_file = std::string(dir) + "/port.txt";
  const std::string server_log = std::string(dir) + "/server.log";

  // Server argv via ServerConfig::to_args — the same struct the binary
  // parses, so this harness cannot drift from the real flag grammar.
  tta::svc::ServerConfig server_config;
  server_config.port = 0;
  server_config.port_file = port_file;
  server_config.service.workers = 1;
  server_config.service.cache_capacity = 1;
  const std::vector<std::string> server_args = server_config.to_args();

  const pid_t server = fork();
  if (server == 0) {
    std::FILE* log = std::freopen(server_log.c_str(), "w", stdout);
    (void)log;
    std::vector<char*> exec_argv;
    exec_argv.push_back(const_cast<char*>(verifyd.c_str()));
    for (const std::string& arg : server_args) {
      exec_argv.push_back(const_cast<char*>(arg.c_str()));
    }
    exec_argv.push_back(nullptr);
    execv(verifyd.c_str(), exec_argv.data());
    std::perror("execv tta_verifyd");
    _exit(127);
  }
  CHECK(server > 0, "fork failed");
  if (!wait_for_file(port_file, 10'000)) {
    std::fprintf(stderr, "FAIL: server never wrote %s\n", port_file.c_str());
    if (server > 0) kill(server, SIGKILL);
    return 1;
  }
  std::string port;
  {
    std::ifstream f(port_file);
    std::getline(f, port);
  }
  std::fprintf(stderr, "server pid %d on 127.0.0.1:%s\n", server,
               port.c_str());

  // ---- phase 1: pinned-seed 200-trial campaign, streamed ---------------
  // epsilon_ppm=1 is unreachable and the Wilson interval at 200 trials
  // straddles fail_bound_ppm=200000 (p ~= 0.16 from the dual-silence
  // product), so the campaign runs all 200 trials and concludes
  // INCONCLUSIVE — which also keeps it out of the cache, setting up the
  // recompute in phase 2. The dictionary carries the WALDEN-style
  // clock-drift entry alongside the channel-silence pair.
  const std::string pinned =
      "{\"kind\":\"campaign\",\"nodes\":4,\"channels\":2,"
      "\"criterion\":\"all_active\",\"steps\":32,\"seed\":7,"
      "\"min_trials\":200,\"max_trials\":200,\"batch\":50,"
      "\"epsilon_ppm\":1,\"fail_bound_ppm\":200000,"
      "\"faults\":\"coupler:0:silence:400000;"
      "coupler:1:silence:400000;node:*:clock_drift:250000\","
      "\"id\":\"camp-0\"}";
  std::vector<std::string> progress;
  std::string result;
  CHECK(exchange(port, pinned, &progress, &result), "phase 1 exchange died");
  CHECK(!progress.empty(), "no progress rows streamed");
  for (const std::string& row : progress) check_estimate(row);
  CHECK(result.find("\"campaign\":{") != std::string::npos,
        "result row lacks campaign object: %s", result.c_str());
  check_estimate(result);
  CHECK(json_num_field(result, "trials") == 200.0,
        "expected exactly 200 trials: %s", result.c_str());
  CHECK(json_str_field(result, "verdict") == "INCONCLUSIVE",
        "unreachable epsilon should stay inconclusive: %s", result.c_str());
  CHECK(json_str_field(result, "id") == "camp-0", "id not echoed");
  const double p1 = json_num_field(result, "p_hat");
  std::fprintf(stderr, "phase 1: %zu progress rows, p_hat=%g\n",
               progress.size(), p1);

  // ---- phase 2: same seed, fresh connection -> identical estimate ------
  std::vector<std::string> progress2;
  std::string result2;
  CHECK(exchange(port, pinned, &progress2, &result2),
        "phase 2 exchange died");
  CHECK(json_num_field(result2, "from_cache") == 0.0,
        "inconclusive estimate must not be served from cache: %s",
        result2.c_str());
  CHECK(json_num_field(result2, "p_hat") == p1 &&
            json_num_field(result2, "failures") ==
                json_num_field(result, "failures"),
        "pinned seed did not reproduce: %s vs %s", result.c_str(),
        result2.c_str());

  // ---- phase 3: conclusive campaign is cached --------------------------
  const std::string conclusive =
      "{\"kind\":\"campaign\",\"criterion\":\"all_active\",\"steps\":32,"
      "\"seed\":11,\"min_trials\":64,\"max_trials\":512,\"batch\":64,"
      "\"epsilon_ppm\":400000,\"faults\":\"coupler:*:silence:300000\","
      "\"id\":\"camp-hot\"}";
  std::vector<std::string> progress3;
  std::string first, second;
  CHECK(exchange(port, conclusive, &progress3, &first),
        "phase 3 first exchange died");
  const std::string verdict = json_str_field(first, "verdict");
  CHECK(verdict == "HOLDS" || verdict == "VIOLATED",
        "wide epsilon should conclude: %s", first.c_str());
  progress3.clear();
  CHECK(exchange(port, conclusive, &progress3, &second),
        "phase 3 second exchange died");
  CHECK(json_num_field(second, "from_cache") == 1.0,
        "conclusive estimate should be served from cache: %s",
        second.c_str());
  CHECK(json_num_field(second, "p_hat") == json_num_field(first, "p_hat"),
        "cached estimate differs: %s vs %s", first.c_str(), second.c_str());
  CHECK(json_str_field(second, "verdict") == verdict,
        "cached verdict differs: %s vs %s", first.c_str(), second.c_str());

  // ---- phase 4: SIGTERM exits 0, metrics mention campaigns -------------
  kill(server, SIGTERM);
  int status = -1;
  const auto deadline = Clock::now() + std::chrono::seconds(60);
  pid_t reaped = 0;
  while (Clock::now() < deadline) {
    reaped = waitpid(server, &status, WNOHANG);
    if (reaped == server) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  if (reaped != server) {
    CHECK(false, "server did not exit after SIGTERM");
    kill(server, SIGKILL);
    waitpid(server, &status, 0);
  } else {
    CHECK(WIFEXITED(status) && WEXITSTATUS(status) == 0,
          "server exited %d", status);
    std::ifstream log(server_log);
    const std::string dump((std::istreambuf_iterator<char>(log)),
                           std::istreambuf_iterator<char>());
    CHECK(dump.find("campaign: run=") != std::string::npos,
          "metrics dump lacks campaign counters");
  }

  std::fprintf(stderr, "%s\n", g_failures == 0 ? "campaign_smoke PASS"
                                               : "campaign_smoke FAIL");
  return g_failures == 0 ? 0 : 1;
}
