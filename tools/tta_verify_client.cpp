// Line-protocol client for tta_verifyd (docs/SERVICE.md).
//
// Replays a tta_verify_batch job file against a running server: every job
// line is validated locally (same grammar, same error messages as the
// batch tool), decorated with the connection-wide --priority / --tenant
// and a per-job --id-prefix tag (svc::decorate_request_line — the same
// wire grammar the server parses), and sent as one request line. The
// write side is then shut down — the protocol's "no more requests"
// signal — and every response line is printed to stdout as it arrives, so
// piping this tool behaves exactly like piping tta_verify_batch --stream.
//
//   ./tta_verify_client 127.0.0.1:7410 tools/e1_grid.jobs
//       --priority=10 --id-prefix=urgent --tenant=batch
//
// --soak=TOTAL:CONCURRENT exercises the server's event loop instead of
// replaying work: it churns TOTAL short-lived connections while holding
// CONCURRENT of them open at a time (connect, idle, disconnect — no
// requests), then replays the job file over one ordinary connection to
// prove the server still answers everything. CI's 10k-connection soak
// step gates on this mode exiting 0.
//
// Exit status: 0 when every job came back conclusive (HOLDS or VIOLATED),
// 1 when any response is missing, rejected, inconclusive, or an error
// line, 2 on usage/input/connection errors or when --timeout-ms expires
// before the last response arrives. Campaign progress rows are printed as
// they stream but never count as responses.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <string>
#include <vector>

#include "svc/wire.h"
#include "util/socket.h"

using namespace tta;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s HOST:PORT JOBFILE [--priority=N] [--id-prefix=S]\n"
               "          [--tenant=NAME] [--timeout-ms=N] "
               "[--soak=TOTAL:CONCURRENT]\n"
               "Replays JOBFILE (tta_verify_batch job grammar) against a "
               "tta_verifyd server\nand prints one response line per job "
               "(docs/SERVICE.md). --timeout-ms bounds\nthe whole response "
               "phase; expiry exits 2 with the answers so far printed.\n"
               "--soak first churns TOTAL idle connections (CONCURRENT held "
               "open at a time)\nthrough the server's event loop, then "
               "replays JOBFILE normally.\n",
               argv0);
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

/// Connect/idle/disconnect churn against the server: TOTAL connections,
/// holding CONCURRENT open simultaneously, oldest-closed-first. No bytes
/// are sent — each connection costs the server an accept, an idle fd in
/// its poll set, and a drain-on-close. Returns false on any failed
/// connect (the soak's failure signal: the server stopped accepting).
bool soak_churn(const std::string& host, std::uint16_t port,
                std::size_t total, std::size_t concurrent) {
  std::deque<util::Socket> held;
  for (std::size_t i = 0; i < total; ++i) {
    std::string error;
    util::Socket sock = util::Socket::connect_to(host, port, 10'000, &error);
    if (!sock.valid()) {
      std::fprintf(stderr, "soak: connect %zu/%zu failed: %s\n", i + 1,
                   total, error.c_str());
      return false;
    }
    held.push_back(std::move(sock));
    if (held.size() > concurrent) held.pop_front();  // disconnect oldest
    if ((i + 1) % 1000 == 0) {
      std::fprintf(stderr, "soak: %zu/%zu connections churned\n", i + 1,
                   total);
    }
  }
  held.clear();
  std::fprintf(stderr, "soak: churned %zu connections (%zu concurrent)\n",
               total, concurrent);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string endpoint;
  std::string job_path;
  std::string id_prefix;
  std::string tenant;
  std::int32_t priority = 0;
  long timeout_ms = 0;  // 0 = no overall deadline
  std::size_t soak_total = 0;
  std::size_t soak_concurrent = 0;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--priority", &v)) {
      priority = static_cast<std::int32_t>(std::strtol(v, nullptr, 10));
    } else if (flag_value(argv[i], "--id-prefix", &v)) {
      id_prefix = v;
    } else if (flag_value(argv[i], "--tenant", &v)) {
      tenant = v;
    } else if (flag_value(argv[i], "--timeout-ms", &v)) {
      timeout_ms = std::strtol(v, nullptr, 10);
      if (timeout_ms <= 0) return usage(argv[0]);
    } else if (flag_value(argv[i], "--soak", &v)) {
      char* rest = nullptr;
      soak_total = std::strtoul(v, &rest, 10);
      if (rest == nullptr || *rest != ':') return usage(argv[0]);
      soak_concurrent = std::strtoul(rest + 1, nullptr, 10);
      if (soak_total == 0 || soak_concurrent == 0) return usage(argv[0]);
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (endpoint.empty()) {
      endpoint = argv[i];
    } else if (job_path.empty()) {
      job_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  const std::size_t colon = endpoint.rfind(':');
  if (endpoint.empty() || job_path.empty() || colon == std::string::npos) {
    return usage(argv[0]);
  }
  const std::string host = endpoint.substr(0, colon);
  const unsigned long port = std::strtoul(endpoint.c_str() + colon + 1,
                                          nullptr, 10);
  if (port == 0 || port > 65535) return usage(argv[0]);

  std::ifstream in(job_path);
  if (!in) {
    std::fprintf(stderr, "cannot open job file %s\n", job_path.c_str());
    return 2;
  }
  std::vector<std::string> requests;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    svc::JobSpec spec;
    std::string error;
    if (!svc::parse_job_line(line, &spec, &error)) {
      std::fprintf(stderr, "%s:%d: %s\n", job_path.c_str(), lineno,
                   error.c_str());
      return 2;
    }
    std::string id;
    if (!id_prefix.empty()) {
      id = id_prefix + "-" + std::to_string(requests.size());
    }
    requests.push_back(svc::decorate_request_line(line, priority, id, tenant));
  }
  if (requests.empty()) {
    std::fprintf(stderr, "%s: no jobs\n", job_path.c_str());
    return 2;
  }

  if (soak_total > 0 &&
      !soak_churn(host, static_cast<std::uint16_t>(port), soak_total,
                  soak_concurrent)) {
    return 2;
  }

  std::string error;
  util::Socket sock = util::Socket::connect_to(
      host, static_cast<std::uint16_t>(port), 10'000, &error);
  if (!sock.valid()) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", endpoint.c_str(),
                 error.c_str());
    return 2;
  }
  util::LineConn conn(std::move(sock));

  using Io = util::LineConn::Io;
  for (const std::string& request : requests) {
    if (conn.write_line(request, 30'000) != Io::kOk) {
      std::fprintf(stderr, "connection lost while sending requests\n");
      return 2;
    }
  }
  conn.shutdown_write();  // "no more requests"; responses keep flowing

  // One response per request, in completion order. Conclusiveness is read
  // off the wire the same way a shell consumer would. Campaign progress
  // rows ({"progress":1,...}) are passed through but are not responses.
  const auto response_deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t responses = 0;
  std::size_t conclusive = 0;
  for (;;) {
    // Generous per-line deadline: a single 5-node job can run minutes.
    int wait_ms = 600'000;
    if (timeout_ms > 0) {
      const auto remaining = std::chrono::duration_cast<
          std::chrono::milliseconds>(response_deadline -
                                     std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(
          std::min<long long>(wait_ms, remaining.count()));
      if (wait_ms <= 0) {
        std::fprintf(stderr,
                     "timeout: %zu/%zu responses within %ld ms\n",
                     responses, requests.size(), timeout_ms);
        return 2;
      }
    }
    const Io io = conn.read_line(&line, wait_ms);
    if (io == Io::kEof) break;
    if (io == Io::kTimeout && timeout_ms > 0) continue;  // re-check deadline
    if (io != Io::kOk) {
      std::fprintf(stderr, "connection lost while awaiting responses\n");
      return 1;
    }
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
    if (line.find("\"progress\":1") != std::string::npos) continue;
    ++responses;
    if (line.find("\"verdict\":\"HOLDS\"") != std::string::npos ||
        line.find("\"verdict\":\"VIOLATED\"") != std::string::npos) {
      ++conclusive;
    }
  }

  std::fprintf(stderr, "%zu/%zu jobs answered, %zu conclusive\n", responses,
               requests.size(), conclusive);
  return conclusive == requests.size() ? 0 : 1;
}
