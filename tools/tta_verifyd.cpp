// Verification server: the tta_verify_batch --stream JSON-lines protocol
// served over a loopback TCP socket (docs/SERVICE.md).
//
// One process hosts one svc::AsyncService; every accepted connection gets
// its own svc::Session and its own thread, so many clients multiplex onto
// the shared worker pool, result cache, and persistent cache. The wire
// protocol is strictly line-framed and symmetric with the batch tool:
//
//   request   one svc::WireRequest per line — the tta_verify_batch job
//             grammar plus optional "priority" (dispatch QoS across ALL
//             connections) and "id" (opaque tag echoed on the response);
//   response  one svc::result_json row per concluded job, in completion
//             order, ts_ms measured from the connection's first byte;
//   progress  campaign jobs additionally stream {"progress":1,...} rows
//             (one per completed trial batch) with the running estimate
//             and Wilson interval; result rows never carry "progress";
//   error     {"error":"<reason>","line":N} for a malformed request line
//             (the connection stays up — one bad line costs one answer).
//
// Lifecycle contract:
//   - client half-close (shutdown of its write side) means "no more
//     requests": the session finishes every pending job, streams the
//     answers, then the server closes;
//   - abrupt disconnect mid-stream drains the session (running jobs
//     conclude, queued jobs are rejected) and discards the answers —
//     counted in Metrics::net_drains, conclusive verdicts still land in
//     the caches for the client's retry;
//   - SIGTERM / SIGINT stop the accept loop and drain every connection:
//     queued jobs come back as explicit rejection rows, buffered results
//     are flushed to their clients, then the process exits 0 with a final
//     metrics dump on stdout (the kill-9 recovery step in CI greps it).
//
//   ./tta_verifyd --port=0 --port-file=port.txt --workers=4
//       --cache-dir=cache/ --retries=2
//
// --port=0 (the default) binds an ephemeral port; the actually-bound port
// is printed on stdout and, with --port-file, written atomically (tmp +
// rename) so scripts can wait for the file instead of parsing logs.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include <cerrno>

#include "svc/async_service.h"
#include "util/digest.h"
#include "util/fail_point.h"
#include "util/socket.h"

using namespace tta;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--port=N] [--port-file=FILE] [--workers=N] "
               "[--cache=N]\n"
               "          [--cache-dir=DIR] [--checkpoint-dir=DIR] "
               "[--retries=N]\n"
               "Serves the tta_verify_batch --stream protocol on "
               "127.0.0.1 (docs/SERVICE.md).\n",
               argv0);
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

bool write_port_file(const std::string& path, std::uint16_t port) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (!f) return false;
  std::fprintf(f, "%u\n", port);
  std::fclose(f);
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// The server side of one connection: owns the Session, alternates between
/// reading request lines and flushing concluded results, and settles the
/// session (drain) on every exit path.
void serve_connection(util::LineConn conn, svc::AsyncService* service) {
  using Io = util::LineConn::Io;
  svc::Metrics& metrics = service->metrics();
  metrics.net_connections.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<svc::Session> session = service->open_session();
  const auto start = std::chrono::steady_clock::now();

  struct PendingJob {
    svc::JobSpec spec;
    std::string id;
    svc::JobHandle handle;
    /// Batches already reported in a progress row (campaign jobs only);
    /// a row goes out only when the worker has crossed a new boundary.
    std::uint64_t last_batches = 0;
  };
  std::unordered_map<std::uint64_t, PendingJob> pending;  // by sequence
  std::string line;
  bool reading = true;   ///< false after half-close / error / shutdown
  bool broken = false;   ///< the write side failed: nobody is listening
  bool drained = false;  ///< drain() already ran (shutdown path)
  int lineno = 0;

  const auto ts_ms = [&] {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start)
        .count();
  };
  auto emit = [&](const std::string& out) {
    if (broken) return;
    if (conn.write_line(out, 30'000) == Io::kOk) {
      metrics.net_lines_out.fetch_add(1, std::memory_order_relaxed);
    } else {
      broken = true;
    }
  };
  const auto number = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  // Campaign jobs stream advisory progress rows between responses: one
  // {"progress":1,...} row per newly completed batch, carrying the running
  // Wilson interval (docs/SERVICE.md). Clients that only want final rows
  // can filter on the "progress" key — result rows never carry it.
  auto emit_progress_row = [&](std::uint64_t seq, PendingJob& job,
                               const char* state, std::uint64_t trials,
                               std::uint64_t failures, std::uint64_t batches,
                               double p_hat, double ci_low, double ci_high) {
    job.last_batches = batches;
    std::string row = "{";
    if (!job.id.empty()) {
      row += "\"id\":\"" + svc::json_escape(job.id) + "\",";
    }
    row += "\"progress\":1";
    row += ",\"seq\":" + std::to_string(seq);
    row += ",\"ts_ms\":" + number(ts_ms());
    row += ",\"digest\":\"" + util::digest_hex(job.handle.digest) + "\"";
    row += ",\"state\":\"";
    row += state;
    row += "\",\"trials\":" + std::to_string(trials);
    row += ",\"failures\":" + std::to_string(failures);
    row += ",\"batches\":" + std::to_string(batches);
    row += ",\"p_hat\":" + number(p_hat);
    row += ",\"ci_low\":" + number(ci_low);
    row += ",\"ci_high\":" + number(ci_high);
    row += "}";
    emit(row);
  };
  auto flush_progress = [&] {
    for (auto& [seq, job] : pending) {
      if (broken) return;
      if (job.spec.kind != svc::JobKind::kCampaign) continue;
      const std::optional<svc::JobProgress> p =
          session->progress(job.handle);
      if (!p || !p->has_campaign ||
          p->campaign_batches <= job.last_batches) {
        continue;
      }
      emit_progress_row(seq, job, svc::to_string(p->state),
                        p->campaign_trials, p->campaign_failures,
                        p->campaign_batches, p->campaign_p_hat,
                        p->campaign_ci_low, p->campaign_ci_high);
    }
  };

  for (;;) {
    if (g_stop.load(std::memory_order_relaxed) && !drained) {
      // Server shutdown: no more requests; queued jobs conclude as
      // explicit rejection rows, running jobs finish honestly. The
      // buffered answers below still go out to the client.
      reading = false;
      session->drain();
      drained = true;
    }
    if (broken) break;
    if (!reading && pending.empty() && session->results().buffered() == 0 &&
        !drained) {
      break;  // every accepted request answered; close cleanly
    }

    if (reading) {
      switch (conn.read_line(&line, 20)) {
        case Io::kOk: {
          ++lineno;
          metrics.net_lines_in.fetch_add(1, std::memory_order_relaxed);
          svc::WireRequest request;
          std::string error;
          if (!svc::parse_request_line(line, &request, &error)) {
            metrics.net_malformed.fetch_add(1, std::memory_order_relaxed);
            emit("{\"error\":\"" + svc::json_escape(error) +
                 "\",\"line\":" + std::to_string(lineno) + "}");
            continue;
          }
          const svc::JobHandle handle =
              session->submit(request.spec, request.priority);
          if (handle.valid()) {
            pending.emplace(handle.sequence,
                            PendingJob{request.spec, std::move(request.id),
                                       handle, 0});
          } else {
            // Hard rejection (stream saturated): the session could not
            // even buffer a rejection row, so synthesize it here.
            svc::JobResult rejected;
            rejected.digest = handle.digest;
            rejected.property = request.spec.property;
            rejected.outcome.rejected = true;
            emit(svc::result_json(request.spec, rejected, /*pass=*/1,
                                  /*seq=*/0, ts_ms(), request.id));
          }
          continue;  // greedy: accept the whole burst before blocking
        }
        case Io::kTimeout:
          break;  // nothing to read right now; flush results below
        case Io::kEof:
          reading = false;  // half-close: answer everything, then close
          break;
        case Io::kError:
          broken = true;
          continue;
      }
    }

    flush_progress();

    // Flush concluded results; block only when there is nothing to read.
    svc::StreamedResult item;
    const auto wait = std::chrono::milliseconds(reading ? 0 : 50);
    switch (session->results().next_for(wait, &item)) {
      case util::PopStatus::kItem: {
        const auto it = pending.find(item.handle.sequence);
        if (it != pending.end()) {
          // A campaign that outran the poll above still reports its last
          // batch: every campaign answer is preceded by at least one
          // progress row, however fast the job was.
          if (item.result.has_campaign &&
              item.result.campaign.batches > it->second.last_batches) {
            const svc::CampaignEstimate& c = item.result.campaign;
            emit_progress_row(item.handle.sequence, it->second, "done",
                              c.trials, c.failures, c.batches, c.p_hat,
                              c.ci_low, c.ci_high);
          }
          emit(svc::result_json(it->second.spec, item.result, /*pass=*/1,
                                item.handle.sequence, ts_ms(),
                                it->second.id));
          pending.erase(it);
        }
        break;
      }
      case util::PopStatus::kTimeout:
        break;
      case util::PopStatus::kEnded:
        pending.clear();
        goto done;  // drained stream fully flushed (or was already empty)
    }
  }
done:

  if (!drained) {
    if (broken && !pending.empty()) {
      // Abrupt disconnect with answers still owed: drain and discard.
      // Conclusive verdicts were already cached, so a reconnecting client
      // gets them instantly.
      metrics.net_drains.fetch_add(1, std::memory_order_relaxed);
    }
    session->drain();
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint16_t port = 0;
  std::string port_file;
  svc::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--port", &v)) {
      const unsigned long parsed = std::strtoul(v, nullptr, 10);
      if (parsed > 65535) return usage(argv[0]);
      port = static_cast<std::uint16_t>(parsed);
    } else if (flag_value(argv[i], "--port-file", &v)) {
      port_file = v;
    } else if (flag_value(argv[i], "--workers", &v)) {
      config.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--cache", &v)) {
      config.cache_capacity = std::strtoul(v, nullptr, 10);
    } else if (flag_value(argv[i], "--cache-dir", &v)) {
      config.cache_dir = v;
    } else if (flag_value(argv[i], "--checkpoint-dir", &v)) {
      config.checkpoint_dir = v;
    } else if (flag_value(argv[i], "--retries", &v)) {
      config.retry.max_attempts =
          1 + static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else {
      return usage(argv[0]);
    }
  }

  // SIGTERM/SIGINT request the drain-then-exit path; SIGPIPE must never
  // kill the process (writes use MSG_NOSIGNAL, this is belt-and-braces).
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  std::string error;
  std::uint16_t bound = 0;
  util::Socket listener = util::Socket::listen_on(port, &bound, &error);
  if (!listener.valid()) {
    std::fprintf(stderr, "tta_verifyd: %s\n", error.c_str());
    return 2;
  }
  if (!port_file.empty() && !write_port_file(port_file, bound)) {
    std::fprintf(stderr, "tta_verifyd: cannot write %s\n", port_file.c_str());
    return 2;
  }
  std::printf("tta_verifyd listening on 127.0.0.1:%u\n", bound);
  std::fflush(stdout);

  svc::AsyncService service(config);
  std::vector<std::thread> connections;
  while (!g_stop.load(std::memory_order_relaxed)) {
    int accept_errno = 0;
    util::Socket accepted = listener.accept_for(100, &accept_errno);
    if (!accepted.valid()) {
      if (accept_errno != 0) {
        // Descriptor exhaustion (EMFILE/ENFILE), a client that gave up
        // before we got to it (ECONNABORTED), or an injected fault: none
        // of these are reasons to stop serving everyone else. Log, count,
        // give transient conditions a moment to clear, and poll again —
        // the pending connection waits in the listen backlog.
        service.metrics().net_accept_errors.fetch_add(
            1, std::memory_order_relaxed);
        std::fprintf(stderr, "tta_verifyd: accept: %s — backing off\n",
                     std::strerror(accept_errno));
        if (accept_errno != ECONNABORTED) {
          std::this_thread::sleep_for(std::chrono::milliseconds(50));
        }
      }
      continue;  // timeout (or survived error) — poll again
    }
    connections.emplace_back(
        [sock = std::move(accepted), &service]() mutable {
          serve_connection(util::LineConn(std::move(sock)), &service);
        });
  }
  listener.close();  // refuse new clients while existing ones drain
  for (std::thread& t : connections) t.join();

  std::printf("tta_verifyd: drained %zu connection(s), exiting\n",
              connections.size());
  std::printf("%s", service.metrics().dump().c_str());
  // Chaos observability: when TTA_FAILPOINTS armed anything, show what
  // actually fired so a chaos log explains its own metric deltas.
  std::printf("%s", util::FailPoints::instance().render().c_str());
  return 0;
}
