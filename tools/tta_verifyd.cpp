// Verification server: the tta_verify_batch --stream JSON-lines protocol
// served over a loopback TCP socket (docs/SERVICE.md).
//
// This binary is a thin main() over svc::Server — flag parsing is
// svc::ServerConfig::from_args, the event loop, multi-tenant quota gate,
// and weighted-fair dispatch all live in src/svc/server.{h,cpp}. One
// process hosts one svc::AsyncService; every accepted connection gets its
// own svc::Session, and a single poll(2) loop serves them all from one
// thread, so thousands of idle or slow clients cost fds and buffers, not
// threads.
//
// Lifecycle contract (unchanged from the thread-per-connection server):
//   - client half-close means "no more requests": the session finishes
//     every pending job, streams the answers, then the server closes;
//   - abrupt disconnect mid-stream drains the session and discards the
//     answers — counted in Metrics::net_drains, conclusive verdicts still
//     land in the caches for the client's retry;
//   - SIGTERM / SIGINT close the listener and drain every connection:
//     queued jobs come back as explicit rejection rows, buffered results
//     are flushed to their clients, then the process exits 0 with a final
//     metrics dump on stdout (the kill-9 recovery step in CI greps it).
//
//   ./tta_verifyd --port=0 --port-file=port.txt --workers=4
//       --cache-dir=cache/ --retries=2 --tenant=batch:3:64:100000000
//
// --port=0 (the default) binds an ephemeral port; the actually-bound port
// is printed on stdout and, with --port-file, written atomically (tmp +
// rename) so scripts can wait for the file instead of parsing logs.
#include <csignal>
#include <cstdio>

#include <string>

#include "svc/server.h"
#include "util/fail_point.h"

using namespace tta;

namespace {

svc::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  svc::ServerConfig config;
  std::string error;
  if (!config.from_args(argc, argv, &error)) {
    std::fprintf(stderr, "tta_verifyd: %s\n%s", error.c_str(),
                 svc::ServerConfig::usage());
    return 2;
  }

  svc::Server server(std::move(config));

  // SIGTERM/SIGINT request the drain-then-exit path; SIGPIPE must never
  // kill the process (writes use MSG_NOSIGNAL, this is belt-and-braces).
  g_server = &server;
  struct sigaction sa = {};
  sa.sa_handler = on_signal;
  sigaction(SIGTERM, &sa, nullptr);
  sigaction(SIGINT, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);

  if (!server.start(&error)) {
    std::fprintf(stderr, "tta_verifyd: %s\n", error.c_str());
    return 2;
  }
  server.run();

  std::printf("tta_verifyd: drained %zu connection(s), exiting\n",
              server.drained_connections());
  std::printf("%s", server.metrics().dump().c_str());
  // Per-tenant admission rows (run() has returned, so the loop-thread
  // gauges are quiescent and safe to read here).
  std::printf("%s", server.tenant_metrics_dump().c_str());
  // Chaos observability: when TTA_FAILPOINTS armed anything, show what
  // actually fired so a chaos log explains its own metric deltas.
  std::printf("%s", util::FailPoints::instance().render().c_str());
  return 0;
}
