// Batched model-checking driver for the verification job service.
//
// Reads a JSON-lines job file (one JobSpec per line, '#' comments and
// blank lines ignored), submits the whole batch to one svc::AsyncService
// session — admission, cheapest-config-first dispatch, result cache,
// per-job soft deadlines — and prints one verdict row per job *as each
// concludes* (completion order; the job column keys rows back to the
// submission order). After the batch, the service metrics snapshot.
//
//   ./tta_verify_batch tools/e1_grid.jobs --passes=2 --json=results.json
//
// --stream additionally emits one self-contained JSON object per job on
// stdout the moment it concludes (svc::result_json — timestamped with
// milliseconds since the pass started), so a consumer piping this tool
// sees verdicts incrementally instead of waiting for the batch.
// --json=FILE collects the same per-job records into a single document
// via bench/bench_json.h after all passes.
//
// --passes=N re-submits the same batch N times; every pass after the
// first should be served almost entirely from the result cache, which the
// printed hit rate makes visible.
//
// Fault-tolerance flags (docs/SERVICE.md): --cache-dir=DIR persists
// conclusive results across process restarts (crash-safe journal +
// snapshot); --checkpoint-dir=DIR lets interrupted engine runs resume at
// their last BFS level; --retries=N re-admits inconclusive jobs up to N
// times with exponential backoff and deadline escalation; --redundant
// forces every job through both engines with cross-checked verdicts.
//
// Exit status: 0 when every job in the final pass ended conclusively
// (HOLDS or VIOLATED — a violated property is an answer, not a tool
// failure), 1 when any job ended rejected, inconclusive, or diverged,
// 2 on usage/input errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench_json.h"
#include "svc/async_service.h"
#include "svc/wire.h"
#include "util/digest.h"

using namespace tta;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s JOBFILE [--passes=N] [--workers=N] [--cache=N] "
               "[--json=FILE]\n"
               "          [--cache-dir=DIR] [--checkpoint-dir=DIR] "
               "[--retries=N] [--redundant] [--stream]\n"
               "JOBFILE holds one JSON job per line, e.g.\n"
               "  {\"authority\": \"full_shifting\", \"property\": "
               "\"safety\", \"max_oos\": 1, \"deadline_ms\": 5000}\n",
               argv0);
  return 2;
}

bool flag_value(const char* arg, const char* name, const char** out) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = arg + len + 1;
  return true;
}

const char* verdict_cell(const svc::JobResult& r) {
  if (r.outcome.rejected) return "REJECTED";
  if (r.stats.cancelled) return "DEADLINE";
  return mc::to_string(r.verdict);
}

void print_row(std::size_t job, const svc::JobSpec& spec,
               const svc::JobResult& r) {
  std::printf("%-4zu %-16s %-22s %-14s %-12s %10llu %9.4f %7zu %6s\n", job,
              util::digest_hex(r.digest).c_str(),
              svc::config_label(spec).c_str(),
              svc::to_string(spec.property), verdict_cell(r),
              static_cast<unsigned long long>(r.stats.states_explored),
              r.stats.seconds, r.trace.size(),
              r.from_cache ? "yes" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  std::string job_path;
  std::string json_path;
  unsigned passes = 1;
  bool redundant = false;
  bool stream = false;
  svc::ServiceConfig config;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (flag_value(argv[i], "--passes", &v)) {
      passes = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--workers", &v)) {
      config.workers = static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (flag_value(argv[i], "--cache", &v)) {
      config.cache_capacity = std::strtoul(v, nullptr, 10);
    } else if (flag_value(argv[i], "--cache-dir", &v)) {
      config.cache_dir = v;
    } else if (flag_value(argv[i], "--checkpoint-dir", &v)) {
      config.checkpoint_dir = v;
    } else if (flag_value(argv[i], "--retries", &v)) {
      config.retry.max_attempts =
          1 + static_cast<unsigned>(std::strtoul(v, nullptr, 10));
    } else if (std::strcmp(argv[i], "--redundant") == 0) {
      redundant = true;
    } else if (std::strcmp(argv[i], "--stream") == 0) {
      stream = true;
    } else if (flag_value(argv[i], "--json", &v)) {
      json_path = v;
    } else if (argv[i][0] == '-') {
      return usage(argv[0]);
    } else if (job_path.empty()) {
      job_path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (job_path.empty() || passes == 0) return usage(argv[0]);

  std::ifstream in(job_path);
  if (!in) {
    std::fprintf(stderr, "cannot open job file %s\n", job_path.c_str());
    return 2;
  }
  std::vector<svc::JobSpec> jobs;
  std::string line;
  for (int lineno = 1; std::getline(in, line); ++lineno) {
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    svc::JobSpec spec;
    std::string error;
    if (!svc::parse_job_line(line, &spec, &error)) {
      std::fprintf(stderr, "%s:%d: %s\n", job_path.c_str(), lineno,
                   error.c_str());
      return 2;
    }
    jobs.push_back(spec);
  }
  if (jobs.empty()) {
    std::fprintf(stderr, "%s: no jobs\n", job_path.c_str());
    return 2;
  }

  if (redundant) {
    for (svc::JobSpec& spec : jobs) spec.engine = svc::EngineChoice::kRedundant;
  }

  svc::AsyncService service(config);
  bench::JsonWriter json;
  std::size_t final_failures = 0;
  for (unsigned pass = 1; pass <= passes; ++pass) {
    std::printf("pass %u/%u: %zu jobs\n", pass, passes, jobs.size());
    std::printf("%-4s %-16s %-22s %-14s %-12s %10s %9s %7s %6s\n", "job",
                "digest", "config", "property", "verdict", "states",
                "seconds", "trace", "cached");

    const auto pass_start = std::chrono::steady_clock::now();
    std::shared_ptr<svc::Session> session = service.open_session();
    std::vector<svc::JobResult> results(jobs.size());
    std::unordered_map<std::uint64_t, std::size_t> by_sequence;
    by_sequence.reserve(jobs.size());
    std::size_t expected = 0;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const svc::JobHandle handle = session->submit(jobs[i]);
      if (handle.valid()) {
        by_sequence.emplace(handle.sequence, i);
        ++expected;
      } else {
        // Not even the rejection notice fit the stream; report it here.
        results[i].digest = handle.digest;
        results[i].property = jobs[i].property;
        results[i].outcome.rejected = true;
        print_row(i, jobs[i], results[i]);
        if (stream) {
          std::printf("%s\n",
                      svc::result_json(jobs[i], results[i], pass, 0, 0.0)
                          .c_str());
          std::fflush(stdout);
        }
      }
    }

    // Rows print the moment each job concludes — completion order, which
    // with cheapest-first dispatch is the early-feedback order.
    while (expected > 0) {
      std::optional<svc::StreamedResult> item = session->results().next();
      if (!item) break;  // stream ended early (service shutdown)
      auto it = by_sequence.find(item->handle.sequence);
      if (it == by_sequence.end()) continue;
      const std::size_t i = it->second;
      results[i] = std::move(item->result);
      --expected;
      print_row(i, jobs[i], results[i]);
      if (stream) {
        const double ts_ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - pass_start)
                .count();
        std::printf("%s\n", svc::result_json(jobs[i], results[i], pass,
                                             item->handle.sequence, ts_ms)
                                .c_str());
        std::fflush(stdout);
      }
    }
    session->drain();

    for (std::size_t i = 0; i < results.size(); ++i) {
      const svc::JobResult& r = results[i];
      char name[48];
      std::snprintf(name, sizeof name, "pass%u job%zu", pass, i);
      json.begin_entry(name);
      json.field("digest", util::digest_hex(r.digest));
      json.field("config", svc::config_label(jobs[i]));
      json.field("property", std::string(svc::to_string(jobs[i].property)));
      json.field("engine", std::string(svc::to_string(r.engine_used)));
      json.field("verdict", std::string(mc::to_string(r.verdict)));
      json.field("deadline_hit", std::uint64_t{r.stats.cancelled});
      json.field("from_cache", std::uint64_t{r.from_cache});
      json.field("states", r.stats.states_explored);
      json.field("transitions", r.stats.transitions);
      json.field("trace_len", std::uint64_t{r.trace.size()});
      json.field("dead_states", r.dead_states);
      json.field("engine_seconds", r.stats.seconds);
      json.field("queue_seconds", r.queue_seconds);
      json.field("from_persistent", std::uint64_t{r.from_persistent});
      json.field("resumed", std::uint64_t{r.stats.resumed});
      json.raw("outcome", r.outcome.to_json());
    }

    // Per-class summary, plus the final pass's failure count for the exit
    // status: rejected / inconclusive / diverged jobs mean the batch did
    // not fully answer its queries.
    std::size_t holds = 0, violated = 0, inconclusive = 0, divergence = 0,
                rejected = 0;
    std::uint64_t attempts = 0;
    for (const svc::JobResult& r : results) {
      attempts += r.outcome.attempts.size();
      if (r.outcome.rejected) {
        ++rejected;
      } else if (r.verdict == mc::Verdict::kHolds) {
        ++holds;
      } else if (r.verdict == mc::Verdict::kViolated) {
        ++violated;
      } else if (r.verdict == mc::Verdict::kEngineDivergence) {
        ++divergence;
      } else {
        ++inconclusive;
      }
    }
    std::printf("summary: holds=%zu violated=%zu inconclusive=%zu "
                "divergence=%zu rejected=%zu attempts=%llu\n\n",
                holds, violated, inconclusive, divergence, rejected,
                static_cast<unsigned long long>(attempts));
    final_failures = inconclusive + divergence + rejected;
  }

  std::printf("service metrics after %u pass(es):\n%s", passes,
              service.metrics().dump().c_str());
  if (!json_path.empty()) {
    json.begin_entry("metrics");
    json.field("cache_hit_rate", service.metrics().cache_hit_rate());
    json.field("states_per_second", service.metrics().states_per_second());
    json.field("jobs_cancelled",
               service.metrics().jobs_cancelled.load());
    json.field("persistent_hits",
               service.metrics().persistent_hits.load());
    json.field("checkpoint_resumes",
               service.metrics().checkpoint_resumes.load());
    json.field("engine_divergence",
               service.metrics().engine_divergence.load());
    json.write(json_path, "tta_verify_batch");
  }
  return final_failures == 0 ? 0 : 1;
}
