// Formal side of the reproduction: exhaustively model-check the paper's
// correctness property for each star-coupler authority level, and print the
// narrated counterexample for the one that fails.
//
//   ./model_check_demo [max_out_of_slot_errors]   (default 1, as the paper)
#include <cstdio>
#include <cstdlib>

#include "mc/checker.h"
#include "mc/trace_printer.h"

using namespace tta;

int main(int argc, char** argv) {
  unsigned max_oos =
      argc > 1 ? static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10)) : 1;

  std::printf("Property: no single star-coupler fault may force a node that "
              "has integrated (active/passive) into the freeze state.\n\n");

  for (guardian::Authority authority : guardian::kAllAuthorities) {
    mc::ModelConfig config;
    config.authority = authority;
    config.max_out_of_slot_errors = max_oos;

    mc::TtpcStarModel model(config);
    mc::Checker checker(model);
    mc::CheckResult result =
        checker.check(mc::no_integrated_node_freezes());

    std::printf("%-15s : %s  (%llu states, %llu transitions, %.3f s)\n",
                guardian::to_string(authority),
                result.holds() ? "property HOLDS (exhaustive)"
                             : "property VIOLATED",
                static_cast<unsigned long long>(
                    result.stats.states_explored),
                static_cast<unsigned long long>(result.stats.transitions),
                result.stats.seconds);

    if (!result.holds()) {
      mc::TracePrinter printer(model);
      std::printf("\nshortest counterexample (%zu steps):\n%s\n",
                  result.trace.size(),
                  printer.narrate(result.trace).c_str());
    }
  }

  std::printf("Compare with the paper's Section 5.2: the three non-buffering "
              "feature sets verify; full shifting yields the replayed-frame "
              "counterexample.\n");
  return 0;
}
