// Quickstart: bring up a 4-node TTP/C cluster on a star topology and watch
// the protocol work — listen timeouts, big-bang cold start, integration,
// clique-avoidance promotion to active, and the membership service filling
// in.
//
//   ./quickstart
#include <cstdio>

#include "sim/cluster.h"

using namespace tta;

int main() {
  sim::ClusterConfig config;
  config.topology = sim::Topology::kStar;
  config.guardian.authority = guardian::Authority::kSmallShifting;

  sim::Cluster cluster(config, sim::FaultInjector{});

  std::printf("Starting a 4-node TTA cluster (star topology, central "
              "guardians with small-shifting authority)...\n\n");
  bool ok = cluster.run_until_all_healthy_active(200);

  std::printf("%s\n", cluster.log().render().c_str());

  if (!ok) {
    std::printf("startup FAILED\n");
    return 1;
  }

  std::printf("All %u nodes reached the active state after %llu TDMA "
              "slots.\n",
              config.protocol.num_nodes,
              static_cast<unsigned long long>(cluster.now()));
  std::printf("Final membership views (one bit per node):\n");
  for (ttpc::NodeId id = 1; id <= config.protocol.num_nodes; ++id) {
    std::printf("  node %u: state=%s membership=0x%04x\n", id,
                ttpc::to_string(cluster.node(id).state().state),
                cluster.node(id).membership());
  }

  std::printf("\nThings to notice in the log above:\n"
              " * node 1's listen timeout expires first (timeout = slots + "
              "node id), so it cold-starts;\n"
              " * the other nodes ignore its *first* cold-start frame (the "
              "big-bang rule) and integrate on the second;\n"
              " * passive nodes are promoted to active by the clique test "
              "at their round boundary once agreed > failed.\n");
  return 0;
}
