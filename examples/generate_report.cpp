// Regenerates the full reproduction report (all experiments E1..E11) as a
// single markdown document.
//
//   ./generate_report [output.md]        (stdout if no file given)
#include <cstdio>

#include "core/report.h"

int main(int argc, char** argv) {
  tta::core::ReportOptions options;
  std::string report = tta::core::generate_report(options);

  if (argc > 1) {
    std::FILE* f = std::fopen(argv[1], "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", argv[1]);
      return 1;
    }
    std::fwrite(report.data(), 1, report.size(), f);
    std::fclose(f);
    std::printf("wrote %zu bytes to %s\n", report.size(), argv[1]);
  } else {
    std::fwrite(report.data(), 1, report.size(), stdout);
  }
  return 0;
}
