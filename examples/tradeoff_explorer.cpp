// Interactive use of the Section 6 analysis: feed in your own design point
// (frame-size range, line encoding, clock tolerance) and get the guardian
// buffer bounds, the feasibility verdict, and the headroom in every
// direction.
//
//   ./tradeoff_explorer [--verify] [f_min f_max le rho]
//   ./tradeoff_explorer 28 2076 4 0.0002        # TTP/C (default)
//   ./tradeoff_explorer 28 2076 4 0.02          # loose clocks: infeasible
//
// With --verify the analytic verdict is backed by model checking: the E1
// authority matrix plus the recoverability query for the buffering coupler
// run as one batch through the verification job service.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/sweep.h"
#include "core/experiments.h"
#include "core/tradeoff.h"
#include "guardian/forwarder.h"
#include "svc/service.h"
#include "wire/line_coding.h"

using namespace tta;

namespace {

// Batched service run backing the analytic feasibility verdict with model
// checking: if a design point forces the guardian to buffer whole frames
// (full shifting), the safety property falls and replay damage is
// permanent without host reintegration; if it doesn't, both hold.
void run_verification_batch() {
  std::printf("--verify: batched model-checking run through the "
              "verification job service\n\n");
  std::vector<svc::JobSpec> jobs = core::feature_matrix_jobs();
  for (bool reinit : {true, false}) {
    svc::JobSpec spec;
    spec.model.authority = guardian::Authority::kFullShifting;
    spec.model.max_out_of_slot_errors = 1;
    spec.model.protocol.allow_reinit = reinit;
    spec.property = svc::Property::kRecoverability;
    jobs.push_back(spec);
  }

  svc::VerificationService service;
  std::vector<svc::JobResult> results = service.run_batch(jobs);
  std::printf("%-16s %-16s %-14s %10s %9s\n", "authority", "property",
              "verdict", "states", "seconds");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const svc::JobResult& r = results[i];
    char prop[32];
    std::snprintf(prop, sizeof prop, "%s%s", svc::to_string(jobs[i].property),
                  jobs[i].property == svc::Property::kRecoverability
                      ? (jobs[i].model.protocol.allow_reinit ? "+reinit" : "")
                      : "");
    std::printf("%-16s %-16s %-14s %10llu %9.3f\n",
                guardian::to_string(jobs[i].model.authority), prop,
                mc::to_string(r.verdict),
                static_cast<unsigned long long>(r.stats.states_explored),
                r.stats.seconds);
  }
  std::printf("\n=> buffering (full shifting) is the only authority whose "
              "safety verdict falls, and its replay damage is permanent "
              "unless hosts reintegrate frozen nodes.\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  bool verify = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      --argc;
      break;
    }
  }

  core::DesignPoint point = core::TradeoffAnalyzer::ttpc_default();
  if (argc == 5) {
    point.f_min_bits = std::strtoll(argv[1], nullptr, 10);
    point.f_max_bits = std::strtoll(argv[2], nullptr, 10);
    point.le_bits = static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10));
    point.rho = std::strtod(argv[4], nullptr);
  } else if (argc != 1) {
    std::printf("usage: %s [--verify] [f_min f_max le rho]\n", argv[0]);
    return 2;
  }

  core::DesignReport report = core::TradeoffAnalyzer::analyze(point);
  std::printf("%s\n", core::TradeoffAnalyzer::render(point, report).c_str());

  // Cross-check the analytic B_min with a bit-clock measurement.
  if (point.rho > 0.0 && point.rho < 0.5) {
    auto ppm = static_cast<std::int64_t>(point.rho / 2.0 * 1e6);
    if (ppm >= 1) {
      util::Rational node(1'000'000 - ppm, 1'000'000);
      util::Rational hub(1'000'000 + ppm, 1'000'000);
      guardian::BitstreamForwarder fwd(node, hub,
                                       wire::LineCoding(point.le_bits));
      std::printf("bit-clock measurement: forwarding a %lld-bit frame "
                  "between clocks skewed by rho=%.6g needs %lld buffered "
                  "bits (eq 1 predicts %.2f).\n\n",
                  static_cast<long long>(point.f_max_bits), point.rho,
                  static_cast<long long>(
                      fwd.min_buffer_bits(point.f_max_bits)),
                  report.b_min_bits);
    }
  }

  if (!report.feasible) {
    std::printf("This design point is INFEASIBLE: the guardian would need "
                "to buffer more than a whole minimum-size frame, which — "
                "as the model-checking experiments show — makes the "
                "out-of-slot replay fault possible.\nOptions: shorten "
                "f_max below %.0f bits, lengthen f_min, or tighten clocks "
                "below rho = %.4g.\n",
                report.max_f_max_bits, report.max_rho);
  }

  if (verify) run_verification_batch();

  std::printf("Section 6 worked examples for reference:\n%s",
              analysis::section6_worked_examples().c_str());
  return report.feasible ? 0 : 1;
}
