// Interactive use of the Section 6 analysis: feed in your own design point
// (frame-size range, line encoding, clock tolerance) and get the guardian
// buffer bounds, the feasibility verdict, and the headroom in every
// direction.
//
//   ./tradeoff_explorer [f_min f_max le rho]
//   ./tradeoff_explorer 28 2076 4 0.0002        # TTP/C (default)
//   ./tradeoff_explorer 28 2076 4 0.02          # loose clocks: infeasible
#include <cstdio>
#include <cstdlib>

#include "analysis/sweep.h"
#include "core/tradeoff.h"
#include "guardian/forwarder.h"
#include "wire/line_coding.h"

using namespace tta;

int main(int argc, char** argv) {
  core::DesignPoint point = core::TradeoffAnalyzer::ttpc_default();
  if (argc == 5) {
    point.f_min_bits = std::strtoll(argv[1], nullptr, 10);
    point.f_max_bits = std::strtoll(argv[2], nullptr, 10);
    point.le_bits = static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10));
    point.rho = std::strtod(argv[4], nullptr);
  } else if (argc != 1) {
    std::printf("usage: %s [f_min f_max le rho]\n", argv[0]);
    return 2;
  }

  core::DesignReport report = core::TradeoffAnalyzer::analyze(point);
  std::printf("%s\n", core::TradeoffAnalyzer::render(point, report).c_str());

  // Cross-check the analytic B_min with a bit-clock measurement.
  if (point.rho > 0.0 && point.rho < 0.5) {
    auto ppm = static_cast<std::int64_t>(point.rho / 2.0 * 1e6);
    if (ppm >= 1) {
      util::Rational node(1'000'000 - ppm, 1'000'000);
      util::Rational hub(1'000'000 + ppm, 1'000'000);
      guardian::BitstreamForwarder fwd(node, hub,
                                       wire::LineCoding(point.le_bits));
      std::printf("bit-clock measurement: forwarding a %lld-bit frame "
                  "between clocks skewed by rho=%.6g needs %lld buffered "
                  "bits (eq 1 predicts %.2f).\n\n",
                  static_cast<long long>(point.f_max_bits), point.rho,
                  static_cast<long long>(
                      fwd.min_buffer_bits(point.f_max_bits)),
                  report.b_min_bits);
    }
  }

  if (!report.feasible) {
    std::printf("This design point is INFEASIBLE: the guardian would need "
                "to buffer more than a whole minimum-size frame, which — "
                "as the model-checking experiments show — makes the "
                "out-of-slot replay fault possible.\nOptions: shorten "
                "f_max below %.0f bits, lengthen f_min, or tighten clocks "
                "below rho = %.4g.\n",
                report.max_f_max_bits, report.max_rho);
  }

  std::printf("Section 6 worked examples for reference:\n%s",
              analysis::section6_worked_examples().c_str());
  return report.feasible ? 0 : 1;
}
