// The reproduction's three fidelity levels, side by side, on the same
// scenario: cluster startup plus a single out-of-slot replay by a
// full-shifting coupler.
//
//   level 1: the formal model's verdict (exhaustive, from the checker)
//   level 2: the frame-level simulator (abstract frames + membership)
//   level 3: the wire cluster (real encoded frames, CRCs, buffered bits)
//
//   ./wire_level_demo
#include <cstdio>

#include "mc/checker.h"
#include "sim/cluster.h"
#include "sim/wire_cluster.h"

using namespace tta;

int main() {
  // Level 1 — the formal verdict.
  {
    mc::ModelConfig cfg;
    cfg.authority = guardian::Authority::kFullShifting;
    cfg.max_out_of_slot_errors = 1;
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    std::printf("level 1 (model checker): property %s for full-shifting "
                "couplers — shortest counterexample %zu steps.\n",
                res.holds() ? "HOLDS" : "VIOLATED", res.trace.size());
  }

  // Levels 2 and 3 — the same concrete scenario at two fidelities.
  sim::FaultInjector frame_fi, wire_fi;
  frame_fi.add(sim::CouplerFaultWindow{
      0, guardian::CouplerFault::kOutOfSlot, 13, 13});
  wire_fi.add(sim::CouplerFaultWindow{
      0, guardian::CouplerFault::kOutOfSlot, 13, 13});

  sim::ClusterConfig frame_cfg;
  frame_cfg.topology = sim::Topology::kStar;
  frame_cfg.guardian.authority = guardian::Authority::kFullShifting;
  sim::Cluster frame(frame_cfg, std::move(frame_fi));
  frame.run(60);

  sim::WireClusterConfig wire_cfg;
  wire_cfg.authority = guardian::Authority::kFullShifting;
  sim::WireCluster wire(wire_cfg, std::move(wire_fi));
  wire.run(60);

  std::printf("level 2 (frame simulator): %zu healthy node(s) expelled by "
              "clique avoidance.\n",
              frame.healthy_clique_frozen());
  std::printf("level 3 (wire cluster):    %zu node(s) expelled — the "
              "coupler literally re-drove the buffered frame image; the "
              "stale bits decode perfectly.\n\n",
              wire.clique_frozen_count());

  std::printf("wire-level trace around the fault (steps 10..20):\n\n");
  std::string log = wire.log().render();
  // Print the slice containing steps 10-20.
  std::size_t from = log.find("step   10");
  std::size_t to = log.find("step   21");
  if (from != std::string::npos) {
    std::printf("%s\n", log.substr(from, to == std::string::npos
                                             ? std::string::npos
                                             : to - from)
                            .c_str());
  }

  std::printf("Same protocol, same fault, three fidelities, one verdict: a "
              "coupler allowed to store whole frames can replay them, and "
              "a replayed frame is indistinguishable from a fresh one to "
              "an integrating node.\n");
  return 0;
}
