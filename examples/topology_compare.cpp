// Bus vs star under one selectable node fault — the comparison (after
// Ademaj et al. [7]) that motivated central guardians in the first place.
//
//   ./topology_compare [fault]
// where fault is one of: babbling, masquerade, bad_cstate, sos_value,
// sos_time (default: sos_value).
#include <cstdio>
#include <cstring>

#include "sim/cluster.h"
#include "util/table.h"

using namespace tta;

namespace {

sim::NodeFaultMode parse_fault(const char* name) {
  if (!std::strcmp(name, "babbling")) return sim::NodeFaultMode::kBabbling;
  if (!std::strcmp(name, "masquerade")) {
    return sim::NodeFaultMode::kMasqueradeColdStart;
  }
  if (!std::strcmp(name, "bad_cstate")) return sim::NodeFaultMode::kBadCState;
  if (!std::strcmp(name, "sos_value")) return sim::NodeFaultMode::kSosValue;
  if (!std::strcmp(name, "sos_time")) return sim::NodeFaultMode::kSosTime;
  return sim::NodeFaultMode::kNone;
}

}  // namespace

int main(int argc, char** argv) {
  sim::NodeFaultMode fault =
      argc > 1 ? parse_fault(argv[1]) : sim::NodeFaultMode::kSosValue;
  if (fault == sim::NodeFaultMode::kNone) {
    std::printf("usage: %s [babbling|masquerade|bad_cstate|sos_value|"
                "sos_time]\n",
                argv[0]);
    return 2;
  }

  std::printf("Injecting fault '%s' into node 1 from power-on; running 600 "
              "TDMA slots per configuration.\n\n",
              sim::to_string(fault));

  util::Table table({"topology", "guardian authority", "healthy frozen",
                     "healthy active", "masqueraded integrations",
                     "guardian blocks", "SOS slots"});

  const std::pair<sim::Topology, guardian::Authority> configs[] = {
      {sim::Topology::kBus, guardian::Authority::kPassive},
      {sim::Topology::kStar, guardian::Authority::kPassive},
      {sim::Topology::kStar, guardian::Authority::kTimeWindows},
      {sim::Topology::kStar, guardian::Authority::kSmallShifting},
  };
  for (const auto& [topology, authority] : configs) {
    sim::ClusterConfig config;
    config.topology = topology;
    config.guardian.authority = authority;
    config.keep_log = false;
    if (fault == sim::NodeFaultMode::kBadCState) {
      config.power_on_steps = {0, 1, 2, 121};  // late joiner scenario
    }

    sim::FaultInjector injector;
    injector.add(sim::NodeFaultWindow{1, fault, 0, UINT64_MAX});
    sim::Cluster cluster(config, std::move(injector));
    cluster.run(600);

    std::size_t healthy_active = 0;
    for (ttpc::NodeId id = 2; id <= config.protocol.num_nodes; ++id) {
      healthy_active +=
          cluster.node(id).state().state == ttpc::CtrlState::kActive;
    }
    const sim::ClusterMetrics& m = cluster.metrics();
    table.add_row(
        {sim::to_string(topology), guardian::to_string(authority),
         std::to_string(cluster.healthy_clique_frozen()),
         std::to_string(healthy_active),
         std::to_string(m.masquerade_integrations),
         std::to_string(m.guardian_blocks_window + m.guardian_blocks_signal +
                        m.guardian_blocks_masquerade +
                        m.guardian_blocks_bad_cstate),
         std::to_string(m.sos_disagreements)});
  }

  std::printf("%s\n", table.render().c_str());
  std::printf("Reading: the decentralized baseline (bus + local guardians) "
              "cannot contain this fault class; the star topology contains "
              "it once the central guardian has the relevant authority — "
              "signal reshaping for SOS, activity supervision for babbling, "
              "semantic analysis for masquerade/bad C-state.\n");
  return 0;
}
