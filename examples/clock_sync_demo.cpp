// The service everything else stands on: distributed clock synchronization
// via the fault-tolerant average. Shows convergence from cold, the
// steady-state precision for a given oscillator quality, and what one
// Byzantine clock does to the ensemble.
//
//   ./clock_sync_demo [drift_spread_ppm]   (default 200 = the paper's
//                                           +-100 ppm crystals)
#include <cstdio>
#include <cstdlib>

#include "ttpc/clocksync.h"

using namespace tta;

namespace {

ttpc::SyncConfig make_ensemble(std::size_t n, double spread_ppm) {
  ttpc::SyncConfig config;
  for (std::size_t i = 0; i < n; ++i) {
    ttpc::ClockModel clock;
    clock.drift_ppm = spread_ppm *
                      (static_cast<double>(i) / static_cast<double>(n - 1) -
                       0.5);
    clock.jitter = 1e-7;
    config.clocks.push_back(clock);
  }
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  double spread = argc > 1 ? std::strtod(argv[1], nullptr) : 200.0;

  std::printf("4 clocks, drift spread %.0f ppm, resynchronizing once per "
              "1 s round with the fault-tolerant average:\n\n", spread);
  ttpc::ClockSyncSimulation sim(make_ensemble(4, spread));
  std::printf("%-6s  %-14s %-14s\n", "round", "precision [s]",
              "accuracy [s]");
  for (int round = 1; round <= 30; ++round) {
    ttpc::SyncRoundSample s = sim.run_round();
    if (round <= 5 || round % 5 == 0) {
      std::printf("%-6d  %-14.3g %-14.3g%s\n", round, s.precision,
                  s.accuracy,
                  s.precision <= sim.precision_bound() ? "" : "  (converging)");
    }
  }
  std::printf("\nanalytic steady-state bound: %.3g s\n\n",
              sim.precision_bound());

  std::printf("same ensemble with clock 2 Byzantine (its apparent send "
              "times are garbage):\n\n");
  ttpc::SyncConfig cfg = make_ensemble(4, spread);
  cfg.clocks[1].faulty = true;
  cfg.clocks[1].jitter = 0.5;
  ttpc::ClockSyncSimulation byz(cfg);
  double worst_precision = 0.0, worst_accuracy = 0.0;
  for (int round = 1; round <= 100; ++round) {
    auto s = byz.run_round();
    if (round > 50) {
      worst_precision = std::max(worst_precision, s.precision);
      worst_accuracy = std::max(worst_accuracy, s.accuracy);
    }
  }
  std::printf("healthy clocks, rounds 51..100: worst precision %.3g s, "
              "worst accuracy %.3g s — the FTA discards the liar's extreme "
              "every round.\n\n",
              worst_precision, worst_accuracy);

  std::printf("Why this matters for the paper: the achieved precision sets "
              "how tight receive windows can be; the spread of those "
              "windows across nodes is what turns a marginal frame into an "
              "SOS disagreement, and the residual clock-rate difference is "
              "the rho of eq. (2) that sizes the central guardian's "
              "buffer.\n");
  return 0;
}
