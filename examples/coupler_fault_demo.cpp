// The paper's headline failure, live in the simulator: a star coupler with
// *full-shifting* authority (it may buffer whole frames) suffers a single
// out-of-slot fault during cluster startup — it replays the buffered
// cold-start frame one slot late. Integrating nodes adopt the stale slot
// position, disagree with everyone else's C-states, and are expelled by
// clique avoidance. Run with any other authority level and the fault is
// physically impossible.
//
//   ./coupler_fault_demo [replay_step]   (default 13)
#include <cstdio>
#include <cstdlib>

#include "sim/cluster.h"

using namespace tta;

int main(int argc, char** argv) {
  std::uint64_t replay_step = argc > 1 ? std::strtoull(argv[1], nullptr, 10)
                                       : 13;

  for (guardian::Authority authority :
       {guardian::Authority::kFullShifting,
        guardian::Authority::kSmallShifting}) {
    sim::ClusterConfig config;
    config.topology = sim::Topology::kStar;
    config.guardian.authority = authority;

    sim::FaultInjector injector;
    injector.add(sim::CouplerFaultWindow{
        0, guardian::CouplerFault::kOutOfSlot, replay_step, replay_step});

    sim::Cluster cluster(config, std::move(injector));
    cluster.run(60);

    std::printf("=== coupler authority: %s — out-of-slot fault scheduled at "
                "step %llu ===\n\n",
                guardian::to_string(authority),
                static_cast<unsigned long long>(replay_step));
    std::printf("%s\n", cluster.log().render(40).c_str());

    auto frozen = cluster.ever_clique_frozen();
    if (frozen.empty()) {
      std::printf("-> no node was expelled");
      if (!guardian::can_buffer_frames(authority)) {
        std::printf(" (a %s coupler holds no frames, so there is nothing "
                    "to replay — the fault cannot occur)",
                    guardian::to_string(authority));
      }
      std::printf(".\n\n");
    } else {
      std::printf("-> healthy nodes expelled by clique avoidance:");
      for (ttpc::NodeId id : frozen) std::printf(" %u", id);
      std::printf("\n   (replayed integrations: %llu)\n\n",
                  static_cast<unsigned long long>(
                      cluster.metrics().replay_integrations));
    }
  }

  std::printf("This is the engineering moral of the paper: granting the "
              "central guardian the authority to buffer whole frames\n"
              "creates the very failure mode (frames outside their slot) "
              "that guardians exist to prevent.\n");
  return 0;
}
