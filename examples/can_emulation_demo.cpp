// The paper's other temptation, working: CAN-style prioritized messaging
// through a frame-buffering central guardian — and why it is the
// out-of-slot fault class offered as a feature.
//
//   ./can_emulation_demo
#include <cstdio>

#include "guardian/mailbox.h"
#include "ttpc/medl.h"

using namespace tta;

int main() {
  std::printf("CAN emulation through the central guardian: event messages "
              "are buffered at the hub and drained in priority order during "
              "a reserved time slice.\n\n");

  // Only a full-shifting guardian can offer this.
  for (guardian::Authority a : {guardian::Authority::kSmallShifting,
                                guardian::Authority::kFullShifting}) {
    guardian::PriorityRelay relay(a, /*capacity=*/8);
    std::printf("guardian authority %-15s -> priority relay %s\n",
                guardian::to_string(a),
                relay.available() ? "AVAILABLE" : "unavailable (cannot "
                                                  "buffer frames)");
  }
  std::printf("\n");

  guardian::PriorityRelay relay(guardian::Authority::kFullShifting, 8);
  struct Msg {
    std::uint8_t priority;
    ttpc::SlotNumber origin_slot;
    const char* label;
  };
  const Msg messages[] = {
      {5, 1, "periodic telemetry"},   {1, 2, "brake command"},
      {3, 3, "diagnostic response"},  {1, 4, "brake command (2nd wheel)"},
      {4, 1, "comfort setting"},
  };
  std::printf("enqueued (arrival order):\n");
  for (const Msg& m : messages) {
    relay.enqueue(m.priority, ttpc::ChannelFrame{ttpc::FrameKind::kOther,
                                                 m.origin_slot});
    std::printf("  prio %u  %s (from slot %u)\n", m.priority, m.label,
                m.origin_slot);
  }

  std::printf("\ndrained during the reserved slice (priority order, FIFO "
              "within a priority):\n");
  while (auto frame = relay.pop()) {
    std::printf("  frame originally from slot %u\n", frame->id);
  }

  std::printf(
      "\nEvery drained frame leaves the hub in a slot other than the one it "
      "was sent in — by design. That is the out_of_slot fault class as a "
      "feature: the same buffering that enables this service lets a faulty "
      "hub replay frames into slots where integrating nodes will trust "
      "them (see model_check_demo). The paper's conclusion: if you want "
      "this service, you must also accept — and mitigate — that fault "
      "mode.\n");
  return 0;
}
