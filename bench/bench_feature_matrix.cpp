// Experiment E1 — the Section 5.2 verification matrix.
//
// Paper: "For the passive, time windows, and small shifting couplers we
// verify that the property above holds. For the configuration that allows
// any star coupler to buffer full frames and replay them in a later time
// slot, we obtain counter examples from the model checker."
//
// Prints one row per coupler authority level with the verdict and search
// statistics, then times the exhaustive check per authority.
//
// The matrix now runs through svc::VerificationService (admission, cost-
// ordered dispatch, result cache); a second pass over the same batch is
// served from the cache, which the printed hit rate demonstrates.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/experiments.h"
#include "mc/checker.h"
#include "svc/service.h"

namespace {

void print_matrix() {
  std::printf("E1: star-coupler authority vs single-fault property "
              "(4 nodes, <=1 faulty coupler per slot)\n\n");
  tta::svc::VerificationService service;
  auto rows = tta::core::run_feature_matrix(7, &service);
  std::printf("%s\n", tta::core::render_feature_matrix(rows).c_str());
  std::printf("paper: passive/time_windows/small_shifting HOLD, "
              "full_shifting VIOLATED.\n\n");

  // Same batch again: every verdict is conclusive, so the service answers
  // all four queries from its result cache.
  auto again = tta::core::run_feature_matrix(7, &service);
  std::size_t cached = 0;
  for (const auto& r : again) cached += r.from_cache ? 1 : 0;
  std::printf("second pass: %zu/%zu rows from result cache "
              "(service hit rate %.2f)\n\n",
              cached, again.size(), service.metrics().cache_hit_rate());
}

void BM_VerifyAuthority(benchmark::State& state) {
  auto authority = static_cast<tta::guardian::Authority>(state.range(0));
  tta::mc::ModelConfig cfg;
  cfg.authority = authority;
  for (auto _ : state) {
    tta::mc::TtpcStarModel model(cfg);
    tta::mc::Checker checker(model);
    auto res = checker.check(tta::mc::no_integrated_node_freezes());
    benchmark::DoNotOptimize(res.stats.states_explored);
    state.counters["states"] =
        static_cast<double>(res.stats.states_explored);
  }
}
BENCHMARK(BM_VerifyAuthority)
    ->DenseRange(0, 3, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_matrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
