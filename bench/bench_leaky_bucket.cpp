// Experiment E8 — empirical validation of eq. (1): B_min = le + rho * f_max.
//
// The bit-clock forwarder *measures* the smallest buffer that forwards a
// line-coded frame gaplessly between clocks skewed by rho; the table puts
// the measurement next to the equation across the skew x frame-size grid.
// The measurement tracks the bound and sits at or slightly below it (the
// preamble wait doubles as payload head start, making eq. (1) conservative
// by up to le bits; see tests/guardian_forwarder_test.cpp).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/equations.h"
#include "guardian/forwarder.h"
#include "guardian/leaky_bucket.h"
#include "util/table.h"

namespace {

using namespace tta;
using util::Rational;

void print_table() {
  std::printf("E8: measured minimum guardian buffer vs eq (1) prediction "
              "(le = 4)\n\n");
  util::Table t({"skew [ppm]", "rho", "f_max [bits]", "eq(1) B_min",
                 "measured", "B_max(f_min=28)", "feasible?"});
  const std::int64_t b_max = analysis::max_buffer_bits(28);
  for (std::int64_t ppm : {100ll, 1'000ll, 5'000ll, 10'000ll, 50'000ll}) {
    for (std::int64_t f : {76ll, 2076ll, 20'000ll, 115'000ll}) {
      Rational node(1'000'000 - ppm, 1'000'000);
      Rational hub(1'000'000 + ppm, 1'000'000);
      double rho = guardian::relative_rate_difference(node, hub).to_double();
      double predicted = analysis::min_buffer_bits(4, rho, double(f));
      guardian::BitstreamForwarder fwd(node, hub, wire::LineCoding(4));
      std::int64_t measured = fwd.min_buffer_bits(f);
      t.add_row({std::to_string(2 * ppm), util::Table::num(rho, 6),
                 std::to_string(f), util::Table::num(predicted, 1),
                 std::to_string(measured), std::to_string(b_max),
                 measured <= b_max ? "yes" : "NO"});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("paper: with +-100 ppm crystals the buffer stays tiny; the\n"
              "constraint only binds when frames are long AND clocks are "
              "loose — eq (4)'s f_max = 115,000-bit edge is visible in the "
              "last feasible row.\n\n");
}

void BM_ForwarderMeasurement(benchmark::State& state) {
  Rational node(999'900, 1'000'000);
  Rational hub(1'000'100, 1'000'000);
  guardian::BitstreamForwarder fwd(node, hub, wire::LineCoding(4));
  const std::int64_t frame = state.range(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fwd.min_buffer_bits(frame));
  }
}
BENCHMARK(BM_ForwarderMeasurement)->Arg(2076)->Arg(115'000);

void BM_LeakyBucketClosedForm(benchmark::State& state) {
  guardian::LeakyBucket lb(Rational(999'900, 1'000'000),
                           Rational(1'000'100, 1'000'000));
  for (auto _ : state) {
    benchmark::DoNotOptimize(lb.min_initial_bits(115'000));
  }
}
BENCHMARK(BM_LeakyBucketClosedForm);

}  // namespace

int main(int argc, char** argv) {
  print_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
