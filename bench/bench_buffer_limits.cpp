// Experiments E6 + E7 — the worked buffer-limit examples of Section 6.
//
//   eq (5): rho for +-100 ppm crystals          = 0.0002
//   eq (6): f_max at that rho (f_min=28, le=4)  = 115,000 bits
//   eq (8): rho limit at f_max = 76 (I-frame)   = 30.26 %
//   eq (9): rho limit at f_max = 2076 (X-frame) = 1.11 %
//
// Also prints full design reports (TradeoffAnalyzer) for the TTP/C design
// point and several what-if variants, and the TTP/C frame catalog the
// numbers come from.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "analysis/frame_catalog.h"
#include "analysis/sweep.h"
#include "core/buffer_policy.h"
#include "core/tradeoff.h"
#include "util/table.h"

namespace {

using namespace tta;

void print_report() {
  std::printf("E6/E7: Section 6 worked examples\n\n%s\n",
              analysis::section6_worked_examples().c_str());

  std::printf("TTP/C frame catalog (Bus-Compatibility Specification as "
              "quoted by the paper):\n");
  util::Table cat({"frame", "bits", "field breakdown"});
  for (const auto& e : analysis::frame_catalog()) {
    cat.add_row({e.name, std::to_string(e.total_bits), e.field_breakdown});
  }
  std::printf("%s\n", cat.render().c_str());

  std::printf("design reports:\n\n");
  core::DesignPoint ttpc = core::TradeoffAnalyzer::ttpc_default();
  std::printf("%s\n",
              core::TradeoffAnalyzer::render(
                  ttpc, core::TradeoffAnalyzer::analyze(ttpc))
                  .c_str());

  core::DesignPoint edge = ttpc;
  edge.f_max_bits = 115'000;
  std::printf("%s\n",
              core::TradeoffAnalyzer::render(
                  edge, core::TradeoffAnalyzer::analyze(edge))
                  .c_str());

  core::DesignPoint broken = ttpc;
  broken.rho = 0.02;  // 2% skew: infeasible with X-frames
  std::printf("%s\n",
              core::TradeoffAnalyzer::render(
                  broken, core::TradeoffAnalyzer::analyze(broken))
                  .c_str());

  core::DesignPoint slow_links = ttpc;
  slow_links.f_max_bits = 76;  // protocol frames only
  slow_links.rho = 0.30;       // near the eq (8) limit
  std::printf("%s\n",
              core::TradeoffAnalyzer::render(
                  slow_links, core::TradeoffAnalyzer::analyze(slow_links))
                  .c_str());

  // The buffer continuum: how a bit budget induces an authority level —
  // the bridge between Section 6's arithmetic and Section 5's verdicts.
  std::printf("guardian buffer budget -> induced authority (TTP/C design "
              "point):\n\n%s\n",
              core::render_buffer_policy(
                  core::buffer_policy_table(core::BufferPolicyParams{}))
                  .c_str());
  std::printf("=> the safe operating band is [ceil(B_min), f_min-1] = "
              "[5, 27] bits: wide enough for reshaping AND semantic "
              "analysis, one bit short of a frame store.\n\n");
}

void BM_DesignReport(benchmark::State& state) {
  core::DesignPoint p = core::TradeoffAnalyzer::ttpc_default();
  for (auto _ : state) {
    auto r = core::TradeoffAnalyzer::analyze(p);
    benchmark::DoNotOptimize(r.feasible);
  }
}
BENCHMARK(BM_DesignReport);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
