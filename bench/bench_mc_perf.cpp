// Experiment E4 — model-checker performance.
//
// The paper reports both narrated traces were "generated in less than a
// minute on a 1.5 GHz AMD machine" with Cadence SMV. This bench reports the
// corresponding figures for our explicit-state checker: end-to-end trace
// generation time, exhaustive-verification time, and raw state-expansion
// throughput (states/second), plus how the state space scales with cluster
// size, and the serial-vs-parallel speedup of the level-synchronized BFS
// engine (docs/CHECKER.md).
//
// Pass --json=FILE for machine-readable summary results alongside the
// usual --benchmark_out for the microbenchmark timings.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json.h"
#include "mc/checker.h"
#include "mc/parallel_checker.h"
#include "util/thread_pool.h"

namespace {

using namespace tta;

mc::ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  mc::ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

void record(bench::JsonWriter& json, const char* name,
            const mc::CheckStats& stats) {
  json.begin_entry(name);
  json.field("states", stats.states_explored);
  json.field("transitions", stats.transitions);
  json.field("depth", stats.max_depth);
  json.field("seconds", stats.seconds);
}

void print_summary(bench::JsonWriter& json) {
  std::printf("E4: checker statistics (paper: both traces < 60 s on a "
              "1.5 GHz AMD with SMV)\n\n");
  std::printf("%-34s %10s %12s %8s %10s\n", "query", "states", "transitions",
              "depth", "seconds");
  auto report = [&json](const char* name, const mc::CheckResult& res) {
    std::printf("%-34s %10llu %12llu %8llu %10.4f\n", name,
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
    record(json, name, res.stats);
  };
  {
    mc::TtpcStarModel m(config(guardian::Authority::kSmallShifting));
    report("verify small_shifting (exhaust)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    mc::TtpcStarModel m(cfg);
    report("trace 1 (cold-start duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    cfg.allow_coldstart_duplication = false;
    mc::TtpcStarModel m(cfg);
    report("trace 2 (C-state duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  for (std::uint8_t n : {std::uint8_t{3}, std::uint8_t{4}, std::uint8_t{5}}) {
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, n));
    char name[64];
    std::snprintf(name, sizeof name, "verify passive, %u nodes", n);
    report(name, mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    // 6 nodes exceeds 50M reachable states — report the bounded exploration
    // rate instead of waiting minutes for exhaustion.
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, 6));
    auto res = mc::Checker(m).check(mc::no_integrated_node_freezes(),
                                    /*max_states=*/2'000'000);
    std::printf("%-34s %10llu %12llu %8llu %10.4f  (budget-capped; "
                "exhaustive ~50M+ states)\n",
                "verify passive, 6 nodes",
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
    record(json, "verify passive, 6 nodes (capped)", res.stats);
  }
  std::printf("\n");
}

void print_parallel_comparison(bench::JsonWriter& json) {
  // The headline scaling workload: 5-node passive exhaustive verification
  // (~3.4M states). Both engines run the same level-synchronized BFS, so
  // states/transitions/depth must agree exactly at every thread count —
  // anything else is flagged as a MISMATCH, making this a live
  // cross-validation as well as a speedup report.
  std::printf("serial vs parallel engine: verify passive, 5 nodes "
              "(exhaustive; hardware concurrency here: %u)\n\n",
              util::ThreadPool::hardware_threads());
  std::printf("%-22s %10s %12s %8s %10s %8s %11s\n", "engine", "states",
              "transitions", "depth", "seconds", "speedup", "dedup skips");

  mc::TtpcStarModel m(config(guardian::Authority::kPassive, 5));
  auto serial = mc::Checker(m).check(mc::no_integrated_node_freezes());
  std::printf("%-22s %10llu %12llu %8llu %10.4f %8s %11s\n",
              "serial (reference)",
              static_cast<unsigned long long>(serial.stats.states_explored),
              static_cast<unsigned long long>(serial.stats.transitions),
              static_cast<unsigned long long>(serial.stats.max_depth),
              serial.stats.seconds, "1.00x", "-");
  record(json, "parallel_compare serial", serial.stats);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    mc::ParallelChecker checker(m, threads);
    auto res = checker.check(mc::no_integrated_node_freezes());
    double speedup = serial.stats.seconds / res.stats.seconds;
    bool same = res.stats.states_explored == serial.stats.states_explored &&
                res.stats.transitions == serial.stats.transitions &&
                res.stats.max_depth == serial.stats.max_depth &&
                res.holds() == serial.holds();
    char name[32], sp[16];
    std::snprintf(name, sizeof name, "parallel, %u threads", threads);
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    std::printf("%-22s %10llu %12llu %8llu %10.4f %8s %11llu%s\n", name,
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds, sp,
                static_cast<unsigned long long>(res.stats.dedup_skips),
                same ? "" : "  ** MISMATCH vs serial **");
    char entry[48];
    std::snprintf(entry, sizeof entry, "parallel_compare t%u", threads);
    record(json, entry, res.stats);
    json.field("speedup", speedup);
    json.field("dedup_skips", res.stats.dedup_skips);
    json.field("matches_serial", std::uint64_t{same});
  }
  std::printf("\n=> speedup scales with physical cores; on a single-core "
              "host the parallel engine only pays its coordination "
              "overhead. 'dedup skips' counts successors answered by the "
              "per-level dedup cache instead of a CAS probe of the shared "
              "state table.\n\n");
}

void BM_ExhaustiveVerification(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kSmallShifting);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.holds());
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveVerification)->Unit(benchmark::kMillisecond);

void BM_ParallelExhaustiveVerification(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kSmallShifting);
  auto threads = static_cast<unsigned>(state.range(0));
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    mc::ParallelChecker checker(model, threads);
    auto res = checker.check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.holds());
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelExhaustiveVerification)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SuccessorGeneration(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  // A mid-startup state with real branching.
  mc::WorldState s = model.initial();
  s = model.successors(s)[7].next;
  s = model.successors(s)[5].next;
  for (auto _ : state) {
    auto succs = model.successors(s);
    benchmark::DoNotOptimize(succs.data());
  }
}
BENCHMARK(BM_SuccessorGeneration);

void BM_PackUnpack(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  mc::WorldState s = model.initial();
  s.nodes[1].state = ttpc::CtrlState::kActive;
  s.nodes[1].slot = 3;
  for (auto _ : state) {
    auto packed = model.pack(s);
    benchmark::DoNotOptimize(packed);
    auto unpacked = model.unpack(packed);
    benchmark::DoNotOptimize(unpacked.oos_errors_used);
  }
}
BENCHMARK(BM_PackUnpack);

void BM_StateSpaceByClusterSize(benchmark::State& state) {
  auto n = static_cast<std::uint8_t>(state.range(0));
  auto cfg = config(guardian::Authority::kPassive, n);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_StateSpaceByClusterSize)
    ->DenseRange(3, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = tta::bench::take_json_flag(&argc, argv);
  tta::bench::JsonWriter json;
  print_summary(json);
  print_parallel_comparison(json);
  if (!json_path.empty()) json.write(json_path, "bench_mc_perf");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
