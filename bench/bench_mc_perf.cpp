// Experiment E4 — model-checker performance.
//
// The paper reports both narrated traces were "generated in less than a
// minute on a 1.5 GHz AMD machine" with Cadence SMV. This bench reports the
// corresponding figures for our explicit-state checker: end-to-end trace
// generation time, exhaustive-verification time, and raw state-expansion
// throughput (states/second), plus how the state space scales with cluster
// size.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "mc/checker.h"

namespace {

using namespace tta;

mc::ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  mc::ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

void print_summary() {
  std::printf("E4: checker statistics (paper: both traces < 60 s on a "
              "1.5 GHz AMD with SMV)\n\n");
  std::printf("%-34s %10s %12s %8s %10s\n", "query", "states", "transitions",
              "depth", "seconds");
  auto report = [](const char* name, const mc::CheckResult& res) {
    std::printf("%-34s %10llu %12llu %8llu %10.4f\n", name,
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
  };
  {
    mc::TtpcStarModel m(config(guardian::Authority::kSmallShifting));
    report("verify small_shifting (exhaust)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    mc::TtpcStarModel m(cfg);
    report("trace 1 (cold-start duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    cfg.allow_coldstart_duplication = false;
    mc::TtpcStarModel m(cfg);
    report("trace 2 (C-state duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  for (std::uint8_t n : {std::uint8_t{3}, std::uint8_t{4}, std::uint8_t{5}}) {
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, n));
    char name[64];
    std::snprintf(name, sizeof name, "verify passive, %u nodes", n);
    report(name, mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    // 6 nodes exceeds 50M reachable states — report the bounded exploration
    // rate instead of waiting minutes for exhaustion.
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, 6));
    auto res = mc::Checker(m).check(mc::no_integrated_node_freezes(),
                                    /*max_states=*/2'000'000);
    std::printf("%-34s %10llu %12llu %8llu %10.4f  (budget-capped; "
                "exhaustive ~50M+ states)\n",
                "verify passive, 6 nodes",
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
  }
  std::printf("\n");
}

void BM_ExhaustiveVerification(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kSmallShifting);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.holds);
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveVerification)->Unit(benchmark::kMillisecond);

void BM_SuccessorGeneration(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  // A mid-startup state with real branching.
  mc::WorldState s = model.initial();
  s = model.successors(s)[7].next;
  s = model.successors(s)[5].next;
  for (auto _ : state) {
    auto succs = model.successors(s);
    benchmark::DoNotOptimize(succs.data());
  }
}
BENCHMARK(BM_SuccessorGeneration);

void BM_PackUnpack(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  mc::WorldState s = model.initial();
  s.nodes[1].state = ttpc::CtrlState::kActive;
  s.nodes[1].slot = 3;
  for (auto _ : state) {
    auto packed = model.pack(s);
    benchmark::DoNotOptimize(packed);
    auto unpacked = model.unpack(packed);
    benchmark::DoNotOptimize(unpacked.oos_errors_used);
  }
}
BENCHMARK(BM_PackUnpack);

void BM_StateSpaceByClusterSize(benchmark::State& state) {
  auto n = static_cast<std::uint8_t>(state.range(0));
  auto cfg = config(guardian::Authority::kPassive, n);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_StateSpaceByClusterSize)
    ->DenseRange(3, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
