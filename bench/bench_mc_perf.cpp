// Experiment E4 — model-checker performance.
//
// The paper reports both narrated traces were "generated in less than a
// minute on a 1.5 GHz AMD machine" with Cadence SMV. This bench reports the
// corresponding figures for our explicit-state checker: end-to-end trace
// generation time, exhaustive-verification time, and raw state-expansion
// throughput (states/second), plus how the state space scales with cluster
// size, and the serial-vs-parallel speedup of the level-synchronized BFS
// engine (docs/CHECKER.md).
//
// Pass --json=FILE for machine-readable summary results alongside the
// usual --benchmark_out for the microbenchmark timings. Pass --memory-only
// to run just the memory panel (the CI memory-budget smoke step does).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_json.h"
#include "mc/checker.h"
#include "mc/parallel_checker.h"
#include "mc/swarm_engine.h"
#include "util/compact_state_table.h"
#include "util/thread_pool.h"

namespace {

using namespace tta;

mc::ModelConfig config(guardian::Authority a, std::uint8_t nodes = 4) {
  mc::ModelConfig cfg;
  cfg.authority = a;
  cfg.protocol.num_nodes = nodes;
  cfg.protocol.num_slots = nodes;
  return cfg;
}

void record(bench::JsonWriter& json, const char* name,
            const mc::CheckStats& stats) {
  json.begin_entry(name);
  json.field("states", stats.states_explored);
  json.field("transitions", stats.transitions);
  json.field("depth", stats.max_depth);
  json.field("seconds", stats.seconds);
}

void print_summary(bench::JsonWriter& json) {
  std::printf("E4: checker statistics (paper: both traces < 60 s on a "
              "1.5 GHz AMD with SMV)\n\n");
  std::printf("%-34s %10s %12s %8s %10s\n", "query", "states", "transitions",
              "depth", "seconds");
  auto report = [&json](const char* name, const mc::CheckResult& res) {
    std::printf("%-34s %10llu %12llu %8llu %10.4f\n", name,
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
    record(json, name, res.stats);
  };
  {
    mc::TtpcStarModel m(config(guardian::Authority::kSmallShifting));
    report("verify small_shifting (exhaust)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    mc::TtpcStarModel m(cfg);
    report("trace 1 (cold-start duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    auto cfg = config(guardian::Authority::kFullShifting);
    cfg.max_out_of_slot_errors = 1;
    cfg.allow_coldstart_duplication = false;
    mc::TtpcStarModel m(cfg);
    report("trace 2 (C-state duplication)",
           mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  for (std::uint8_t n : {std::uint8_t{3}, std::uint8_t{4}, std::uint8_t{5}}) {
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, n));
    char name[64];
    std::snprintf(name, sizeof name, "verify passive, %u nodes", n);
    report(name, mc::Checker(m).check(mc::no_integrated_node_freezes()));
  }
  {
    // 6 nodes exceeds 50M reachable states — report the bounded exploration
    // rate instead of waiting minutes for exhaustion.
    mc::TtpcStarModel m(config(guardian::Authority::kPassive, 6));
    auto res = mc::Checker(m).check(mc::no_integrated_node_freezes(),
                                    /*max_states=*/2'000'000);
    std::printf("%-34s %10llu %12llu %8llu %10.4f  (budget-capped; "
                "exhaustive ~50M+ states)\n",
                "verify passive, 6 nodes",
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds);
    record(json, "verify passive, 6 nodes (capped)", res.stats);
  }
  std::printf("\n");
}

void print_parallel_comparison(bench::JsonWriter& json) {
  // The headline scaling workload: 5-node passive exhaustive verification
  // (~3.4M states). Both engines run the same level-synchronized BFS, so
  // states/transitions/depth must agree exactly at every thread count —
  // anything else is flagged as a MISMATCH, making this a live
  // cross-validation as well as a speedup report.
  std::printf("serial vs parallel engine: verify passive, 5 nodes "
              "(exhaustive; hardware concurrency here: %u)\n\n",
              util::ThreadPool::hardware_threads());
  std::printf("%-22s %10s %12s %8s %10s %8s %11s\n", "engine", "states",
              "transitions", "depth", "seconds", "speedup", "dedup skips");

  mc::TtpcStarModel m(config(guardian::Authority::kPassive, 5));
  auto serial = mc::Checker(m).check(mc::no_integrated_node_freezes());
  std::printf("%-22s %10llu %12llu %8llu %10.4f %8s %11s\n",
              "serial (reference)",
              static_cast<unsigned long long>(serial.stats.states_explored),
              static_cast<unsigned long long>(serial.stats.transitions),
              static_cast<unsigned long long>(serial.stats.max_depth),
              serial.stats.seconds, "1.00x", "-");
  record(json, "parallel_compare serial", serial.stats);

  for (unsigned threads : {1u, 2u, 4u, 8u}) {
    mc::ParallelChecker checker(m, threads);
    auto res = checker.check(mc::no_integrated_node_freezes());
    double speedup = serial.stats.seconds / res.stats.seconds;
    bool same = res.stats.states_explored == serial.stats.states_explored &&
                res.stats.transitions == serial.stats.transitions &&
                res.stats.max_depth == serial.stats.max_depth &&
                res.holds() == serial.holds();
    char name[32], sp[16];
    std::snprintf(name, sizeof name, "parallel, %u threads", threads);
    std::snprintf(sp, sizeof sp, "%.2fx", speedup);
    std::printf("%-22s %10llu %12llu %8llu %10.4f %8s %11llu%s\n", name,
                static_cast<unsigned long long>(res.stats.states_explored),
                static_cast<unsigned long long>(res.stats.transitions),
                static_cast<unsigned long long>(res.stats.max_depth),
                res.stats.seconds, sp,
                static_cast<unsigned long long>(res.stats.dedup_skips),
                same ? "" : "  ** MISMATCH vs serial **");
    char entry[48];
    std::snprintf(entry, sizeof entry, "parallel_compare t%u", threads);
    record(json, entry, res.stats);
    json.field("speedup", speedup);
    json.field("dedup_skips", res.stats.dedup_skips);
    json.field("matches_serial", std::uint64_t{same});
  }
  std::printf("\n=> speedup scales with physical cores; on a single-core "
              "host the parallel engine only pays its coordination "
              "overhead. 'dedup skips' counts successors answered by the "
              "per-level dedup cache instead of a CAS probe of the shared "
              "state table.\n\n");
}

// ---- Swarm panel: time-to-counterexample vs the exhaustive BFS ----

void print_swarm_panel(bench::JsonWriter& json) {
  // The E1 grid's VIOLATED rows (tools/e1_grid.jobs): full_shifting safety
  // variants, where level-synchronized BFS must expand every level above
  // the violating one before it can report. The swarm engine races seeded
  // randomized orderings against that sweep; its time-to-counterexample is
  // CheckStats::swarm_race_seconds (start -> first replay-validated raw
  // win), and the reported trace must still replay to the serial engine's
  // canonical length — the panel checks that on every run.
  std::printf("swarm panel: time-to-counterexample on E1 VIOLATED rows "
              "(4 racers + 2-thread sweep vs 4-thread BFS)\n\n");
  std::printf("%-36s %10s %10s %10s %8s %7s\n", "config / seed", "bfs_s",
              "swarm_ttc", "ratio", "race_won", "trace");

  struct Row {
    const char* name;
    mc::ModelConfig cfg;
  };
  auto trace1 = config(guardian::Authority::kFullShifting);
  trace1.max_out_of_slot_errors = 1;
  auto trace2 = trace1;
  trace2.allow_coldstart_duplication = false;
  const Row rows[] = {
      {"full_shifting", config(guardian::Authority::kFullShifting)},
      {"full_shifting max_oos=1", trace1},
      {"full_shifting no_coldstart", trace2},
  };

  std::vector<double> ratios;
  for (const Row& row : rows) {
    mc::TtpcStarModel m(row.cfg);
    mc::EngineQuery query;
    query.kind = mc::EngineQuery::Kind::kSafetyCheck;
    query.violation = mc::no_integrated_node_freezes();

    const mc::EngineResult serial =
        mc::SerialEngine().run(m, query, nullptr, nullptr);
    const mc::EngineResult bfs =
        mc::ParallelEngine(4).run(m, query, nullptr, nullptr);

    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
      const mc::EngineResult swarm =
          mc::SwarmEngine(4, seed, 2).run(m, query, nullptr, nullptr);
      // When a racer won, its validated win time is the ttc; when the
      // sweep won the race outright, the whole run is.
      const double ttc = swarm.stats.swarm_race_won
                             ? swarm.stats.swarm_race_seconds
                             : swarm.stats.seconds;
      const double ratio =
          bfs.stats.seconds > 0.0 ? ttc / bfs.stats.seconds : 0.0;
      const bool canonical = swarm.verdict == serial.verdict &&
                             swarm.trace.size() == serial.trace.size();
      ratios.push_back(ratio);
      char label[64];
      std::snprintf(label, sizeof label, "%s seed=%llu", row.name,
                    static_cast<unsigned long long>(seed));
      std::printf("%-36s %10.4f %10.4f %9.2fx %8llu %7s\n", label,
                  bfs.stats.seconds, ttc, ratio,
                  static_cast<unsigned long long>(swarm.stats.swarm_race_won),
                  canonical ? "match" : "** MISMATCH **");
      char entry[80];
      std::snprintf(entry, sizeof entry, "swarm %s seed=%llu", row.name,
                    static_cast<unsigned long long>(seed));
      json.begin_entry(entry);
      json.field("bfs_seconds", bfs.stats.seconds);
      json.field("swarm_ttc_seconds", ttc);
      json.field("ttc_vs_bfs", ratio);
      json.field("race_won", swarm.stats.swarm_race_won);
      json.field("loser_states", swarm.stats.swarm_loser_states);
      json.field("cancel_seconds", swarm.stats.swarm_cancel_seconds);
      json.field("trace_len", std::uint64_t{swarm.trace.size()});
      json.field("serial_trace_len", std::uint64_t{serial.trace.size()});
      json.field("canonical_match", std::uint64_t{canonical});
    }
  }

  std::sort(ratios.begin(), ratios.end());
  const double median = ratios.empty() ? 0.0 : ratios[ratios.size() / 2];
  json.begin_entry("swarm_median");
  json.field("ttc_vs_bfs_median", median);
  std::printf("\n=> swarm median time-to-counterexample: %.2fx the "
              "4-thread BFS (target: < 0.5x); every row's trace length "
              "must match the serial canon.\n\n",
              median);
}

// ---- Memory panel: flat vs compact visited-table backends ----

/// Peak-RSS watermark (VmHWM) in kB; 0 off Linux.
std::uint64_t read_vm_hwm_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (!f) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof line, f)) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      std::sscanf(line + 6, "%llu", reinterpret_cast<unsigned long long*>(&kb));
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

/// Resets the VmHWM watermark so the next read prices one workload alone.
void reset_peak_rss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f) {
    std::fputs("5", f);
    std::fclose(f);
  }
#endif
}

struct MemoryRow {
  mc::CheckStats stats;
  bool holds = false;
  std::uint64_t rss_delta_kb = 0;
};

template <template <class> class TableT>
MemoryRow memory_case(const mc::TtpcStarModel& m, unsigned threads) {
  MemoryRow row;
  reset_peak_rss();
  const std::uint64_t before = read_vm_hwm_kb();
  mc::ParallelChecker<mc::TtpcStarModel, TableT> checker(m, threads);
  auto res = checker.check(mc::no_integrated_node_freezes());
  const std::uint64_t after = read_vm_hwm_kb();
  row.stats = res.stats;
  row.holds = res.holds();
  row.rss_delta_kb = after > before ? after - before : 0;
  return row;
}

void record_memory_row(bench::JsonWriter& json, const char* backend,
                       unsigned threads, const MemoryRow& row) {
  const double bytes_per_state =
      row.stats.states_explored
          ? static_cast<double>(row.stats.table_bytes) /
                static_cast<double>(row.stats.states_explored)
          : 0.0;
  const double states_per_sec =
      row.stats.seconds > 0.0
          ? static_cast<double>(row.stats.states_explored) /
                row.stats.seconds
          : 0.0;
  char name[48];
  std::snprintf(name, sizeof name, "memory %s t%u", backend, threads);
  json.begin_entry(name);
  json.field("backend", std::string(backend));
  json.field("threads", std::uint64_t{threads});
  json.field("states", row.stats.states_explored);
  json.field("holds", std::uint64_t{row.holds});
  json.field("seconds", row.stats.seconds);
  json.field("states_per_sec", states_per_sec);
  json.field("table_bytes", row.stats.table_bytes);
  json.field("table_capacity", row.stats.table_capacity);
  json.field("bytes_per_state", bytes_per_state);
  json.field("rss_peak_delta_kb", row.rss_delta_kb);
  json.field("hash_recomputes", row.stats.hash_recomputes);
  json.field("probe_max", row.stats.probe_max);
  json.field("probe_avg", row.stats.probe_avg);
  std::string hist = "[";
  for (std::size_t i = 0; i < row.stats.probe_hist.size(); ++i) {
    hist += (i ? "," : "") + std::to_string(row.stats.probe_hist[i]);
  }
  hist += "]";
  json.raw("probe_hist", hist);
  std::printf("%-10s %7u %10llu %10.4f %12.0f %12.1f %14llu %9llu %9.2f\n",
              backend, threads,
              static_cast<unsigned long long>(row.stats.states_explored),
              row.stats.seconds, states_per_sec, bytes_per_state,
              static_cast<unsigned long long>(row.rss_delta_kb),
              static_cast<unsigned long long>(row.stats.probe_max),
              row.stats.probe_avg);
}

void print_memory_panel(bench::JsonWriter& json) {
  // The largest HOLDS configuration of the E1 grid (tools/e1_grid.jobs) at
  // the paper's 4-node cluster: a small_shifting guardian with the full
  // out-of-slot replay budget. 4 nodes pack to 119 significant bits, so
  // the compact backend stores 17-byte quotient slots against the flat
  // backend's 56-byte full-key slots — the 0.5x budget CI enforces.
  std::printf("memory panel: flat vs compact visited table "
              "(small_shifting, max_oos 7, 4 nodes, safety)\n\n");
  std::printf("%-10s %7s %10s %10s %12s %12s %14s %9s %9s\n", "backend",
              "threads", "states", "seconds", "states/s", "bytes/state",
              "rss_delta_kB", "probe_max", "probe_avg");
  auto cfg = config(guardian::Authority::kSmallShifting);
  cfg.max_out_of_slot_errors = 7;
  mc::TtpcStarModel m(cfg);

  MemoryRow flat8, compact8;
  for (unsigned threads : {1u, 8u}) {
    MemoryRow flat = memory_case<util::ConcurrentStateTable>(m, threads);
    record_memory_row(json, "flat", threads, flat);
    if (threads == 8) flat8 = flat;
  }
  for (unsigned threads : {1u, 8u}) {
    MemoryRow compact = memory_case<util::CompactStateTable>(m, threads);
    record_memory_row(json, "compact", threads, compact);
    if (threads == 8) compact8 = compact;
  }

  const double flat_bps =
      static_cast<double>(flat8.stats.table_bytes) /
      static_cast<double>(flat8.stats.states_explored);
  const double compact_bps =
      static_cast<double>(compact8.stats.table_bytes) /
      static_cast<double>(compact8.stats.states_explored);
  const double ratio = compact_bps / flat_bps;
  const double throughput_ratio =
      flat8.stats.seconds > 0.0 && compact8.stats.seconds > 0.0
          ? flat8.stats.seconds / compact8.stats.seconds
          : 0.0;
  const bool identical =
      flat8.holds == compact8.holds &&
      flat8.stats.states_explored == compact8.stats.states_explored &&
      flat8.stats.transitions == compact8.stats.transitions &&
      flat8.stats.max_depth == compact8.stats.max_depth;
  json.begin_entry("memory_ratio");
  json.field("flat_bytes_per_state", flat_bps);
  json.field("compact_bytes_per_state", compact_bps);
  json.field("compact_vs_flat_bytes_per_state", ratio);
  json.field("compact_vs_flat_throughput_t8", throughput_ratio);
  json.field("backends_identical", std::uint64_t{identical});
  std::printf("\n=> compact/flat bytes-per-state ratio: %.3f (budget: "
              "<= 0.5); compact/flat throughput at 8 threads: %.2fx; "
              "backends %s\n\n",
              ratio, throughput_ratio,
              identical ? "bit-identical" : "** DIVERGED **");
}

/// Strips `flag` from argv; returns whether it was present.
bool take_flag(int* argc, char** argv, const char* flag) {
  bool found = false;
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      found = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  return found;
}

void BM_ExhaustiveVerification(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kSmallShifting);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.holds());
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveVerification)->Unit(benchmark::kMillisecond);

void BM_ParallelExhaustiveVerification(benchmark::State& state) {
  auto cfg = config(guardian::Authority::kSmallShifting);
  auto threads = static_cast<unsigned>(state.range(0));
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    mc::ParallelChecker checker(model, threads);
    auto res = checker.check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
    benchmark::DoNotOptimize(res.holds());
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(states * state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ParallelExhaustiveVerification)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SuccessorGeneration(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  // A mid-startup state with real branching.
  mc::WorldState s = model.initial();
  s = model.successors(s)[7].next;
  s = model.successors(s)[5].next;
  for (auto _ : state) {
    auto succs = model.successors(s);
    benchmark::DoNotOptimize(succs.data());
  }
}
BENCHMARK(BM_SuccessorGeneration);

void BM_PackUnpack(benchmark::State& state) {
  mc::TtpcStarModel model(config(guardian::Authority::kFullShifting));
  mc::WorldState s = model.initial();
  s.nodes[1].state = ttpc::CtrlState::kActive;
  s.nodes[1].slot = 3;
  for (auto _ : state) {
    auto packed = model.pack(s);
    benchmark::DoNotOptimize(packed);
    auto unpacked = model.unpack(packed);
    benchmark::DoNotOptimize(unpacked.oos_errors_used);
  }
}
BENCHMARK(BM_PackUnpack);

void BM_StateSpaceByClusterSize(benchmark::State& state) {
  auto n = static_cast<std::uint8_t>(state.range(0));
  auto cfg = config(guardian::Authority::kPassive, n);
  std::uint64_t states = 0;
  for (auto _ : state) {
    mc::TtpcStarModel model(cfg);
    auto res = mc::Checker(model).check(mc::no_integrated_node_freezes());
    states = res.stats.states_explored;
  }
  state.counters["states"] = static_cast<double>(states);
}
BENCHMARK(BM_StateSpaceByClusterSize)
    ->DenseRange(3, 5, 1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = tta::bench::take_json_flag(&argc, argv);
  const bool memory_only = take_flag(&argc, argv, "--memory-only");
  tta::bench::JsonWriter json;
  if (!memory_only) {
    print_summary(json);
    print_parallel_comparison(json);
    print_swarm_panel(json);
  }
  print_memory_panel(json);
  if (!json_path.empty()) json.write(json_path, "bench_mc_perf");
  if (memory_only) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
