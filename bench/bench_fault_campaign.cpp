// Statistical fault-injection campaign, in the style of the SWIFI/heavy-ion
// experiment counts of Ademaj et al. [7].
//
// For every (fault class x topology/authority) cell, runs N seeded
// campaigns with randomized fault onset and duration and reports the
// fraction of runs in which at least one *healthy* node was expelled by
// clique avoidance (plus mean healthy availability). The deterministic
// matrix (bench_topology_faults) shows the mechanism; this bench shows the
// statistics are not an artifact of one schedule.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace tta;

constexpr std::uint64_t kRunsPerCell = 60;
constexpr std::uint64_t kHorizon = 700;

struct CellResult {
  std::uint64_t damaged_runs = 0;
  util::Accumulator healthy_active;  ///< healthy nodes active at end
};

CellResult run_cell(sim::Topology topo, guardian::Authority authority,
                    sim::NodeFaultMode fault) {
  CellResult cell;
  for (std::uint64_t run = 0; run < kRunsPerCell; ++run) {
    util::Rng rng(run * 2654435761u + static_cast<std::uint64_t>(fault));
    sim::ClusterConfig cfg;
    cfg.topology = topo;
    cfg.guardian.authority = authority;
    cfg.keep_log = false;
    // Randomized power-on pattern.
    cfg.power_on_steps = {rng.next_below(8), rng.next_below(8),
                          rng.next_below(8), rng.next_below(8)};
    sim::FaultInjector injector;
    std::uint64_t onset = rng.next_below(200);
    injector.add(sim::NodeFaultWindow{1, fault, onset, UINT64_MAX});
    sim::Cluster cluster(cfg, std::move(injector));
    cluster.run(kHorizon);

    if (cluster.healthy_clique_frozen() > 0 ||
        cluster.metrics().masquerade_integrations > 0) {
      ++cell.damaged_runs;
    }
    std::size_t active = 0;
    for (ttpc::NodeId id = 2; id <= 4; ++id) {
      active += cluster.node(id).state().state == ttpc::CtrlState::kActive;
    }
    cell.healthy_active.add(static_cast<double>(active));
  }
  return cell;
}

void print_campaign() {
  std::printf("statistical fault-injection campaign: %llu randomized runs "
              "per cell (random power-on pattern and fault onset; damage = "
              "healthy node expelled or masquerade integration)\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
  util::Table t({"fault", "configuration", "damaged runs",
                 "healthy active at end (mean/3)"});
  const std::pair<sim::Topology, guardian::Authority> configs[] = {
      {sim::Topology::kBus, guardian::Authority::kPassive},
      {sim::Topology::kStar, guardian::Authority::kTimeWindows},
      {sim::Topology::kStar, guardian::Authority::kSmallShifting},
  };
  for (sim::NodeFaultMode fault :
       {sim::NodeFaultMode::kBabbling, sim::NodeFaultMode::kMasqueradeColdStart,
        sim::NodeFaultMode::kBadCState, sim::NodeFaultMode::kSosValue,
        sim::NodeFaultMode::kSosTime}) {
    for (const auto& [topo, authority] : configs) {
      CellResult cell = run_cell(topo, authority, fault);
      char name[64], damaged[32];
      std::snprintf(name, sizeof name, "%s + %s", sim::to_string(topo),
                    guardian::to_string(authority));
      std::snprintf(damaged, sizeof damaged, "%llu/%llu",
                    static_cast<unsigned long long>(cell.damaged_runs),
                    static_cast<unsigned long long>(kRunsPerCell));
      t.add_row({sim::to_string(fault), name, damaged,
                 util::Table::num(cell.healthy_active.mean(), 2)});
    }
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("shape to compare with [7]: SOS faults damage essentially "
              "every bus run and bad C-states hit whenever a node happens "
              "to (re)integrate during the fault; babbling and startup "
              "masquerade show up as lost availability when the random "
              "onset lands in the startup window. The fully authoritative "
              "star (small_shifting) shows zero damage and full "
              "availability across all %llu x 5 runs.\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
}

void BM_OneCampaignCell(benchmark::State& state) {
  for (auto _ : state) {
    CellResult cell =
        run_cell(sim::Topology::kBus, guardian::Authority::kPassive,
                 sim::NodeFaultMode::kSosValue);
    benchmark::DoNotOptimize(cell.damaged_runs);
  }
}
BENCHMARK(BM_OneCampaignCell)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_campaign();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
