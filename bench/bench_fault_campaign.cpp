// Statistical fault-injection campaign, in the style of the SWIFI/heavy-ion
// experiment counts of Ademaj et al. [7].
//
// For every (fault class x topology/authority) cell, runs N seeded
// campaigns with randomized fault onset and duration and reports the
// fraction of runs in which at least one *healthy* node was expelled by
// clique avoidance (plus mean healthy availability). The deterministic
// matrix (bench_topology_faults) shows the mechanism; this bench shows the
// statistics are not an artifact of one schedule.
//
// Every run inside a cell derives its RNG from (run, fault) alone, so the
// cells are order-independent: the campaign fans out over a ThreadPool and
// still reports figures identical to a sequential pass — which it also
// times, to report the campaign-level speedup. Pass --json=FILE for
// machine-readable results.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_json.h"
#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace {

using namespace tta;

constexpr std::uint64_t kRunsPerCell = 60;
constexpr std::uint64_t kHorizon = 700;

struct CellResult {
  std::uint64_t damaged_runs = 0;
  util::Accumulator healthy_active;  ///< healthy nodes active at end
};

CellResult run_cell(sim::Topology topo, guardian::Authority authority,
                    sim::NodeFaultMode fault) {
  CellResult cell;
  for (std::uint64_t run = 0; run < kRunsPerCell; ++run) {
    util::Rng rng(run * 2654435761u + static_cast<std::uint64_t>(fault));
    sim::ClusterConfig cfg;
    cfg.topology = topo;
    cfg.guardian.authority = authority;
    cfg.keep_log = false;
    // Randomized power-on pattern.
    cfg.power_on_steps = {rng.next_below(8), rng.next_below(8),
                          rng.next_below(8), rng.next_below(8)};
    sim::FaultInjector injector;
    std::uint64_t onset = rng.next_below(200);
    injector.add(sim::NodeFaultWindow{1, fault, onset, UINT64_MAX});
    sim::Cluster cluster(cfg, std::move(injector));
    cluster.run(kHorizon);

    if (cluster.healthy_clique_frozen() > 0 ||
        cluster.metrics().masquerade_integrations > 0) {
      ++cell.damaged_runs;
    }
    std::size_t active = 0;
    for (ttpc::NodeId id = 2; id <= 4; ++id) {
      active += cluster.node(id).state().state == ttpc::CtrlState::kActive;
    }
    cell.healthy_active.add(static_cast<double>(active));
  }
  return cell;
}

struct Cell {
  sim::NodeFaultMode fault;
  sim::Topology topo;
  guardian::Authority authority;
};

std::vector<Cell> campaign_cells() {
  const std::pair<sim::Topology, guardian::Authority> configs[] = {
      {sim::Topology::kBus, guardian::Authority::kPassive},
      {sim::Topology::kStar, guardian::Authority::kTimeWindows},
      {sim::Topology::kStar, guardian::Authority::kSmallShifting},
  };
  std::vector<Cell> cells;
  for (sim::NodeFaultMode fault :
       {sim::NodeFaultMode::kBabbling, sim::NodeFaultMode::kMasqueradeColdStart,
        sim::NodeFaultMode::kBadCState, sim::NodeFaultMode::kSosValue,
        sim::NodeFaultMode::kSosTime}) {
    for (const auto& [topo, authority] : configs) {
      cells.push_back({fault, topo, authority});
    }
  }
  return cells;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void print_campaign(bench::JsonWriter& json) {
  std::printf("statistical fault-injection campaign: %llu randomized runs "
              "per cell (random power-on pattern and fault onset; damage = "
              "healthy node expelled or masquerade integration)\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
  const std::vector<Cell> cells = campaign_cells();

  // Sequential reference pass, then the pooled pass into index-addressed
  // slots. Per-run seeding makes the two bit-identical; the reference
  // exists to prove exactly that (and to time the speedup).
  auto t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> sequential(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    sequential[i] = run_cell(cells[i].topo, cells[i].authority,
                             cells[i].fault);
  }
  double seq_seconds = seconds_since(t0);

  util::ThreadPool pool;
  t0 = std::chrono::steady_clock::now();
  std::vector<CellResult> results(cells.size());
  pool.run_tasks(cells.size(), [&](std::size_t i) {
    results[i] = run_cell(cells[i].topo, cells[i].authority, cells[i].fault);
  });
  double par_seconds = seconds_since(t0);

  util::Table t({"fault", "configuration", "damaged runs",
                 "healthy active at end (mean/3)"});
  bool all_match = true;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const CellResult& cell = results[i];
    all_match &= cell.damaged_runs == sequential[i].damaged_runs &&
                 cell.healthy_active.mean() ==
                     sequential[i].healthy_active.mean();
    char name[64], damaged[32];
    std::snprintf(name, sizeof name, "%s + %s",
                  sim::to_string(cells[i].topo),
                  guardian::to_string(cells[i].authority));
    std::snprintf(damaged, sizeof damaged, "%llu/%llu",
                  static_cast<unsigned long long>(cell.damaged_runs),
                  static_cast<unsigned long long>(kRunsPerCell));
    t.add_row({sim::to_string(cells[i].fault), name, damaged,
               util::Table::num(cell.healthy_active.mean(), 2)});

    char entry[96];
    std::snprintf(entry, sizeof entry, "%s / %s",
                  sim::to_string(cells[i].fault), name);
    json.begin_entry(entry);
    json.field("damaged_runs", cell.damaged_runs);
    json.field("runs", kRunsPerCell);
    json.field("healthy_active_mean", cell.healthy_active.mean());
  }
  std::printf("%s\n", t.render().c_str());
  std::printf("campaign wall clock: sequential %.2fs, %u-thread pool %.2fs "
              "(%.2fx)%s\n\n",
              seq_seconds, pool.size(), par_seconds,
              seq_seconds / par_seconds,
              all_match ? "; pooled results identical to sequential"
                        : "; ** POOLED RESULTS DIVERGE FROM SEQUENTIAL **");
  json.begin_entry("campaign_timing");
  json.field("sequential_seconds", seq_seconds);
  json.field("parallel_seconds", par_seconds);
  json.field("threads", std::uint64_t{pool.size()});
  json.field("speedup", seq_seconds / par_seconds);
  json.field("matches_sequential", std::uint64_t{all_match});

  std::printf("shape to compare with [7]: SOS faults damage essentially "
              "every bus run and bad C-states hit whenever a node happens "
              "to (re)integrate during the fault; babbling and startup "
              "masquerade show up as lost availability when the random "
              "onset lands in the startup window. The fully authoritative "
              "star (small_shifting) shows zero damage and full "
              "availability across all %llu x 5 runs.\n\n",
              static_cast<unsigned long long>(kRunsPerCell));
}

void BM_OneCampaignCell(benchmark::State& state) {
  for (auto _ : state) {
    CellResult cell =
        run_cell(sim::Topology::kBus, guardian::Authority::kPassive,
                 sim::NodeFaultMode::kSosValue);
    benchmark::DoNotOptimize(cell.damaged_runs);
  }
}
BENCHMARK(BM_OneCampaignCell)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = tta::bench::take_json_flag(&argc, argv);
  tta::bench::JsonWriter json;
  print_campaign(json);
  if (!json_path.empty()) json.write(json_path, "bench_fault_campaign");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
